//! Umbrella crate for the XPC (ISCA'19) reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! reach the whole system through one dependency. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use kernels;
pub use minidb;
pub use rv64;
pub use services;
pub use simos;
pub use xpc;
pub use xpc_engine;
pub use xpc_verify;
pub use ycsb;
