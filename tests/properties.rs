//! Property-based tests on the core data structures and invariants.
//!
//! Gated behind the off-by-default `proptest` feature: enabling it
//! requires adding the external `proptest` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use xpc_repro::services::aes::Aes128;
use xpc_repro::services::fs::Xv6Fs;
use xpc_repro::simos::ipc::IpcSystem;
use xpc_repro::simos::ledger::{Invocation, InvokeOpts, Phase};
use xpc_repro::xpc::handover::shrink_windows;
use xpc_repro::xpc::layout::{RELAY_REGION_LEN, RELAY_REGION_VA};
use xpc_repro::xpc::palloc::FrameAlloc;
use xpc_repro::xpc::seg::{SegOwner, SegRegistry};
use xpc_repro::xpc_engine::{SegMask, SegReg};

struct FreeIpc;
impl IpcSystem for FreeIpc {
    fn name(&self) -> String {
        "free".into()
    }
    fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
        Invocation::single(Phase::Trap, 1)
    }
}

fn world() -> xpc_repro::simos::World {
    xpc_repro::simos::World::new(Box::new(FreeIpc))
}

proptest! {
    /// The seg-mask intersection never escapes the parent segment — the
    /// §3.3 safety property behind handover.
    #[test]
    fn masked_segment_stays_inside_parent(
        base in 0u64..1 << 40,
        len in 1u64..1 << 20,
        moff in 0u64..1 << 20,
        mlen in 0u64..1 << 20,
    ) {
        let seg = SegReg { va_base: base, pa_base: 0x8000_0000, len, writable: true, paged: false };
        let mask = SegMask { va_base: base + moff, len: mlen };
        if mask.within(&seg) {
            let m = seg.masked(mask);
            prop_assert!(m.va_base >= seg.va_base);
            prop_assert!(m.va_base + m.len <= seg.va_base + seg.len);
            // Translation consistency: same VA maps to same PA.
            if m.len > 0 {
                let delta = m.va_base - seg.va_base;
                prop_assert_eq!(m.pa_base, seg.pa_base + delta);
            }
        }
    }

    /// Random allocate/transfer/free sequences never violate the
    /// registry invariants (no overlap, window containment).
    #[test]
    fn seg_registry_invariants_hold(ops in prop::collection::vec((0u8..3, 0u64..8, 1u64..20_000), 1..60)) {
        let mut alloc = FrameAlloc::new(0x8002_0000, 1 << 24);
        let mut reg = SegRegistry::new();
        let mut handles = Vec::new();
        for (op, idx, len) in ops {
            match op {
                0 => {
                    if let Ok(h) = reg.alloc(&mut alloc, len, idx, true) {
                        handles.push(h);
                    }
                }
                1 => {
                    if !handles.is_empty() {
                        let h = handles[idx as usize % handles.len()];
                        let _ = reg.transfer(h, SegOwner::ListSlot(idx, len % 128));
                    }
                }
                _ => {
                    if !handles.is_empty() {
                        let h = handles[idx as usize % handles.len()];
                        reg.free(&mut alloc, h);
                    }
                }
            }
            prop_assert!(reg.check_invariants().is_ok(), "{:?}", reg.check_invariants());
        }
    }

    /// Every live segment stays inside the relay window the kernel never
    /// maps — the no-shadowing guarantee.
    #[test]
    fn segments_live_in_the_relay_window(lens in prop::collection::vec(1u64..100_000, 1..20)) {
        let mut alloc = FrameAlloc::new(0x8002_0000, 1 << 26);
        let mut reg = SegRegistry::new();
        for (i, len) in lens.iter().enumerate() {
            if let Ok(h) = reg.alloc(&mut alloc, *len, i as u64, true) {
                let s = reg.seg_reg(h);
                prop_assert!(s.va_base >= RELAY_REGION_VA);
                prop_assert!(s.va_base + s.len <= RELAY_REGION_VA + RELAY_REGION_LEN);
            }
        }
    }

    /// AES-CTR is an involution for any key, nonce and data.
    #[test]
    fn aes_ctr_involution(key in prop::array::uniform16(any::<u8>()),
                          nonce in any::<u64>(),
                          data in prop::collection::vec(any::<u8>(), 0..600)) {
        let aes = Aes128::new(&key);
        let mut buf = data.clone();
        aes.ctr_xor(nonce, &mut buf);
        aes.ctr_xor(nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// The file system agrees with a flat reference model under random
    /// write/read sequences (offsets up to ~3 blocks, so partial-block
    /// read-modify-write paths are exercised).
    #[test]
    fn fs_matches_reference_model(ops in prop::collection::vec(
        (0u64..12_000, prop::collection::vec(any::<u8>(), 1..700)), 1..12)) {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 1 << 13);
        let ino = fs.create(&mut w, "prop");
        let mut model: Vec<u8> = Vec::new();
        for (off, data) in &ops {
            let end = *off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*off as usize..end].copy_from_slice(data);
            fs.write(&mut w, ino, *off, data);
        }
        let got = fs.read(&mut w, ino, 0, model.len() as u64);
        prop_assert_eq!(got, model);
    }

    /// Shrink windows tile the message exactly: disjoint, ordered,
    /// covering.
    #[test]
    fn shrink_windows_tile_exactly(total in 0u64..1 << 22, piece in 1u64..1 << 16) {
        let w = shrink_windows(total, piece);
        let mut pos = 0;
        for (off, len) in &w {
            prop_assert_eq!(*off, pos);
            prop_assert!(*len > 0 && *len <= piece);
            pos += len;
        }
        prop_assert_eq!(pos, total);
    }

    /// YCSB generation is a pure function of the spec.
    #[test]
    fn ycsb_deterministic(seed in any::<u64>()) {
        use xpc_repro::ycsb::{Workload, WorkloadSpec};
        let spec = WorkloadSpec { seed, ops: 50, ..WorkloadSpec::paper(Workload::A) };
        prop_assert_eq!(spec.generate(), spec.generate());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Assembler/decoder agreement for register-register ALU ops.
    #[test]
    fn assembler_decoder_round_trip(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32) {
        use xpc_repro::rv64::inst::{decode, AluOp, Inst};
        use xpc_repro::rv64::Assembler;
        let mut a = Assembler::new(0);
        a.add(rd, rs1, rs2);
        a.sub(rd, rs1, rs2);
        a.xor(rd, rs1, rs2);
        let w = a.assemble();
        prop_assert_eq!(decode(w[0]), Some(Inst::Op { op: AluOp::Add, rd, rs1, rs2 }));
        prop_assert_eq!(decode(w[1]), Some(Inst::Op { op: AluOp::Sub, rd, rs1, rs2 }));
        prop_assert_eq!(decode(w[2]), Some(Inst::Op { op: AluOp::Xor, rd, rs1, rs2 }));
    }

    /// `li` followed by execution produces exactly the requested constant.
    #[test]
    fn li_executes_to_value(v in any::<i64>()) {
        use xpc_repro::rv64::{reg, Assembler, Machine, MachineConfig};
        let mut a = Assembler::new(xpc_repro::rv64::mem::DRAM_BASE);
        a.li(reg::A0, v);
        a.ebreak();
        let mut m = Machine::new(MachineConfig::rocket_u500());
        m.load_program(&a.assemble());
        m.run(100).unwrap();
        prop_assert_eq!(m.core.cpu.x(reg::A0) as i64, v);
    }

    /// Immediately re-accessing a cached line always hits.
    #[test]
    fn cache_rereference_hits(pa in 0x8000_0000u64..0x8100_0000) {
        use xpc_repro::rv64::cache::Cache;
        use xpc_repro::rv64::MachineConfig;
        let mut c = Cache::new(MachineConfig::rocket_u500().dcache);
        c.access(pa);
        prop_assert!(c.access(pa).hit);
    }
}
