//! Cross-crate integration: the whole reproduction stack working
//! together — real guest code on the emulator, handover along chains,
//! and consistency between the emulator measurements and the cost model
//! the application figures use.

use rv64::{reg, Assembler};
use xpc_repro::simos::CostModel;
use xpc_repro::xpc::handover::{shrink_windows, ChainNode};
use xpc_repro::xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc_repro::xpc::layout::USER_CODE_VA;
use xpc_repro::xpc_engine::{csr_map, XpcAsm};

fn exit(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

/// Sum-the-segment handler used by several tests.
fn sum_seg_handler() -> Vec<u32> {
    let mut h = Assembler::new(USER_CODE_VA);
    h.csrr(reg::T1, csr_map::XPC_SEG_VA);
    h.csrr(reg::T2, csr_map::XPC_SEG_LEN_PERM);
    h.slli(reg::T2, reg::T2, 16);
    h.srli(reg::T2, reg::T2, 16);
    h.li(reg::A0, 0);
    h.label("sum");
    h.beq(reg::T2, reg::ZERO, "out");
    h.lbu(reg::T3, reg::T1, 0);
    h.add(reg::A0, reg::A0, reg::T3);
    h.addi(reg::T1, reg::T1, 1);
    h.addi(reg::T2, reg::T2, -1);
    h.j("sum");
    h.label("out");
    h.ret();
    h.assemble()
}

#[test]
fn sliding_window_handover_on_the_emulator() {
    // §4.4 "Message Shrink": the client owns a 4 KiB message but feeds a
    // block server 1 KiB at a time by sliding the seg-mask — each call
    // sees exactly its window, like the FS splitting data into blocks.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let server = k.create_thread(pb).unwrap();
    let client = k.create_thread(pa).unwrap();

    let handler_va = k.load_code(pb, &sum_seg_handler()).unwrap();
    let entry = k.register_entry(server, server, handler_va, 1).unwrap();
    k.grant_xcall(server, client, entry).unwrap();

    let total: u64 = 4096;
    let piece: u64 = 1024;
    let seg = k.alloc_relay_seg(client, total).unwrap();
    k.install_seg(client, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;
    let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
    k.write_seg(seg, 0, &payload).unwrap();

    // Client: for each shrink window, set the mask and call; accumulate
    // the returned partial sums in s2.
    let windows = shrink_windows(total, piece);
    let mut c = Assembler::new(USER_CODE_VA);
    c.li(reg::S2, 0);
    for (off, len) in &windows {
        c.li(reg::T1, (seg_va + off) as i64);
        c.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
        c.li(reg::T1, *len as i64);
        c.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
        c.li(reg::T6, entry.0 as i64);
        c.xcall(reg::T6);
        c.add(reg::S2, reg::S2, reg::A0);
    }
    c.mv(reg::A0, reg::S2);
    exit(&mut c);
    let client_va = k.load_code(pa, &c.assemble()).unwrap();

    k.enter_thread(client, client_va, &[]).unwrap();
    let ev = k.run(10_000_000).unwrap();
    let expected: u64 = payload.iter().map(|&b| b as u64).sum();
    assert_eq!(ev, KernelEvent::ThreadExit(expected));
    assert_eq!(k.engine().stats.xcalls, windows.len() as u64);
}

#[test]
fn three_hop_chain_passes_the_same_segment() {
    // A -> B -> C: B forwards the caller's relay segment to C untouched
    // (handover); C checksums it. No copies anywhere.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let pa = k.create_process().unwrap();
    let pb = k.create_process().unwrap();
    let pc = k.create_process().unwrap();
    let ta = k.create_thread(pa).unwrap();
    let tb = k.create_thread(pb).unwrap();
    let tc = k.create_thread(pc).unwrap();

    let hc_va = k.load_code(pc, &sum_seg_handler()).unwrap();
    let entry_c = k.register_entry(tc, tc, hc_va, 1).unwrap();

    // B: call C (the segment flows through), add 1, return. Migrating
    // threads share registers across the chain, so B must preserve its
    // own sp/ra around the nested call (C's trampoline clobbers them) —
    // callee-saved registers survive because C's handler preserves them.
    let mut hb = Assembler::new(USER_CODE_VA);
    hb.mv(reg::S3, reg::SP);
    hb.mv(reg::S4, reg::RA);
    hb.li(reg::T6, entry_c.0 as i64);
    hb.xcall(reg::T6);
    hb.mv(reg::SP, reg::S3);
    hb.mv(reg::RA, reg::S4);
    hb.addi(reg::A0, reg::A0, 1);
    hb.ret();
    let hb_va = k.load_code(pb, &hb.assemble()).unwrap();
    let entry_b = k.register_entry(tb, tb, hb_va, 1).unwrap();

    k.grant_xcall(tc, tb, entry_c).unwrap();
    k.grant_xcall(tb, ta, entry_b).unwrap();

    let seg = k.alloc_relay_seg(ta, 64).unwrap();
    k.install_seg(ta, seg).unwrap();
    k.write_seg(seg, 0, &[2u8; 64]).unwrap();

    let mut ca = Assembler::new(USER_CODE_VA);
    ca.li(reg::T6, entry_b.0 as i64);
    ca.xcall(reg::T6);
    exit(&mut ca);
    let ca_va = k.load_code(pa, &ca.assemble()).unwrap();

    k.enter_thread(ta, ca_va, &[]).unwrap();
    let ev = k.run(1_000_000).unwrap();
    assert_eq!(
        ev,
        KernelEvent::ThreadExit(128 + 1),
        "sum through C, +1 in B"
    );
    assert_eq!(k.engine().stats.xcalls, 2);
    assert_eq!(k.engine().stats.xrets, 2);
}

#[test]
fn size_negotiation_reserves_for_the_deepest_branch() {
    // §4.4 negotiation feeding the shrink machinery: reserve once, then
    // slide — the windows must cover payload + reservation exactly.
    let chain = ChainNode::node(
        "net-stack",
        64, // headers it appends
        vec![
            ChainNode::leaf("nic", 0),
            ChainNode::node("crypto", 32, vec![ChainNode::leaf("nic", 0)]),
        ],
    );
    let payload = 1_000_000;
    let reserved = xpc_repro::xpc::handover::reserve_bytes(payload, &chain);
    assert_eq!(reserved, payload + 64 + 32);
    let windows = shrink_windows(reserved, 4096);
    let covered: u64 = windows.iter().map(|(_, l)| l).sum();
    assert_eq!(covered, reserved);
}

#[test]
fn emulator_and_cost_model_agree_on_xcall() {
    // The application figures use CostModel::u500(); its xcall/xret
    // constants must match what the emulator actually measures, or the
    // macro results would be built on different numbers than the micro
    // results.
    use xpc_bench_harness::*;
    let cost = CostModel::u500();
    let (xcall, xret) = measured_instruction_costs();
    assert_eq!(xcall, cost.xcall, "model xcall vs emulator");
    assert_eq!(xret, cost.xret, "model xret vs emulator");
}

/// Tiny local re-measurement (the bench crate is not a dependency of the
/// umbrella crate, so this re-implements the two-line measurement).
mod xpc_bench_harness {
    use super::*;

    pub fn measured_instruction_costs() -> (u64, u64) {
        let mut k = XpcKernel::boot(XpcKernelConfig::default());
        let pa = k.create_process().unwrap();
        let pb = k.create_process().unwrap();
        let server = k.create_thread(pb).unwrap();
        let client = k.create_thread(pa).unwrap();
        let mut s = Assembler::new(USER_CODE_VA);
        s.nop();
        s.xret();
        let callee_va = k.load_code(pb, &s.assemble()).unwrap();
        let entry = k.register_raw_entry(server, server, callee_va).unwrap();
        k.grant_xcall(server, client, entry).unwrap();

        let mut a = Assembler::new(USER_CODE_VA);
        a.li(reg::S1, 100);
        a.label("loop");
        a.li(reg::T6, entry.0 as i64);
        let xcall_off = a.here() - USER_CODE_VA;
        a.xcall(reg::T6);
        a.addi(reg::S1, reg::S1, -1);
        a.bne(reg::S1, reg::ZERO, "loop");
        a.ebreak();
        let va = k.load_code(pa, &a.assemble()).unwrap();
        let xcall_pc = va + xcall_off;
        k.enter_thread(client, va, &[]).unwrap();

        // Third iteration is warm.
        let mut seen = 0;
        let (mut xcall_cost, mut xret_cost) = (0, 0);
        for _ in 0..1_000_000u64 {
            let pc = k.machine.core.cpu.pc;
            if pc == xcall_pc {
                seen += 1;
                if seen == 3 {
                    let c0 = k.machine.core.cycles;
                    k.machine.step().unwrap(); // xcall
                    xcall_cost = k.machine.core.cycles - c0;
                    k.machine.step().unwrap(); // callee nop
                    let c1 = k.machine.core.cycles;
                    k.machine.step().unwrap(); // xret
                    xret_cost = k.machine.core.cycles - c1;
                    break;
                }
            }
            k.machine.step().unwrap();
        }
        (xcall_cost, xret_cost)
    }
}
