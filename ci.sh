#!/usr/bin/env bash
# Tier-1 gate plus figure regeneration, fully offline (the workspace has
# no external dependencies — see Cargo.toml's [features] note).
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="-D warnings"

echo "== fmt =="
cargo fmt --all -- --check

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== clippy =="
# cast_possible_truncation stays advisory for most crates: the cycle
# model truncates deliberately in many places; the lint is for new code
# review, not a gate.
cargo clippy --workspace --all-targets -- -D warnings -A clippy::cast-possible-truncation

echo "== clippy (simos: cast_possible_truncation promoted to error) =="
# The invocation hot path lives in simos; there every u64 -> usize (and
# f64 -> int) crossing is either proven in-range or an explicit allow
# with the bound stated.
cargo clippy -p simos --all-targets -- -D warnings -D clippy::cast-possible-truncation

echo "== clippy (xpc-verify: missing_panics_doc promoted to error) =="
# The verifier is the library other tools call blind; every pub fn that
# can panic (crafted builders, the program checker's depth conversion)
# documents its # Panics contract. --no-deps scopes the promotion to the
# crate itself.
cargo clippy -p xpc-verify --all-targets --no-deps -- \
  -D warnings -A clippy::cast-possible-truncation -D clippy::missing-panics-doc

echo "== rustdoc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== tests =="
cargo test -q --workspace

echo "== static verifier (recipes + crafted refutations + ledger lint) =="
cargo run --release -p xpc-bench --bin verify

echo "== golden gate at 4 pool workers (byte-identical figures) =="
# The sweep pool must not change a single byte of any rendered figure,
# whatever XPC_BENCH_THREADS says. (The in-process golden tests pin the
# 1-worker serial path; tests/parallel.rs diffs 2 and 8 workers; this
# gates the shipped binary end to end at 4.)
XPC_BENCH_THREADS=4 cargo run --release -p xpc-bench --bin figures -- all \
  > target/ci-figures-t4.txt
diff -u figures/golden.txt target/ci-figures-t4.txt \
  || { echo "ci: figures output at 4 workers diverges from figures/golden.txt" >&2; exit 1; }

echo "== BENCH_figures.json reproducibility (--no-simspeed, 1 vs 4 workers) =="
# Without the wall-clock simspeed section the dump is pure virtual time,
# so it must be byte-reproducible across worker counts.
cargo run --release -p xpc-bench --bin figures -- --threads 1 --json --no-simspeed all \
  > /dev/null
cp BENCH_figures.json target/ci-bench-figures-t1.json
XPC_BENCH_THREADS=4 cargo run --release -p xpc-bench --bin figures -- --json --no-simspeed all \
  > /dev/null
cmp target/ci-bench-figures-t1.json BENCH_figures.json \
  || { echo "ci: BENCH_figures.json differs across worker counts under --no-simspeed" >&2; exit 1; }

echo "== figures (+ BENCH_figures.json phase dump) =="
cargo run --release -p xpc-bench --bin figures -- --json all > /dev/null

echo "== serve (open-loop knee grid, deterministic snapshot gate) =="
# The serve section is virtual-time only, so it snapshot-gates exactly:
# the committed figures/golden_serve.json is compared in-process by the
# golden_serve test (run above); here we additionally assert the figures
# binary emitted the section into BENCH_figures.json and re-render the
# small deterministic grid end to end.
cargo run --release -p xpc-bench --bin figures -- serve > /dev/null
grep -q '"serve": {' BENCH_figures.json \
  || { echo "ci: BENCH_figures.json is missing its serve section" >&2; exit 1; }
grep -q '"knee": \[' BENCH_figures.json \
  || { echo "ci: serve section has no knee curve" >&2; exit 1; }

echo "== fuse (fused call programs: grid + knee, golden-gated) =="
# The fuse table is part of figures/golden.txt (gated above at 4 pool
# workers and in-process by the golden test); here we assert the JSON
# dump carries the section and its two views.
grep -q '"fuse": {' BENCH_figures.json \
  || { echo "ci: BENCH_figures.json is missing its fuse section" >&2; exit 1; }
grep -q '"grid": \[' BENCH_figures.json \
  || { echo "ci: fuse section has no mechanism x depth grid" >&2; exit 1; }
grep -q '"crossings": 1' BENCH_figures.json \
  || { echo "ci: fuse grid shows no fused single-crossing cell" >&2; exit 1; }

echo "== harden (temporal-mitigation security tax, golden-gated) =="
# The harden grid is analytic (cost-model pricing only), so it snapshot-
# gates exactly: figures/golden_harden.json is compared in-process by
# the golden_harden test (run above); here we assert the JSON dump
# carries the section, that unhardened rows pay zero tax (mitigations
# off stay byte-identical to the pre-hardening model), and replay the
# temporal differential suites that pin each static rule to the same
# fault a real XpcKernel raises.
grep -q '"harden": \[' BENCH_figures.json \
  || { echo "ci: BENCH_figures.json is missing its harden section" >&2; exit 1; }
grep -q '"set": "all"' BENCH_figures.json \
  || { echo "ci: harden section has no all-mitigations rows" >&2; exit 1; }
grep -q '"set": "none", "msg_len": 0, "cycles": [0-9]*, "tax_cycles": 0' BENCH_figures.json \
  || { echo "ci: harden section's unhardened rows are not tax-free" >&2; exit 1; }
cargo test -q --release -p xpc-verify --test temporal_differential
cargo test -q --release -p xpc-verify --test differential --test program_differential
cargo test -q --release -p kernels --test hardening

echo "== deprecated-shim gate (the Recipe/ChainSpec redesign leaves none) =="
if grep -rn '#\[deprecated' crates/; then
  echo "ci: deprecated shims linger; the redesigned APIs replaced them" >&2
  exit 1
fi

echo "== simspeed (arena steady state + sampled >= 5x + parallel sweep) =="
# The binary itself exits non-zero on slab growth after warmup, a
# sampled-mode speedup below 5x the recorded pre-refactor baseline, a
# parallel grid that is not byte-identical to the serial oracle, a pool
# worker whose arena keeps growing past its first cell, or (on machines
# with >= 4 hardware threads) a parallel-grid speedup below 2x serial.
cargo run --release -p xpc-bench --bin simspeed
grep -q '"simspeed": {"requests"' BENCH_figures.json \
  || { echo "ci: BENCH_figures.json is missing its simspeed section" >&2; exit 1; }

echo "ci: OK"
