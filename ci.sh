#!/usr/bin/env bash
# Tier-1 gate plus figure regeneration, fully offline (the workspace has
# no external dependencies — see Cargo.toml's [features] note).
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="-D warnings"

echo "== fmt =="
cargo fmt --all -- --check

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== tests =="
cargo test -q --workspace

echo "== figures (+ BENCH_figures.json phase dump) =="
cargo run --release -p xpc-bench --bin figures -- --json all > /dev/null

echo "ci: OK"
