//! §5.2 multi-core scale-out: the HTTP→cache→AES chain under a
//! closed-loop load generator on a 4-core world, swept over placement
//! policies. Baseline kernels pay IPI + remote wakeup + cache-line
//! transfer on every cross-core hop; XPC's migrating threads cross for
//! free, so only XPC turns extra cores into throughput.
//!
//! ```text
//! cargo run --release --example scale_out
//! ```

use xpc_repro::kernels::{IpcSystem, XpcIpc, Zircon};
use xpc_repro::services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use xpc_repro::simos::{load, LoadGen, MultiWorld, Placement};

fn main() {
    type Mk = fn() -> Box<dyn IpcSystem>;
    let mechanisms: [Mk; 2] = [
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
    ];
    let policies = [
        Placement::SameCore,
        Placement::Pinned(vec![0, 1, 2, 3]),
        Placement::RoundRobin,
        Placement::LeastLoaded,
    ];
    let spec = LoadGen::default();

    println!(
        "{} clients x {} encrypted GETs on 4 cores (virtual time)\n",
        spec.clients, spec.requests
    );
    println!(
        "{:12} {:12} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "system", "placement", "req/s", "p50 us", "p95 us", "p99 us", "x-core"
    );
    for mk in mechanisms {
        let recipes: Vec<_> = [1024u64, 4096, 16384]
            .iter()
            .map(|&len| {
                chain_steps(
                    "/index.html",
                    len,
                    ChainSpec::default().with_handover(mk().supports_handover()),
                )
            })
            .collect();
        for policy in &policies {
            let mut mw = MultiWorld::builder().cores(4).build(mk);
            let r = load::run(&mut mw, policy, CHAIN_SERVICES, &recipes, &spec);
            println!(
                "{:12} {:12} {:>9.0} {:>9.1} {:>9.1} {:>9.1} {:>6.0}%",
                r.system,
                r.policy,
                r.throughput_rps,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.cross_core_fraction() * 100.0
            );
        }
        println!();
    }
    println!("note how spreading the Zircon chain can *lose* to one core,");
    println!("while the XPC variant scales out with zero cross-core cycles.");
}
