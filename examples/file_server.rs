//! The §5.3 file-system scenario: an xv6fs server over a ramdisk server,
//! driven through each IPC mechanism, printing Figure 7(a)/(b)-style
//! throughput so you can watch the relay segment pay off.
//!
//! ```text
//! cargo run --release --example file_server
//! ```

use xpc_repro::kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use xpc_repro::services::fs::{FsClient, Xv6Fs};
use xpc_repro::simos::{IpcSystem, World};

fn run_one(mech: Box<dyn IpcSystem>, buf: u64) -> (String, f64, f64) {
    let name = mech.name();
    let mut w = World::new(mech);
    let mut fs = Xv6Fs::mkfs(&mut w, 1 << 14);
    let ino = fs.create(&mut w, "data");
    fs.write(&mut w, ino, 0, &vec![7u8; (4 * buf) as usize]);

    // Read phase.
    let start = w.cycles;
    let mut moved = 0;
    for i in 0..16u64 {
        let got = FsClient::read(&mut fs, &mut w, ino, (i % 4) * buf, buf);
        assert_eq!(got.len() as u64, buf);
        moved += buf;
    }
    let read_mb_s = w.cost.throughput_mb_s(moved, w.cycles - start);

    // Write phase (journaled).
    let data = vec![9u8; buf as usize];
    let start = w.cycles;
    let mut moved = 0;
    for i in 0..16u64 {
        FsClient::write(&mut fs, &mut w, ino, (i % 4) * buf, &data);
        moved += buf;
    }
    let write_mb_s = w.cost.throughput_mb_s(moved, w.cycles - start);
    (name, read_mb_s, write_mb_s)
}

fn main() {
    let buf = 16384;
    println!(
        "xv6fs over ramdisk, {}KB buffers, journaling on:\n",
        buf / 1024
    );
    println!("{:<16} {:>12} {:>12}", "system", "read MB/s", "write MB/s");
    let systems: Vec<Box<dyn IpcSystem>> = vec![
        Box::new(Zircon::new()),
        Box::new(XpcIpc::zircon_xpc()),
        Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        Box::new(Sel4::new(Sel4Transfer::TwoCopy)),
        Box::new(XpcIpc::sel4_xpc()),
    ];
    let mut rows = Vec::new();
    for m in systems {
        let (name, r, w) = run_one(m, buf);
        println!("{name:<16} {r:>12.1} {w:>12.1}");
        rows.push((name, r, w));
    }
    let zircon = rows.iter().find(|r| r.0 == "Zircon").unwrap();
    let xpc = rows.iter().find(|r| r.0 == "Zircon-XPC").unwrap();
    println!(
        "\nZircon-XPC vs Zircon: {:.1}x read, {:.1}x write \
         (paper: 7.8x read, 13.2x write)",
        xpc.1 / zircon.1,
        xpc.2 / zircon.2
    );
}
