//! NUMA-aware scale-out: the HTTP chain on a dual-socket machine.
//!
//! First the hop view: every cross-core surcharge component (IPI, remote
//! wakeup, cache-line transfer) scales with socket distance, so a
//! trap-based kernel's remote-socket call costs 2x its local-socket one
//! — while XPC's migrating threads keep the intra-socket crossing free
//! and pay only the relay-segment line-distance term plus one remote
//! x-entry *shard* fetch across the interconnect.
//!
//! Then the load view: under windowed load, blind round robin ships half
//! the chains to the far socket; the NUMA-aware least-loaded policy only
//! jumps sockets once the local queue outgrows the distance penalty.
//!
//! ```text
//! cargo run --release --example numa
//! ```

use xpc_repro::kernels::{IpcSystem, Sel4, Sel4Transfer, XpcIpc, Zircon};
use xpc_repro::services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use xpc_repro::simos::{load, InvokeOpts, LoadGen, MultiWorld, Phase, Placement, Topology};

fn main() {
    type Mk = fn() -> Box<dyn IpcSystem>;
    let mechanisms: [Mk; 3] = [
        || Box::new(Zircon::new()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ];

    println!("one 4KiB call on a dual-socket box (2x4 cores, distance 2)\n");
    println!(
        "{:14} {:>10} {:>10} {:>10} {:>11}",
        "system", "local cyc", "remote cyc", "x-core", "shard miss"
    );
    for mk in mechanisms {
        let hop = |to: usize| {
            let mut mw = MultiWorld::builder()
                .topology(Topology::dual_socket())
                .build(mk);
            mw.exec_oneway(0, to, 4096, &InvokeOpts::call(), 0).1
        };
        let local = hop(1);
        let remote = hop(4);
        println!(
            "{:14} {:>10} {:>10} {:>10} {:>11}",
            mk().name(),
            local.total,
            remote.total,
            remote.ledger.get(Phase::CrossCore),
            remote.ledger.get(Phase::ShardMiss),
        );
    }

    let spec = LoadGen::default();
    println!(
        "\nHTTP chain, {} windowed clients (W=4) x {} encrypted GETs\n",
        spec.clients, spec.requests
    );
    println!(
        "{:14} {:12} {:12} {:>6} {:>8} {:>9} {:>7} {:>6}",
        "system", "topology", "placement", "cores", "req/s", "p99 us", "x-core", "queue"
    );
    for mk in mechanisms {
        let recipes: Vec<_> = [1024u64, 4096, 16384]
            .iter()
            .map(|&len| {
                chain_steps(
                    "/index.html",
                    len,
                    ChainSpec::default().with_handover(mk().supports_handover()),
                )
            })
            .collect();
        for (label, topo) in [
            ("u500", Topology::u500()),
            ("dual-socket", Topology::dual_socket()),
        ] {
            for policy in [Placement::RoundRobin, Placement::LeastLoaded] {
                let mut mw = MultiWorld::builder().topology(topo.clone()).build(mk);
                let r = load::run_windowed(&mut mw, &policy, CHAIN_SERVICES, &recipes, &spec, 4);
                println!(
                    "{:14} {:12} {:12} {:>6} {:>8.0} {:>9.1} {:>6.0}% {:>5.0}%",
                    r.system,
                    label,
                    r.policy,
                    r.cores,
                    r.throughput_rps,
                    r.p99_us,
                    r.cross_core_fraction() * 100.0,
                    r.queue_fraction() * 100.0,
                );
            }
        }
        println!();
    }
    println!("trap-based kernels pay the doubled surcharge on every remote hop;");
    println!("XPC pays only cache-line distance + one x-entry shard fetch, so the");
    println!("second socket is nearly free capacity under the least-loaded policy.");
}
