//! Static verification quickstart: prove a deployment plan free of the
//! five XPC exceptions before anything runs.
//!
//! Walks the crafted misconfigurations (one per exception class) and
//! prints the verdict the verifier reaches next to the runtime trap it
//! predicts, then pre-flights the real HTTP-chain recipes the figures
//! use and lints the full 12-system roster's cycle ledgers.
//!
//! ```text
//! cargo run --release --example verify
//! ```

use xpc_repro::kernels::full_roster_factories;
use xpc_repro::services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use xpc_repro::xpc_verify::{crafted, lint, preflight, verify};

fn main() {
    println!("crafted misconfigurations, one per exception class\n");
    println!("{:24} {:20} verifier says", "scenario", "expected trap");
    for c in crafted::all_crafted() {
        let findings = verify(&c.plan, &c.recipes);
        let expected = c
            .expected
            .map_or("(clean)".to_string(), |cause| cause.to_string());
        let got = findings
            .first()
            .map_or("no findings".to_string(), |f| f.to_string());
        println!("{:24} {:20} {got}", c.label, expected);
    }

    println!("\npre-flighting the HTTP-chain recipes the figures run\n");
    for handover in [false, true] {
        let recipes: Vec<(String, Vec<_>)> = [1024u64, 4096, 16384]
            .iter()
            .map(|&len| {
                (
                    format!("GET /index.html {len}B handover={handover}"),
                    chain_steps(
                        "/index.html",
                        len,
                        ChainSpec::default().with_handover(handover),
                    ),
                )
            })
            .collect();
        match preflight(CHAIN_SERVICES, &recipes) {
            Ok(()) => println!(
                "  handover={handover}: {} recipes proved clean",
                recipes.len()
            ),
            Err(findings) => {
                for f in findings {
                    println!("  handover={handover}: {f}");
                }
            }
        }
    }

    println!("\nledger lint across the full roster\n");
    let mut drifting = 0usize;
    for factory in full_roster_factories() {
        let mut sys = factory();
        let findings = lint::lint_system(sys.as_mut());
        if findings.is_empty() {
            println!("  {:24} every invocation sums to its ledger", sys.name());
        } else {
            drifting += findings.len();
            for f in findings {
                println!("  {f}");
            }
        }
    }
    println!(
        "\n{} ledger drift findings; misconfigurations are caught at deploy",
        drifting
    );
    println!("time with the exact Cause the engine would trap with at run time.");
}
