//! The §5.4 web-server chain: HTTP server → file cache server → AES
//! server, with the message handed over along the chain (Figure 8c).
//! Every byte is really served and really encrypted (AES-128-CTR).
//!
//! ```text
//! cargo run --release --example http_chain
//! ```

use xpc_repro::kernels::{XpcIpc, Zircon};
use xpc_repro::services::aes::{Aes128, AesServer};
use xpc_repro::services::filecache::FileCache;
use xpc_repro::services::http::{http_throughput_ops, HttpServer, Status};
use xpc_repro::simos::{IpcSystem, World};

fn build_server(encrypt: bool) -> HttpServer {
    let mut cache = FileCache::new();
    cache.put(
        "/index.html",
        b"<html><body>XPC reproduction</body></html>".repeat(40),
    );
    let aes = encrypt.then(|| AesServer::new(b"0123456789abcdef"));
    HttpServer::new(cache, aes)
}

fn main() {
    // First, one real request end to end, to show the chain working.
    let mut w = World::new(Box::new(XpcIpc::zircon_xpc()));
    let mut srv = build_server(true);
    let (status, body) = srv.handle(&mut w, "GET /index.html HTTP/1.1\r\nHost: demo\r\n\r\n");
    assert_eq!(status, Status::Ok);
    let mut plain = body.clone();
    Aes128::new(b"0123456789abcdef").ctr_xor(0, &mut plain);
    println!(
        "served {} encrypted bytes; decrypted prefix: {:?}...\n",
        body.len(),
        String::from_utf8_lossy(&plain[..30])
    );

    // Then the Figure 8(c) sweep.
    println!(
        "{:<20} {:>14} {:>14} {:>9}",
        "configuration", "Zircon ops/s", "XPC ops/s", "speedup"
    );
    for encrypt in [false, true] {
        let mechs: [(&str, Box<dyn IpcSystem>); 2] = [
            ("Zircon", Box::new(Zircon::new())),
            ("Zircon-XPC", Box::new(XpcIpc::zircon_xpc())),
        ];
        let mut ops = Vec::new();
        for (_, m) in mechs {
            let mut w = World::new(m);
            let mut srv = build_server(encrypt);
            ops.push(http_throughput_ops(&mut w, &mut srv, "/index.html", 100));
        }
        println!(
            "{:<20} {:>14.0} {:>14.0} {:>8.1}x",
            if encrypt { "with AES" } else { "no encryption" },
            ops[0],
            ops[1],
            ops[1] / ops[0]
        );
    }
    println!("\npaper: ~10x with encryption, ~12x without (handover keeps");
    println!("the payload in one relay segment across the whole chain)");
}
