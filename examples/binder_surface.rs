//! The §5.5 Android scenario: a surface compositor sends surface data to
//! the window manager through Binder — stock, Ashmem-XPC and the full
//! Binder-XPC port (Figure 9).
//!
//! ```text
//! cargo run --example binder_surface
//! ```

use xpc_repro::kernels::parcel::{surface_transaction, Value};
use xpc_repro::kernels::{binder_latency_us, BinderSystem};

fn main() {
    // Marshal a real surface transaction so the moved bytes are genuine.
    let pixels = vec![0x5au8; 128 * 64];
    let parcel = surface_transaction(128, 64, &pixels);
    let vals = parcel.read_all().expect("well-formed parcel");
    match (&vals[0], &vals[4]) {
        (Value::I32(code), Value::Blob(b)) => println!(
            "marshalled drawSurface parcel: method={code}, {} wire bytes \
             ({}-byte surface)\n",
            parcel.len(),
            b.len()
        ),
        _ => unreachable!(),
    }

    println!("window manager <- surface compositor transaction latency\n");

    println!("-- transaction buffer path (Figure 9a) --");
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "size", "Binder", "Binder-XPC", "speedup"
    );
    for size in [1024u64, 2048, 4096, 8192, 16384] {
        let b = binder_latency_us(BinderSystem::Binder, false, size);
        let x = binder_latency_us(BinderSystem::BinderXpc, false, size);
        println!(
            "{:<10} {:>10.1}us {:>10.1}us {:>8.1}x",
            format!("{size}B"),
            b,
            x,
            b / x
        );
    }

    println!("\n-- ashmem path (Figure 9b) --");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "size", "Binder", "Binder-XPC", "Ashmem-XPC"
    );
    for size in [4096u64, 65536, 1 << 20, 16 << 20, 32 << 20] {
        let b = binder_latency_us(BinderSystem::Binder, true, size) / 1000.0;
        let bx = binder_latency_us(BinderSystem::BinderXpc, true, size) / 1000.0;
        let ax = binder_latency_us(BinderSystem::AshmemXpc, true, size) / 1000.0;
        println!(
            "{:<10} {:>10.2}ms {:>10.2}ms {:>10.2}ms",
            format!("{}KB", size / 1024),
            b,
            bx,
            ax
        );
    }
    let b = binder_latency_us(BinderSystem::Binder, true, 32 << 20);
    let ax = binder_latency_us(BinderSystem::AshmemXpc, true, 32 << 20);
    println!(
        "\n32MB ashmem speedup: {:.1}x (paper: 2.8x) — the surface 'draw' \
         pass dominates at large sizes, so the win converges",
        b / ax
    );
}
