//! Quickstart: the paper's Listing 1, executed for real on the emulator.
//!
//! A server process registers an x-entry; a client process gets the
//! capability, fills a relay segment with a message, and `xcall`s the
//! server — which reads the message *in place* (zero copy) and returns a
//! checksum. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rv64::{reg, Assembler};
use xpc_repro::xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc_repro::xpc::layout::USER_CODE_VA;
use xpc_repro::xpc_engine::{csr_map, XpcAsm};

fn main() {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());

    // --- server(): register an XPC entry (Listing 1) -------------------
    let server_proc = k.create_process().expect("server process");
    let handler_thread = k.create_thread(server_proc).expect("handler thread");

    // Handler: checksum the relay segment it was handed.
    let mut h = Assembler::new(USER_CODE_VA);
    h.csrr(reg::T1, csr_map::XPC_SEG_VA);
    h.csrr(reg::T2, csr_map::XPC_SEG_LEN_PERM);
    h.slli(reg::T2, reg::T2, 16);
    h.srli(reg::T2, reg::T2, 16);
    h.li(reg::A0, 0);
    h.label("loop");
    h.beq(reg::T2, reg::ZERO, "done");
    h.lbu(reg::T3, reg::T1, 0);
    h.add(reg::A0, reg::A0, reg::T3);
    h.addi(reg::T1, reg::T1, 1);
    h.addi(reg::T2, reg::T2, -1);
    h.j("loop");
    h.label("done");
    h.ret();
    let handler_va = k
        .load_code(server_proc, &h.assemble())
        .expect("load handler");

    // max_xpc_context = 4, as in Listing 1.
    let xpc_id = k
        .register_entry(handler_thread, handler_thread, handler_va, 4)
        .expect("register entry");
    println!("server: registered x-entry id {}", xpc_id.0);

    // --- client(): acquire the ID + capability, call ------------------
    let client_proc = k.create_process().expect("client process");
    let client_thread = k.create_thread(client_proc).expect("client thread");
    k.grant_xcall(handler_thread, client_thread, xpc_id)
        .expect("grant xcall-cap");

    // xpc_arg = alloc_relay_mem(size); fill it with the message.
    let seg = k.alloc_relay_seg(client_thread, 16).expect("relay seg");
    k.install_seg(client_thread, seg).expect("install seg");
    let msg = b"hello xpc world!";
    k.write_seg(seg, 0, msg).expect("in bounds");
    let expected: u64 = msg.iter().map(|&b| b as u64).sum();

    // xpc_call(server_ID): one instruction, no kernel involved.
    let mut c = Assembler::new(USER_CODE_VA);
    c.li(reg::T6, xpc_id.0 as i64);
    c.xcall(reg::T6);
    c.li(reg::A7, syscall::EXIT as i64);
    c.ecall();
    let client_va = k
        .load_code(client_proc, &c.assemble())
        .expect("load client");

    k.enter_thread(client_thread, client_va, &[])
        .expect("enter");
    let cycles_before = k.machine.core.cycles;
    let ev = k.run(1_000_000).expect("run");
    let cycles = k.machine.core.cycles - cycles_before;

    match ev {
        KernelEvent::ThreadExit(sum) => {
            println!("client: server returned checksum {sum} (expected {expected})");
            assert_eq!(sum, expected);
            let st = k.engine().stats;
            println!(
                "engine: {} xcall(s), {} xret(s), {} cycles end to end — \
                 no trap into the kernel, no message copy",
                st.xcalls, st.xrets, cycles
            );
        }
        other => panic!("unexpected event: {other:?}"),
    }
}
