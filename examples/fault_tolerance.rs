//! The security/fault-tolerance story in one run: capability denial,
//! credit-based DoS throttling (§6.1), a hung callee recovered by the
//! timeout mechanism (§6.1), and a killed middle-of-chain process
//! unwound cleanly (§4.2).
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use rv64::trap::Cause;
use rv64::{reg, Assembler};
use xpc_repro::xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig, ERR_TIMEOUT};
use xpc_repro::xpc::layout::USER_CODE_VA;
use xpc_repro::xpc::trampoline::ERR_NO_CREDIT;
use xpc_repro::xpc_engine::XpcAsm;

fn exit_syscall(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

fn main() {
    // ---------- 1. capability denial --------------------------------
    {
        let mut k = XpcKernel::boot(XpcKernelConfig::default());
        let pa = k.create_process().unwrap();
        let pb = k.create_process().unwrap();
        let server = k.create_thread(pb).unwrap();
        let client = k.create_thread(pa).unwrap();
        let mut h = Assembler::new(USER_CODE_VA);
        h.ret();
        let hv = k.load_code(pb, &h.assemble()).unwrap();
        let entry = k.register_entry(server, server, hv, 1).unwrap();
        // No grant.
        let mut c = Assembler::new(USER_CODE_VA);
        c.li(reg::T6, entry.0 as i64);
        c.xcall(reg::T6);
        exit_syscall(&mut c);
        let cv = k.load_code(pa, &c.assemble()).unwrap();
        k.enter_thread(client, cv, &[]).unwrap();
        match k.run(100_000).unwrap() {
            KernelEvent::Fault { cause, .. } => {
                assert_eq!(cause, Cause::InvalidXcallCap);
                println!("1. ungranted xcall  -> hardware raised '{cause}'");
            }
            other => panic!("{other:?}"),
        }
    }

    // ---------- 2. credit exhaustion --------------------------------
    {
        let mut k = XpcKernel::boot(XpcKernelConfig::default());
        let pa = k.create_process().unwrap();
        let pb = k.create_process().unwrap();
        let server = k.create_thread(pb).unwrap();
        let client = k.create_thread(pa).unwrap();
        let mut h = Assembler::new(USER_CODE_VA);
        h.li(reg::A0, 1);
        h.ret();
        let hv = k.load_code(pb, &h.assemble()).unwrap();
        let entry = k
            .register_entry_with_credits(server, server, hv, 2)
            .unwrap();
        k.grant_xcall_with_credits(server, client, entry, 2)
            .unwrap();
        let mut c = Assembler::new(USER_CODE_VA);
        c.li(reg::S2, 0);
        for _ in 0..4 {
            c.li(reg::T6, entry.0 as i64);
            c.xcall(reg::T6);
            c.add(reg::S2, reg::S2, reg::A0);
        }
        c.mv(reg::A0, reg::S2);
        exit_syscall(&mut c);
        let cv = k.load_code(pa, &c.assemble()).unwrap();
        k.enter_thread(client, cv, &[]).unwrap();
        let ev = k.run(1_000_000).unwrap();
        let expected = (2 + 2 * ERR_NO_CREDIT) as u64;
        assert_eq!(ev, KernelEvent::ThreadExit(expected));
        println!(
            "2. greedy client    -> 2 funded calls served, 2 rejected with \
             ERR_NO_CREDIT ({ERR_NO_CREDIT})"
        );
    }

    // ---------- 3. hung callee + timeout -----------------------------
    {
        let mut k = XpcKernel::boot(XpcKernelConfig::default());
        let pa = k.create_process().unwrap();
        let pb = k.create_process().unwrap();
        let server = k.create_thread(pb).unwrap();
        let client = k.create_thread(pa).unwrap();
        let mut h = Assembler::new(USER_CODE_VA);
        h.label("hang");
        h.j("hang");
        let hv = k.load_code(pb, &h.assemble()).unwrap();
        let entry = k.register_entry(server, server, hv, 1).unwrap();
        k.grant_xcall(server, client, entry).unwrap();
        let mut c = Assembler::new(USER_CODE_VA);
        c.li(reg::T6, entry.0 as i64);
        c.xcall(reg::T6);
        exit_syscall(&mut c);
        let cv = k.load_code(pa, &c.assemble()).unwrap();
        k.enter_thread(client, cv, &[]).unwrap();
        assert_eq!(k.run(50_000).unwrap(), KernelEvent::Timeout);
        k.force_timeout_unwind().unwrap();
        let ev = k.run(1_000_000).unwrap();
        assert_eq!(ev, KernelEvent::ThreadExit(ERR_TIMEOUT));
        println!(
            "3. hung callee      -> kernel timeout unwound to the caller \
             with ERR_TIMEOUT"
        );
    }

    // ---------- 4. killed middle of a chain ---------------------------
    {
        let mut k = XpcKernel::boot(XpcKernelConfig::default());
        let pa = k.create_process().unwrap();
        let pb = k.create_process().unwrap();
        let pc = k.create_process().unwrap();
        let ta = k.create_thread(pa).unwrap();
        let tb = k.create_thread(pb).unwrap();
        let tc = k.create_thread(pc).unwrap();
        let mut hc = Assembler::new(USER_CODE_VA);
        hc.li(reg::T1, 20_000);
        hc.label("spin");
        hc.addi(reg::T1, reg::T1, -1);
        hc.bne(reg::T1, reg::ZERO, "spin");
        hc.ret();
        let hcv = k.load_code(pc, &hc.assemble()).unwrap();
        let entry_c = k.register_entry(tc, tc, hcv, 1).unwrap();
        let mut hb = Assembler::new(USER_CODE_VA);
        hb.li(reg::T6, entry_c.0 as i64);
        hb.xcall(reg::T6);
        hb.ret();
        let hbv = k.load_code(pb, &hb.assemble()).unwrap();
        let entry_b = k.register_entry(tb, tb, hbv, 1).unwrap();
        k.grant_xcall(tc, tb, entry_c).unwrap();
        k.grant_xcall(tb, ta, entry_b).unwrap();
        let mut ca = Assembler::new(USER_CODE_VA);
        ca.li(reg::T6, entry_b.0 as i64);
        ca.xcall(reg::T6);
        exit_syscall(&mut ca);
        let cav = k.load_code(pa, &ca.assemble()).unwrap();
        k.enter_thread(ta, cav, &[]).unwrap();
        assert_eq!(k.run(5_000).unwrap(), KernelEvent::Timeout);
        k.terminate_process(pb).unwrap();
        let ev = k.run(10_000_000).unwrap();
        assert_eq!(ev, KernelEvent::ThreadExit(ERR_TIMEOUT));
        println!(
            "4. A->B->C, B killed -> C's xret trapped on the dead linkage \
             record; kernel unwound to A"
        );
    }

    println!("\nall four §4.2/§6.1 defense mechanisms verified end to end");
}
