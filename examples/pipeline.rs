//! The windowed asynchronous invocation pipeline: clients keep a window
//! of requests outstanding, each request submits *batched* call bursts,
//! and the report's `Phase::Queue` span shows where the time goes as
//! the window opens. XPC amortizes its whole entry path across a burst
//! (trampoline once, repeat `xcall`s hit the engine cache at 6 cycles),
//! so its per-call cost roughly halves at batch 64 — a trap-based
//! kernel still traps and switches per call and barely moves.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```

use xpc_repro::kernels::{IpcSystem, Sel4, Sel4Transfer, XpcIpc};
use xpc_repro::simos::{load, CostModel, LoadGen, MultiWorld, Placement, Step};

fn recipe(batch: u64) -> Vec<Step> {
    vec![
        Step::Batch {
            from: 0,
            to: 1,
            calls: batch,
            bytes_each: 64,
        },
        Step::Compute {
            at: 1,
            cycles: 150 * batch,
        },
        Step::Batch {
            from: 1,
            to: 0,
            calls: batch,
            bytes_each: 64,
        },
    ]
}

fn main() {
    type Mk = fn() -> Box<dyn IpcSystem>;
    let mechanisms: [Mk; 2] = [
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ];
    let spec = LoadGen {
        clients: 8,
        requests: 240,
        seed: 0x59c5_bdad,
        think_cycles: 2_000,
    };
    let hz = CostModel::u500().clock_hz as f64;

    println!(
        "{} windowed clients x {} requests of 64B bursts on 2 cores (virtual time)\n",
        spec.clients, spec.requests
    );
    println!(
        "{:12} {:>6} {:>5} {:>10} {:>10} {:>10} {:>6} {:>10}",
        "system", "window", "batch", "calls/s", "p50 us", "p99 us", "queue", "cache hits"
    );
    for mk in mechanisms {
        for window in [1usize, 4, 16] {
            for batch in [1u64, 8, 64] {
                let mut mw = MultiWorld::builder().cores(2).build(mk);
                let r = load::run_windowed(
                    &mut mw,
                    &Placement::RoundRobin,
                    2,
                    &[recipe(batch)],
                    &spec,
                    window,
                );
                let calls_s = r.ipc_calls as f64 * hz / r.makespan_cycles.max(1) as f64;
                println!(
                    "{:12} {:>6} {:>5} {:>10.0} {:>10.1} {:>10.1} {:>5.0}% {:>10}",
                    r.system,
                    r.window,
                    batch,
                    calls_s,
                    r.p50_us,
                    r.p99_us,
                    r.queue_fraction() * 100.0,
                    r.engine_cache
                        .map_or("-".to_string(), |s| s.cache_hits.to_string()),
                );
            }
        }
        println!();
    }
    println!("batching barely helps seL4 (every call still traps + switches);");
    println!("XPC's per-call cost halves as repeat xcalls hit the engine cache,");
    println!("and the queue column shows waiting once the window opens.");
}
