//! The charging context service code runs against.
//!
//! A [`World`] owns a cycle clock, the active IPC system, and the
//! accounting that Figure 1 is made of: how many cycles went to IPC vs
//! everything else, and the per-message-size distribution of IPC time.
//! Every charge flows through an [`Invocation`], so the world's stats
//! also carry a merged [`CycleLedger`] attributing all IPC time to
//! phases.

use crate::cost::CostModel;
use crate::ipc::{EngineCacheStats, IpcSystem};
use crate::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};

/// Byte counts cross from the u64 cycle domain into the `usize` message
/// lengths [`IpcSystem`] takes here; on 64-bit targets the check folds
/// to nothing.
fn msg_len(bytes: u64) -> usize {
    usize::try_from(bytes).expect("message length fits usize")
}

/// Accumulated accounting.
#[derive(Debug, Clone, Default)]
pub struct WorldStats {
    /// Cycles spent inside the IPC system.
    pub ipc_cycles: u64,
    /// Cycles spent on everything else (compute, data passes).
    pub other_cycles: u64,
    /// Of the IPC cycles, how many were moving message payload.
    pub ipc_transfer_cycles: u64,
    /// `(message_bytes, ipc_cycles)` per IPC event — Figure 1(b)'s CDF
    /// source.
    pub events: Vec<(u64, u64)>,
    /// Total IPC invocations.
    pub ipc_count: u64,
    /// Total bytes moved through IPC payloads.
    pub payload_bytes: u64,
    /// Phase attribution merged over every invocation charged so far.
    pub ledger: CycleLedger,
}

impl WorldStats {
    /// Fraction of total cycles spent in IPC (Figure 1(a)).
    pub fn ipc_fraction(&self) -> f64 {
        let total = self.ipc_cycles + self.other_cycles;
        if total == 0 {
            0.0
        } else {
            self.ipc_cycles as f64 / total as f64
        }
    }

    /// Fraction of IPC time spent on data transfer (the 58.7% of §2.1).
    pub fn transfer_fraction_of_ipc(&self) -> f64 {
        if self.ipc_cycles == 0 {
            0.0
        } else {
            self.ipc_transfer_cycles as f64 / self.ipc_cycles as f64
        }
    }

    /// Cumulative distribution of IPC time by message size: returns
    /// `(size_bound, fraction_of_ipc_time_at_or_below)` for each bound.
    pub fn cdf_by_size(&self, bounds: &[u64]) -> Vec<(u64, f64)> {
        let total: u64 = self.events.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return bounds.iter().map(|&b| (b, 0.0)).collect();
        }
        bounds
            .iter()
            .map(|&b| {
                let at_or_below: u64 = self
                    .events
                    .iter()
                    .filter(|(len, _)| *len <= b)
                    .map(|(_, c)| c)
                    .sum();
                (b, at_or_below as f64 / total as f64)
            })
            .collect()
    }
}

/// The execution context: clock + system + stats.
pub struct World {
    /// Cycle clock.
    pub cycles: u64,
    /// Cost constants.
    pub cost: CostModel,
    ipc: Box<dyn IpcSystem>,
    /// Accounting.
    pub stats: WorldStats,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("cycles", &self.cycles)
            .field("ipc", &self.ipc.name())
            .finish()
    }
}

impl World {
    /// A world using IPC system `ipc`.
    pub fn new(ipc: Box<dyn IpcSystem>) -> Self {
        World {
            cycles: 0,
            cost: CostModel::u500(),
            ipc,
            stats: WorldStats::default(),
        }
    }

    /// Name of the active system.
    pub fn ipc_name(&self) -> String {
        self.ipc.name()
    }

    /// Whether the active system hands messages over without copies.
    pub fn handover(&self) -> bool {
        self.ipc.supports_handover()
    }

    /// Whether the active system migrates the calling thread (cross-core
    /// calls cost the same as same-core, §5.2).
    pub fn migrating_threads(&self) -> bool {
        self.ipc.migrating_threads()
    }

    /// Price one one-way hop *without* charging it. The multicore layer
    /// prices hops here, wraps them with cross-core cost when the call
    /// leaves the core, then charges them via
    /// [`charge_invocation`](Self::charge_invocation).
    pub fn price_oneway(&mut self, bytes: u64, opts: &InvokeOpts) -> Invocation {
        self.ipc.oneway(msg_len(bytes), opts)
    }

    /// Price a round trip *without* charging it (see
    /// [`price_oneway`](Self::price_oneway)).
    pub fn price_roundtrip(&mut self, request: u64, response: u64) -> Invocation {
        self.ipc.roundtrip(msg_len(request), msg_len(response))
    }

    /// Price a burst of `calls` one-way hops of `bytes_each` submitted
    /// together *without* charging it (see
    /// [`IpcSystem::invoke_batch`]).
    pub fn price_batch(&mut self, calls: u64, bytes_each: u64, opts: &InvokeOpts) -> Invocation {
        self.ipc.invoke_batch(calls, msg_len(bytes_each), opts)
    }

    /// Sink-path [`price_oneway`](Self::price_oneway): charge the hop's
    /// phases into `out` (accumulating) and return the bytes copied.
    pub fn price_oneway_into(
        &mut self,
        bytes: u64,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        self.ipc.oneway_into(msg_len(bytes), opts, out)
    }

    /// Sink-path [`price_batch`](Self::price_batch): charge the batch's
    /// phases into `out` (which must be empty — see
    /// [`IpcSystem::invoke_batch_into`]) and return the bytes copied.
    pub fn price_batch_into(
        &mut self,
        calls: u64,
        bytes_each: u64,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        self.ipc
            .invoke_batch_into(calls, msg_len(bytes_each), opts, out)
    }

    /// Sink-path pricing of hop `hop_index` of a fused call program (see
    /// [`IpcSystem::fused_hop_into`]): charge into `out` and return the
    /// bytes copied.
    pub fn price_fused_hop_into(
        &mut self,
        hop_index: u64,
        bytes: u64,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        self.ipc
            .fused_hop_into(hop_index, msg_len(bytes), opts, out)
    }

    /// Protection-boundary crossings a fused program of `hops` hops
    /// costs the active system (see [`IpcSystem::fused_crossings`]).
    pub fn fused_crossings(&self, hops: u64) -> u64 {
        self.ipc.fused_crossings(hops)
    }

    /// Engine-cache counters of the active system, when it models one.
    pub fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        self.ipc.engine_cache_stats()
    }

    /// Charge one IPC round trip carrying `request` bytes out and
    /// `response` bytes back.
    pub fn ipc_roundtrip(&mut self, request: u64, response: u64) {
        let inv = self.price_roundtrip(request, response);
        self.charge_invocation(request + response, inv);
    }

    /// Charge a one-way IPC (calls into a chain that will not reply yet).
    pub fn ipc_oneway(&mut self, bytes: u64) {
        let inv = self.price_oneway(bytes, &InvokeOpts::call());
        self.charge_invocation(bytes, inv);
    }

    /// Charge an already-priced invocation carrying `payload` bytes into
    /// the clock, the IPC/compute split, and the merged ledger.
    pub fn charge_invocation(&mut self, payload: u64, inv: Invocation) {
        self.charge_batch(1, payload, inv);
    }

    /// Charge an already-priced batch of `calls` invocations carrying
    /// `payload` bytes total: one size-histogram event (the burst was one
    /// submission), `calls` IPC invocations.
    pub fn charge_batch(&mut self, calls: u64, payload: u64, inv: Invocation) {
        self.cycles += inv.total;
        self.stats.ipc_cycles += inv.total;
        self.stats.ipc_transfer_cycles += inv.ledger.get(Phase::Transfer);
        self.stats.events.push((payload, inv.total));
        self.stats.ipc_count += calls;
        self.stats.payload_bytes += payload;
        self.stats.ledger.merge(&inv.ledger);
    }

    /// Lean sink-path charge for an already-priced batch whose spans live
    /// in a caller-owned `ledger`: advances the clock and the scalar
    /// counters only. Deliberately skips the per-event size histogram and
    /// the per-world merged ledger — on the arena hot path the
    /// [`Attribution`](crate::ledger::Attribution) sink owns phase
    /// attribution, and neither is read by the load reports.
    pub fn charge_spans(&mut self, calls: u64, payload: u64, ledger: &CycleLedger) {
        let total = ledger.total();
        self.cycles += total;
        self.stats.ipc_cycles += total;
        self.stats.ipc_transfer_cycles += ledger.get(Phase::Transfer);
        self.stats.ipc_count += calls;
        self.stats.payload_bytes += payload;
    }

    /// Charge non-IPC compute cycles.
    pub fn compute(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.stats.other_cycles += cycles;
    }

    /// Charge one pass over `bytes` of data (memcpy-grade work) outside
    /// IPC — e.g. a ramdisk filling a buffer, AES with a multiplier.
    pub fn data_pass(&mut self, bytes: u64, intensity_x10: u64) {
        let c = self.cost.copy_cycles(bytes) * intensity_x10 / 10;
        self.compute(c);
    }

    /// Elapsed wall time in microseconds at the model clock.
    pub fn elapsed_us(&self) -> f64 {
        self.cost.cycles_to_us(self.cycles)
    }

    /// Throughput for `bytes` of useful work over the whole elapsed time.
    pub fn throughput_mb_s(&self, bytes: u64) -> f64 {
        self.cost.throughput_mb_s(bytes, self.cycles)
    }

    /// One-line accounting summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} cycles ({:.1} us), {} IPCs, {:.1}% in IPC              ({:.1}% of that moving data), {} payload bytes",
            self.ipc_name(),
            self.cycles,
            self.elapsed_us(),
            self.stats.ipc_count,
            self.stats.ipc_fraction() * 100.0,
            self.stats.transfer_fraction_of_ipc() * 100.0,
            self.stats.payload_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{CycleLedger, InvokeOpts};

    struct Fixed;
    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, 100)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
    }

    fn world() -> World {
        World::new(Box::new(Fixed))
    }

    #[test]
    fn accounting_splits_ipc_and_compute() {
        let mut w = world();
        w.ipc_roundtrip(50, 0);
        w.compute(250);
        assert_eq!(w.stats.ipc_cycles, 100 + 50 + 100);
        assert_eq!(w.stats.other_cycles, 250);
        assert_eq!(w.cycles, 500);
        assert!((w.stats.ipc_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn events_feed_cdf() {
        let mut w = world();
        w.ipc_oneway(10); // 110 cycles at size 10
        w.ipc_oneway(1000); // 1100 cycles at size 1000
        let cdf = w.stats.cdf_by_size(&[10, 100, 1000]);
        let total = 110.0 + 1100.0;
        assert!((cdf[0].1 - 110.0 / total).abs() < 1e-9);
        assert!((cdf[1].1 - 110.0 / total).abs() < 1e-9);
        assert!((cdf[2].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_attribution_comes_from_the_ledger() {
        let mut w = world();
        w.ipc_oneway(40);
        assert_eq!(w.stats.ipc_transfer_cycles, 40);
        assert_eq!(w.stats.ledger.get(Phase::Trap), 100);
        assert_eq!(w.stats.ledger.get(Phase::Transfer), 40);
        assert_eq!(w.stats.ledger.total(), w.stats.ipc_cycles);
    }

    #[test]
    fn data_pass_scales_with_intensity() {
        let mut w = world();
        w.data_pass(4096, 10);
        let one = w.stats.other_cycles;
        w.data_pass(4096, 30);
        assert_eq!(w.stats.other_cycles - one, 3 * one);
    }

    #[test]
    fn summary_mentions_the_mechanism_and_counts() {
        let mut w = world();
        w.ipc_roundtrip(100, 0);
        let s = w.summary();
        assert!(s.contains("fixed"));
        assert!(s.contains("1 IPCs"));
    }

    #[test]
    fn elapsed_time_uses_clock() {
        let mut w = world();
        w.compute(100); // 1 us at 100 MHz
        assert!((w.elapsed_us() - 1.0).abs() < 1e-9);
    }
}
