//! OS-model simulation framework for the XPC (ISCA'19) reproduction.
//!
//! The paper's micro-benchmarks (Tables 1/3, Figures 5/6) run on the real
//! [`rv64`](https://docs.rs) emulator. Its *application* results (Figures
//! 1, 7, 8, 9) are end-to-end workloads — file systems, network stacks, a
//! database, Android Binder — whose IPC patterns dominate. This crate
//! provides the cost-model layer those workloads run on:
//!
//! * [`cost::CostModel`] — the calibrated phase constants (Table 1's
//!   trap / IPC-logic / switch / restore, copy cycles per byte, the XPC
//!   instruction costs measured on the emulator);
//! * [`ledger`] — the [`CycleLedger`]/[`Phase`] attribution every system
//!   charges against, and the [`Invocation`] it returns;
//! * [`ipc::IpcSystem`] — the invocation pipeline every kernel model
//!   implements (one ledger-carrying hop as a function of message size
//!   and [`InvokeOpts`]);
//! * [`transport`] — the four long-message mechanisms of Figure 10
//!   (twofold copy, user shared memory, remap, relay segment) with their
//!   security properties from Table 7;
//! * [`world::World`] — a charging context that services run against,
//!   splitting time into IPC vs non-IPC (exactly the Figure 1(a)
//!   measurement) and recording a message-size histogram (Figure 1(b));
//! * [`topology`] — the machine shape ([`topology::Topology`]: sockets ×
//!   cores with a socket distance matrix; presets for the paper's
//!   single-socket U500 and a dual-socket box);
//! * [`multicore`] — N per-core worlds with §5.2 cross-core call pricing
//!   scaled by socket distance (the [`multicore::CrossCore`] adapter
//!   works over *any* system), built via [`multicore::MultiWorldBuilder`]
//!   and driven through the unified [`multicore::MultiWorld::exec`], plus
//!   NUMA-aware placement policies;
//! * [`program`] — fused multi-hop call programs (AnyCall-style): a
//!   [`program::Recipe`] builder produces bounded [`program::CallProgram`]s
//!   that a world registers and dispatches as one `Step::Fused`,
//!   executing server-side without returning to the client between hops;
//! * [`load`] — a deterministic closed-loop traffic generator reporting
//!   throughput and p50/p95/p99 latency from per-request ledgers;
//! * [`serve`] — the open-loop sibling: seeded Poisson/bursty arrival
//!   traces ([`serve::ArrivalTrace`]) replayed with per-tenant admission
//!   control, SLO targets, and an autoscaling placement controller —
//!   the layer that exposes the tail-vs-load saturation knee a closed
//!   loop structurally cannot show;
//! * [`par`] — a zero-dependency scoped-thread cell pool with
//!   index-ordered reduction, so sweep grids fan out over N workers
//!   while every rendered figure stays byte-identical to the serial
//!   run.

#![forbid(unsafe_code)]

pub mod cost;
pub mod ipc;
pub mod ledger;
pub mod load;
pub mod multicore;
pub mod par;
pub mod program;
pub mod serve;
pub mod topology;
pub mod transport;
pub mod world;

pub use cost::CostModel;
pub use ipc::{
    amortized_batch, amortized_batch_into, oneway_invocation, EngineCacheStats, IpcCost, IpcSystem,
};
pub use ledger::{
    ArenaMark, Attribution, CycleLedger, Hardening, Invocation, InvokeOpts, LedgerArena, LedgerRef,
    Phase, PhaseTotals,
};
pub use load::{LoadError, LoadGen, LoadReport, SweepScratch};
pub use multicore::{
    Completion, CoreId, CrossCore, MultiWorld, MultiWorldBuilder, Placement, Step, XCoreCost,
};
pub use par::{map_cells, map_cells_on, set_threads, threads, with_threads, CellScratch};
pub use program::{
    CallProgram, Hop, ProgramError, ProgramId, Recipe, HANDOVER_DESC_BYTES, MAX_PROGRAM_HOPS,
};
pub use serve::{
    Arrival, ArrivalProcess, ArrivalTrace, AutoscaleCfg, AutoscaleReport, OpenLoopGen, ServeError,
    ServePolicy, ServeReport, ServeScratch, ServeSpec, ShedCause, TenantClass, TenantReport,
    TraceDiff,
};
pub use topology::{DistanceMatrix, SocketId, Topology};
pub use world::{World, WorldStats};
