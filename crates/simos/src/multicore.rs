//! Multi-core scale-out: per-core [`World`]s, cross-core call pricing,
//! and placement policies.
//!
//! §5.2 prices cross-core IPC separately: a cross-core seL4 call is
//! 81–141× an XPC call because it pays an IPI, a remote wakeup through
//! the target core's scheduler, and cache-line transfers for the message
//! — while `xcall` migrates the calling thread on its own core and pays
//! none of that. This module makes that pricing uniform across every
//! [`IpcSystem`]:
//!
//! * [`XCoreCost`] — the IPI + remote-wakeup + cache-transfer surcharge;
//! * [`CrossCore`] — an adapter wrapping *any* system so the whole roster
//!   (not just hand-rolled `+xcore` variants) can be swept same-core vs
//!   cross-core, charging [`Phase::CrossCore`] into the existing ledger;
//! * [`MultiWorld`] — N per-core [`World`]s sharing a virtual clock
//!   discipline: each core is a FIFO server with a `free_at` time, a step
//!   starts at `max(request_ready, core_free)`, and cross-core hops are
//!   surcharged unless the system migrates threads.
//!
//! [`Placement`] decides which core serves which service; the closed-loop
//! driver lives in [`crate::load`].

use crate::cost::CostModel;
use crate::ipc::{EngineCacheStats, IpcSystem};
use crate::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};
use crate::world::World;

/// Index of a core in a [`MultiWorld`].
pub type CoreId = usize;

/// The cross-core surcharge of §5.2, split into its physical parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XCoreCost {
    /// Raising and delivering the inter-processor interrupt.
    pub ipi: u64,
    /// Remote wakeup: the target core's scheduler dequeues and resumes
    /// the server thread.
    pub remote_wakeup: u64,
    /// Cycles to pull one cache line of payload across the interconnect.
    pub line_transfer: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
}

impl XCoreCost {
    /// The U500 calibration. The constant part (`ipi + remote_wakeup`)
    /// equals [`CostModel::u500`]'s `cross_core_base`, so the adapter
    /// reproduces the hand-rolled `seL4+xcore` / `Zircon+xcore` variants
    /// exactly at 0 B and lands seL4 in §5.2's 81–141× band.
    pub fn u500() -> Self {
        let base = CostModel::u500().cross_core_base;
        XCoreCost {
            ipi: 2_000,
            remote_wakeup: base - 2_000,
            line_transfer: 50,
            line_bytes: 64,
        }
    }

    /// Surcharge for one hop carrying `payload_bytes` across cores.
    pub fn hop_extra(&self, payload_bytes: u64) -> u64 {
        let lines = payload_bytes.div_ceil(self.line_bytes.max(1));
        self.ipi + self.remote_wakeup + lines * self.line_transfer
    }
}

impl Default for XCoreCost {
    fn default() -> Self {
        Self::u500()
    }
}

/// Adapter pricing an inner [`IpcSystem`]'s calls as *cross-core* calls.
///
/// Every hop additionally charges [`Phase::CrossCore`] with
/// [`XCoreCost::hop_extra`] — zero when the inner system migrates
/// threads (XPC: the server runs on the client's core, §5.2), so the
/// span still records that the call crossed cores for free.
pub struct CrossCore {
    inner: Box<dyn IpcSystem>,
    xc: XCoreCost,
}

impl CrossCore {
    /// Wrap `inner` with the U500 cross-core surcharge.
    pub fn new(inner: Box<dyn IpcSystem>) -> Self {
        CrossCore {
            inner,
            xc: XCoreCost::u500(),
        }
    }

    /// Wrap `inner` with a custom surcharge.
    pub fn with_cost(inner: Box<dyn IpcSystem>, xc: XCoreCost) -> Self {
        CrossCore { inner, xc }
    }
}

impl IpcSystem for CrossCore {
    fn name(&self) -> String {
        format!("{}+xcore", self.inner.name())
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        let inv = self.inner.oneway(msg_len, opts);
        let extra = if self.inner.migrating_threads() {
            0
        } else {
            self.xc.hop_extra(msg_len as u64)
        };
        let mut ledger = inv.ledger;
        ledger.charge(Phase::CrossCore, extra);
        Invocation::from_ledger(ledger, inv.copied_bytes)
    }

    fn supports_handover(&self) -> bool {
        self.inner.supports_handover()
    }

    fn migrating_threads(&self) -> bool {
        self.inner.migrating_threads()
    }

    fn batch_amortizable(&self, first: &Invocation, opts: &InvokeOpts) -> CycleLedger {
        self.inner.batch_amortizable(first, opts)
    }

    fn invoke_batch(&mut self, calls: u64, bytes_each: usize, opts: &InvokeOpts) -> Invocation {
        // Delegate to the inner system (keeping its amortization *and*
        // its stats counting), then surcharge every call: batching does
        // not amortize the IPI or the remote wakeup — each cross-core
        // delivery still interrupts and wakes the target core.
        let inv = self.inner.invoke_batch(calls, bytes_each, opts);
        let extra = if self.inner.migrating_threads() {
            0
        } else {
            calls * self.xc.hop_extra(bytes_each as u64)
        };
        let mut ledger = inv.ledger;
        ledger.charge(Phase::CrossCore, extra);
        Invocation::from_ledger(ledger, inv.copied_bytes)
    }

    fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        self.inner.engine_cache_stats()
    }
}

/// Which core serves which service (the compartment-placement axis the
/// scale-out experiments sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Everything on core 0 — the single-core baseline.
    SameCore,
    /// Service *i* is pinned to `map[i] % n_cores` — the microkernel
    /// deployment where every server is a process on its own core.
    Pinned(Vec<CoreId>),
    /// Request *r*'s whole chain runs on core `r % n_cores` (the client
    /// stays on core 0) — dispatch-level round robin.
    RoundRobin,
    /// Each request's chain runs on the core that frees up earliest at
    /// dispatch time (the client stays on core 0).
    LeastLoaded,
}

impl Placement {
    /// Stable label for tables and JSON dumps.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::SameCore => "same-core",
            Placement::Pinned(_) => "pinned",
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
        }
    }

    /// Map the `n_services` services of request `r` to cores. Service 0
    /// is the client; it always sits on core 0.
    pub fn assign(&self, r: u64, n_services: usize, mw: &MultiWorld) -> Vec<CoreId> {
        let n = mw.n_cores();
        match self {
            Placement::SameCore => vec![0; n_services],
            Placement::Pinned(map) => {
                assert!(
                    map.len() >= n_services,
                    "pinned map covers {} of {n_services} services",
                    map.len()
                );
                map[..n_services].iter().map(|&c| c % n).collect()
            }
            Placement::RoundRobin => {
                let chain = (r as usize) % n;
                Self::chain_on(chain, n_services)
            }
            Placement::LeastLoaded => Self::chain_on(mw.least_loaded(), n_services),
        }
    }

    fn chain_on(chain: CoreId, n_services: usize) -> Vec<CoreId> {
        let mut map = vec![chain; n_services];
        if !map.is_empty() {
            map[0] = 0; // the client
        }
        map
    }
}

/// N per-core [`World`]s under one virtual-time discipline.
///
/// Each core runs its own instance of the IPC system (warm state stays
/// core-local) and is a FIFO server: work charged at virtual time `t`
/// starts at `max(t, free_at)`. A hop is charged to the core *serving*
/// it; a blocked synchronous caller yields its core (that is the whole
/// point of scale-out), so only the serving core accrues busy time.
pub struct MultiWorld {
    cores: Vec<World>,
    free_at: Vec<u64>,
    xc: XCoreCost,
}

impl std::fmt::Debug for MultiWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiWorld")
            .field("cores", &self.cores.len())
            .field("free_at", &self.free_at)
            .finish()
    }
}

impl MultiWorld {
    /// `n_cores` worlds, each with a fresh system from `mk`.
    pub fn new(n_cores: usize, mk: impl Fn() -> Box<dyn IpcSystem>) -> Self {
        assert!(n_cores > 0, "a world needs at least one core");
        MultiWorld {
            cores: (0..n_cores).map(|_| World::new(mk())).collect(),
            free_at: vec![0; n_cores],
            xc: XCoreCost::u500(),
        }
    }

    /// Override the cross-core surcharge.
    #[must_use]
    pub fn with_xcore_cost(mut self, xc: XCoreCost) -> Self {
        self.xc = xc;
        self
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The world of core `i`.
    pub fn core(&self, i: CoreId) -> &World {
        &self.cores[i]
    }

    /// The world of core `i`, mutably.
    pub fn core_mut(&mut self, i: CoreId) -> &mut World {
        &mut self.cores[i]
    }

    /// Virtual time at which core `i` is next free.
    pub fn free_at(&self, i: CoreId) -> u64 {
        self.free_at[i]
    }

    /// The core that frees up earliest (ties break to the lowest index).
    pub fn least_loaded(&self) -> CoreId {
        let mut best = 0;
        for (i, &t) in self.free_at.iter().enumerate() {
            if t < self.free_at[best] {
                best = i;
            }
        }
        best
    }

    /// Total busy cycles over all cores (utilization numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.cores.iter().map(|w| w.cycles).sum()
    }

    /// Phase ledger merged over every core's IPC accounting.
    pub fn merged_ledger(&self) -> CycleLedger {
        let mut l = CycleLedger::new();
        for w in &self.cores {
            l.merge(&w.stats.ledger);
        }
        l
    }

    /// Engine-cache counters summed over every core's system ([`None`]
    /// when no core models one).
    pub fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        let mut acc: Option<EngineCacheStats> = None;
        for w in &self.cores {
            if let Some(s) = w.engine_cache_stats() {
                acc.get_or_insert_with(EngineCacheStats::default).merge(s);
            }
        }
        acc
    }

    fn surcharge(
        &self,
        to: CoreId,
        cross: bool,
        bytes: u64,
        calls: u64,
        inv: Invocation,
    ) -> Invocation {
        if !cross || self.cores[to].migrating_threads() {
            return inv;
        }
        let mut ledger = inv.ledger;
        ledger.charge(Phase::CrossCore, calls * self.xc.hop_extra(bytes));
        Invocation::from_ledger(ledger, inv.copied_bytes)
    }

    fn exec(&mut self, core: CoreId, ready: u64, cycles: u64) -> u64 {
        let start = ready.max(self.free_at[core]);
        let done = start + cycles;
        self.free_at[core] = done;
        done
    }

    /// One one-way hop from `from`'s core to `to`'s core at virtual time
    /// `ready`, served (and charged) at `to`. Returns the completion time
    /// and the priced invocation (cross-core surcharge included).
    pub fn exec_oneway(
        &mut self,
        from: CoreId,
        to: CoreId,
        bytes: u64,
        opts: &InvokeOpts,
        ready: u64,
    ) -> (u64, Invocation) {
        let inv = self.cores[to].price_oneway(bytes, opts);
        let inv = self.surcharge(to, from != to, bytes, 1, inv);
        let done = self.exec(to, ready, inv.total);
        self.cores[to].charge_invocation(bytes, inv.clone());
        (done, inv)
    }

    /// A burst of `calls` one-way hops of `bytes_each` from `from`'s
    /// core into `to`'s core submitted together at `ready` (see
    /// [`IpcSystem::invoke_batch`]): the serving core's system amortizes
    /// its per-batch work; crossing cores pays the full §5.2 surcharge
    /// *per call* — every delivery still raises its own IPI and remote
    /// wakeup, batching amortizes none of that.
    pub fn exec_batch(
        &mut self,
        from: CoreId,
        to: CoreId,
        calls: u64,
        bytes_each: u64,
        opts: &InvokeOpts,
        ready: u64,
    ) -> (u64, Invocation) {
        let inv = self.cores[to].price_batch(calls, bytes_each, opts);
        let inv = self.surcharge(to, from != to, bytes_each, calls, inv);
        let done = self.exec(to, ready, inv.total);
        self.cores[to].charge_batch(calls, calls * bytes_each, inv.clone());
        (done, inv)
    }

    /// A synchronous round trip from `from`'s core into `to`'s core: both
    /// legs priced by the serving core's system, each leg surcharged when
    /// the call crosses cores, the serving core busy for the whole trip.
    pub fn exec_roundtrip(
        &mut self,
        from: CoreId,
        to: CoreId,
        request: u64,
        response: u64,
        ready: u64,
    ) -> (u64, Invocation) {
        let cross = from != to;
        let call = self.cores[to].price_oneway(request, &InvokeOpts::call());
        let call = self.surcharge(to, cross, request, 1, call);
        let reply = self.cores[to].price_oneway(response, &InvokeOpts::reply_leg());
        let reply = self.surcharge(to, cross, response, 1, reply);
        let inv = call.plus(reply);
        let done = self.exec(to, ready, inv.total);
        self.cores[to].charge_invocation(request + response, inv.clone());
        (done, inv)
    }

    /// Compute at `core`, starting no earlier than `ready`.
    pub fn exec_compute(&mut self, core: CoreId, cycles: u64, ready: u64) -> u64 {
        let done = self.exec(core, ready, cycles);
        self.cores[core].compute(cycles);
        done
    }

    /// One pass over `bytes` of data at `core` (memcpy-grade work scaled
    /// by `intensity_x10 / 10`), starting no earlier than `ready`.
    pub fn exec_data_pass(
        &mut self,
        core: CoreId,
        bytes: u64,
        intensity_x10: u64,
        ready: u64,
    ) -> u64 {
        let cycles = self.cores[core].cost.copy_cycles(bytes) * intensity_x10 / 10;
        self.exec_compute(core, cycles, ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed {
        base: u64,
        migrating: bool,
    }

    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, self.base)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
        fn migrating_threads(&self) -> bool {
            self.migrating
        }
    }

    fn fixed() -> Box<dyn IpcSystem> {
        Box::new(Fixed {
            base: 100,
            migrating: false,
        })
    }

    #[test]
    fn adapter_adds_the_surcharge_into_the_ledger() {
        let mut cc = CrossCore::new(fixed());
        for bytes in [0usize, 64, 4096] {
            let inv = cc.oneway(bytes, &InvokeOpts::call());
            let expect = XCoreCost::u500().hop_extra(bytes as u64);
            assert_eq!(inv.ledger.get(Phase::CrossCore), expect);
            assert_eq!(inv.total, inv.ledger.total());
            assert_eq!(inv.total, 100 + bytes as u64 + expect);
        }
        assert_eq!(cc.name(), "fixed+xcore");
    }

    #[test]
    fn migrating_systems_cross_for_free() {
        let mut cc = CrossCore::new(Box::new(Fixed {
            base: 100,
            migrating: true,
        }));
        let inv = cc.oneway(4096, &InvokeOpts::call());
        assert_eq!(inv.ledger.get(Phase::CrossCore), 0);
        // The zero-cost span is still recorded: the hop *did* cross.
        assert!(inv
            .ledger
            .spans()
            .iter()
            .any(|(p, _)| *p == Phase::CrossCore));
        assert_eq!(inv.total, 100 + 4096);
    }

    #[test]
    fn surcharge_constant_part_matches_the_cost_model() {
        let xc = XCoreCost::u500();
        assert_eq!(xc.ipi + xc.remote_wakeup, CostModel::u500().cross_core_base);
        assert_eq!(xc.hop_extra(0), CostModel::u500().cross_core_base);
        assert!(xc.hop_extra(4096) > xc.hop_extra(0));
    }

    #[test]
    fn same_core_hops_pay_no_surcharge() {
        let mut mw = MultiWorld::new(2, fixed);
        let (done, inv) = mw.exec_oneway(0, 0, 64, &InvokeOpts::call(), 0);
        assert_eq!(inv.ledger.get(Phase::CrossCore), 0);
        assert_eq!(done, 164);
        let (_, inv) = mw.exec_oneway(0, 1, 64, &InvokeOpts::call(), 0);
        assert_eq!(
            inv.ledger.get(Phase::CrossCore),
            XCoreCost::u500().hop_extra(64)
        );
    }

    #[test]
    fn cores_are_fifo_servers() {
        let mut mw = MultiWorld::new(2, fixed);
        // Two 100-cycle computes both ready at t=0 on core 0: the second
        // queues behind the first.
        assert_eq!(mw.exec_compute(0, 100, 0), 100);
        assert_eq!(mw.exec_compute(0, 100, 0), 200);
        // A third on core 1 runs immediately.
        assert_eq!(mw.exec_compute(1, 100, 0), 100);
        assert_eq!(mw.free_at(0), 200);
        assert_eq!(mw.busy_cycles(), 300);
    }

    #[test]
    fn least_loaded_prefers_the_idle_core() {
        let mut mw = MultiWorld::new(3, fixed);
        mw.exec_compute(0, 500, 0);
        mw.exec_compute(1, 200, 0);
        assert_eq!(mw.least_loaded(), 2);
        mw.exec_compute(2, 900, 0);
        assert_eq!(mw.least_loaded(), 1);
    }

    #[test]
    fn placement_policies_map_services() {
        let mw = MultiWorld::new(4, fixed);
        assert_eq!(Placement::SameCore.assign(7, 3, &mw), vec![0, 0, 0]);
        assert_eq!(
            Placement::Pinned(vec![0, 1, 2, 3]).assign(0, 4, &mw),
            vec![0, 1, 2, 3]
        );
        // Round robin keeps the client (service 0) on core 0.
        assert_eq!(Placement::RoundRobin.assign(5, 3, &mw), vec![0, 1, 1]);
        assert_eq!(Placement::RoundRobin.assign(4, 3, &mw), vec![0, 0, 0]);
        assert_eq!(Placement::LeastLoaded.assign(0, 2, &mw), vec![0, 0]);
    }

    #[test]
    fn cross_core_surcharge_is_per_call_in_a_batch() {
        // `Fixed` has no IpcLogic phase, so the default amortization
        // amortizes nothing: a batch of n costs exactly n oneway calls —
        // and crossing cores must still pay n full surcharges.
        let mut mw = MultiWorld::new(2, fixed);
        let n = 8u64;
        let (_, inv) = mw.exec_batch(0, 1, n, 64, &InvokeOpts::call(), 0);
        assert_eq!(
            inv.ledger.get(Phase::CrossCore),
            n * XCoreCost::u500().hop_extra(64)
        );
        assert_eq!(inv.total, n * (100 + 64 + XCoreCost::u500().hop_extra(64)));
        assert_eq!(mw.core(1).stats.ipc_count, n);
        // Same-core batches pay none.
        let (_, inv) = mw.exec_batch(0, 0, n, 64, &InvokeOpts::call(), 0);
        assert_eq!(inv.ledger.get(Phase::CrossCore), 0);
    }

    #[test]
    fn cross_core_adapter_batches_like_the_multiworld() {
        let mut cc = CrossCore::new(fixed());
        let inv = cc.invoke_batch(4, 16, &InvokeOpts::call());
        assert_eq!(
            inv.ledger.get(Phase::CrossCore),
            4 * XCoreCost::u500().hop_extra(16)
        );
        assert_eq!(inv.total, inv.ledger.total());
        assert_eq!(cc.engine_cache_stats(), None);
    }

    #[test]
    fn roundtrip_charges_the_serving_core() {
        let mut mw = MultiWorld::new(2, fixed);
        let (done, inv) = mw.exec_roundtrip(0, 1, 10, 20, 0);
        // Two legs of 100 + bytes, each surcharged.
        let extra = XCoreCost::u500();
        let expect = 100 + 10 + extra.hop_extra(10) + 100 + 20 + extra.hop_extra(20);
        assert_eq!(inv.total, expect);
        assert_eq!(done, expect);
        assert_eq!(mw.core(1).cycles, expect);
        assert_eq!(mw.core(0).cycles, 0);
        assert_eq!(mw.merged_ledger().total(), expect);
    }
}
