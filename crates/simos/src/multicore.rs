//! Multi-core scale-out: per-core [`World`]s, NUMA-aware cross-core
//! call pricing, and placement policies.
//!
//! §5.2 prices cross-core IPC separately: a cross-core seL4 call is
//! 81–141× an XPC call because it pays an IPI, a remote wakeup through
//! the target core's scheduler, and cache-line transfers for the message
//! — while `xcall` migrates the calling thread on its own core and pays
//! none of that. This module makes that pricing uniform across every
//! [`IpcSystem`], and scales it with the machine's [`Topology`]:
//!
//! * [`XCoreCost`] — the IPI + remote-wakeup + cache-transfer surcharge,
//!   each component scaled by socket distance (see
//!   [`XCoreCost::hop_extra_at`]); migrating-thread designs stay free
//!   intra-socket and pay only the cache-line *distance* term when the
//!   relay segment has to be pulled across the interconnect;
//! * [`CrossCore`] — an adapter wrapping *any* system so the whole roster
//!   (not just hand-rolled `+xcore` variants) can be swept same-core vs
//!   cross-core, charging [`Phase::CrossCore`] into the existing ledger;
//! * [`MultiWorld`] — N per-core [`World`]s sharing a virtual clock
//!   discipline: each core is a FIFO server with a `free_at` time, a step
//!   starts at `max(request_ready, core_free)`, and cross-core hops are
//!   surcharged by distance. Built by [`MultiWorld::builder`], which
//!   validates the core count against the topology; executed through the
//!   unified [`MultiWorld::exec`] entry point (one [`Step`], one
//!   [`Completion`]). Cross-socket hops also resolve their x-entry from
//!   the remote socket's shard ([`InvokeOpts::shard_dist`]), which
//!   sharded-table systems price as [`Phase::ShardMiss`].
//!
//! [`Placement`] decides which core serves which service; the closed-loop
//! driver lives in [`crate::load`].

use crate::cost::CostModel;
use crate::ipc::{EngineCacheStats, IpcSystem};
use crate::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};
use crate::program::{CallProgram, ProgramId, HANDOVER_DESC_BYTES};
use crate::topology::Topology;
use crate::world::World;
use std::fmt;

/// Index of a core in a [`MultiWorld`].
pub type CoreId = usize;

/// One step of a request recipe. In recipe space (see [`crate::load`])
/// the `from`/`to`/`at` fields are abstract *service* indices that a
/// [`Placement`] maps to cores per request; [`MultiWorld::exec`] takes
/// steps already resolved to core space. Each variant restates that
/// contract for its own fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// A one-way IPC from `from` to `to` carrying `bytes`.
    ///
    /// `from`/`to` are service indices in recipe space; by the time the
    /// step reaches [`MultiWorld::exec`] both must be core ids (the
    /// serving core is `to`, and `from` is superseded by `exec`'s
    /// issuing-core argument).
    Oneway {
        /// Sending service (recipe space) / issuing core (core space).
        from: usize,
        /// Receiving and serving service (recipe space) / core (core
        /// space).
        to: usize,
        /// Payload bytes.
        bytes: u64,
    },
    /// A burst of `calls` one-way IPCs from `from` to `to` submitted
    /// together, priced by [`crate::ipc::IpcSystem::invoke_batch`]
    /// (per-batch entry work amortized, per-call transfer not).
    ///
    /// `from`/`to` follow the same recipe-space → core-space contract as
    /// [`Step::Oneway`]: service indices in a recipe, core ids at
    /// [`MultiWorld::exec`], with `to` the serving core.
    Batch {
        /// Sending service (recipe space) / issuing core (core space).
        from: usize,
        /// Receiving and serving service (recipe space) / core (core
        /// space).
        to: usize,
        /// Calls in the burst (>= 1).
        calls: u64,
        /// Payload bytes per call.
        bytes_each: u64,
    },
    /// A synchronous round trip from `from` into `to`.
    ///
    /// `from`/`to` follow the same recipe-space → core-space contract as
    /// [`Step::Oneway`]: at [`MultiWorld::exec`] the serving core `to`
    /// prices both legs and accrues the whole trip's busy time.
    Roundtrip {
        /// Calling service (recipe space) / issuing core (core space).
        from: usize,
        /// Serving service (recipe space) / core (core space).
        to: usize,
        /// Request payload bytes.
        request: u64,
        /// Response payload bytes.
        response: u64,
    },
    /// Fixed compute at a service.
    ///
    /// `at` is a service index in recipe space; at [`MultiWorld::exec`]
    /// the cycles are clocked and charged on the *issuing core* argument
    /// (`at` is not consulted — the resolver already routed the step).
    Compute {
        /// Computing service (recipe space) / core (core space).
        at: usize,
        /// Cycles.
        cycles: u64,
    },
    /// One pass over data at a service (`intensity_x10 / 10` ×
    /// memcpy-grade cycles per byte).
    ///
    /// `at` follows the same contract as [`Step::Compute`]: recipe-space
    /// service index, resolved to the issuing core by the time
    /// [`MultiWorld::exec`] runs it.
    DataPass {
        /// Computing service (recipe space) / core (core space).
        at: usize,
        /// Bytes touched.
        bytes: u64,
        /// Cost multiplier ×10.
        intensity_x10: u64,
    },
    /// A fused multi-hop call program (see [`crate::program`]) registered
    /// with the world via [`MultiWorld::register_program`]: submitted
    /// once, executed server-side hop to hop without returning to the
    /// client, priced per the serving systems' own fusion mechanism
    /// ([`IpcSystem::fused_hop_into`]).
    ///
    /// The program's `client` and per-hop `service` ids live in recipe
    /// space when the step sits in a recipe (the load/serve drivers map
    /// them through the request's [`Placement`] assignment);
    /// [`MultiWorld::exec`] resolves them with the *identity* map —
    /// service id == core id — which is this variant's form of the
    /// already-resolved-to-core-space contract.
    Fused(ProgramId),
}

/// The outcome of one executed [`Step`]: when it finished in virtual
/// time, and the priced invocation it charged (an empty ledger for pure
/// compute steps, which charge no IPC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Virtual time at which the step completed.
    pub done: u64,
    /// The priced invocation (surcharges included); `Invocation::default()`
    /// for [`Step::Compute`] / [`Step::DataPass`].
    pub inv: Invocation,
}

/// The cross-core surcharge of §5.2, split into its physical parts and
/// scaled by socket distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XCoreCost {
    /// Raising and delivering the inter-processor interrupt.
    pub ipi: u64,
    /// Remote wakeup: the target core's scheduler dequeues and resumes
    /// the server thread.
    pub remote_wakeup: u64,
    /// Cycles to pull one cache line of payload across the interconnect.
    pub line_transfer: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// NUMA scaling per socket-distance unit, in tenths: a surcharge
    /// component at distance `d` costs `x * (10 + d * numa_x10) / 10`,
    /// so distance 0 (same socket) reproduces the flat single-socket
    /// surcharge exactly and a dual-socket hop at distance 2 with the
    /// default 5 costs 2×.
    pub numa_x10: u64,
}

impl XCoreCost {
    /// The U500 calibration. The constant part (`ipi + remote_wakeup`)
    /// equals [`CostModel::u500`]'s `cross_core_base`, so the adapter
    /// reproduces the hand-rolled `seL4+xcore` / `Zircon+xcore` variants
    /// exactly at 0 B and lands seL4 in §5.2's 81–141× band.
    pub fn u500() -> Self {
        let base = CostModel::u500().cross_core_base;
        XCoreCost {
            ipi: 2_000,
            remote_wakeup: base - 2_000,
            line_transfer: 50,
            line_bytes: 64,
            numa_x10: 5,
        }
    }

    /// `x` scaled by socket distance: `x * (10 + dist * numa_x10) / 10`
    /// (exactly `x` at distance 0).
    fn at_distance(&self, x: u64, dist: u64) -> u64 {
        x * (10 + dist * self.numa_x10) / 10
    }

    /// Surcharge for one *intra-socket* hop carrying `payload_bytes`
    /// across cores (socket distance 0).
    pub fn hop_extra(&self, payload_bytes: u64) -> u64 {
        self.hop_extra_at(payload_bytes, 0)
    }

    /// Surcharge for one hop carrying `payload_bytes` between cores whose
    /// sockets sit `dist` distance units apart: IPI, remote wakeup, and
    /// cache-line transfer each scale with the distance.
    pub fn hop_extra_at(&self, payload_bytes: u64, dist: u64) -> u64 {
        let lines = payload_bytes.div_ceil(self.line_bytes.max(1));
        self.at_distance(self.ipi, dist)
            + self.at_distance(self.remote_wakeup, dist)
            + lines * self.at_distance(self.line_transfer, dist)
    }

    /// Surcharge for a *migrating-thread* hop (`xcall` runs the server on
    /// the caller's core — no IPI, no remote wakeup): zero intra-socket,
    /// and only the distance-dependent part of the cache-line transfer
    /// cross-socket (the relay segment's lines are pulled across the
    /// interconnect on first touch).
    pub fn migrating_hop_extra(&self, payload_bytes: u64, dist: u64) -> u64 {
        let lines = payload_bytes.div_ceil(self.line_bytes.max(1));
        lines * (self.at_distance(self.line_transfer, dist) - self.line_transfer)
    }
}

impl Default for XCoreCost {
    fn default() -> Self {
        Self::u500()
    }
}

/// Adapter pricing an inner [`IpcSystem`]'s calls as *cross-core* calls
/// (intra-socket: socket distance 0).
///
/// Every hop additionally charges [`Phase::CrossCore`] with
/// [`XCoreCost::hop_extra`] — zero when the inner system migrates
/// threads (XPC: the server runs on the client's core, §5.2), so the
/// span still records that the call crossed cores for free.
pub struct CrossCore {
    inner: Box<dyn IpcSystem>,
    xc: XCoreCost,
}

impl CrossCore {
    /// Wrap `inner` with the U500 cross-core surcharge.
    pub fn new(inner: Box<dyn IpcSystem>) -> Self {
        CrossCore {
            inner,
            xc: XCoreCost::u500(),
        }
    }

    /// Wrap `inner` with a custom surcharge.
    pub fn with_cost(inner: Box<dyn IpcSystem>, xc: XCoreCost) -> Self {
        CrossCore { inner, xc }
    }
}

impl IpcSystem for CrossCore {
    fn name(&self) -> String {
        format!("{}+xcore", self.inner.name())
    }

    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        crate::ipc::oneway_invocation(self, msg_len, opts)
    }

    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let copied = self.inner.oneway_into(msg_len, opts, out);
        let extra = if self.inner.migrating_threads() {
            0
        } else {
            self.xc.hop_extra(msg_len as u64)
        };
        out.charge(Phase::CrossCore, extra);
        copied
    }

    fn supports_handover(&self) -> bool {
        self.inner.supports_handover()
    }

    fn migrating_threads(&self) -> bool {
        self.inner.migrating_threads()
    }

    fn amortizable_cycles(&self, phase: Phase, first_cycles: u64, opts: &InvokeOpts) -> u64 {
        self.inner.amortizable_cycles(phase, first_cycles, opts)
    }

    fn invoke_batch_into(
        &mut self,
        calls: u64,
        bytes_each: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        // Delegate to the inner system (keeping its amortization *and*
        // its stats counting), then surcharge every call: batching does
        // not amortize the IPI or the remote wakeup — each cross-core
        // delivery still interrupts and wakes the target core.
        let copied = self.inner.invoke_batch_into(calls, bytes_each, opts, out);
        let extra = if self.inner.migrating_threads() {
            0
        } else {
            calls * self.xc.hop_extra(bytes_each as u64)
        };
        out.charge(Phase::CrossCore, extra);
        copied
    }

    fn fused_hop_into(
        &mut self,
        hop_index: u64,
        msg_len: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        // Same shape as `oneway_into`: the inner system prices the fused
        // hop, then the crossing surcharge applies unless threads
        // migrate — fusion saves kernel entries, not IPIs.
        let copied = self.inner.fused_hop_into(hop_index, msg_len, opts, out);
        let extra = if self.inner.migrating_threads() {
            0
        } else {
            self.xc.hop_extra(msg_len as u64)
        };
        out.charge(Phase::CrossCore, extra);
        copied
    }

    fn fused_crossings(&self, hops: u64) -> u64 {
        self.inner.fused_crossings(hops)
    }

    fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        self.inner.engine_cache_stats()
    }
}

/// Which core serves which service (the compartment-placement axis the
/// scale-out experiments sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Everything on core 0 — the single-core baseline.
    SameCore,
    /// Service *i* is pinned to `map[i] % n_cores` — the microkernel
    /// deployment where every server is a process on its own core.
    Pinned(Vec<CoreId>),
    /// Request *r*'s whole chain runs on core `r % n_cores` (the client
    /// stays on core 0) — dispatch-level round robin.
    RoundRobin,
    /// Each request's chain runs on the core with the best
    /// `free_at + distance penalty` score at dispatch time (the client
    /// stays on core 0): the NUMA-aware trade between queue depth and
    /// the surcharge a remote-socket chain would pay per hop. On a
    /// single-socket topology every penalty is zero and this is the
    /// classic earliest-free policy.
    LeastLoaded,
}

impl Placement {
    /// Stable label for tables and JSON dumps.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::SameCore => "same-core",
            Placement::Pinned(_) => "pinned",
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
        }
    }

    /// Map the `n_services` services of request `r` to cores. Service 0
    /// is the client; it always sits on core 0. Every returned index is
    /// strictly below `mw.n_cores()`.
    ///
    /// # Errors
    ///
    /// [`PlacementError`] when a pinned map covers fewer services than
    /// the recipe uses, or when a policy produces a core index outside
    /// the world. Both used to be `assert!`/`debug_assert!`; release
    /// builds would silently mis-price every hop of a mis-mapped chain
    /// instead of rejecting it.
    pub fn assign(
        &self,
        r: u64,
        n_services: usize,
        mw: &MultiWorld,
    ) -> Result<Vec<CoreId>, PlacementError> {
        let mut map = Vec::new();
        self.assign_into(r, n_services, mw, &mut map)?;
        Ok(map)
    }

    /// [`assign`](Self::assign) into a caller-provided buffer (cleared
    /// first), so a load run placing every request reuses one map
    /// allocation instead of building a fresh `Vec` per request.
    pub fn assign_into(
        &self,
        r: u64,
        n_services: usize,
        mw: &MultiWorld,
        out: &mut Vec<CoreId>,
    ) -> Result<(), PlacementError> {
        let n = mw.n_cores();
        out.clear();
        match self {
            Placement::SameCore => out.resize(n_services, 0),
            Placement::Pinned(map) => {
                if map.len() < n_services {
                    return Err(PlacementError::PinnedMapTooShort {
                        have: map.len(),
                        need: n_services,
                    });
                }
                out.extend(map[..n_services].iter().map(|&c| c % n));
            }
            Placement::RoundRobin => {
                let chain = usize::try_from(r % n as u64).expect("core index fits usize");
                Self::chain_on(chain, n_services, out);
            }
            Placement::LeastLoaded => Self::chain_on(mw.least_loaded_weighted(), n_services, out),
        }
        if let Some(&bad) = out.iter().find(|&&c| c >= n) {
            return Err(PlacementError::CoreOutOfRange {
                policy: self.label(),
                core: bad,
                n_cores: n,
            });
        }
        Ok(())
    }

    fn chain_on(chain: CoreId, n_services: usize, out: &mut Vec<CoreId>) {
        out.resize(n_services, chain);
        // `resize` on the cleared buffer filled every slot with `chain`.
        if let Some(first) = out.first_mut() {
            *first = 0; // the client
        }
    }
}

/// A [`Placement`] could not produce a valid service → core map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// `Placement::Pinned` lists fewer cores than the recipe has
    /// services.
    PinnedMapTooShort {
        /// Cores the pinned map covers.
        have: usize,
        /// Services the recipe needs placed.
        need: usize,
    },
    /// A policy produced a core index outside the world.
    CoreOutOfRange {
        /// [`Placement::label`] of the offending policy.
        policy: &'static str,
        /// The out-of-range index.
        core: CoreId,
        /// Cores the world actually has.
        n_cores: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::PinnedMapTooShort { have, need } => {
                write!(f, "pinned map covers {have} of {need} services")
            }
            PlacementError::CoreOutOfRange {
                policy,
                core,
                n_cores,
            } => {
                write!(
                    f,
                    "{policy}: assigned core {core} on a {n_cores}-core world"
                )
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Configures a [`MultiWorld`]: active core count, machine [`Topology`],
/// and cross-core cost. [`build`](Self::build) validates the core count
/// against the topology.
#[derive(Debug, Clone)]
pub struct MultiWorldBuilder {
    cores: Option<usize>,
    topo: Topology,
    xc: XCoreCost,
}

impl MultiWorldBuilder {
    /// Use `n` cores (default: every core the topology has). Must fit
    /// the topology at [`build`](Self::build) time.
    #[must_use]
    pub fn cores(mut self, n: usize) -> Self {
        self.cores = Some(n);
        self
    }

    /// The machine shape (default: [`Topology::u500`], the paper's
    /// single-socket quad-core).
    #[must_use]
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topo = topo;
        self
    }

    /// Override the cross-core surcharge calibration.
    #[must_use]
    pub fn xcore_cost(mut self, xc: XCoreCost) -> Self {
        self.xc = xc;
        self
    }

    /// Build the world, with a fresh system from `mk` per core. Panics
    /// when the core count is zero or exceeds what the topology offers.
    pub fn build(self, mk: impl Fn() -> Box<dyn IpcSystem>) -> MultiWorld {
        let n = self.cores.unwrap_or_else(|| self.topo.n_cores());
        assert!(n > 0, "a world needs at least one core");
        assert!(
            n <= self.topo.n_cores(),
            "{n} cores do not fit the topology ({} sockets x {} cores/socket = {})",
            self.topo.sockets,
            self.topo.cores_per_socket,
            self.topo.n_cores()
        );
        MultiWorld {
            cores: (0..n).map(|_| World::new(mk())).collect(),
            free_at: vec![0; n],
            xc: self.xc,
            topo: self.topo,
            programs: Vec::new(),
        }
    }
}

/// N per-core [`World`]s under one virtual-time discipline.
///
/// Each core runs its own instance of the IPC system (warm state stays
/// core-local) and is a FIFO server: work charged at virtual time `t`
/// starts at `max(t, free_at)`. A hop is charged to the core *serving*
/// it; a blocked synchronous caller yields its core (that is the whole
/// point of scale-out), so only the serving core accrues busy time.
/// Hops between cores on different sockets pay distance-scaled
/// surcharges and remote x-entry shard fetches (see the module docs).
pub struct MultiWorld {
    cores: Vec<World>,
    free_at: Vec<u64>,
    xc: XCoreCost,
    topo: Topology,
    programs: Vec<CallProgram>,
}

impl std::fmt::Debug for MultiWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiWorld")
            .field("cores", &self.cores.len())
            .field("topology", &self.topo)
            .field("free_at", &self.free_at)
            .finish()
    }
}

impl MultiWorld {
    /// Start configuring a world (see [`MultiWorldBuilder`]).
    pub fn builder() -> MultiWorldBuilder {
        MultiWorldBuilder {
            cores: None,
            topo: Topology::u500(),
            xc: XCoreCost::u500(),
        }
    }

    /// Number of (active) cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The machine topology the world runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The world of core `i`.
    pub fn core(&self, i: CoreId) -> &World {
        &self.cores[i]
    }

    /// The world of core `i`, mutably.
    pub fn core_mut(&mut self, i: CoreId) -> &mut World {
        &mut self.cores[i]
    }

    /// Virtual time at which core `i` is next free.
    pub fn free_at(&self, i: CoreId) -> u64 {
        self.free_at[i]
    }

    /// The core that frees up earliest (ties break to the lowest index),
    /// ignoring topology.
    pub fn least_loaded(&self) -> CoreId {
        let mut best = 0;
        for (i, &t) in self.free_at.iter().enumerate() {
            if t < self.free_at[best] {
                best = i;
            }
        }
        best
    }

    /// The core among the first `n_active` that frees up earliest (ties
    /// to the lowest index) — the dispatch primitive of the open-loop
    /// autoscaler ([`crate::serve`]), which grows and shrinks the active
    /// prefix `0..n_active` of the world's cores instead of always
    /// spreading over all of them. `n_active` is clamped to the core
    /// count; `n_active = n_cores()` is [`least_loaded`](Self::least_loaded).
    pub fn least_loaded_among(&self, n_active: usize) -> CoreId {
        let n = n_active.clamp(1, self.cores.len());
        let mut best = 0;
        for (i, &t) in self.free_at.iter().enumerate().take(n) {
            if t < self.free_at[best] {
                best = i;
            }
        }
        best
    }

    /// How far behind virtual time `now` core `i`'s FIFO queue currently
    /// runs: `free_at - now`, saturating at 0 for an idle core. This is
    /// the observed queue-depth signal the open-loop admission control
    /// and the autoscale feedback controller both act on.
    pub fn backlog(&self, i: CoreId, now: u64) -> u64 {
        self.free_at[i].saturating_sub(now)
    }

    /// The core minimizing `free_at + distance penalty` from the client
    /// core (core 0), ties to the lowest index: a remote-socket core
    /// must beat a local one by more than the per-hop surcharge its
    /// distance would add. Identical to [`least_loaded`](Self::least_loaded)
    /// on a single-socket topology.
    pub fn least_loaded_weighted(&self) -> CoreId {
        let mut best = 0;
        let mut best_score = u64::MAX;
        for i in 0..self.cores.len() {
            let score = self.free_at[i].saturating_add(self.placement_penalty(i));
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        best
    }

    /// The extra per-hop cycles a chain on `core` pays over an
    /// intra-socket placement, estimated at one cache line of payload:
    /// the distance-dependent slice of the surcharge (plus the x-entry
    /// shard fetch for migrating/sharded systems). Zero intra-socket.
    fn placement_penalty(&self, core: CoreId) -> u64 {
        let dist = self.topo.core_distance(0, core);
        if dist == 0 {
            return 0;
        }
        if self.cores[core].migrating_threads() {
            self.xc.migrating_hop_extra(self.xc.line_bytes, dist)
                + self.cores[core].cost.xentry_shard_fetch * dist
        } else {
            self.xc.hop_extra_at(self.xc.line_bytes, dist) - self.xc.hop_extra(self.xc.line_bytes)
        }
    }

    /// Total busy cycles over all cores (utilization numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.cores.iter().map(|w| w.cycles).sum()
    }

    /// Phase ledger merged over every core's IPC accounting.
    pub fn merged_ledger(&self) -> CycleLedger {
        let mut l = CycleLedger::new();
        for w in &self.cores {
            l.merge(&w.stats.ledger);
        }
        l
    }

    /// Engine-cache counters summed over every core's system ([`None`]
    /// when no core models one).
    pub fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        let mut acc: Option<EngineCacheStats> = None;
        for w in &self.cores {
            if let Some(s) = w.engine_cache_stats() {
                acc.get_or_insert_with(EngineCacheStats::default).merge(s);
            }
        }
        acc
    }

    /// Register a fused call program, returning the [`ProgramId`] a
    /// [`Step::Fused`] dispatches it by. Programs are world-scoped: an
    /// id only resolves on the world that issued it.
    pub fn register_program(&mut self, program: CallProgram) -> ProgramId {
        self.programs.push(program);
        ProgramId::from_index(self.programs.len() - 1)
    }

    /// The registered program behind `id`. Panics on an id from another
    /// world (out of range for this table).
    pub fn program(&self, id: ProgramId) -> &CallProgram {
        &self.programs[id.index()]
    }

    /// Number of programs registered so far.
    pub fn n_programs(&self) -> usize {
        self.programs.len()
    }

    /// Route of a fused step under a service → core `map`:
    /// `(client core, entry core, ipc calls)`. The entry core — the
    /// first hop's — serves the whole program as one FIFO interval, and
    /// the call count is the hop count (one `xcall`/kernel entry per
    /// hop, however the mechanism prices it).
    pub fn fused_route(&self, id: ProgramId, map: &[CoreId]) -> (CoreId, CoreId, u64) {
        let p = &self.programs[id.index()];
        let calls = u64::try_from(p.depth()).expect("hop count fits u64");
        (map[p.client()], map[p.hops()[0].service], calls)
    }

    /// Shared fused-program pricing: charge every hop and the final
    /// reply leg into `out` (accumulating), clock the entry core once
    /// for the whole program, and return `(done, copied_bytes)`.
    ///
    /// `map` resolves the program's service ids to cores; `None` is the
    /// identity map (ids already are core ids — `exec`'s contract).
    ///
    /// The model follows AnyCall's submit-once shape: the client issues
    /// one submission to the entry service, which drives the remaining
    /// hops server-side; control never returns to the client between
    /// hops, and the final hop replies straight back. Every hop is
    /// priced by *its serving core's* system (warm engine-cache state
    /// stays where the service lives) via
    /// [`IpcSystem::fused_hop_into`], consecutive hops on different
    /// cores pay the §5.2 surcharge for their edge, and a handover edge
    /// into a handover-capable system moves only a
    /// [`HANDOVER_DESC_BYTES`] descriptor. A depth-1 program with no
    /// handover and no compute prices span-for-span identically to the
    /// equivalent [`Step::Roundtrip`].
    fn fused_into_with(
        &mut self,
        issuer: CoreId,
        id: ProgramId,
        map: Option<&[CoreId]>,
        ready: u64,
        out: &mut CycleLedger,
    ) -> (u64, u64) {
        let core_of = |service: usize| -> CoreId {
            match map {
                Some(m) => m[service],
                None => service,
            }
        };
        let depth = self.programs[id.index()].depth();
        let entry = core_of(self.programs[id.index()].hops()[0].service);
        let mut prev = issuer;
        let mut copied = 0u64;
        let mut payload = 0u64;
        let mut compute = 0u64;
        let mut calls = 0u64;
        for i in 0..depth {
            let hop = self.programs[id.index()].hops()[i];
            let to = core_of(hop.service);
            let bytes = if hop.handover && self.cores[to].handover() {
                HANDOVER_DESC_BYTES.min(hop.request)
            } else {
                hop.request
            };
            let opts = self.shard_opts(prev, to, &InvokeOpts::call());
            copied += self.cores[to].price_fused_hop_into(calls, bytes, &opts, out);
            self.surcharge_into(prev, to, bytes, 1, out);
            payload += bytes;
            compute += hop.compute;
            calls += 1;
            prev = to;
        }
        let response = self.programs[id.index()].response();
        let reply_opts = self.shard_opts(issuer, prev, &InvokeOpts::reply_leg());
        copied += self.cores[prev].price_oneway_into(response, &reply_opts, out);
        self.surcharge_into(issuer, prev, response, 1, out);
        payload += response;
        let done = self.clock(entry, ready, out.total() + compute);
        if compute > 0 {
            self.cores[entry].compute(compute);
        }
        self.cores[entry].charge_spans(calls, payload, out);
        (done, copied)
    }

    /// Execute a registered program under an explicit service → core
    /// `map` (the load/serve drivers' path — [`Step::Fused`] through
    /// [`exec`](Self::exec) uses the identity map instead). `issuer` is
    /// the client's core; returns the completion.
    pub fn exec_fused(
        &mut self,
        issuer: CoreId,
        id: ProgramId,
        map: &[CoreId],
        ready: u64,
    ) -> Completion {
        let mut ledger = CycleLedger::new();
        let (done, copied) = self.fused_into_with(issuer, id, Some(map), ready, &mut ledger);
        Completion {
            done,
            inv: Invocation::from_ledger(ledger, copied),
        }
    }

    /// Zero-alloc twin of [`exec_fused`](Self::exec_fused): charge the
    /// program's spans into `out` (cleared first) and return the
    /// completion time.
    pub fn exec_fused_into(
        &mut self,
        issuer: CoreId,
        id: ProgramId,
        map: &[CoreId],
        ready: u64,
        out: &mut CycleLedger,
    ) -> u64 {
        out.clear();
        self.fused_into_with(issuer, id, Some(map), ready, out).0
    }

    /// Crossings-per-request the entry core's mechanism charges a fused
    /// program of `id`'s depth (the `fuse` figure's headline metric;
    /// see [`IpcSystem::fused_crossings`]).
    pub fn fused_crossings(&self, id: ProgramId, map: &[CoreId]) -> u64 {
        let p = &self.programs[id.index()];
        let hops = u64::try_from(p.depth()).expect("hop count fits u64");
        self.cores[map[p.hops()[0].service]].fused_crossings(hops)
    }

    /// `opts` with the x-entry shard distance of a `from → to` hop
    /// filled in (0 when both cores share a socket).
    fn shard_opts(&self, from: CoreId, to: CoreId, opts: &InvokeOpts) -> InvokeOpts {
        opts.clone()
            .at_shard_distance(self.topo.core_distance(from, to))
    }

    fn surcharge(
        &self,
        from: CoreId,
        to: CoreId,
        bytes: u64,
        calls: u64,
        inv: Invocation,
    ) -> Invocation {
        if from == to {
            return inv;
        }
        let dist = self.topo.core_distance(from, to);
        let extra = if self.cores[to].migrating_threads() {
            let extra = calls * self.xc.migrating_hop_extra(bytes, dist);
            if extra == 0 {
                // Intra-socket xcall: the §5.2 free crossing — ledger
                // untouched, exactly the historical single-socket path.
                return inv;
            }
            extra
        } else {
            calls * self.xc.hop_extra_at(bytes, dist)
        };
        let mut ledger = inv.ledger;
        ledger.charge(Phase::CrossCore, extra);
        Invocation::from_ledger(ledger, inv.copied_bytes)
    }

    /// Sink-path [`surcharge`](Self::surcharge): charge the cross-core
    /// extra for a `from → to` leg straight into `out`, replicating the
    /// allocating path exactly — same-core legs and free intra-socket
    /// migrating crossings leave the ledger untouched (no span), every
    /// other crossing appends/accumulates a [`Phase::CrossCore`] span.
    fn surcharge_into(
        &self,
        from: CoreId,
        to: CoreId,
        bytes: u64,
        calls: u64,
        out: &mut CycleLedger,
    ) {
        if from == to {
            return;
        }
        let dist = self.topo.core_distance(from, to);
        let extra = if self.cores[to].migrating_threads() {
            let extra = calls * self.xc.migrating_hop_extra(bytes, dist);
            if extra == 0 {
                return;
            }
            extra
        } else {
            calls * self.xc.hop_extra_at(bytes, dist)
        };
        out.charge(Phase::CrossCore, extra);
    }

    fn clock(&mut self, core: CoreId, ready: u64, cycles: u64) -> u64 {
        let start = ready.max(self.free_at[core]);
        let done = start + cycles;
        self.free_at[core] = done;
        done
    }

    /// The unified execution entry point: run one [`Step`] (already
    /// resolved to core space) issued by `core` at virtual time `ready`.
    ///
    /// `core` is the step's origin — the client side of an IPC hop, or
    /// the computing core itself. IPC steps serve (and charge) on the
    /// core named by the step's `to` field; their `from`/`at` fields are
    /// not consulted (the caller resolves services to cores, see
    /// [`Placement::assign`]). Call legs are priced with
    /// [`InvokeOpts::call`]; x-entry shard distance and cross-core
    /// surcharges fall out of the topology.
    pub fn exec(&mut self, core: CoreId, step: Step, ready: u64) -> Completion {
        self.exec_opts(core, step, &InvokeOpts::call(), ready)
    }

    /// [`exec`](Self::exec) with explicit call-leg options.
    fn exec_opts(&mut self, core: CoreId, step: Step, opts: &InvokeOpts, ready: u64) -> Completion {
        match step {
            Step::Oneway { to, bytes, .. } => {
                let opts = self.shard_opts(core, to, opts);
                let inv = self.cores[to].price_oneway(bytes, &opts);
                let inv = self.surcharge(core, to, bytes, 1, inv);
                let done = self.clock(to, ready, inv.total);
                self.cores[to].charge_invocation(bytes, inv.clone());
                Completion { done, inv }
            }
            Step::Batch {
                to,
                calls,
                bytes_each,
                ..
            } => {
                let opts = self.shard_opts(core, to, opts);
                let inv = self.cores[to].price_batch(calls, bytes_each, &opts);
                let inv = self.surcharge(core, to, bytes_each, calls, inv);
                let done = self.clock(to, ready, inv.total);
                self.cores[to].charge_batch(calls, calls * bytes_each, inv.clone());
                Completion { done, inv }
            }
            Step::Roundtrip {
                to,
                request,
                response,
                ..
            } => {
                let call_opts = self.shard_opts(core, to, opts);
                let call = self.cores[to].price_oneway(request, &call_opts);
                let call = self.surcharge(core, to, request, 1, call);
                let reply_opts = self.shard_opts(core, to, &InvokeOpts::reply_leg());
                let reply = self.cores[to].price_oneway(response, &reply_opts);
                let reply = self.surcharge(core, to, response, 1, reply);
                let inv = call.plus(reply);
                let done = self.clock(to, ready, inv.total);
                self.cores[to].charge_invocation(request + response, inv.clone());
                Completion { done, inv }
            }
            Step::Compute { cycles, .. } => {
                let done = self.clock(core, ready, cycles);
                self.cores[core].compute(cycles);
                Completion {
                    done,
                    inv: Invocation::default(),
                }
            }
            Step::DataPass {
                bytes,
                intensity_x10,
                ..
            } => {
                let cycles = self.cores[core].cost.copy_cycles(bytes) * intensity_x10 / 10;
                let done = self.clock(core, ready, cycles);
                self.cores[core].compute(cycles);
                Completion {
                    done,
                    inv: Invocation::default(),
                }
            }
            Step::Fused(id) => {
                let mut ledger = CycleLedger::new();
                let (done, copied) = self.fused_into_with(core, id, None, ready, &mut ledger);
                Completion {
                    done,
                    inv: Invocation::from_ledger(ledger, copied),
                }
            }
        }
    }

    /// Zero-alloc twin of [`exec`](Self::exec): run one [`Step`] and
    /// charge its phase spans into `out` (cleared first) instead of
    /// returning an [`Invocation`]. Returns the completion time.
    ///
    /// Produces span-for-span the same ledger `exec` would (surcharge
    /// ordering included) while skipping the per-step `Invocation`
    /// allocation and the per-world event histogram — the hot path of
    /// the arena-backed load generators. Worlds are still clocked and
    /// their scalar counters charged via [`World::charge_spans`].
    pub fn exec_into(
        &mut self,
        core: CoreId,
        step: Step,
        ready: u64,
        out: &mut CycleLedger,
    ) -> u64 {
        out.clear();
        let opts = InvokeOpts::call();
        match step {
            Step::Oneway { to, bytes, .. } => {
                let opts = self.shard_opts(core, to, &opts);
                self.cores[to].price_oneway_into(bytes, &opts, out);
                self.surcharge_into(core, to, bytes, 1, out);
                let done = self.clock(to, ready, out.total());
                self.cores[to].charge_spans(1, bytes, out);
                done
            }
            Step::Batch {
                to,
                calls,
                bytes_each,
                ..
            } => {
                let opts = self.shard_opts(core, to, &opts);
                self.cores[to].price_batch_into(calls, bytes_each, &opts, out);
                self.surcharge_into(core, to, bytes_each, calls, out);
                let done = self.clock(to, ready, out.total());
                self.cores[to].charge_spans(calls, calls * bytes_each, out);
                done
            }
            Step::Roundtrip {
                to,
                request,
                response,
                ..
            } => {
                // Sequential charging into one sink reproduces
                // `call.plus(reply)` exactly: first-occurrence span order
                // is call spans, call surcharge, then reply-only spans.
                let call_opts = self.shard_opts(core, to, &opts);
                self.cores[to].price_oneway_into(request, &call_opts, out);
                self.surcharge_into(core, to, request, 1, out);
                let reply_opts = self.shard_opts(core, to, &InvokeOpts::reply_leg());
                self.cores[to].price_oneway_into(response, &reply_opts, out);
                self.surcharge_into(core, to, response, 1, out);
                let done = self.clock(to, ready, out.total());
                self.cores[to].charge_spans(1, request + response, out);
                done
            }
            Step::Compute { cycles, .. } => {
                let done = self.clock(core, ready, cycles);
                self.cores[core].compute(cycles);
                done
            }
            Step::DataPass {
                bytes,
                intensity_x10,
                ..
            } => {
                let cycles = self.cores[core].cost.copy_cycles(bytes) * intensity_x10 / 10;
                let done = self.clock(core, ready, cycles);
                self.cores[core].compute(cycles);
                done
            }
            Step::Fused(id) => self.fused_into_with(core, id, None, ready, out).0,
        }
    }

    /// One one-way hop from `from`'s core to `to`'s core at virtual time
    /// `ready`, served (and charged) at `to`. Returns the completion time
    /// and the priced invocation (cross-core surcharge included). Thin
    /// wrapper over [`exec`](Self::exec).
    pub fn exec_oneway(
        &mut self,
        from: CoreId,
        to: CoreId,
        bytes: u64,
        opts: &InvokeOpts,
        ready: u64,
    ) -> (u64, Invocation) {
        let c = self.exec_opts(from, Step::Oneway { from, to, bytes }, opts, ready);
        (c.done, c.inv)
    }

    /// A burst of `calls` one-way hops of `bytes_each` from `from`'s
    /// core into `to`'s core submitted together at `ready` (see
    /// [`IpcSystem::invoke_batch`]): the serving core's system amortizes
    /// its per-batch work; crossing cores pays the full §5.2 surcharge
    /// *per call* — every delivery still raises its own IPI and remote
    /// wakeup, batching amortizes none of that. Thin wrapper over
    /// [`exec`](Self::exec).
    pub fn exec_batch(
        &mut self,
        from: CoreId,
        to: CoreId,
        calls: u64,
        bytes_each: u64,
        opts: &InvokeOpts,
        ready: u64,
    ) -> (u64, Invocation) {
        let c = self.exec_opts(
            from,
            Step::Batch {
                from,
                to,
                calls,
                bytes_each,
            },
            opts,
            ready,
        );
        (c.done, c.inv)
    }

    /// A synchronous round trip from `from`'s core into `to`'s core: both
    /// legs priced by the serving core's system, each leg surcharged when
    /// the call crosses cores, the serving core busy for the whole trip.
    /// Thin wrapper over [`exec`](Self::exec).
    pub fn exec_roundtrip(
        &mut self,
        from: CoreId,
        to: CoreId,
        request: u64,
        response: u64,
        ready: u64,
    ) -> (u64, Invocation) {
        let c = self.exec(
            from,
            Step::Roundtrip {
                from,
                to,
                request,
                response,
            },
            ready,
        );
        (c.done, c.inv)
    }

    /// Compute at `core`, starting no earlier than `ready`. Thin wrapper
    /// over [`exec`](Self::exec).
    pub fn exec_compute(&mut self, core: CoreId, cycles: u64, ready: u64) -> u64 {
        self.exec(core, Step::Compute { at: core, cycles }, ready)
            .done
    }

    /// One pass over `bytes` of data at `core` (memcpy-grade work scaled
    /// by `intensity_x10 / 10`), starting no earlier than `ready`. Thin
    /// wrapper over [`exec`](Self::exec).
    pub fn exec_data_pass(
        &mut self,
        core: CoreId,
        bytes: u64,
        intensity_x10: u64,
        ready: u64,
    ) -> u64 {
        self.exec(
            core,
            Step::DataPass {
                at: core,
                bytes,
                intensity_x10,
            },
            ready,
        )
        .done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed {
        base: u64,
        migrating: bool,
    }

    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, self.base)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
        fn migrating_threads(&self) -> bool {
            self.migrating
        }
    }

    fn fixed() -> Box<dyn IpcSystem> {
        Box::new(Fixed {
            base: 100,
            migrating: false,
        })
    }

    fn migrating() -> Box<dyn IpcSystem> {
        Box::new(Fixed {
            base: 100,
            migrating: true,
        })
    }

    fn world(n: usize) -> MultiWorld {
        MultiWorld::builder()
            .topology(Topology::single_socket(n))
            .build(fixed)
    }

    #[test]
    fn adapter_adds_the_surcharge_into_the_ledger() {
        let mut cc = CrossCore::new(fixed());
        for bytes in [0usize, 64, 4096] {
            let inv = cc.oneway(bytes, &InvokeOpts::call());
            let expect = XCoreCost::u500().hop_extra(bytes as u64);
            assert_eq!(inv.ledger.get(Phase::CrossCore), expect);
            assert_eq!(inv.total, inv.ledger.total());
            assert_eq!(inv.total, 100 + bytes as u64 + expect);
        }
        assert_eq!(cc.name(), "fixed+xcore");
    }

    #[test]
    fn migrating_systems_cross_for_free() {
        let mut cc = CrossCore::new(migrating());
        let inv = cc.oneway(4096, &InvokeOpts::call());
        assert_eq!(inv.ledger.get(Phase::CrossCore), 0);
        // The zero-cost span is still recorded: the hop *did* cross.
        assert!(inv
            .ledger
            .spans()
            .iter()
            .any(|(p, _)| *p == Phase::CrossCore));
        assert_eq!(inv.total, 100 + 4096);
    }

    #[test]
    fn surcharge_constant_part_matches_the_cost_model() {
        let xc = XCoreCost::u500();
        assert_eq!(xc.ipi + xc.remote_wakeup, CostModel::u500().cross_core_base);
        assert_eq!(xc.hop_extra(0), CostModel::u500().cross_core_base);
        assert!(xc.hop_extra(4096) > xc.hop_extra(0));
    }

    #[test]
    fn distance_scales_every_surcharge_component() {
        let xc = XCoreCost::u500();
        // Distance 0 is exactly the flat surcharge.
        for bytes in [0u64, 64, 4096] {
            assert_eq!(xc.hop_extra_at(bytes, 0), xc.hop_extra(bytes));
            assert_eq!(xc.migrating_hop_extra(bytes, 0), 0);
        }
        // Distance 2 at the default numa_x10 = 5 doubles the whole hop.
        assert_eq!(xc.hop_extra_at(4096, 2), 2 * xc.hop_extra(4096));
        // Migrating threads pay only the cache-line distance term.
        assert_eq!(xc.migrating_hop_extra(4096, 2), 64 * xc.line_transfer);
        assert_eq!(xc.migrating_hop_extra(0, 2), 0);
        // Monotone in distance.
        assert!(xc.hop_extra_at(64, 4) > xc.hop_extra_at(64, 2));
        assert!(xc.migrating_hop_extra(64, 4) > xc.migrating_hop_extra(64, 2));
    }

    #[test]
    fn same_core_hops_pay_no_surcharge() {
        let mut mw = world(2);
        let (done, inv) = mw.exec_oneway(0, 0, 64, &InvokeOpts::call(), 0);
        assert_eq!(inv.ledger.get(Phase::CrossCore), 0);
        assert_eq!(done, 164);
        let (_, inv) = mw.exec_oneway(0, 1, 64, &InvokeOpts::call(), 0);
        assert_eq!(
            inv.ledger.get(Phase::CrossCore),
            XCoreCost::u500().hop_extra(64)
        );
    }

    #[test]
    fn cross_socket_hops_pay_the_distance_scaled_surcharge() {
        let mut mw = MultiWorld::builder()
            .topology(Topology::dual_socket())
            .build(fixed);
        // Intra-socket (0 → 1): flat surcharge.
        let (_, local) = mw.exec_oneway(0, 1, 64, &InvokeOpts::call(), 0);
        assert_eq!(
            local.ledger.get(Phase::CrossCore),
            XCoreCost::u500().hop_extra(64)
        );
        // Cross-socket (0 → 4): distance-2 surcharge, 2x at numa_x10 = 5.
        let (_, remote) = mw.exec_oneway(0, 4, 64, &InvokeOpts::call(), 0);
        assert_eq!(
            remote.ledger.get(Phase::CrossCore),
            2 * XCoreCost::u500().hop_extra(64)
        );
        assert!(remote.total > local.total);
    }

    #[test]
    fn migrating_threads_cross_sockets_for_the_line_distance_term() {
        let mut mw = MultiWorld::builder()
            .topology(Topology::dual_socket())
            .build(migrating);
        // Intra-socket: completely free, no CrossCore span at all.
        let (_, local) = mw.exec_oneway(0, 3, 4096, &InvokeOpts::call(), 0);
        assert!(!local
            .ledger
            .spans()
            .iter()
            .any(|(p, _)| *p == Phase::CrossCore));
        // Cross-socket: only the cache-line distance term.
        let (_, remote) = mw.exec_oneway(0, 4, 4096, &InvokeOpts::call(), 0);
        assert_eq!(
            remote.ledger.get(Phase::CrossCore),
            XCoreCost::u500().migrating_hop_extra(4096, 2)
        );
        // A zero-byte migrating hop stays free even across sockets (the
        // generic `Fixed` models no x-entry shard).
        let (_, zero) = mw.exec_oneway(0, 4, 0, &InvokeOpts::call(), 0);
        assert_eq!(zero.ledger.get(Phase::CrossCore), 0);
    }

    #[test]
    fn builder_validates_the_core_count() {
        // Fits: 2 active cores on the 4-core single socket.
        let mw = MultiWorld::builder().cores(2).build(fixed);
        assert_eq!(mw.n_cores(), 2);
        assert_eq!(mw.topology(), &Topology::u500());
        // Default: every core the topology has.
        let mw = MultiWorld::builder()
            .topology(Topology::dual_socket())
            .build(fixed);
        assert_eq!(mw.n_cores(), 8);
    }

    #[test]
    #[should_panic(expected = "do not fit the topology")]
    fn builder_rejects_more_cores_than_the_topology_has() {
        let _ = MultiWorld::builder().cores(5).build(fixed);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn builder_rejects_zero_cores() {
        let _ = MultiWorld::builder().cores(0).build(fixed);
    }

    #[test]
    fn depth_one_fused_program_prices_like_a_roundtrip() {
        // The fused path's anchor: one hop, no handover, no compute must
        // reproduce Step::Roundtrip span for span — ledger, completion
        // time, and the serving core's accounting.
        let program = crate::program::Recipe::new(0)
            .hop(1, 10)
            .reply(20)
            .build()
            .unwrap();
        let mut fused = world(2);
        let id = fused.register_program(program);
        let c_fused = fused.exec(0, Step::Fused(id), 0);
        let mut plain = world(2);
        let c_plain = plain.exec(
            0,
            Step::Roundtrip {
                from: 0,
                to: 1,
                request: 10,
                response: 20,
            },
            0,
        );
        assert_eq!(c_fused.done, c_plain.done);
        assert_eq!(c_fused.inv.ledger, c_plain.inv.ledger);
        assert_eq!(c_fused.inv.total, c_plain.inv.total);
        assert_eq!(fused.core(1).cycles, plain.core(1).cycles);
        assert_eq!(fused.core(1).stats.ipc_count, 1);
    }

    #[test]
    fn fused_exec_into_matches_fused_exec() {
        let program = crate::program::Recipe::new(0)
            .hop(1, 64)
            .compute(200)
            .hop(2, 128)
            .reply(16)
            .build()
            .unwrap();
        let mut a = world(3);
        let id_a = a.register_program(program.clone());
        let c = a.exec(0, Step::Fused(id_a), 0);
        let mut b = world(3);
        let id_b = b.register_program(program);
        let mut out = CycleLedger::new();
        let done = b.exec_into(0, Step::Fused(id_b), 0, &mut out);
        assert_eq!(done, c.done);
        assert_eq!(out, c.inv.ledger);
        // The identity-map exec and the explicit identity map agree.
        let mut d = world(3);
        let id_d = d.register_program(b.program(id_b).clone());
        let c_mapped = d.exec_fused(0, id_d, &[0, 1, 2], 0);
        assert_eq!(c_mapped, c);
    }

    #[test]
    fn fused_program_serves_on_the_entry_core_with_hop_count_calls() {
        let program = crate::program::Recipe::new(0)
            .hop(1, 64)
            .hop(2, 64)
            .hop(1, 64)
            .reply(8)
            .build()
            .unwrap();
        let mut mw = world(3);
        let id = mw.register_program(program);
        let (client, entry, calls) = mw.fused_route(id, &[0, 1, 2]);
        assert_eq!((client, entry, calls), (0, 1, 3));
        let c = mw.exec(0, Step::Fused(id), 0);
        // All busy time (and the 3 ipc calls) land on the entry core.
        assert_eq!(mw.core(1).cycles, c.inv.total);
        assert_eq!(mw.core(1).stats.ipc_count, 3);
        assert_eq!(mw.core(2).cycles, 0);
        assert_eq!(mw.free_at(1), c.done);
        assert_eq!(mw.free_at(2), 0);
    }

    #[test]
    fn fused_compute_extends_the_clock_but_not_the_ipc_ledger() {
        let with_compute = crate::program::Recipe::new(0)
            .hop(1, 64)
            .compute(500)
            .reply(8)
            .build()
            .unwrap();
        let without = crate::program::Recipe::new(0)
            .hop(1, 64)
            .reply(8)
            .build()
            .unwrap();
        let mut a = world(2);
        let id = a.register_program(with_compute);
        let ca = a.exec(0, Step::Fused(id), 0);
        let mut b = world(2);
        let id = b.register_program(without);
        let cb = b.exec(0, Step::Fused(id), 0);
        assert_eq!(ca.inv.ledger, cb.inv.ledger, "compute is not IPC");
        assert_eq!(ca.done, cb.done + 500);
        assert_eq!(a.core(1).stats.other_cycles, 500);
    }

    #[test]
    fn handover_edges_shrink_the_moved_bytes_only_on_capable_systems() {
        let program = crate::program::Recipe::new(0)
            .handover(1, 4096)
            .reply(0)
            .build()
            .unwrap();
        // `Fixed` charges Transfer = msg_len, so the moved bytes are
        // visible in the ledger. Without handover support the edge
        // copies all 4096 bytes...
        let mut plain = world(2);
        let id = plain.register_program(program.clone());
        let c = plain.exec(0, Step::Fused(id), 0);
        assert_eq!(c.inv.ledger.get(Phase::Transfer), 4096);
        // ...and a handover-capable system moves only the descriptor.
        struct HandFixed;
        impl IpcSystem for HandFixed {
            fn name(&self) -> String {
                "hand-fixed".into()
            }
            fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
                Invocation::from_ledger(
                    CycleLedger::new()
                        .with(Phase::Trap, 100)
                        .with(Phase::Transfer, msg_len as u64),
                    msg_len as u64,
                )
            }
            fn supports_handover(&self) -> bool {
                true
            }
        }
        let mut hand = MultiWorld::builder()
            .topology(Topology::single_socket(2))
            .build(|| Box::new(HandFixed));
        let id = hand.register_program(program);
        let c = hand.exec(0, Step::Fused(id), 0);
        assert_eq!(
            c.inv.ledger.get(Phase::Transfer),
            HANDOVER_DESC_BYTES,
            "the relay segment carries the payload; only the descriptor moves"
        );
    }

    #[test]
    fn unified_exec_matches_the_wrappers() {
        let step = Step::Roundtrip {
            from: 0,
            to: 1,
            request: 10,
            response: 20,
        };
        let mut a = world(2);
        let c = a.exec(0, step, 0);
        let mut b = world(2);
        let (done, inv) = b.exec_roundtrip(0, 1, 10, 20, 0);
        assert_eq!((c.done, c.inv), (done, inv));
        // Compute steps complete with an empty invocation.
        let c = a.exec(1, Step::Compute { at: 1, cycles: 50 }, 0);
        assert_eq!(c.inv, Invocation::default());
        assert_eq!(c.done, a.free_at(1));
    }

    #[test]
    fn cores_are_fifo_servers() {
        let mut mw = world(2);
        // Two 100-cycle computes both ready at t=0 on core 0: the second
        // queues behind the first.
        assert_eq!(mw.exec_compute(0, 100, 0), 100);
        assert_eq!(mw.exec_compute(0, 100, 0), 200);
        // A third on core 1 runs immediately.
        assert_eq!(mw.exec_compute(1, 100, 0), 100);
        assert_eq!(mw.free_at(0), 200);
        assert_eq!(mw.busy_cycles(), 300);
    }

    #[test]
    fn least_loaded_prefers_the_idle_core() {
        let mut mw = world(3);
        mw.exec_compute(0, 500, 0);
        mw.exec_compute(1, 200, 0);
        assert_eq!(mw.least_loaded(), 2);
        mw.exec_compute(2, 900, 0);
        assert_eq!(mw.least_loaded(), 1);
    }

    #[test]
    fn weighted_least_loaded_trades_distance_against_queue_depth() {
        let mut mw = MultiWorld::builder()
            .topology(Topology::dual_socket())
            .build(fixed);
        // All idle: socket-0 cores win outright (core 0 by tie-break).
        assert_eq!(mw.least_loaded_weighted(), 0);
        // Load up socket 0 lightly: the remote socket is idle but must
        // beat the local queue by more than its distance penalty.
        for c in 0..4 {
            mw.exec_compute(c, 10, 0);
        }
        assert_eq!(mw.least_loaded_weighted(), 0, "10 cycles < the penalty");
        assert_eq!(mw.least_loaded(), 4, "the naive policy jumps sockets");
        // Pile enough work on socket 0 and the remote socket pays off.
        for c in 0..4 {
            mw.exec_compute(c, 1_000_000, 0);
        }
        assert_eq!(mw.least_loaded_weighted(), 4);
    }

    #[test]
    fn placement_policies_map_services() {
        let mw = world(4);
        assert_eq!(
            Placement::SameCore.assign(7, 3, &mw).unwrap(),
            vec![0, 0, 0]
        );
        assert_eq!(
            Placement::Pinned(vec![0, 1, 2, 3])
                .assign(0, 4, &mw)
                .unwrap(),
            vec![0, 1, 2, 3]
        );
        // Round robin keeps the client (service 0) on core 0.
        assert_eq!(
            Placement::RoundRobin.assign(5, 3, &mw).unwrap(),
            vec![0, 1, 1]
        );
        assert_eq!(
            Placement::RoundRobin.assign(4, 3, &mw).unwrap(),
            vec![0, 0, 0]
        );
        assert_eq!(
            Placement::LeastLoaded.assign(0, 2, &mw).unwrap(),
            vec![0, 0]
        );
    }

    #[test]
    fn assign_never_exceeds_the_core_count() {
        // Regression: the 1-core/many-services corner must map every
        // service (and every policy) to core 0, never out of range.
        let mut mw = world(1);
        mw.exec_compute(0, 100, 0);
        for policy in [
            Placement::SameCore,
            Placement::Pinned(vec![7, 3, 9, 2, 11]),
            Placement::RoundRobin,
            Placement::LeastLoaded,
        ] {
            for r in 0..5 {
                let map = policy.assign(r, 5, &mw).unwrap();
                assert_eq!(map.len(), 5, "{}", policy.label());
                assert!(
                    map.iter().all(|&c| c < mw.n_cores()),
                    "{} assigned out-of-range core: {map:?}",
                    policy.label()
                );
            }
        }
    }

    #[test]
    fn cross_core_surcharge_is_per_call_in_a_batch() {
        // `Fixed` has no IpcLogic phase, so the default amortization
        // amortizes nothing: a batch of n costs exactly n oneway calls —
        // and crossing cores must still pay n full surcharges.
        let mut mw = world(2);
        let n = 8u64;
        let (_, inv) = mw.exec_batch(0, 1, n, 64, &InvokeOpts::call(), 0);
        assert_eq!(
            inv.ledger.get(Phase::CrossCore),
            n * XCoreCost::u500().hop_extra(64)
        );
        assert_eq!(inv.total, n * (100 + 64 + XCoreCost::u500().hop_extra(64)));
        assert_eq!(mw.core(1).stats.ipc_count, n);
        // Same-core batches pay none.
        let (_, inv) = mw.exec_batch(0, 0, n, 64, &InvokeOpts::call(), 0);
        assert_eq!(inv.ledger.get(Phase::CrossCore), 0);
    }

    #[test]
    fn cross_core_adapter_batches_like_the_multiworld() {
        let mut cc = CrossCore::new(fixed());
        let inv = cc.invoke_batch(4, 16, &InvokeOpts::call());
        assert_eq!(
            inv.ledger.get(Phase::CrossCore),
            4 * XCoreCost::u500().hop_extra(16)
        );
        assert_eq!(inv.total, inv.ledger.total());
        assert_eq!(cc.engine_cache_stats(), None);
    }

    #[test]
    fn roundtrip_charges_the_serving_core() {
        let mut mw = world(2);
        let (done, inv) = mw.exec_roundtrip(0, 1, 10, 20, 0);
        // Two legs of 100 + bytes, each surcharged.
        let extra = XCoreCost::u500();
        let expect = 100 + 10 + extra.hop_extra(10) + 100 + 20 + extra.hop_extra(20);
        assert_eq!(inv.total, expect);
        assert_eq!(done, expect);
        assert_eq!(mw.core(1).cycles, expect);
        assert_eq!(mw.core(0).cycles, 0);
        assert_eq!(mw.merged_ledger().total(), expect);
    }
}
