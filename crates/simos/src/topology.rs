//! Machine topology: sockets, cores, and the inter-socket distance
//! matrix that NUMA-aware pricing hangs off.
//!
//! The paper evaluates on a single-socket Rocket/U500, where every
//! cross-core hop costs the same. Scale-out changes that: on a
//! multi-socket machine an IPI, a remote wakeup, or a relay-segment
//! cache-line pull crosses the *interconnect*, and the surcharge grows
//! with how far apart the two sockets sit. A [`Topology`] makes that
//! first-class:
//!
//! * [`DistanceMatrix`] — symmetric, zero-diagonal socket-to-socket
//!   distances in abstract units (0 = same socket; the
//!   [`XCoreCost`](crate::multicore::XCoreCost) turns units into cycle
//!   multipliers);
//! * [`Topology`] — `sockets × cores_per_socket` with the distance
//!   matrix, mapping core indices to sockets;
//! * presets — [`Topology::u500`] (the paper's single-socket quad-core,
//!   under which every distance is 0 and all pricing reduces exactly to
//!   the pre-NUMA model) and [`Topology::dual_socket`] (two quad-core
//!   sockets at distance 2, the smallest machine where placement has to
//!   trade distance surcharge against queue depth).

/// Index of a socket in a [`Topology`].
pub type SocketId = usize;

/// Symmetric socket-to-socket distance matrix with a zero diagonal.
///
/// Distances are abstract units, not cycles: 0 means "same socket", and
/// each unit scales the cross-core surcharge via
/// [`XCoreCost::numa_x10`](crate::multicore::XCoreCost::numa_x10). A
/// SLIT-style two-socket board is distance 2; a four-socket ring might
/// use 2 for neighbours and 4 for the far corner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    sockets: usize,
    d: Vec<u64>,
}

impl DistanceMatrix {
    /// Build from a row-major `sockets × sockets` table. Panics unless
    /// the matrix is symmetric with a zero diagonal.
    pub fn new(sockets: usize, d: Vec<u64>) -> Self {
        assert!(sockets > 0, "a machine has at least one socket");
        assert_eq!(d.len(), sockets * sockets, "distance matrix shape");
        for a in 0..sockets {
            assert_eq!(d[a * sockets + a], 0, "socket {a}: nonzero diagonal");
            for b in 0..sockets {
                assert_eq!(
                    d[a * sockets + b],
                    d[b * sockets + a],
                    "distance({a},{b}) != distance({b},{a})"
                );
            }
        }
        DistanceMatrix { sockets, d }
    }

    /// All sockets at `remote` distance from each other (0 on the
    /// diagonal) — the fully-connected symmetric interconnect.
    pub fn uniform(sockets: usize, remote: u64) -> Self {
        let d = (0..sockets * sockets)
            .map(|i| {
                if i / sockets == i % sockets {
                    0
                } else {
                    remote
                }
            })
            .collect();
        Self::new(sockets, d)
    }

    /// Number of sockets the matrix covers.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Distance between sockets `a` and `b` (0 when `a == b`).
    pub fn get(&self, a: SocketId, b: SocketId) -> u64 {
        self.d[a * self.sockets + b]
    }
}

/// The machine shape: how many sockets, how many cores each, and how
/// far apart the sockets are.
///
/// Cores are numbered socket-major: core `i` lives on socket
/// `i / cores_per_socket`, so `[0, cores_per_socket)` is socket 0,
/// the next block socket 1, and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Sockets in the machine.
    pub sockets: usize,
    /// Cores per socket (uniform).
    pub cores_per_socket: usize,
    /// Socket-to-socket distances.
    pub distance: DistanceMatrix,
}

impl Topology {
    /// A custom topology. Panics unless the distance matrix covers
    /// exactly `sockets` sockets and both counts are nonzero.
    pub fn new(sockets: usize, cores_per_socket: usize, distance: DistanceMatrix) -> Self {
        assert!(cores_per_socket > 0, "a socket has at least one core");
        assert_eq!(
            distance.sockets(),
            sockets,
            "distance matrix covers every socket"
        );
        Topology {
            sockets,
            cores_per_socket,
            distance,
        }
    }

    /// The paper's machine: one socket, four cores, no interconnect.
    /// Every distance is 0, so NUMA-aware pricing reduces exactly to the
    /// single-socket model — the `scale` and `pipeline` experiments run
    /// under this preset unchanged.
    pub fn u500() -> Self {
        Self::single_socket(4)
    }

    /// A single socket of `cores` cores (all distances 0).
    pub fn single_socket(cores: usize) -> Self {
        Self::new(1, cores, DistanceMatrix::uniform(1, 0))
    }

    /// Two quad-core sockets at distance 2 — the smallest machine where
    /// remote hops price differently from local ones.
    pub fn dual_socket() -> Self {
        Self::new(2, 4, DistanceMatrix::uniform(2, 2))
    }

    /// Total cores in the machine.
    pub fn n_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// The socket core `core` lives on.
    pub fn socket_of(&self, core: usize) -> SocketId {
        core / self.cores_per_socket
    }

    /// Distance between the sockets of two cores (0 when they share one).
    pub fn core_distance(&self, a: usize, b: usize) -> u64 {
        self.distance.get(self.socket_of(a), self.socket_of(b))
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::u500()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_symmetric_with_zero_diagonal() {
        for topo in [
            Topology::u500(),
            Topology::dual_socket(),
            Topology::single_socket(7),
        ] {
            let m = &topo.distance;
            for a in 0..m.sockets() {
                assert_eq!(m.get(a, a), 0, "diagonal of socket {a}");
                for b in 0..m.sockets() {
                    assert_eq!(m.get(a, b), m.get(b, a), "symmetry at ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn u500_is_the_flat_single_socket_machine() {
        let t = Topology::u500();
        assert_eq!(t.n_cores(), 4);
        assert_eq!(t.sockets, 1);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.core_distance(a, b), 0);
            }
        }
    }

    #[test]
    fn dual_socket_maps_cores_socket_major() {
        let t = Topology::dual_socket();
        assert_eq!(t.n_cores(), 8);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(3), 0);
        assert_eq!(t.socket_of(4), 1);
        assert_eq!(t.socket_of(7), 1);
        assert_eq!(t.core_distance(0, 3), 0, "intra-socket");
        assert_eq!(t.core_distance(0, 4), 2, "cross-socket");
        assert_eq!(t.core_distance(4, 0), 2, "symmetric");
    }

    #[test]
    #[should_panic(expected = "nonzero diagonal")]
    fn nonzero_diagonal_is_rejected() {
        DistanceMatrix::new(2, vec![1, 2, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "distance(0,1)")]
    fn asymmetry_is_rejected() {
        DistanceMatrix::new(2, vec![0, 2, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "covers every socket")]
    fn matrix_must_cover_every_socket() {
        Topology::new(3, 2, DistanceMatrix::uniform(2, 2));
    }
}
