//! Fused multi-hop call programs (AnyCall-style).
//!
//! A [`CallProgram`] is a bounded sequence of dependent hops — each hop
//! names a service, a request payload, optional server-side compute, and
//! whether the relay segment is handed over along the edge into it — that
//! is submitted *once* and executes server-side without returning to the
//! client between hops. The [`Recipe`] builder replaces ad-hoc
//! `Vec<Step>` construction for chains: build a program, register it
//! with [`MultiWorld::register_program`], and dispatch it with a single
//! [`Step::Fused`].
//!
//! Pricing is mechanism-specific (see `IpcSystem::fused_hop_into`): XPC
//! pays one trampoline on the first hop and a cached `xcall` per
//! continuation hop, with relay-segment handover carrying the payload
//! for free; trap baselines pay a full kernel entry per hop. The static
//! side lives in `xpc-verify::verify_program`, which refuses over-deep
//! or cap-violating programs before the bench prices them.
//!
//! [`MultiWorld::register_program`]: crate::MultiWorld::register_program
//! [`Step::Fused`]: crate::Step::Fused

use std::fmt;

/// Structural cap on hops per program. Deliberately *above* the XPC link
/// stack's architectural capacity (102 linkage records) so over-deep
/// programs are representable and it is the verifier — not the builder —
/// that refuses them, differentially against the real kernel's
/// `InvalidLinkage` fault.
pub const MAX_PROGRAM_HOPS: usize = 128;

/// Payload bytes a handover edge actually moves: a segment descriptor,
/// not the data — the relay segment carries the bytes without a copy.
pub const HANDOVER_DESC_BYTES: u64 = 16;

/// Handle to a [`CallProgram`] registered with a `MultiWorld`. `Copy` so
/// `Step::Fused(ProgramId)` keeps `Step: Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramId(pub(crate) usize);

impl ProgramId {
    /// Index into the world's program table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Build an id from a raw table index. Only meaningful for ids that
    /// came from `MultiWorld::register_program` on the same world;
    /// exposed so verifiers and tests can name programs without a world.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }
}

/// One hop of a fused program: a call into `service` carrying `request`
/// bytes, followed by `compute` cycles of server-side work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Service the hop calls into (recipe space; see `Step::Fused` for
    /// the core-space contract).
    pub service: usize,
    /// Request payload bytes carried along the edge into this hop.
    pub request: u64,
    /// Server-side compute cycles the hop performs before the next hop
    /// (or the reply) issues.
    pub compute: u64,
    /// Whether the relay segment is handed over along the edge into
    /// this hop. On handover-capable systems the payload then rides the
    /// segment and the edge moves only a [`HANDOVER_DESC_BYTES`]
    /// descriptor; others copy `request` bytes regardless.
    pub handover: bool,
}

/// A bounded, verified-before-run sequence of fused hops.
///
/// Construct through [`Recipe`]; the builder enforces shape invariants
/// (non-empty, at most [`MAX_PROGRAM_HOPS`] hops) so every constructed
/// program is safe to register and price. Architectural invariants —
/// grant caps per edge, link-stack depth, single-owner handover — are
/// the verifier's job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallProgram {
    client: usize,
    hops: Vec<Hop>,
    response: u64,
}

impl CallProgram {
    /// Service issuing the program (recipe space).
    #[must_use]
    pub fn client(&self) -> usize {
        self.client
    }

    /// The hop sequence, in execution order.
    #[must_use]
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Reply payload bytes the final hop returns to the client.
    #[must_use]
    pub fn response(&self) -> u64 {
        self.response
    }

    /// Number of hops (chain depth).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.hops.len()
    }

    /// Largest service id the program names (client or any hop), for
    /// sizing placement maps and verifier plans.
    #[must_use]
    pub fn max_service(&self) -> usize {
        self.hops
            .iter()
            .map(|h| h.service)
            .fold(self.client, usize::max)
    }
}

/// Why a [`Recipe`] could not build a [`CallProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// No hops: a program must call at least one service.
    Empty,
    /// More than [`MAX_PROGRAM_HOPS`] hops.
    TooDeep {
        /// Hops requested.
        hops: usize,
        /// The structural cap.
        max: usize,
    },
    /// `compute()` was called before any `hop()`; compute cycles attach
    /// to the most recent hop.
    ComputeBeforeHop,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "a call program needs at least one hop"),
            Self::TooDeep { hops, max } => {
                write!(f, "{hops} hops exceed the structural cap of {max}")
            }
            Self::ComputeBeforeHop => {
                write!(
                    f,
                    "compute() before any hop(); compute attaches to the latest hop"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Builder for [`CallProgram`]s.
///
/// ```
/// use simos::Recipe;
///
/// let program = Recipe::new(0)      // client is service 0
///     .hop(1, 64)                   // call service 1 with 64 request bytes
///     .compute(200)                 //   ... which computes for 200 cycles
///     .handover(2, 4096)            // hand the relay segment to service 2
///     .reply(128)                   // final hop replies 128 bytes
///     .build()
///     .unwrap();
/// assert_eq!(program.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Recipe {
    client: usize,
    hops: Vec<Hop>,
    response: u64,
    premature_compute: bool,
}

impl Recipe {
    /// Start a program issued by `client` (recipe space).
    #[must_use]
    pub fn new(client: usize) -> Self {
        Self {
            client,
            hops: Vec::new(),
            response: 0,
            premature_compute: false,
        }
    }

    /// Append a hop that *copies* `request` bytes into `service`.
    #[must_use]
    pub fn hop(mut self, service: usize, request: u64) -> Self {
        self.hops.push(Hop {
            service,
            request,
            compute: 0,
            handover: false,
        });
        self
    }

    /// Append a hop that *hands the relay segment over* to `service`
    /// (carrying `request` logical bytes without a copy on systems that
    /// support handover).
    #[must_use]
    pub fn handover(mut self, service: usize, request: u64) -> Self {
        self.hops.push(Hop {
            service,
            request,
            compute: 0,
            handover: true,
        });
        self
    }

    /// Add server-side compute cycles to the most recent hop.
    #[must_use]
    pub fn compute(mut self, cycles: u64) -> Self {
        match self.hops.last_mut() {
            Some(hop) => hop.compute += cycles,
            None => self.premature_compute = true,
        }
        self
    }

    /// Set the reply payload the final hop returns to the client.
    #[must_use]
    pub fn reply(mut self, bytes: u64) -> Self {
        self.response = bytes;
        self
    }

    /// Validate shape invariants and produce the program.
    ///
    /// # Errors
    ///
    /// [`ProgramError::Empty`] with no hops,
    /// [`ProgramError::TooDeep`] above [`MAX_PROGRAM_HOPS`], and
    /// [`ProgramError::ComputeBeforeHop`] if `compute()` preceded the
    /// first `hop()`.
    pub fn build(self) -> Result<CallProgram, ProgramError> {
        if self.premature_compute {
            return Err(ProgramError::ComputeBeforeHop);
        }
        if self.hops.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.hops.len() > MAX_PROGRAM_HOPS {
            return Err(ProgramError::TooDeep {
                hops: self.hops.len(),
                max: MAX_PROGRAM_HOPS,
            });
        }
        Ok(CallProgram {
            client: self.client,
            hops: self.hops,
            response: self.response,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_the_hop_sequence_in_order() {
        let p = Recipe::new(0)
            .hop(1, 64)
            .compute(200)
            .handover(2, 4096)
            .compute(120)
            .reply(128)
            .build()
            .unwrap();
        assert_eq!(p.client(), 0);
        assert_eq!(p.response(), 128);
        assert_eq!(p.depth(), 2);
        assert_eq!(
            p.hops()[0],
            Hop {
                service: 1,
                request: 64,
                compute: 200,
                handover: false
            }
        );
        assert_eq!(
            p.hops()[1],
            Hop {
                service: 2,
                request: 4096,
                compute: 120,
                handover: true
            }
        );
        assert_eq!(p.max_service(), 2);
    }

    #[test]
    fn compute_accumulates_on_the_latest_hop() {
        let p = Recipe::new(0)
            .hop(1, 8)
            .compute(10)
            .compute(5)
            .build()
            .unwrap();
        assert_eq!(p.hops()[0].compute, 15);
    }

    #[test]
    fn empty_program_is_refused() {
        assert_eq!(Recipe::new(0).build().unwrap_err(), ProgramError::Empty);
    }

    #[test]
    fn compute_before_any_hop_is_refused() {
        assert_eq!(
            Recipe::new(0).compute(10).hop(1, 8).build().unwrap_err(),
            ProgramError::ComputeBeforeHop
        );
    }

    #[test]
    fn structural_cap_admits_over_link_stack_depths_but_not_unbounded() {
        // Deep enough to exceed the link stack (102 records) must BUILD —
        // refusing it is the verifier's job, checked against the real
        // kernel's InvalidLinkage fault.
        let mut deep = Recipe::new(0);
        for _ in 0..MAX_PROGRAM_HOPS {
            deep = deep.hop(1, 8);
        }
        assert_eq!(deep.clone().build().unwrap().depth(), MAX_PROGRAM_HOPS);
        assert_eq!(
            deep.hop(1, 8).build().unwrap_err(),
            ProgramError::TooDeep {
                hops: MAX_PROGRAM_HOPS + 1,
                max: MAX_PROGRAM_HOPS
            }
        );
    }

    #[test]
    fn errors_render_a_reason() {
        assert!(ProgramError::Empty.to_string().contains("at least one hop"));
        assert!(ProgramError::TooDeep { hops: 9, max: 4 }
            .to_string()
            .contains("structural cap"));
        assert!(ProgramError::ComputeBeforeHop
            .to_string()
            .contains("latest hop"));
    }
}
