//! Deterministic windowed load generation over a [`MultiWorld`].
//!
//! The §5.4 evaluation serves one request at a time; the ROADMAP's
//! north star is a system under *concurrent* load. This module drives
//! request recipes (sequences of [`Step`]s in service-id space) through
//! N cores in virtual time:
//!
//! * **windowed clients** — a fixed population of clients, each keeping
//!   up to `window` requests outstanding. `window = 1` is the classic
//!   closed loop ([`run`]): a client issues its next request only after
//!   the previous one completes (plus think time). Wider windows model
//!   asynchronous submission: the client fires `window` requests
//!   back-to-back and replaces each as it completes ([`run_windowed`]);
//! * **FIFO cores in virtual time** — each core is a FIFO server
//!   ([`MultiWorld::free_at`]); a step issued at `t` starts at
//!   `max(t, core_free)`. In windowed runs the wait `core_free - t` is
//!   attributed to [`Phase::Queue`] in the request ledger, so the report
//!   shows where time goes as the window opens. Closed-loop runs keep
//!   their historical ledgers untouched (no `Queue` spans) — waiting is
//!   folded into latency as it always was;
//! * **deterministic** — request ordering is "lowest issue-time first,
//!   ties to the lowest client index", and the only randomness is the
//!   in-tree seeded [`ycsb::rng`], so the same seed reproduces the same
//!   percentile report bit for bit — and `window = 1` reproduces the
//!   pre-windowed closed-loop report exactly;
//! * **ledger-derived** — every hop returns an
//!   [`Invocation`](crate::ledger::Invocation); a
//!   request's latency is the virtual-time span from issue to last step
//!   (queueing included), and the report's phase breakdown (how much of
//!   the fleet's IPC time was cross-core, transfer, queueing, …) is the
//!   merged per-request ledger.

use crate::ipc::EngineCacheStats;
use crate::ledger::{Attribution, CycleLedger, LedgerArena, LedgerRef, Phase, PhaseTotals};
use crate::multicore::{CoreId, MultiWorld, Placement, PlacementError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use ycsb::rng::Rng;

// Recipes are sequences of `Step`s in *service-id* space; the same enum,
// resolved to core space, is what `MultiWorld::exec` runs. Re-exported
// here because recipe construction is this module's vocabulary.
pub use crate::multicore::Step;

/// Closed-loop generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadGen {
    /// Concurrent clients (closed population).
    pub clients: usize,
    /// Total requests to issue across all clients.
    pub requests: u64,
    /// Seed for recipe selection (and nothing else).
    pub seed: u64,
    /// Client think time between a completion and the next issue.
    pub think_cycles: u64,
}

impl Default for LoadGen {
    fn default() -> Self {
        LoadGen {
            clients: 16,
            requests: 400,
            seed: 0x59c5_bdad,
            think_cycles: 0,
        }
    }
}

/// A load run was asked to do something structurally impossible. Raised
/// at [`run_windowed_with`] (and [`crate::serve::serve_with`]) *entry*,
/// before any request is priced — previously these were `assert!`s (and
/// the empty-roster case relied on `Rng::below`'s `debug_assert!`, so a
/// release build would draw index 0 from an empty roster and panic on
/// the slice access downstream instead of reporting the actual problem).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// The recipe roster is empty: there is nothing to draw, and
    /// `Rng::below(0)` has no uniform value to produce.
    EmptyRecipes,
    /// The client population is zero — no one can ever issue.
    NoClients,
    /// `window = 0`: a client must keep at least one request in flight.
    ZeroWindow,
    /// The placement policy rejected a service → core map.
    Placement(PlacementError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::EmptyRecipes => write!(f, "empty recipe roster: nothing to draw"),
            LoadError::NoClients => write!(f, "zero clients: no one can issue requests"),
            LoadError::ZeroWindow => {
                write!(
                    f,
                    "window = 0: a client keeps at least one request in flight"
                )
            }
            LoadError::Placement(e) => write!(f, "placement rejected the core map: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Placement(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlacementError> for LoadError {
    fn from(e: PlacementError) -> Self {
        LoadError::Placement(e)
    }
}

/// The percentile report of one load run. All quantities derive from
/// per-request virtual-time spans and merged invocation ledgers; two
/// runs with the same seed produce identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// IPC system under test.
    pub system: String,
    /// Placement policy label.
    pub policy: &'static str,
    /// Cores in the world.
    pub cores: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests each client keeps outstanding (1 = closed loop).
    pub window: usize,
    /// Requests completed.
    pub requests: u64,
    /// IPC invocations issued (a [`Step::Batch`] of n counts n).
    pub ipc_calls: u64,
    /// Virtual time of the last completion.
    pub makespan_cycles: u64,
    /// Busy cycles summed over cores (utilization numerator).
    pub busy_cycles: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Mean request latency (µs).
    pub mean_us: f64,
    /// Median request latency (µs).
    pub p50_us: f64,
    /// 95th-percentile request latency (µs).
    pub p95_us: f64,
    /// 99th-percentile request latency (µs).
    pub p99_us: f64,
    /// Phase ledger merged over every request's IPC invocations (plus
    /// [`Phase::Queue`] waiting, windowed runs only).
    pub ledger: CycleLedger,
    /// Engine-cache counters summed over cores, for systems that model
    /// one ([`None`] otherwise).
    pub engine_cache: Option<EngineCacheStats>,
}

impl LoadReport {
    /// Fraction of all IPC cycles that were cross-core surcharge.
    pub fn cross_core_fraction(&self) -> f64 {
        self.phase_fraction(Phase::CrossCore)
    }

    /// Fraction of all ledger cycles that were queue waiting (0 in
    /// closed-loop runs, which do not attribute waiting).
    pub fn queue_fraction(&self) -> f64 {
        self.phase_fraction(Phase::Queue)
    }

    fn phase_fraction(&self, phase: Phase) -> f64 {
        let total = self.ledger.total();
        if total == 0 {
            0.0
        } else {
            self.ledger.get(phase) as f64 / total as f64
        }
    }
}

/// Convert cycles (as f64, so means pass through) to microseconds at
/// `clock_hz` — the one place the report does this conversion.
fn cycles_to_us(cycles: f64, clock_hz: u64) -> f64 {
    cycles / clock_hz as f64 * 1e6
}

/// Nearest-rank percentile over an ascending-sorted slice.
///
/// Convention: the quantile `q ∈ [0, 1]` selects the 1-based rank
/// `⌈q·n⌉`, clamped to `[1, n]` — so `q = 0.5` over 100 samples is the
/// 50th smallest, `q = 0` the minimum, `q = 1` the maximum, and the
/// empty slice reports 0 at every quantile. `q` outside `[0, 1]` is a
/// contract violation (debug-asserted): `q > 1` would silently clamp to
/// the maximum, a negative `q` to the minimum, and a NaN rank would
/// reach the `f64 → usize` cast whose result for NaN is an
/// implementation artifact (0) rather than a defined quantile.
pub(crate) fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(
        (0.0..=1.0).contains(&q),
        "percentile: q = {q} outside [0, 1] (NaN included) has no nearest-rank meaning"
    );
    if sorted.is_empty() {
        return 0;
    }
    // q is in [0, 1] (asserted above), so the rank is bounded by len and
    // the cast back from f64 cannot truncate.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Resolve a recipe step from service-id space to core space via `map`;
/// from here on [`MultiWorld::exec`] / [`MultiWorld::exec_into`] do the
/// rest.
fn resolve_step(map: &[CoreId], step: &Step) -> Step {
    match *step {
        Step::Oneway { from, to, bytes } => Step::Oneway {
            from: map[from],
            to: map[to],
            bytes,
        },
        Step::Batch {
            from,
            to,
            calls,
            bytes_each,
        } => Step::Batch {
            from: map[from],
            to: map[to],
            calls,
            bytes_each,
        },
        Step::Roundtrip {
            from,
            to,
            request,
            response,
        } => Step::Roundtrip {
            from: map[from],
            to: map[to],
            request,
            response,
        },
        Step::Compute { at, cycles } => Step::Compute {
            at: map[at],
            cycles,
        },
        Step::DataPass {
            at,
            bytes,
            intensity_x10,
        } => Step::DataPass {
            at: map[at],
            bytes,
            intensity_x10,
        },
        // Fused programs resolve their services inside
        // `MultiWorld::exec_fused*` (the id carries no service fields to
        // rewrite); the request drivers intercept the variant before
        // this resolver runs.
        Step::Fused(id) => Step::Fused(id),
    }
}

/// The issuing core, serving core, and IPC-call count of a core-space
/// step.
fn step_route(resolved: &Step) -> (CoreId, CoreId, u64) {
    match *resolved {
        Step::Oneway { from, to, .. } | Step::Roundtrip { from, to, .. } => (from, to, 1),
        Step::Batch {
            from, to, calls, ..
        } => (from, to, calls),
        Step::Compute { at, .. } | Step::DataPass { at, .. } => (at, at, 0),
        // Routing a fused step needs the world's program table
        // (`MultiWorld::fused_route`); the drivers handle the variant
        // before calling here.
        Step::Fused(_) => unreachable!("fused steps route through MultiWorld::fused_route"),
    }
}

/// Run one request's steps starting at virtual time `t0` with services
/// mapped to cores by `map`. Returns the completion time and the merged
/// IPC ledger of the request.
pub fn run_request(
    mw: &mut MultiWorld,
    map: &[CoreId],
    steps: &[Step],
    t0: u64,
) -> (u64, CycleLedger) {
    let (done, ledger, _) = run_request_inner(mw, map, steps, t0, false);
    (done, ledger)
}

/// [`run_request`] plus queue attribution and call counting: when
/// `attribute_queue`, the wait each step spends behind its serving
/// core's earlier work (`free_at - t`) is charged to [`Phase::Queue`]
/// in the request ledger. Also returns the IPC calls the request made.
fn run_request_inner(
    mw: &mut MultiWorld,
    map: &[CoreId],
    steps: &[Step],
    t0: u64,
    attribute_queue: bool,
) -> (u64, CycleLedger, u64) {
    let mut t = t0;
    let mut ledger = CycleLedger::new();
    let mut ipc_calls = 0u64;
    for step in steps {
        if let Step::Fused(id) = step {
            let (issuer, serving, calls) = mw.fused_route(*id, map);
            if attribute_queue {
                ledger.charge(Phase::Queue, mw.free_at(serving).saturating_sub(t));
            }
            let c = mw.exec_fused(issuer, *id, map, t);
            ledger.merge(&c.inv.ledger);
            ipc_calls += calls;
            t = c.done;
            continue;
        }
        let resolved = resolve_step(map, step);
        let (issuer, serving, calls) = step_route(&resolved);
        if attribute_queue {
            ledger.charge(Phase::Queue, mw.free_at(serving).saturating_sub(t));
        }
        let c = mw.exec(issuer, resolved, t);
        ledger.merge(&c.inv.ledger);
        ipc_calls += calls;
        t = c.done;
    }
    (t, ledger, ipc_calls)
}

/// Where one request's spans go on the zero-alloc path: always into the
/// flat totals when sampling, and into an arena ledger when this request
/// keeps span-level detail (every request in `Full` mode, 1-in-N in
/// `Sampled`). Charge order through this sink matches the allocating
/// path span for span.
pub(crate) struct ReqSink<'a> {
    pub(crate) totals: Option<&'a mut PhaseTotals>,
    pub(crate) arena: Option<(&'a mut LedgerArena, LedgerRef)>,
}

impl ReqSink<'_> {
    fn charge(&mut self, phase: Phase, cycles: u64) {
        if let Some(t) = &mut self.totals {
            t.charge(phase, cycles);
        }
        if let Some((a, h)) = &mut self.arena {
            a.charge(*h, phase, cycles);
        }
    }

    fn merge(&mut self, ledger: &CycleLedger) {
        if let Some(t) = &mut self.totals {
            t.add_ledger(ledger);
        }
        if let Some((a, h)) = &mut self.arena {
            a.merge_ledger(*h, ledger);
        }
    }
}

/// Zero-alloc twin of [`run_request_inner`]: steps execute through
/// [`MultiWorld::exec_into`] with `step_ledger` as scratch and the
/// request's spans land in `sink`. Returns `(done, ipc_calls)`.
/// Shared with the open-loop [`crate::serve`] engine.
pub(crate) fn run_request_sink(
    mw: &mut MultiWorld,
    map: &[CoreId],
    steps: &[Step],
    t0: u64,
    attribute_queue: bool,
    step_ledger: &mut CycleLedger,
    sink: &mut ReqSink<'_>,
) -> (u64, u64) {
    let mut t = t0;
    let mut ipc_calls = 0u64;
    for step in steps {
        if let Step::Fused(id) = step {
            let (issuer, serving, calls) = mw.fused_route(*id, map);
            if attribute_queue {
                sink.charge(Phase::Queue, mw.free_at(serving).saturating_sub(t));
            }
            let done = mw.exec_fused_into(issuer, *id, map, t, step_ledger);
            sink.merge(step_ledger);
            ipc_calls += calls;
            t = done;
            continue;
        }
        let resolved = resolve_step(map, step);
        let (issuer, serving, calls) = step_route(&resolved);
        if attribute_queue {
            sink.charge(Phase::Queue, mw.free_at(serving).saturating_sub(t));
        }
        let done = mw.exec_into(issuer, resolved, t, step_ledger);
        sink.merge(step_ledger);
        ipc_calls += calls;
        t = done;
    }
    (t, ipc_calls)
}

/// Reusable buffers for a load run, meant to be threaded across the
/// cells of a sweep (mechanism × policy × window × batch) so a grid of
/// [`run_windowed_with`] calls performs its per-request work without
/// heap allocation: the latency sample, the per-request core map, the
/// per-step scratch ledger, and both event queues (issue heap and
/// per-client outstanding heaps) all reach steady-state capacity in the
/// first cell and are reused by every later one.
#[derive(Default)]
pub struct SweepScratch {
    latencies: Vec<u64>,
    map: Vec<CoreId>,
    step_ledger: CycleLedger,
    /// Min-heap of `(next issue time, client index)` — pops in exactly
    /// the historical "lowest issue-time first, ties to lowest client
    /// index" order, replacing the O(clients) linear scan.
    issue: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-client min-heaps of outstanding completion (+ think) times,
    /// replacing the O(window) linear min-scan.
    outstanding: Vec<BinaryHeap<Reverse<u64>>>,
}

impl SweepScratch {
    /// Fresh (empty) scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every buffer's *contents* while keeping their capacity —
    /// called on entry by [`run_windowed_with`] so no state can leak
    /// from one sweep cell into the next. The contamination risk this
    /// forecloses: a large cell leaves `outstanding` with more per-client
    /// heaps than a following smaller cell has clients, and
    /// `resize_with` only ever *grows* the vec — so without an explicit
    /// clear, a cell that exited abnormally (or any future driver that
    /// forgets to drain `issue`) would replay stale issue times and
    /// completion heaps into the next cell's schedule.
    pub fn clear(&mut self) {
        self.latencies.clear();
        self.map.clear();
        self.step_ledger.clear();
        self.issue.clear();
        for heap in &mut self.outstanding {
            heap.clear();
        }
    }
}

/// Drive `spec.requests` requests from `spec.clients` closed-loop
/// clients through `mw` under `policy`. Each request uses a recipe drawn
/// from `recipes` by the seeded RNG; `n_services` is the recipe
/// service-id space (service 0 is the client).
///
/// Exactly [`run_windowed`] with `window = 1` — same issue order, same
/// RNG draws, same report, bit for bit.
pub fn run(
    mw: &mut MultiWorld,
    policy: &Placement,
    n_services: usize,
    recipes: &[Vec<Step>],
    spec: &LoadGen,
) -> LoadReport {
    run_windowed(mw, policy, n_services, recipes, spec, 1)
}

/// Drive `spec.requests` requests from `spec.clients` *windowed*
/// clients: each client keeps up to `window` requests outstanding,
/// issuing a replacement (after think time) as the oldest-completing
/// one finishes. Issue order is "lowest issue-time first, ties to the
/// lowest client index"; cores serve FIFO in virtual time, and (for
/// `window > 1`) per-step queue waiting is charged to [`Phase::Queue`]
/// in the report ledger.
pub fn run_windowed(
    mw: &mut MultiWorld,
    policy: &Placement,
    n_services: usize,
    recipes: &[Vec<Step>],
    spec: &LoadGen,
    window: usize,
) -> LoadReport {
    let mut scratch = SweepScratch::new();
    let mut arena = LedgerArena::new();
    match run_windowed_with(
        mw,
        policy,
        n_services,
        recipes,
        spec,
        window,
        &mut scratch,
        Attribution::Full(&mut arena),
    ) {
        Ok(r) => r,
        Err(e) => panic!("run_windowed: {e}"),
    }
}

/// [`run_windowed`] with caller-provided scratch buffers and an explicit
/// [`Attribution`] sink — the zero-alloc hot path.
///
/// * `Attribution::Full` stages every request's span ledger through the
///   arena (truncating back after folding it into the report), and the
///   report is **bit-identical** to [`run_windowed`]'s.
/// * `Attribution::Sampled` accumulates every request into flat
///   [`PhaseTotals`] (per-phase totals *exactly* equal to full mode's —
///   flat sums commute with span merging) and additionally retains the
///   span ledger of 1-in-`every` requests in the arena. The report's
///   `ledger` is rendered from the totals in canonical [`Phase::ALL`]
///   order, so span *order* (and zero-cycle span presence) is the only
///   thing sampling gives up.
///
/// All latency, throughput, and counter fields are identical across
/// modes; only the report ledger's span layout differs as described.
///
/// # Errors
///
/// [`LoadError`] when the recipe roster is empty, the client population
/// is zero, the window is zero, or the placement policy rejects a
/// service → core map — all checked at entry (or, for placement, at the
/// offending request), before/without pricing anything.
#[allow(clippy::too_many_arguments)] // the sweep axes are the signature
pub fn run_windowed_with(
    mw: &mut MultiWorld,
    policy: &Placement,
    n_services: usize,
    recipes: &[Vec<Step>],
    spec: &LoadGen,
    window: usize,
    scratch: &mut SweepScratch,
    mut att: Attribution<'_>,
) -> Result<LoadReport, LoadError> {
    if recipes.is_empty() {
        return Err(LoadError::EmptyRecipes);
    }
    if spec.clients == 0 {
        return Err(LoadError::NoClients);
    }
    if window == 0 {
        return Err(LoadError::ZeroWindow);
    }
    let attribute_queue = window > 1;
    let mut rng = Rng::seed_from_u64(spec.seed);
    // Cross-cell hygiene: drop every buffer's contents (capacity kept)
    // before touching any of them, so a previous cell's issue times or
    // outstanding heaps can never contaminate this one.
    scratch.clear();
    // Per client: the earliest time it may issue its next request (the
    // issue heap), and the completion (+ think) times of its outstanding
    // requests (one min-heap per client).
    for c in 0..spec.clients {
        scratch.issue.push(Reverse((0, c)));
    }
    if scratch.outstanding.len() < spec.clients {
        scratch
            .outstanding
            .resize_with(spec.clients, BinaryHeap::new);
    }
    scratch
        .latencies
        .reserve(usize::try_from(spec.requests).expect("request count fits usize"));
    let mut ledger = CycleLedger::new();
    let mut makespan = 0u64;
    let mut ipc_calls = 0u64;
    for r in 0..spec.requests {
        // Next issuer: earliest-issuable client, ties to the lowest
        // index — exactly the historical linear scan's order, since the
        // heap pops the least `(issue time, client index)` pair.
        let Reverse((t0, c)) = scratch.issue.pop().expect("one entry per client");
        let pick = usize::try_from(rng.below(recipes.len() as u64)).expect("index fits usize");
        let recipe = &recipes[pick];
        policy.assign_into(r, n_services, mw, &mut scratch.map)?;
        let (done, calls) = match &mut att {
            Attribution::Full(arena) => {
                let mark = arena.mark();
                let h = arena.begin();
                let mut sink = ReqSink {
                    totals: None,
                    arena: Some((arena, h)),
                };
                let out = run_request_sink(
                    mw,
                    &scratch.map,
                    recipe,
                    t0,
                    attribute_queue,
                    &mut scratch.step_ledger,
                    &mut sink,
                );
                // Fold the request's spans into the report ledger in
                // first-charge order (what `merge(&req_ledger)` did),
                // then roll the arena back for reuse.
                for (p, cy) in arena.spans(h) {
                    ledger.charge(p, cy);
                }
                arena.truncate(mark);
                out
            }
            Attribution::Sampled {
                every,
                totals,
                arena,
            } => {
                let keep = *every != 0 && r % *every == 0;
                let h = if keep { Some(arena.begin()) } else { None };
                let mut sink = ReqSink {
                    totals: Some(totals),
                    arena: h.map(|h| (&mut **arena, h)),
                };
                run_request_sink(
                    mw,
                    &scratch.map,
                    recipe,
                    t0,
                    attribute_queue,
                    &mut scratch.step_ledger,
                    &mut sink,
                )
            }
        };
        ipc_calls += calls;
        scratch.latencies.push(done - t0);
        makespan = makespan.max(done);
        scratch.outstanding[c].push(Reverse(done + spec.think_cycles));
        let next_avail = if scratch.outstanding[c].len() >= window {
            // Window full: the next issue replaces the outstanding
            // request that completes earliest.
            let Reverse(first_done) = scratch.outstanding[c].pop().expect("window >= 1");
            t0.max(first_done)
        } else {
            t0
        };
        scratch.issue.push(Reverse((next_avail, c)));
    }
    if let Attribution::Sampled { totals, .. } = &att {
        ledger = totals.to_ledger();
    }
    scratch.latencies.sort_unstable();
    let latencies = &scratch.latencies;
    let clock_hz = mw.core(0).cost.clock_hz;
    let mean = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    Ok(LoadReport {
        system: mw.core(0).ipc_name(),
        policy: policy.label(),
        cores: mw.n_cores(),
        clients: spec.clients,
        window,
        requests: spec.requests,
        ipc_calls,
        makespan_cycles: makespan,
        busy_cycles: mw.busy_cycles(),
        throughput_rps: if makespan == 0 {
            0.0
        } else {
            spec.requests as f64 * clock_hz as f64 / makespan as f64
        },
        mean_us: cycles_to_us(mean, clock_hz),
        p50_us: cycles_to_us(percentile(latencies, 0.50) as f64, clock_hz),
        p95_us: cycles_to_us(percentile(latencies, 0.95) as f64, clock_hz),
        p99_us: cycles_to_us(percentile(latencies, 0.99) as f64, clock_hz),
        ledger,
        engine_cache: mw.engine_cache_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipc::IpcSystem;
    use crate::ledger::{Invocation, InvokeOpts};
    use crate::topology::Topology;

    struct Fixed;
    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, 100)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
    }

    fn mw(n: usize) -> MultiWorld {
        MultiWorld::builder()
            .topology(Topology::single_socket(n))
            .build(|| Box::new(Fixed))
    }

    fn recipe() -> Vec<Step> {
        vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 64,
            },
            Step::Compute { at: 1, cycles: 500 },
            Step::Roundtrip {
                from: 1,
                to: 2,
                request: 16,
                response: 1024,
            },
            Step::Oneway {
                from: 1,
                to: 0,
                bytes: 1024,
            },
        ]
    }

    fn spec() -> LoadGen {
        LoadGen {
            clients: 4,
            requests: 100,
            seed: 7,
            think_cycles: 0,
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let run_once = || {
            let mut mw = mw(4);
            run(&mut mw, &Placement::RoundRobin, 3, &[recipe()], &spec())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn different_seeds_may_differ_but_stay_consistent() {
        let mut mw = mw(2);
        let r = run(&mut mw, &Placement::SameCore, 3, &[recipe()], &spec());
        assert_eq!(r.requests, 100);
        assert!(r.makespan_cycles > 0);
        assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
        assert!(r.throughput_rps > 0.0);
        // Same-core runs never pay cross-core.
        assert_eq!(r.ledger.get(Phase::CrossCore), 0);
    }

    #[test]
    fn scale_out_wins_once_work_dominates_the_surcharge() {
        // With heavy per-request compute the cross-core tax is amortized
        // and 4 cores beat 1; with a tiny request it is not (the §5.2
        // point: cross-core IPC costs ~10k cycles, so spreading cheap
        // calls across cores is a loss for message-passing kernels).
        let heavy = {
            let mut r = recipe();
            r.push(Step::Compute {
                at: 1,
                cycles: 50_000,
            });
            r
        };
        let mut one = mw(1);
        let base = run(
            &mut one,
            &Placement::SameCore,
            3,
            std::slice::from_ref(&heavy),
            &spec(),
        );
        let mut four = mw(4);
        let scaled = run(&mut four, &Placement::RoundRobin, 3, &[heavy], &spec());
        assert!(
            scaled.throughput_rps > base.throughput_rps,
            "round-robin over 4 cores ({:.0} rps) should beat 1 core ({:.0} rps)",
            scaled.throughput_rps,
            base.throughput_rps
        );
        // Cross-core hops were actually priced.
        assert!(scaled.ledger.get(Phase::CrossCore) > 0);
        assert!(scaled.cross_core_fraction() > 0.0);

        // Tiny requests: the surcharge dominates and scale-out loses.
        let mut one = mw(1);
        let base = run(&mut one, &Placement::SameCore, 3, &[recipe()], &spec());
        let mut four = mw(4);
        let scaled = run(&mut four, &Placement::RoundRobin, 3, &[recipe()], &spec());
        assert!(scaled.throughput_rps < base.throughput_rps);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn empty_recipe_roster_is_a_typed_error_not_a_draw_from_nothing() {
        // The release-mode failure this forecloses: `Rng::below(0)`
        // used to debug_assert only, so a release build would "draw" 0
        // from an empty roster and panic on the slice index downstream.
        // Now the roster is validated at entry with a typed error.
        let mut mw = mw(2);
        let mut scratch = SweepScratch::new();
        let mut arena = LedgerArena::new();
        let err = run_windowed_with(
            &mut mw,
            &Placement::RoundRobin,
            3,
            &[],
            &spec(),
            1,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap_err();
        assert_eq!(err, LoadError::EmptyRecipes);
        assert!(err.to_string().contains("empty recipe roster"));
    }

    #[test]
    fn zero_clients_and_zero_window_are_typed_errors() {
        let mut mw = mw(2);
        let mut scratch = SweepScratch::new();
        let mut arena = LedgerArena::new();
        let no_clients = LoadGen {
            clients: 0,
            ..spec()
        };
        let err = run_windowed_with(
            &mut mw,
            &Placement::RoundRobin,
            3,
            &[recipe()],
            &no_clients,
            1,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap_err();
        assert_eq!(err, LoadError::NoClients);
        let err = run_windowed_with(
            &mut mw,
            &Placement::RoundRobin,
            3,
            &[recipe()],
            &spec(),
            0,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap_err();
        assert_eq!(err, LoadError::ZeroWindow);
    }

    #[test]
    fn rejected_placement_surfaces_as_a_typed_error() {
        let mut mw = mw(2);
        let mut scratch = SweepScratch::new();
        let mut arena = LedgerArena::new();
        // A pinned map covering 1 service cannot place a 3-service recipe.
        let err = run_windowed_with(
            &mut mw,
            &Placement::Pinned(vec![0]),
            3,
            &[recipe()],
            &spec(),
            1,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap_err();
        assert!(matches!(err, LoadError::Placement(_)), "{err}");
    }

    #[test]
    fn scratch_reused_across_shrinking_cells_matches_a_fresh_scratch() {
        // Regression for cross-cell contamination: run a large cell
        // (many clients, deep windows — every scratch buffer grows),
        // then a small cell with the *same* scratch, and require the
        // small cell's report to be bit-identical to one produced with
        // a fresh scratch. Every buffer the large cell dirtied (issue
        // heap, per-client outstanding heaps beyond the small cell's
        // client count, latency sample) must have been cleared on entry.
        let big = LoadGen {
            clients: 64,
            requests: 400,
            seed: 9,
            think_cycles: 10,
        };
        let small = LoadGen {
            clients: 3,
            requests: 50,
            seed: 4,
            think_cycles: 0,
        };
        let mut scratch = SweepScratch::new();
        let mut arena = LedgerArena::new();
        let mut mw_big = mw(4);
        let _ = run_windowed_with(
            &mut mw_big,
            &Placement::RoundRobin,
            3,
            &[recipe()],
            &big,
            16,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap();
        let mut mw_small = mw(4);
        let reused = run_windowed_with(
            &mut mw_small,
            &Placement::RoundRobin,
            3,
            &[recipe()],
            &small,
            2,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap();
        let mut fresh_scratch = SweepScratch::new();
        let mut fresh_arena = LedgerArena::new();
        let mut mw_fresh = mw(4);
        let fresh = run_windowed_with(
            &mut mw_fresh,
            &Placement::RoundRobin,
            3,
            &[recipe()],
            &small,
            2,
            &mut fresh_scratch,
            Attribution::Full(&mut fresh_arena),
        )
        .unwrap();
        assert_eq!(reused, fresh, "reused scratch must not leak state");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_rejects_q_above_one() {
        // q = 1.5 used to clamp silently to the maximum; the nearest-rank
        // contract now debug-asserts the quantile range.
        let v: Vec<u64> = (1..=10).collect();
        let _ = percentile(&v, 1.5);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_rejects_nan_q() {
        // A NaN rank would otherwise feed the f64 -> usize cast, whose
        // NaN result (0) is an artifact, not a quantile.
        let v: Vec<u64> = (1..=10).collect();
        let _ = percentile(&v, f64::NAN);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty slice: 0 at every quantile.
        assert_eq!(percentile(&[], 0.0), 0);
        assert_eq!(percentile(&[], 1.0), 0);
        // Single element: that element at every quantile.
        assert_eq!(percentile(&[42], 0.0), 42);
        assert_eq!(percentile(&[42], 0.5), 42);
        assert_eq!(percentile(&[42], 1.0), 42);
        // q = 0.0 clamps to the first element, q = 1.0 is the last.
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 10);
        // Tiny q still lands on the first element, not out of range.
        assert_eq!(percentile(&v, 0.001), 1);
        // Nearest-rank rounding: rank = ceil(q * n), so q just past a
        // rank boundary steps to the next element.
        assert_eq!(percentile(&v, 0.10), 1);
        assert_eq!(percentile(&v, 0.1000001), 2);
        assert_eq!(percentile(&v, 0.899), 9);
        assert_eq!(percentile(&v, 0.901), 10);
        // Duplicates: the rank convention reads through them unchanged.
        assert_eq!(percentile(&[5, 5, 5, 7], 0.75), 5);
        assert_eq!(percentile(&[5, 5, 5, 7], 0.76), 7);
    }

    /// The closed-loop driver exactly as it existed before the windowed
    /// refactor — kept here as the oracle that pins `run` /
    /// `run_windowed(window = 1)` to the historical behavior bit for bit.
    fn closed_loop_oracle(
        mw: &mut MultiWorld,
        policy: &Placement,
        n_services: usize,
        recipes: &[Vec<Step>],
        spec: &LoadGen,
    ) -> (Vec<u64>, CycleLedger, u64) {
        let mut rng = ycsb::rng::Rng::seed_from_u64(spec.seed);
        let mut ready = vec![0u64; spec.clients];
        let mut latencies = Vec::new();
        let mut ledger = CycleLedger::new();
        let mut makespan = 0u64;
        for r in 0..spec.requests {
            let mut c = 0;
            for i in 1..ready.len() {
                if ready[i] < ready[c] {
                    c = i;
                }
            }
            let t0 = ready[c];
            let pick = usize::try_from(rng.below(recipes.len() as u64)).expect("index fits usize");
            let recipe = &recipes[pick];
            let map = policy
                .assign(r, n_services, mw)
                .expect("placement rejected the core map");
            let (done, req_ledger) = run_request(mw, &map, recipe, t0);
            ledger.merge(&req_ledger);
            latencies.push(done - t0);
            makespan = makespan.max(done);
            ready[c] = done + spec.think_cycles;
        }
        latencies.sort_unstable();
        (latencies, ledger, makespan)
    }

    #[test]
    fn window_of_one_reproduces_the_closed_loop_bit_for_bit() {
        let spec = LoadGen {
            think_cycles: 250,
            ..spec()
        };
        let mut oracle_mw = mw(4);
        let (lat, ledger, makespan) = closed_loop_oracle(
            &mut oracle_mw,
            &Placement::RoundRobin,
            3,
            &[recipe()],
            &spec,
        );
        // Built explicitly on the single-socket u500 preset: the NUMA-aware
        // pipeline must reproduce the historical closed loop bit for bit.
        let mut mw = MultiWorld::builder()
            .topology(Topology::u500())
            .build(|| Box::new(Fixed));
        let r = run_windowed(&mut mw, &Placement::RoundRobin, 3, &[recipe()], &spec, 1);
        assert_eq!(r.ledger, ledger, "same merged ledger, span for span");
        assert_eq!(r.makespan_cycles, makespan);
        assert_eq!(r.busy_cycles, oracle_mw.busy_cycles());
        let hz = mw.core(0).cost.clock_hz;
        assert_eq!(r.p99_us, percentile(&lat, 0.99) as f64 / hz as f64 * 1e6);
        // No queue attribution in the closed loop — not even zero spans.
        assert_eq!(r.ledger.get(Phase::Queue), 0);
        assert!(!r.ledger.spans().iter().any(|(p, _)| *p == Phase::Queue));
        // And `run` is the same thing by construction.
        let mut mw2 = MultiWorld::builder()
            .topology(Topology::u500())
            .build(|| Box::new(Fixed));
        assert_eq!(
            run(&mut mw2, &Placement::RoundRobin, 3, &[recipe()], &spec),
            r
        );
    }

    /// The windowed driver exactly as it existed before the event-queue
    /// refactor: an O(clients) linear min-scan picks the next issuer and
    /// an O(window) linear min-scan picks the completion a full window
    /// replaces. Pins the `BinaryHeap` event queues to the historical
    /// order ("lowest time first, ties to the lowest client index").
    fn windowed_linear_oracle(
        mw: &mut MultiWorld,
        policy: &Placement,
        n_services: usize,
        recipes: &[Vec<Step>],
        spec: &LoadGen,
        window: usize,
    ) -> (Vec<u64>, CycleLedger, u64) {
        let attribute_queue = window > 1;
        let mut rng = ycsb::rng::Rng::seed_from_u64(spec.seed);
        let mut avail = vec![0u64; spec.clients];
        let mut outstanding: Vec<Vec<u64>> = vec![Vec::new(); spec.clients];
        let mut latencies = Vec::new();
        let mut ledger = CycleLedger::new();
        let mut makespan = 0u64;
        for r in 0..spec.requests {
            let mut c = 0;
            for i in 1..avail.len() {
                if avail[i] < avail[c] {
                    c = i;
                }
            }
            let t0 = avail[c];
            let pick = usize::try_from(rng.below(recipes.len() as u64)).expect("index fits usize");
            let recipe = &recipes[pick];
            let map = policy
                .assign(r, n_services, mw)
                .expect("placement rejected the core map");
            let (done, req_ledger, _) = run_request_inner(mw, &map, recipe, t0, attribute_queue);
            ledger.merge(&req_ledger);
            latencies.push(done - t0);
            makespan = makespan.max(done);
            outstanding[c].push(done + spec.think_cycles);
            avail[c] = if outstanding[c].len() >= window {
                let (min_i, _) = outstanding[c]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| **t)
                    .expect("window >= 1");
                let first_done = outstanding[c].swap_remove(min_i);
                t0.max(first_done)
            } else {
                t0
            };
        }
        latencies.sort_unstable();
        (latencies, ledger, makespan)
    }

    #[test]
    fn heap_event_queues_match_the_linear_scan_oracle() {
        // The determinism pin for the event-queue satellite: for every
        // window the heap-driven run reproduces the linear-scan driver's
        // latency percentiles, merged ledger, and makespan exactly.
        let spec = LoadGen {
            think_cycles: 350,
            ..spec()
        };
        for window in [1usize, 4, 16] {
            let mut oracle_mw = mw(4);
            let (lat, ledger, makespan) = windowed_linear_oracle(
                &mut oracle_mw,
                &Placement::RoundRobin,
                3,
                &[recipe()],
                &spec,
                window,
            );
            let mut heap_mw = mw(4);
            let r = run_windowed(
                &mut heap_mw,
                &Placement::RoundRobin,
                3,
                &[recipe()],
                &spec,
                window,
            );
            assert_eq!(r.ledger, ledger, "w={window}: same spans");
            assert_eq!(r.makespan_cycles, makespan, "w={window}");
            let hz = heap_mw.core(0).cost.clock_hz;
            for (q, got) in [(0.50, r.p50_us), (0.95, r.p95_us), (0.99, r.p99_us)] {
                let want = percentile(&lat, q) as f64 / hz as f64 * 1e6;
                assert_eq!(got, want, "w={window} q={q}");
            }
        }
    }

    #[test]
    fn windowed_same_seed_is_bit_identical() {
        let run_once = || {
            let mut mw = mw(4);
            run_windowed(&mut mw, &Placement::RoundRobin, 3, &[recipe()], &spec(), 16)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn open_windows_attribute_queueing() {
        // 4 clients with 4 requests in flight each against one core:
        // almost everything waits, and the wait lands in Phase::Queue.
        let heavy = vec![Step::Roundtrip {
            from: 0,
            to: 1,
            request: 64,
            response: 4096,
        }];
        let mut mw = mw(1);
        let r = run_windowed(&mut mw, &Placement::SameCore, 2, &[heavy], &spec(), 4);
        assert!(r.ledger.get(Phase::Queue) > 0, "contention must queue");
        assert!(r.queue_fraction() > 0.0);
        assert_eq!(r.window, 4);
        // Queue time is *waiting*, not work: it never inflates core busy
        // cycles, so utilization stays bounded by the makespan.
        assert!(r.busy_cycles <= r.cores as u64 * r.makespan_cycles);
    }

    #[test]
    fn wider_windows_do_not_reduce_throughput() {
        // With think time dominating service time the closed loop leaves
        // cores idle while clients think; an open window hides that.
        let spec = LoadGen {
            clients: 4,
            requests: 200,
            seed: 11,
            think_cycles: 200_000,
        };
        let rps = |window: usize| {
            let mut mw = mw(2);
            run_windowed(
                &mut mw,
                &Placement::RoundRobin,
                3,
                &[recipe()],
                &spec,
                window,
            )
            .throughput_rps
        };
        let (w1, w4, w16) = (rps(1), rps(4), rps(16));
        assert!(
            w4 > w1,
            "window 4 ({w4:.0} rps) must beat closed loop ({w1:.0} rps)"
        );
        assert!(
            w16 >= w4,
            "window 16 ({w16:.0} rps) vs window 4 ({w4:.0} rps)"
        );
    }

    #[test]
    fn batch_steps_count_their_calls() {
        let burst = vec![Step::Batch {
            from: 0,
            to: 1,
            calls: 8,
            bytes_each: 64,
        }];
        let mut mw = mw(2);
        let spec = LoadGen {
            clients: 2,
            requests: 10,
            seed: 3,
            think_cycles: 0,
        };
        let r = run(&mut mw, &Placement::RoundRobin, 2, &[burst], &spec);
        assert_eq!(r.ipc_calls, 80);
        assert_eq!(r.requests, 10);
        // `Fixed` amortizes nothing, so the batch costs 8 full calls.
        assert_eq!(r.ledger.get(Phase::Trap), 80 * 100);
        assert_eq!(r.engine_cache, None);
    }

    #[test]
    fn fused_steps_drive_the_load_loop() {
        let mut mw = mw(3);
        let program = crate::program::Recipe::new(0)
            .hop(1, 64)
            .hop(2, 128)
            .reply(16)
            .build()
            .unwrap();
        let id = mw.register_program(program);
        let fused = vec![vec![Step::Fused(id)]];
        let spec = LoadGen {
            clients: 2,
            requests: 10,
            seed: 3,
            think_cycles: 0,
        };
        let r = run(&mut mw, &Placement::RoundRobin, 3, &fused, &spec);
        assert_eq!(r.requests, 10);
        assert_eq!(r.ipc_calls, 20, "two hops per fused request");
        assert!(r.ledger.total() > 0);
        assert!(r.throughput_rps > 0.0);
    }

    #[test]
    fn windowed_fused_runs_attribute_queueing_and_match_the_sink_path() {
        let mut mw = mw(2);
        let program = crate::program::Recipe::new(0)
            .hop(1, 64)
            .reply(4096)
            .build()
            .unwrap();
        let id = mw.register_program(program);
        let fused = vec![vec![Step::Fused(id)]];
        let r = run_windowed(&mut mw, &Placement::SameCore, 2, &fused, &spec(), 4);
        assert!(r.ledger.get(Phase::Queue) > 0, "contention must queue");
        // The sampled sink path reports identical totals.
        let mut mw2 = mw2_with_program();
        let mut scratch = SweepScratch::new();
        let mut totals = crate::ledger::PhaseTotals::new();
        let mut arena = LedgerArena::new();
        let sampled = run_windowed_with(
            &mut mw2,
            &Placement::SameCore,
            2,
            &fused,
            &spec(),
            4,
            &mut scratch,
            Attribution::Sampled {
                every: 4,
                totals: &mut totals,
                arena: &mut arena,
            },
        )
        .unwrap();
        assert_eq!(sampled.ledger.total(), r.ledger.total());
        assert_eq!(sampled.ipc_calls, r.ipc_calls);
        assert_eq!(sampled.makespan_cycles, r.makespan_cycles);
    }

    fn mw2_with_program() -> MultiWorld {
        let mut w = mw(2);
        let program = crate::program::Recipe::new(0)
            .hop(1, 64)
            .reply(4096)
            .build()
            .unwrap();
        let _ = w.register_program(program);
        w
    }

    #[test]
    fn busy_cycles_bounded_by_cores_times_makespan() {
        let mut mw = mw(4);
        let r = run(&mut mw, &Placement::LeastLoaded, 3, &[recipe()], &spec());
        assert!(r.busy_cycles <= r.cores as u64 * r.makespan_cycles);
    }
}
