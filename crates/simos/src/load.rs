//! Deterministic closed-loop load generation over a [`MultiWorld`].
//!
//! The §5.4 evaluation serves one request at a time; the ROADMAP's
//! north star is a system under *concurrent* load. This module drives
//! request recipes (sequences of [`Step`]s in service-id space) through
//! N cores in virtual time:
//!
//! * **closed loop** — a fixed population of clients; each client issues
//!   its next request only after the previous one completes (plus think
//!   time), the standard closed queueing model;
//! * **deterministic** — request ordering is "lowest ready-time first,
//!   ties to the lowest client index", and the only randomness is the
//!   in-tree seeded [`ycsb::rng`], so the same seed reproduces the same
//!   percentile report bit for bit;
//! * **ledger-derived** — every hop returns an [`Invocation`]; a
//!   request's latency is the virtual-time span from issue to last step
//!   (queueing included), and the report's phase breakdown (how much of
//!   the fleet's IPC time was cross-core, transfer, …) is the merged
//!   per-request ledger.

use crate::ledger::{CycleLedger, InvokeOpts, Phase};
use crate::multicore::{CoreId, MultiWorld, Placement};
use ycsb::rng::Rng;

/// One step of a request recipe. Services are abstract indices; the
/// [`Placement`] maps them to cores per request (service 0 is the
/// client by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// A one-way IPC from `from` to `to` carrying `bytes`.
    Oneway {
        /// Sending service.
        from: usize,
        /// Receiving (and serving) service.
        to: usize,
        /// Payload bytes.
        bytes: u64,
    },
    /// A synchronous round trip from `from` into `to`.
    Roundtrip {
        /// Calling service.
        from: usize,
        /// Serving service.
        to: usize,
        /// Request payload bytes.
        request: u64,
        /// Response payload bytes.
        response: u64,
    },
    /// Fixed compute at a service.
    Compute {
        /// Computing service.
        at: usize,
        /// Cycles.
        cycles: u64,
    },
    /// One pass over data at a service (`intensity_x10 / 10` ×
    /// memcpy-grade cycles per byte).
    DataPass {
        /// Computing service.
        at: usize,
        /// Bytes touched.
        bytes: u64,
        /// Cost multiplier ×10.
        intensity_x10: u64,
    },
}

/// Closed-loop generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadGen {
    /// Concurrent clients (closed population).
    pub clients: usize,
    /// Total requests to issue across all clients.
    pub requests: u64,
    /// Seed for recipe selection (and nothing else).
    pub seed: u64,
    /// Client think time between a completion and the next issue.
    pub think_cycles: u64,
}

impl Default for LoadGen {
    fn default() -> Self {
        LoadGen {
            clients: 16,
            requests: 400,
            seed: 0x59c5_bdad,
            think_cycles: 0,
        }
    }
}

/// The percentile report of one load run. All quantities derive from
/// per-request virtual-time spans and merged invocation ledgers; two
/// runs with the same seed produce identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// IPC system under test.
    pub system: String,
    /// Placement policy label.
    pub policy: &'static str,
    /// Cores in the world.
    pub cores: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests completed.
    pub requests: u64,
    /// Virtual time of the last completion.
    pub makespan_cycles: u64,
    /// Busy cycles summed over cores (utilization numerator).
    pub busy_cycles: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Mean request latency (µs).
    pub mean_us: f64,
    /// Median request latency (µs).
    pub p50_us: f64,
    /// 95th-percentile request latency (µs).
    pub p95_us: f64,
    /// 99th-percentile request latency (µs).
    pub p99_us: f64,
    /// Phase ledger merged over every request's IPC invocations.
    pub ledger: CycleLedger,
}

impl LoadReport {
    /// Fraction of all IPC cycles that were cross-core surcharge.
    pub fn cross_core_fraction(&self) -> f64 {
        let total = self.ledger.total();
        if total == 0 {
            0.0
        } else {
            self.ledger.get(Phase::CrossCore) as f64 / total as f64
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Run one request's steps starting at virtual time `t0` with services
/// mapped to cores by `map`. Returns the completion time and the merged
/// IPC ledger of the request.
pub fn run_request(
    mw: &mut MultiWorld,
    map: &[CoreId],
    steps: &[Step],
    t0: u64,
) -> (u64, CycleLedger) {
    let mut t = t0;
    let mut ledger = CycleLedger::new();
    for step in steps {
        match *step {
            Step::Oneway { from, to, bytes } => {
                let (done, inv) =
                    mw.exec_oneway(map[from], map[to], bytes, &InvokeOpts::call(), t);
                ledger.merge(&inv.ledger);
                t = done;
            }
            Step::Roundtrip {
                from,
                to,
                request,
                response,
            } => {
                let (done, inv) = mw.exec_roundtrip(map[from], map[to], request, response, t);
                ledger.merge(&inv.ledger);
                t = done;
            }
            Step::Compute { at, cycles } => {
                t = mw.exec_compute(map[at], cycles, t);
            }
            Step::DataPass {
                at,
                bytes,
                intensity_x10,
            } => {
                t = mw.exec_data_pass(map[at], bytes, intensity_x10, t);
            }
        }
    }
    (t, ledger)
}

/// Drive `spec.requests` requests from `spec.clients` closed-loop
/// clients through `mw` under `policy`. Each request uses a recipe drawn
/// from `recipes` by the seeded RNG; `n_services` is the recipe
/// service-id space (service 0 is the client).
pub fn run(
    mw: &mut MultiWorld,
    policy: &Placement,
    n_services: usize,
    recipes: &[Vec<Step>],
    spec: &LoadGen,
) -> LoadReport {
    assert!(!recipes.is_empty(), "need at least one recipe");
    assert!(spec.clients > 0, "need at least one client");
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut ready = vec![0u64; spec.clients];
    let mut latencies = Vec::with_capacity(spec.requests as usize);
    let mut ledger = CycleLedger::new();
    let mut makespan = 0u64;
    for r in 0..spec.requests {
        // Next issuer: earliest-ready client, ties to the lowest index.
        let mut c = 0;
        for i in 1..ready.len() {
            if ready[i] < ready[c] {
                c = i;
            }
        }
        let t0 = ready[c];
        let recipe = &recipes[rng.below(recipes.len() as u64) as usize];
        let map = policy.assign(r, n_services, mw);
        let (done, req_ledger) = run_request(mw, &map, recipe, t0);
        ledger.merge(&req_ledger);
        latencies.push(done - t0);
        makespan = makespan.max(done);
        ready[c] = done + spec.think_cycles;
    }
    latencies.sort_unstable();
    let clock_hz = mw.core(0).cost.clock_hz;
    let to_us = |cycles: u64| cycles as f64 / clock_hz as f64 * 1e6;
    let mean = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    LoadReport {
        system: mw.core(0).ipc_name(),
        policy: policy.label(),
        cores: mw.n_cores(),
        clients: spec.clients,
        requests: spec.requests,
        makespan_cycles: makespan,
        busy_cycles: mw.busy_cycles(),
        throughput_rps: if makespan == 0 {
            0.0
        } else {
            spec.requests as f64 * clock_hz as f64 / makespan as f64
        },
        mean_us: mean / clock_hz as f64 * 1e6,
        p50_us: to_us(percentile(&latencies, 0.50)),
        p95_us: to_us(percentile(&latencies, 0.95)),
        p99_us: to_us(percentile(&latencies, 0.99)),
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipc::IpcSystem;
    use crate::ledger::Invocation;

    struct Fixed;
    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, 100)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
    }

    fn recipe() -> Vec<Step> {
        vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 64,
            },
            Step::Compute { at: 1, cycles: 500 },
            Step::Roundtrip {
                from: 1,
                to: 2,
                request: 16,
                response: 1024,
            },
            Step::Oneway {
                from: 1,
                to: 0,
                bytes: 1024,
            },
        ]
    }

    fn spec() -> LoadGen {
        LoadGen {
            clients: 4,
            requests: 100,
            seed: 7,
            think_cycles: 0,
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let run_once = || {
            let mut mw = MultiWorld::new(4, || Box::new(Fixed));
            run(&mut mw, &Placement::RoundRobin, 3, &[recipe()], &spec())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn different_seeds_may_differ_but_stay_consistent() {
        let mut mw = MultiWorld::new(2, || Box::new(Fixed));
        let r = run(&mut mw, &Placement::SameCore, 3, &[recipe()], &spec());
        assert_eq!(r.requests, 100);
        assert!(r.makespan_cycles > 0);
        assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
        assert!(r.throughput_rps > 0.0);
        // Same-core runs never pay cross-core.
        assert_eq!(r.ledger.get(Phase::CrossCore), 0);
    }

    #[test]
    fn scale_out_wins_once_work_dominates_the_surcharge() {
        // With heavy per-request compute the cross-core tax is amortized
        // and 4 cores beat 1; with a tiny request it is not (the §5.2
        // point: cross-core IPC costs ~10k cycles, so spreading cheap
        // calls across cores is a loss for message-passing kernels).
        let mk = || -> Box<dyn IpcSystem> { Box::new(Fixed) };
        let heavy = {
            let mut r = recipe();
            r.push(Step::Compute {
                at: 1,
                cycles: 50_000,
            });
            r
        };
        let mut one = MultiWorld::new(1, mk);
        let base = run(
            &mut one,
            &Placement::SameCore,
            3,
            std::slice::from_ref(&heavy),
            &spec(),
        );
        let mut four = MultiWorld::new(4, mk);
        let scaled = run(&mut four, &Placement::RoundRobin, 3, &[heavy], &spec());
        assert!(
            scaled.throughput_rps > base.throughput_rps,
            "round-robin over 4 cores ({:.0} rps) should beat 1 core ({:.0} rps)",
            scaled.throughput_rps,
            base.throughput_rps
        );
        // Cross-core hops were actually priced.
        assert!(scaled.ledger.get(Phase::CrossCore) > 0);
        assert!(scaled.cross_core_fraction() > 0.0);

        // Tiny requests: the surcharge dominates and scale-out loses.
        let mut one = MultiWorld::new(1, mk);
        let base = run(&mut one, &Placement::SameCore, 3, &[recipe()], &spec());
        let mut four = MultiWorld::new(4, mk);
        let scaled = run(&mut four, &Placement::RoundRobin, 3, &[recipe()], &spec());
        assert!(scaled.throughput_rps < base.throughput_rps);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn busy_cycles_bounded_by_cores_times_makespan() {
        let mut mw = MultiWorld::new(4, || Box::new(Fixed));
        let r = run(&mut mw, &Placement::LeastLoaded, 3, &[recipe()], &spec());
        assert!(r.busy_cycles <= r.cores as u64 * r.makespan_cycles);
    }
}
