//! The invocation interface every kernel model implements.
//!
//! [`IpcSystem`] is the single pipeline the whole evaluation goes
//! through: a system prices one hop of `msg_len` bytes and returns an
//! [`Invocation`] whose [`CycleLedger`](crate::ledger::CycleLedger)
//! attributes every cycle to a named [`Phase`](crate::ledger::Phase).
//! Table 1 is the printed ledger of the seL4 model, Figure 5's bars are
//! ledger diffs between XPC ablations, and Figure 6's curves are ledger
//! totals swept over message sizes — no experiment does bespoke cycle
//! math anymore.

use crate::ledger::{Invocation, InvokeOpts};

/// Flat summary of one IPC hop (legacy shape; derived from a ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IpcCost {
    /// Cycles charged.
    pub cycles: u64,
    /// Bytes copied by the mechanism (0 for handover mechanisms).
    pub copied_bytes: u64,
}

impl IpcCost {
    /// Sum two hop costs.
    pub fn plus(self, other: IpcCost) -> IpcCost {
        IpcCost {
            cycles: self.cycles + other.cycles,
            copied_bytes: self.copied_bytes + other.copied_bytes,
        }
    }
}

impl Invocation {
    /// Collapse to the flat `{cycles, copied_bytes}` summary.
    pub fn cost(&self) -> IpcCost {
        IpcCost {
            cycles: self.total,
            copied_bytes: self.copied_bytes,
        }
    }
}

/// A synchronous cross-process call system: what one hop costs, phase by
/// phase.
///
/// Implementations live in the `kernels` crate (seL4 fast/slow path,
/// Zircon channels, Binder, the historical designs of Table 7, and the
/// XPC-accelerated variants). `oneway` takes `&mut self` so systems may
/// keep warm state (engine caches, link stacks).
pub trait IpcSystem {
    /// System name (used in experiment output and JSON dumps).
    fn name(&self) -> String;

    /// Price one hop delivering `msg_len` bytes under `opts`.
    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation;

    /// Full round trip: a call leg carrying `request` bytes plus a reply
    /// leg carrying `response` bytes.
    fn roundtrip(&mut self, request: usize, response: usize) -> Invocation {
        let call = self.oneway(request, &InvokeOpts::call());
        let reply = self.oneway(response, &InvokeOpts::reply_leg());
        call.plus(reply)
    }

    /// Whether a message can be *handed over* along a chain without
    /// another copy (relay segments can; copy mechanisms cannot, §7.2).
    fn supports_handover(&self) -> bool {
        false
    }

    /// Whether a call migrates the calling thread onto the callee's
    /// address space on the *caller's* core, so crossing cores costs the
    /// same as staying (§5.2 "Multi-core IPC": `xcall` needs no IPI or
    /// remote wakeup). Message-passing kernels return `false` and pay the
    /// [`CrossCore`](crate::multicore::CrossCore) surcharge.
    fn migrating_threads(&self) -> bool {
        false
    }
}

impl IpcSystem for Box<dyn IpcSystem> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        (**self).oneway(msg_len, opts)
    }
    fn supports_handover(&self) -> bool {
        (**self).supports_handover()
    }
    fn migrating_threads(&self) -> bool {
        (**self).migrating_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{CycleLedger, Phase};

    struct Fixed(u64);
    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, self.0)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
    }

    #[test]
    fn roundtrip_sums_both_ways() {
        let mut m = Fixed(100);
        let rt = m.roundtrip(10, 20);
        assert_eq!(rt.total, 100 + 10 + 100 + 20);
        assert_eq!(rt.copied_bytes, 30);
        assert_eq!(rt.ledger.get(Phase::Trap), 200);
        assert_eq!(rt.ledger.get(Phase::Transfer), 30);
        assert_eq!(rt.total, rt.ledger.total());
    }

    #[test]
    fn default_handover_is_false() {
        assert!(!Fixed(1).supports_handover());
    }

    #[test]
    fn cost_summarises_the_invocation() {
        let mut m = Fixed(7);
        let inv = m.oneway(5, &InvokeOpts::call());
        let c = inv.cost();
        assert_eq!(c.cycles, 12);
        assert_eq!(c.copied_bytes, 5);
    }

    #[test]
    fn boxed_system_forwards() {
        let mut b: Box<dyn IpcSystem> = Box::new(Fixed(3));
        assert_eq!(b.name(), "fixed");
        assert_eq!(b.oneway(1, &InvokeOpts::call()).total, 4);
    }
}
