//! The invocation interface every kernel model implements.
//!
//! [`IpcSystem`] is the single pipeline the whole evaluation goes
//! through: a system prices one hop of `msg_len` bytes and returns an
//! [`Invocation`] whose [`CycleLedger`] attributes every cycle to a
//! named [`Phase`].
//! Table 1 is the printed ledger of the seL4 model, Figure 5's bars are
//! ledger diffs between XPC ablations, and Figure 6's curves are ledger
//! totals swept over message sizes — no experiment does bespoke cycle
//! math anymore.

use crate::ledger::{CycleLedger, Invocation, InvokeOpts, Phase};

/// Model-level engine-cache counters, mirroring `xpc-engine`'s
/// `XpcStats` for the cost-model layer: how many x-entry prefetches a
/// batched submission issued and how many repeat calls were served from
/// the one-entry cache. Systems without an engine cache report `None`
/// from [`IpcSystem::engine_cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Engine-cache prefetch operations (one per batch: the first call
    /// of a burst fetches the x-entry and populates the cache).
    pub prefetches: u64,
    /// Calls served from the engine cache (every repeat call of a batch).
    pub cache_hits: u64,
    /// Uncached x-entry lookups that had to fetch from a *remote
    /// socket's* x-entry shard (sharded tables: local-shard lookups and
    /// engine-cache hits count nothing here).
    pub shard_misses: u64,
}

impl EngineCacheStats {
    /// Fold another counter set in (summing per-core stats).
    pub fn merge(&mut self, other: EngineCacheStats) {
        self.prefetches += other.prefetches;
        self.cache_hits += other.cache_hits;
        self.shard_misses += other.shard_misses;
    }
}

/// Flat summary of one IPC hop (legacy shape; derived from a ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IpcCost {
    /// Cycles charged.
    pub cycles: u64,
    /// Bytes copied by the mechanism (0 for handover mechanisms).
    pub copied_bytes: u64,
}

impl IpcCost {
    /// Sum two hop costs.
    pub fn plus(self, other: IpcCost) -> IpcCost {
        IpcCost {
            cycles: self.cycles + other.cycles,
            copied_bytes: self.copied_bytes + other.copied_bytes,
        }
    }
}

impl Invocation {
    /// Collapse to the flat `{cycles, copied_bytes}` summary.
    pub fn cost(&self) -> IpcCost {
        IpcCost {
            cycles: self.total,
            copied_bytes: self.copied_bytes,
        }
    }
}

/// A synchronous cross-process call system: what one hop costs, phase by
/// phase.
///
/// Implementations live in the `kernels` crate (seL4 fast/slow path,
/// Zircon channels, Binder, the historical designs of Table 7, and the
/// XPC-accelerated variants). `oneway` takes `&mut self` so systems may
/// keep warm state (engine caches, link stacks).
pub trait IpcSystem {
    /// System name (used in experiment output and JSON dumps).
    fn name(&self) -> String;

    /// Price one hop delivering `msg_len` bytes under `opts`.
    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation;

    /// Sink-based [`oneway`](Self::oneway): charge the hop's phases into
    /// `out` (accumulating — `out` need not be empty) and return the
    /// bytes copied.
    ///
    /// This is the zero-alloc hot path: the kernel models override it to
    /// charge their cost constants straight into the caller's ledger (an
    /// arena scratch, in the load generators), and implement `oneway` by
    /// delegating to [`oneway_invocation`]. The default goes the other
    /// way — allocate via `oneway` and merge — so stub systems that only
    /// implement `oneway` keep working unchanged.
    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        let inv = self.oneway(msg_len, opts);
        out.merge(&inv.ledger);
        inv.copied_bytes
    }

    /// Full round trip: a call leg carrying `request` bytes plus a reply
    /// leg carrying `response` bytes.
    fn roundtrip(&mut self, request: usize, response: usize) -> Invocation {
        let call = self.oneway(request, &InvokeOpts::call());
        let reply = self.oneway(response, &InvokeOpts::reply_leg());
        call.plus(reply)
    }

    /// Whether a message can be *handed over* along a chain without
    /// another copy (relay segments can; copy mechanisms cannot, §7.2).
    fn supports_handover(&self) -> bool {
        false
    }

    /// Whether a call migrates the calling thread onto the callee's
    /// address space on the *caller's* core, so crossing cores costs the
    /// same as staying (§5.2 "Multi-core IPC": `xcall` needs no IPI or
    /// remote wakeup). Message-passing kernels return `false` and pay the
    /// [`CrossCore`](crate::multicore::CrossCore) surcharge.
    fn migrating_threads(&self) -> bool {
        false
    }

    /// The slice of one phase of the *first* call's cycles that repeat
    /// calls of a batch do **not** pay again (`first_cycles` is the first
    /// call's span for `phase`).
    ///
    /// The default amortizes half the kernel IPC logic (capability
    /// lookup, endpoint resolution — the part a batched submission
    /// resolves once) and nothing else, which is deliberately
    /// conservative for trap-based kernels: every repeat call still
    /// traps, switches and restores in full. XPC variants override this
    /// to drop the trampoline entry and the uncached x-entry fetch (the
    /// engine cache holds the entry after call one); Binder overrides it
    /// to halve the framework driver path.
    fn amortizable_cycles(&self, phase: Phase, first_cycles: u64, _opts: &InvokeOpts) -> u64 {
        match phase {
            Phase::IpcLogic => first_cycles / 2,
            _ => 0,
        }
    }

    /// Price a burst of `calls` one-way invocations of `bytes_each` bytes
    /// submitted together (AnyCall-style aggregation): the first call
    /// pays the full [`oneway`](Self::oneway) cost, every repeat call
    /// pays that minus [`amortizable_cycles`](Self::amortizable_cycles).
    /// Per-call payload transfer is never amortized — the data still has
    /// to move.
    fn invoke_batch(&mut self, calls: u64, bytes_each: usize, opts: &InvokeOpts) -> Invocation {
        let mut ledger = CycleLedger::new();
        let copied = self.invoke_batch_into(calls, bytes_each, opts, &mut ledger);
        Invocation::from_ledger(ledger, copied)
    }

    /// Sink-based [`invoke_batch`](Self::invoke_batch): charge the
    /// batch's phases into `out` and return the bytes copied. `out` must
    /// be empty on entry (the batch pricing rescales the first call's
    /// spans in place). Systems that only add side effects (stats
    /// counting) override this and delegate to [`amortized_batch_into`].
    fn invoke_batch_into(
        &mut self,
        calls: u64,
        bytes_each: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        amortized_batch_into(self, calls, bytes_each, opts, out)
    }

    /// Price hop `hop_index` of a *fused call program* (AnyCall-style:
    /// the whole chain is submitted once and executes server-side
    /// without returning to the client between hops), charging into
    /// `out` and returning the bytes copied.
    ///
    /// The default prices every hop as a full
    /// [`oneway_into`](Self::oneway_into) — trap-based kernels enter the
    /// kernel once per hop even when the chain is submitted as one
    /// program, so fusion buys them nothing but the saved replies. XPC
    /// variants override this: hop 0 pays the full trampoline entry,
    /// every continuation hop pays only a cached `xcall` (the engine
    /// cache holds the x-entry and the relay segment hands the payload
    /// over in place).
    fn fused_hop_into(
        &mut self,
        hop_index: u64,
        msg_len: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        let _ = hop_index;
        self.oneway_into(msg_len, opts, out)
    }

    /// Protection-boundary crossings a fused program of `hops` hops
    /// costs this mechanism per request. Trap baselines enter the kernel
    /// per hop (`hops`); XPC variants override to `1` — the program
    /// rides a single trampoline entry and continuation hops are
    /// user-mode `xcall`s.
    fn fused_crossings(&self, hops: u64) -> u64 {
        hops
    }

    /// Engine-cache counters accumulated by batched submissions, for
    /// systems that model one ([`None`] otherwise).
    fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        None
    }
}

/// Allocate-and-return wrapper over [`IpcSystem::oneway_into`]: a fresh
/// ledger charged through the sink path, packaged as an [`Invocation`].
/// Kernel models that implement `oneway_into` natively implement
/// `oneway` by delegating here, keeping one source of truth for the
/// cost constants.
pub fn oneway_invocation<S: IpcSystem + ?Sized>(
    sys: &mut S,
    msg_len: usize,
    opts: &InvokeOpts,
) -> Invocation {
    let mut ledger = CycleLedger::new();
    let copied = sys.oneway_into(msg_len, opts, &mut ledger);
    Invocation::from_ledger(ledger, copied)
}

/// The shared first-call + amortized-repeats pricing behind
/// [`IpcSystem::invoke_batch`]: `total(n) = first + (n - 1) * repeat`
/// where `repeat` is the first call's span minus the system's
/// [`amortizable_cycles`](IpcSystem::amortizable_cycles) slice, phase by
/// phase (saturating — a system can never amortize below zero).
///
/// Free function (not a default-method body) so overriding impls that
/// only want to add side effects (stats counting) can delegate here.
pub fn amortized_batch<S: IpcSystem + ?Sized>(
    sys: &mut S,
    calls: u64,
    bytes_each: usize,
    opts: &InvokeOpts,
) -> Invocation {
    let mut ledger = CycleLedger::new();
    let copied = amortized_batch_into(sys, calls, bytes_each, opts, &mut ledger);
    Invocation::from_ledger(ledger, copied)
}

/// Sink-based [`amortized_batch`]: prices the first call through
/// [`IpcSystem::oneway_into`], then rescales each span in place to
/// `first + (n - 1) * (first - amortizable)`. Zero allocations when
/// the system's `oneway_into` is native.
///
/// `out` must be empty on entry — the in-place rescale assumes every
/// span in `out` belongs to the first call.
pub fn amortized_batch_into<S: IpcSystem + ?Sized>(
    sys: &mut S,
    calls: u64,
    bytes_each: usize,
    opts: &InvokeOpts,
    out: &mut CycleLedger,
) -> u64 {
    assert!(calls >= 1, "a batch prices at least one call");
    debug_assert!(out.is_empty(), "batch pricing needs a pristine sink");
    let copied = sys.oneway_into(bytes_each, opts, out);
    if calls == 1 {
        return copied;
    }
    out.map_cycles(|phase, cycles| {
        let repeat = cycles.saturating_sub(sys.amortizable_cycles(phase, cycles, opts));
        cycles + (calls - 1) * repeat
    });
    copied * calls
}

impl IpcSystem for Box<dyn IpcSystem> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn oneway(&mut self, msg_len: usize, opts: &InvokeOpts) -> Invocation {
        (**self).oneway(msg_len, opts)
    }
    fn oneway_into(&mut self, msg_len: usize, opts: &InvokeOpts, out: &mut CycleLedger) -> u64 {
        (**self).oneway_into(msg_len, opts, out)
    }
    fn supports_handover(&self) -> bool {
        (**self).supports_handover()
    }
    fn migrating_threads(&self) -> bool {
        (**self).migrating_threads()
    }
    fn amortizable_cycles(&self, phase: Phase, first_cycles: u64, opts: &InvokeOpts) -> u64 {
        (**self).amortizable_cycles(phase, first_cycles, opts)
    }
    fn invoke_batch(&mut self, calls: u64, bytes_each: usize, opts: &InvokeOpts) -> Invocation {
        (**self).invoke_batch(calls, bytes_each, opts)
    }
    fn invoke_batch_into(
        &mut self,
        calls: u64,
        bytes_each: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        (**self).invoke_batch_into(calls, bytes_each, opts, out)
    }
    fn fused_hop_into(
        &mut self,
        hop_index: u64,
        msg_len: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) -> u64 {
        (**self).fused_hop_into(hop_index, msg_len, opts, out)
    }
    fn fused_crossings(&self, hops: u64) -> u64 {
        (**self).fused_crossings(hops)
    }
    fn engine_cache_stats(&self) -> Option<EngineCacheStats> {
        (**self).engine_cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{CycleLedger, Phase};

    struct Fixed(u64);
    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, self.0)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
    }

    #[test]
    fn roundtrip_sums_both_ways() {
        let mut m = Fixed(100);
        let rt = m.roundtrip(10, 20);
        assert_eq!(rt.total, 100 + 10 + 100 + 20);
        assert_eq!(rt.copied_bytes, 30);
        assert_eq!(rt.ledger.get(Phase::Trap), 200);
        assert_eq!(rt.ledger.get(Phase::Transfer), 30);
        assert_eq!(rt.total, rt.ledger.total());
    }

    #[test]
    fn default_handover_is_false() {
        assert!(!Fixed(1).supports_handover());
    }

    #[test]
    fn cost_summarises_the_invocation() {
        let mut m = Fixed(7);
        let inv = m.oneway(5, &InvokeOpts::call());
        let c = inv.cost();
        assert_eq!(c.cycles, 12);
        assert_eq!(c.copied_bytes, 5);
    }

    #[test]
    fn boxed_system_forwards() {
        let mut b: Box<dyn IpcSystem> = Box::new(Fixed(3));
        assert_eq!(b.name(), "fixed");
        assert_eq!(b.oneway(1, &InvokeOpts::call()).total, 4);
    }

    struct Amortizing;
    impl IpcSystem for Amortizing {
        fn name(&self) -> String {
            "amortizing".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, 100)
                    .with(Phase::IpcLogic, 50)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
    }

    #[test]
    fn batch_of_one_is_exactly_oneway() {
        let opts = InvokeOpts::call();
        let one = Amortizing.oneway(64, &opts);
        let batch = Amortizing.invoke_batch(1, 64, &opts);
        assert_eq!(batch, one, "batch=1 must be bit-identical to oneway");
    }

    #[test]
    fn default_amortization_halves_ipc_logic_on_repeats() {
        let opts = InvokeOpts::call();
        // first = 100 + 50 + 64; each repeat = 100 + 25 + 64.
        let b = Amortizing.invoke_batch(4, 64, &opts);
        assert_eq!(b.ledger.get(Phase::Trap), 4 * 100);
        assert_eq!(b.ledger.get(Phase::IpcLogic), 50 + 3 * 25);
        assert_eq!(b.ledger.get(Phase::Transfer), 4 * 64);
        assert_eq!(b.total, b.ledger.total());
        assert_eq!(b.copied_bytes, 4 * 64);
    }

    #[test]
    fn per_call_cost_decreases_with_batch_size() {
        let opts = InvokeOpts::call();
        let per = |n: u64| Amortizing.invoke_batch(n, 64, &opts).total as f64 / n as f64;
        assert!(per(8) < per(1));
        assert!(per(64) < per(8));
        // ...but never below the unamortized per-call floor.
        let repeat = per(1) - 25.0; // IpcLogic/2 is all the default amortizes
        assert!(per(64) >= repeat);
    }

    #[test]
    fn boxed_system_forwards_batching() {
        let mut b: Box<dyn IpcSystem> = Box::new(Amortizing);
        let direct = Amortizing.invoke_batch(8, 16, &InvokeOpts::call());
        assert_eq!(b.invoke_batch(8, 16, &InvokeOpts::call()), direct);
        assert_eq!(b.engine_cache_stats(), None);
    }

    #[test]
    fn default_oneway_into_matches_oneway() {
        let opts = InvokeOpts::call();
        let inv = Fixed(100).oneway(64, &opts);
        let mut out = CycleLedger::new();
        let copied = Fixed(100).oneway_into(64, &opts, &mut out);
        assert_eq!(out, inv.ledger);
        assert_eq!(copied, inv.copied_bytes);
        // Accumulating semantics: a second hop merges, not replaces.
        let copied2 = Fixed(100).oneway_into(64, &opts, &mut out);
        assert_eq!(copied2, 64);
        assert_eq!(out.get(Phase::Trap), 200);
    }

    #[test]
    fn oneway_invocation_round_trips_the_sink_path() {
        let opts = InvokeOpts::call();
        assert_eq!(
            oneway_invocation(&mut Fixed(9), 5, &opts),
            Fixed(9).oneway(5, &opts)
        );
    }

    #[test]
    fn invoke_batch_into_matches_invoke_batch() {
        let opts = InvokeOpts::call();
        for calls in [1, 8, 64] {
            let inv = Amortizing.invoke_batch(calls, 64, &opts);
            let mut out = CycleLedger::new();
            let copied = Amortizing.invoke_batch_into(calls, 64, &opts, &mut out);
            assert_eq!(out, inv.ledger, "batch of {calls} must match");
            assert_eq!(copied, inv.copied_bytes);
        }
    }

    #[test]
    fn default_fused_hop_is_a_full_kernel_entry_at_any_index() {
        let opts = InvokeOpts::call();
        for hop in [0, 1, 5] {
            let mut out = CycleLedger::new();
            let copied = Fixed(100).fused_hop_into(hop, 64, &opts, &mut out);
            assert_eq!(out, Fixed(100).oneway(64, &opts).ledger, "hop {hop}");
            assert_eq!(copied, 64);
        }
        assert_eq!(Fixed(100).fused_crossings(5), 5, "trap baselines scale");
    }

    #[test]
    fn boxed_system_forwards_fused_methods() {
        let mut b: Box<dyn IpcSystem> = Box::new(Fixed(3));
        let mut out = CycleLedger::new();
        assert_eq!(b.fused_hop_into(1, 8, &InvokeOpts::call(), &mut out), 8);
        assert_eq!(b.fused_crossings(4), 4);
    }

    #[test]
    fn boxed_system_forwards_sink_methods() {
        let mut b: Box<dyn IpcSystem> = Box::new(Amortizing);
        let mut out = CycleLedger::new();
        let copied = b.oneway_into(16, &InvokeOpts::call(), &mut out);
        assert_eq!(copied, 16);
        assert_eq!(out, Amortizing.oneway(16, &InvokeOpts::call()).ledger);
        assert_eq!(
            b.amortizable_cycles(Phase::IpcLogic, 50, &InvokeOpts::call()),
            25
        );
        out.clear();
        let copied = b.invoke_batch_into(4, 16, &InvokeOpts::call(), &mut out);
        assert_eq!(copied, 64);
        assert_eq!(
            out,
            Amortizing.invoke_batch(4, 16, &InvokeOpts::call()).ledger
        );
    }
}
