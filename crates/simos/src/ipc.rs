//! The IPC-mechanism interface every kernel model implements.

/// Cost of one IPC hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IpcCost {
    /// Cycles charged.
    pub cycles: u64,
    /// Bytes copied by the mechanism (0 for handover mechanisms).
    pub copied_bytes: u64,
}

impl IpcCost {
    /// Sum two hop costs.
    pub fn plus(self, other: IpcCost) -> IpcCost {
        IpcCost {
            cycles: self.cycles + other.cycles,
            copied_bytes: self.copied_bytes + other.copied_bytes,
        }
    }
}

/// A synchronous IPC mechanism: what one hop costs.
///
/// Implementations live in the `kernels` crate (seL4 fast/slow path,
/// Zircon channels, Binder, and the XPC-accelerated variants).
pub trait IpcMechanism {
    /// Mechanism name (used in experiment output).
    fn name(&self) -> String;

    /// One-way cost: deliver `bytes` from caller to callee.
    fn oneway(&self, bytes: u64) -> IpcCost;

    /// Reply cost (defaults to the one-way cost of the reply size).
    fn reply(&self, bytes: u64) -> IpcCost {
        self.oneway(bytes)
    }

    /// Full round trip.
    fn roundtrip(&self, request: u64, response: u64) -> IpcCost {
        self.oneway(request).plus(self.reply(response))
    }

    /// Whether a message can be *handed over* along a chain without
    /// another copy (relay segments can; copy mechanisms cannot, §7.2).
    fn supports_handover(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl IpcMechanism for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&self, bytes: u64) -> IpcCost {
            IpcCost {
                cycles: self.0 + bytes,
                copied_bytes: bytes,
            }
        }
    }

    #[test]
    fn roundtrip_sums_both_ways() {
        let m = Fixed(100);
        let rt = m.roundtrip(10, 20);
        assert_eq!(rt.cycles, 100 + 10 + 100 + 20);
        assert_eq!(rt.copied_bytes, 30);
    }

    #[test]
    fn default_handover_is_false() {
        assert!(!Fixed(1).supports_handover());
    }
}
