//! Deterministic scoped-thread work pool for independent sweep cells.
//!
//! Every grid experiment in the bench crate walks a small cross-product
//! of independent cells (mechanism × topology × policy × load). Each
//! cell re-seeds its generators internally (`LoadGen::seed`, the trace
//! seeds in `serve`) and builds a fresh `MultiWorld`, so a cell's result
//! is a pure function of its parameters — never of which worker ran it,
//! in what order, or what scratch buffers it reused. This module
//! exploits that: [`map_cells`] fans a `Vec` of cells over N scoped
//! threads ([`std::thread::scope`], zero external dependencies, no
//! `unsafe`) and reduces the results **in index order**, so the output
//! is byte-identical for any thread count.
//!
//! Determinism contract:
//!
//! * **Index-ordered reduction** — results land in a slot vector by cell
//!   index and are drained `0..n`, so completion order is invisible.
//! * **Per-worker arenas** — each worker owns one [`CellScratch`]
//!   (sweep + serve scratch + ledger arena) reused across the cells it
//!   happens to draw. Scratch reuse is a pure allocation optimisation:
//!   both `run_windowed_with` and `serve_with` clear scratch on entry,
//!   and the cross-cell hygiene is pinned by tests in `load`/`serve`.
//!   Steady state allocates nothing per cell beyond what the serial
//!   path already did.
//! * **Seed splitting** — cells that need their own random stream derive
//!   it as `ycsb::Rng::split(grid_seed, cell_index)`, a pure function of
//!   the cell index (see `ycsb::rng::stream_seed`), never from shared
//!   mutable generator state.
//! * **N = 1 is the serial path** — one worker means a plain in-order
//!   loop on the calling thread with a single scratch shared across
//!   cells, exactly the pre-pool code shape.
//!
//! `Send` audit (why no bounds needed changing): cells carry only plain
//! owned data — `fn() -> Box<dyn IpcSystem>` factory pointers (`Send +
//! Sync` by construction), `Placement`/`Topology` values, recipe
//! `Vec`s, and `ArrivalTrace` (a `Vec` of plain structs). Worlds
//! (`Box<dyn IpcSystem>`, not `Send` in general) are built *inside* the
//! worker from the factory pointer and dropped before the cell returns,
//! so they never cross a thread boundary and `IpcSystem` needs no
//! `Send` supertrait.
//!
//! Thread-count resolution for [`map_cells`] (first match wins):
//! a thread-local override ([`set_threads`] / [`with_threads`] — used by
//! the `--threads` flag and the differential tests), the
//! `XPC_BENCH_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};
use std::thread;

use crate::ledger::LedgerArena;
use crate::load::SweepScratch;
use crate::serve::ServeScratch;

/// The reusable buffers one pool worker carries across the cells it
/// executes: closed-loop sweep scratch, open-loop serve scratch, and a
/// ledger arena. A cell uses whichever parts it needs; the unused parts
/// stay empty and cost nothing.
#[derive(Default)]
pub struct CellScratch {
    /// Closed-loop scratch for [`crate::load::run_windowed_with`].
    pub sweep: SweepScratch,
    /// Open-loop scratch for [`crate::serve::serve_with`].
    pub serve: ServeScratch,
    /// Ledger arena threaded through either driver's `Attribution`.
    pub arena: LedgerArena,
}

impl CellScratch {
    /// Fresh (empty) scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread thread-count override. Thread-local (not process
    /// global) so `cargo test`'s parallel test threads can each pin a
    /// different count without racing.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Set (or with `None`, clear) this thread's worker-count override —
/// the strongest setting in the resolution order. `Some(0)` is
/// normalised to one worker. The `figures` binary maps `--threads N`
/// here.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.with(|c| c.set(n));
}

/// Run `f` with this thread's worker count pinned to `n`, restoring the
/// previous override afterwards (also on panic). This is the hook the
/// differential tests use to render the same experiment at 1, 2, and 8
/// workers inside one process.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// `XPC_BENCH_THREADS`, read once per process (the pool consults this
/// on every grid, so repeated env lookups would be wasted work).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("XPC_BENCH_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The worker count [`map_cells`] will use on this thread: the
/// [`set_threads`] / [`with_threads`] override if present, else
/// `XPC_BENCH_THREADS`, else the machine's available parallelism.
/// Always at least 1.
pub fn threads() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        return n;
    }
    thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Fan `cells` over [`threads`] workers; see [`map_cells_on`].
pub fn map_cells<C, T>(cells: Vec<C>, f: impl Fn(usize, C, &mut CellScratch) -> T + Sync) -> Vec<T>
where
    C: Send,
    T: Send,
{
    map_cells_on(threads(), cells, f)
}

/// Run `f(index, cell, scratch)` for every cell on up to `workers`
/// scoped threads and return the results **in cell order**, regardless
/// of worker count or scheduling. With one worker (or one cell) this is
/// a plain serial loop on the calling thread — the pre-pool code path —
/// with a single [`CellScratch`] reused across cells. With more, each
/// worker owns its scratch and pulls cells from a shared queue;
/// results land in an index-addressed slot vector.
///
/// # Panics
///
/// Propagates a panic from any cell (workers run under
/// [`std::thread::scope`], whose implicit joins resurface worker
/// panics on the caller).
pub fn map_cells_on<C, T>(
    workers: usize,
    cells: Vec<C>,
    f: impl Fn(usize, C, &mut CellScratch) -> T + Sync,
) -> Vec<T>
where
    C: Send,
    T: Send,
{
    let n = cells.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        let mut scratch = CellScratch::new();
        return cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| f(i, cell, &mut scratch))
            .collect();
    }
    let queue = Mutex::new(cells.into_iter().enumerate());
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut scratch = CellScratch::new();
                loop {
                    // Take the lock only to draw the next cell; the
                    // cell itself runs with the queue unlocked.
                    let drawn = queue.lock().expect("cell queue poisoned").next();
                    let Some((i, cell)) = drawn else { break };
                    let out = f(i, cell, &mut scratch);
                    slots.lock().expect("result slots poisoned")[i] = Some(out);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every cell fills its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order_for_any_worker_count() {
        let cells: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = cells.iter().map(|c| c * c).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = map_cells_on(workers, cells.clone(), |_, c, _| c * c);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn index_matches_the_cell_position() {
        let cells: Vec<usize> = (0..16).collect();
        let got = map_cells_on(4, cells, |i, c, _| (i, c));
        for (i, (idx, cell)) in got.into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(i, cell);
        }
    }

    #[test]
    fn empty_grid_yields_empty_results() {
        let got: Vec<u8> = map_cells_on(8, Vec::<u8>::new(), |_, c, _| c);
        assert!(got.is_empty());
    }

    #[test]
    fn override_beats_env_and_restores_after_with_threads() {
        set_threads(None);
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(7, || assert_eq!(threads(), 7));
            assert_eq!(threads(), 3);
        });
        set_threads(Some(2));
        assert_eq!(threads(), 2);
        set_threads(Some(0));
        assert_eq!(threads(), 1, "zero normalises to one worker");
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        set_threads(Some(5));
        let caught = std::panic::catch_unwind(|| with_threads(2, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(threads(), 5);
        set_threads(None);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_cells_on(4, (0..8).collect::<Vec<u32>>(), |_, c, _| {
                assert!(c != 5, "cell 5 fails");
                c
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn scratch_is_usable_and_cleared_between_cells_by_the_drivers() {
        // Smoke: cells can dirty the scratch; determinism still holds
        // because the drivers clear on entry (this test just exercises
        // the plumbing — the byte-identity proof lives in the bench
        // crate's differential tests).
        let got = map_cells_on(2, (0..6u64).collect::<Vec<_>>(), |i, c, scratch| {
            scratch.sweep.clear();
            scratch.serve.clear();
            scratch.arena.reset();
            (i as u64) + c
        });
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10]);
    }
}
