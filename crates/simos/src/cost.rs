//! The calibrated cycle-cost constants.
//!
//! Provenance of every number is one of:
//! * **Table 1** (seL4 fastpath phase breakdown measured on the U500);
//! * **Table 3 / Figure 5** (XPC instruction costs — also measured by our
//!   own emulator, see `xpc-engine`'s calibration tests);
//! * **§5.2 text** (cross-core and Zircon ratios: 81–141× and ~60×).
//!
//! Copy cost: Table 1 reports 4010 cycles to move 4 KiB through shared
//! memory, i.e. ~0.98 cycles/byte for one pass over the data. We charge
//! `copy_num/copy_den` cycles per byte per copy.

use crate::ledger::{CycleLedger, InvokeOpts, Phase};

/// Cycle-cost constants for the OS models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Trap into the kernel (Table 1: 107).
    pub trap: u64,
    /// Kernel IPC logic: capability checks etc. (Table 1: 212).
    pub ipc_logic: u64,
    /// Process switch: queues, reply cap, satp (Table 1: 146).
    pub process_switch: u64,
    /// Context restore + return to user (Table 1: 199).
    pub restore: u64,
    /// Copy cost numerator (cycles per `copy_den` bytes, one pass).
    pub copy_num: u64,
    /// Copy cost denominator.
    pub copy_den: u64,
    /// Extra cost of the seL4 *slow path* beyond the fast path (the 64 B
    /// medium-message case measured at 2182 cycles total in §2.2).
    pub slowpath_extra: u64,
    /// Full scheduler pass (slow-path IPC, async kernels).
    pub schedule: u64,
    /// Cross-core baseline IPC: IPI + remote wakeup + cache transfer
    /// (calibrated so seL4 cross-core ≈ 81× XPC at 0 B, §5.2).
    pub cross_core_base: u64,
    /// `xcall` cycles (Table 3: 18).
    pub xcall: u64,
    /// `xcall` cycles when the x-entry is already in the engine cache
    /// (Figure 5: the "+Engine Cache" bar measures 6 — see the harness
    /// test `engine_cache_reduces_xcall_to_6`). Batched repeat calls to
    /// the same entry hit the one-entry cache and pay this instead.
    pub xcall_cached: u64,
    /// Cycles to fetch an x-entry line from a remote socket's x-entry
    /// shard, *per socket-distance unit* (sharded x-entry tables: a
    /// local-shard `xcall` pays nothing, a remote lookup pays
    /// `xentry_shard_fetch × distance`). Calibrated to one cache-line
    /// pull across the interconnect per distance unit.
    pub xentry_shard_fetch: u64,
    /// `xret` cycles (Table 3: 23).
    pub xret: u64,
    /// `swapseg` cycles (Table 3: 11).
    pub swapseg: u64,
    /// Caller-side full-context trampoline (Figure 5: 76).
    pub trampoline_full: u64,
    /// Caller-side partial-context trampoline (Figure 5: 15).
    pub trampoline_partial: u64,
    /// Post-switch TLB refill penalty without tagged TLB (Figure 5: ~40).
    pub tlb_refill: u64,
    /// Zircon one-way channel IPC base: syscall + handle checks + wait
    /// queue + scheduler (calibrated to §5.2's ~60× at small sizes).
    pub zircon_oneway_base: u64,
    /// Revocation-epoch compare on the `xcall` cap walk (hardware rate:
    /// one extra field on the cache line the engine already fetched).
    pub epoch_check: u64,
    /// Software-equivalent epoch check for trap-based kernels: a
    /// generation-table lookup in the kernel IPC-logic path.
    pub epoch_check_sw: u64,
    /// Per-hop tenant flow tag stamp + verify riding the linkage record
    /// (hardware rate).
    pub flow_tag: u64,
    /// Software-equivalent flow-tag bookkeeping for trap-based kernels.
    pub flow_tag_sw: u64,
    /// Zero-on-handover scrub cost numerator (cycles per `scrub_den`
    /// bytes — a store-only pass, cheaper than a copy's load+store).
    pub scrub_num: u64,
    /// Zero-on-handover scrub cost denominator.
    pub scrub_den: u64,
    /// Core clock in Hz, for converting cycles to wall time (the U500
    /// FPGA bitstream runs at 100 MHz).
    pub clock_hz: u64,
}

impl CostModel {
    /// The RISC-V U500 calibration used throughout the evaluation.
    pub fn u500() -> Self {
        CostModel {
            trap: 107,
            ipc_logic: 212,
            process_switch: 146,
            restore: 199,
            copy_num: 4010,
            copy_den: 4096,
            slowpath_extra: 2182 - 664, // measured 64 B slow-path total 2182
            schedule: 900,
            cross_core_base: 10_700,
            xcall: 18,
            xcall_cached: 6,
            xentry_shard_fetch: 50,
            xret: 23,
            swapseg: 11,
            trampoline_full: 76,
            trampoline_partial: 15,
            tlb_refill: 40,
            zircon_oneway_base: 8_000,
            epoch_check: 2,
            epoch_check_sw: 24,
            flow_tag: 3,
            flow_tag_sw: 30,
            scrub_num: 2005,
            scrub_den: 4096,
            clock_hz: 100_000_000,
        }
    }

    /// Cycles for one pass over `bytes` (one copy).
    pub fn copy_cycles(&self, bytes: u64) -> u64 {
        bytes * self.copy_num / self.copy_den
    }

    /// The seL4 fast-path one-way cost without message transfer
    /// (Table 1's first four rows: 664).
    pub fn sel4_fastpath_base(&self) -> u64 {
        self.trap + self.ipc_logic + self.process_switch + self.restore
    }

    /// Table 1's first four rows as a ledger (sums to
    /// [`sel4_fastpath_base`](Self::sel4_fastpath_base)).
    pub fn sel4_fastpath_ledger(&self) -> CycleLedger {
        let mut l = CycleLedger::new();
        self.sel4_fastpath_into(&mut l);
        l
    }

    /// Charge Table 1's first four rows into `out` (the sink-path twin
    /// of [`sel4_fastpath_ledger`](Self::sel4_fastpath_ledger), same
    /// phases in the same order).
    pub fn sel4_fastpath_into(&self, out: &mut CycleLedger) {
        out.charge(Phase::Trap, self.trap);
        out.charge(Phase::IpcLogic, self.ipc_logic);
        out.charge(Phase::Switch, self.process_switch);
        out.charge(Phase::Restore, self.restore);
    }

    /// One-way XPC cost: trampoline + xcall + TLB refill (Figure 5's
    /// rightmost decomposition; `full_ctx` picks the trampoline flavour,
    /// `tagged_tlb` removes the refill penalty).
    pub fn xpc_oneway(&self, full_ctx: bool, tagged_tlb: bool) -> u64 {
        self.xpc_oneway_ledger(full_ctx, tagged_tlb).total()
    }

    /// The Figure 5 decomposition behind [`xpc_oneway`](Self::xpc_oneway)
    /// as a ledger: trampoline, `xcall`, and (untagged only) TLB refill.
    pub fn xpc_oneway_ledger(&self, full_ctx: bool, tagged_tlb: bool) -> CycleLedger {
        let mut l = CycleLedger::new();
        self.xpc_oneway_into(full_ctx, tagged_tlb, &mut l);
        l
    }

    /// Charge the Figure 5 decomposition into `out` (the sink-path twin
    /// of [`xpc_oneway_ledger`](Self::xpc_oneway_ledger), same phases in
    /// the same order).
    pub fn xpc_oneway_into(&self, full_ctx: bool, tagged_tlb: bool, out: &mut CycleLedger) {
        let tramp = if full_ctx {
            self.trampoline_full
        } else {
            self.trampoline_partial
        };
        out.charge(Phase::Trampoline, tramp);
        out.charge(Phase::Xcall, self.xcall);
        if !tagged_tlb {
            out.charge(Phase::TlbRefill, self.tlb_refill);
        }
    }

    /// Cycles for one zeroing pass over `bytes` (store-only).
    pub fn scrub_cycles(&self, bytes: u64) -> u64 {
        bytes * self.scrub_num / self.scrub_den
    }

    /// Charge the temporal mitigations `opts.hardening` asks for into
    /// `out` — the one pricing path every kernel model shares, so the
    /// security tax is attributed identically whether the mechanism is
    /// the XPC engine (`hw = true`: the epoch compare rides the `xcall`
    /// cap walk, the flow tag rides the linkage record push/pop) or a
    /// trap-based baseline (`hw = false`: both become kernel-side table
    /// lookups in the IPC-logic path). The zero-on-handover scrub is a
    /// per-byte store pass for everyone, charged to [`Phase::Scrub`].
    /// With [`Hardening::NONE`](crate::ledger::Hardening::NONE) this
    /// charges nothing (no spans appear), keeping unhardened ledgers
    /// byte-identical to the pre-hardening model.
    pub fn charge_hardening(
        &self,
        hw: bool,
        msg_len: usize,
        opts: &InvokeOpts,
        out: &mut CycleLedger,
    ) {
        let h = opts.hardening;
        if h.revocation_epochs && !opts.reply {
            if hw {
                out.charge(Phase::Xcall, self.epoch_check);
            } else {
                out.charge(Phase::IpcLogic, self.epoch_check_sw);
            }
        }
        if h.flow_tags {
            if hw {
                let phase = if opts.reply {
                    Phase::Xret
                } else {
                    Phase::Xcall
                };
                out.charge(phase, self.flow_tag);
            } else {
                out.charge(Phase::IpcLogic, self.flow_tag_sw);
            }
        }
        if h.zero_on_handover && msg_len > 0 {
            out.charge(Phase::Scrub, self.scrub_cycles(msg_len as u64));
        }
    }

    /// Convert cycles to microseconds at the model clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64 * 1e6
    }

    /// Convert cycles + bytes to MB/s throughput at the model clock.
    pub fn throughput_mb_s(&self, bytes: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let secs = cycles as f64 / self.clock_hz as f64;
        bytes as f64 / 1e6 / secs
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::u500()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sum_is_664() {
        assert_eq!(CostModel::u500().sel4_fastpath_base(), 664);
    }

    #[test]
    fn table1_4k_transfer_is_4010() {
        assert_eq!(CostModel::u500().copy_cycles(4096), 4010);
    }

    #[test]
    fn xpc_oneway_matches_fig5_decomposition() {
        let c = CostModel::u500();
        // Full-Cxt + Nonblock Link Stack (the default evaluation config):
        // 76 + 18 + 40 = 134.
        assert_eq!(c.xpc_oneway(true, false), 134);
        // All optimizations minus engine cache: 15 + 18 = 33 (Figure 5's
        // "+Nonblock" bar).
        assert_eq!(c.xpc_oneway(false, true), 33);
    }

    #[test]
    fn speedup_bands_match_section_5_2() {
        let c = CostModel::u500();
        let xpc = c.xpc_oneway(true, false) as f64;
        let sel4_0b = c.sel4_fastpath_base() as f64;
        let sel4_4k = sel4_0b + c.copy_cycles(4096) as f64;
        let s0 = sel4_0b / xpc;
        let s4k = sel4_4k / xpc;
        assert!((4.5..6.0).contains(&s0), "≈5x at 0B, got {s0:.1}");
        assert!((33.0..38.0).contains(&s4k), "≈37x at 4KB, got {s4k:.1}");
        // Cross-core: ≈81x at small messages.
        let cc = (c.cross_core_base as f64 + sel4_0b) / ((c.xpc_oneway(true, false)) as f64);
        assert!((75.0..90.0).contains(&cc), "≈81x cross-core, got {cc:.1}");
        // Zircon ≈60x at small messages.
        let z = c.zircon_oneway_base as f64 / xpc;
        assert!((55.0..65.0).contains(&z), "≈60x for Zircon, got {z:.1}");
    }

    #[test]
    fn ledgers_sum_to_the_scalar_helpers() {
        let c = CostModel::u500();
        assert_eq!(c.sel4_fastpath_ledger().total(), c.sel4_fastpath_base());
        assert_eq!(c.sel4_fastpath_ledger().get(Phase::IpcLogic), 212);
        for full in [true, false] {
            for tagged in [true, false] {
                let l = c.xpc_oneway_ledger(full, tagged);
                assert_eq!(l.total(), c.xpc_oneway(full, tagged));
                assert_eq!(l.get(Phase::TlbRefill) == 0, tagged);
            }
        }
    }

    #[test]
    fn hardening_off_charges_nothing() {
        let c = CostModel::u500();
        for hw in [true, false] {
            for opts in [InvokeOpts::call(), InvokeOpts::reply_leg()] {
                let mut l = CycleLedger::new();
                c.charge_hardening(hw, 4096, &opts, &mut l);
                assert!(l.is_empty(), "NONE must leave the ledger untouched");
            }
        }
    }

    #[test]
    fn hardening_rates_split_hw_vs_sw() {
        use crate::ledger::Hardening;
        let c = CostModel::u500();
        let opts = InvokeOpts::call().hardened(Hardening::ALL);
        let mut hw = CycleLedger::new();
        c.charge_hardening(true, 4096, &opts, &mut hw);
        assert_eq!(hw.get(Phase::Xcall), c.epoch_check + c.flow_tag);
        assert_eq!(hw.get(Phase::Scrub), c.scrub_cycles(4096));
        assert_eq!(hw.get(Phase::IpcLogic), 0);
        let mut sw = CycleLedger::new();
        c.charge_hardening(false, 4096, &opts, &mut sw);
        assert_eq!(sw.get(Phase::IpcLogic), c.epoch_check_sw + c.flow_tag_sw);
        assert_eq!(sw.get(Phase::Scrub), c.scrub_cycles(4096));
        assert_eq!(sw.get(Phase::Xcall), 0);
        assert!(sw.total() > hw.total(), "software mitigation costs more");
        // Reply legs re-verify the flow tag but never re-check the epoch
        // (the capability was consumed on the call leg), and scrub only
        // what they carry.
        let reply = InvokeOpts::reply_leg().hardened(Hardening::ALL);
        let mut r = CycleLedger::new();
        c.charge_hardening(true, 0, &reply, &mut r);
        assert_eq!(r.get(Phase::Xret), c.flow_tag);
        assert_eq!(r.get(Phase::Xcall), 0);
        assert_eq!(r.get(Phase::Scrub), 0);
    }

    #[test]
    fn unit_conversions() {
        let c = CostModel::u500();
        assert!((c.cycles_to_us(100) - 1.0).abs() < 1e-9);
        let t = c.throughput_mb_s(1_000_000, 100_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
