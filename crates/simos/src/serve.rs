//! Open-loop, trace-driven serving over a [`MultiWorld`]: arrival
//! processes, admission control, per-tenant SLOs, and autoscaling.
//!
//! The windowed generators in [`crate::load`] are *closed* loops: a
//! fixed client roster issues a new request only as an old one completes
//! (plus think time), so the offered load self-throttles exactly when
//! the system saturates — the regime where tail latency explodes is the
//! regime a closed loop refuses to enter. The p99 figures it produces
//! can therefore never show the saturation knee. This module drives the
//! same `MultiWorld`/recipe machinery from an **open** loop:
//!
//! * **arrival processes** — requests arrive at trace-determined virtual
//!   times regardless of completions, modeling millions of logical users
//!   none of whom waits for another. [`OpenLoopGen`] draws either
//!   memoryless Poisson arrivals or a bursty two-state on-off modulated
//!   Poisson process (an MMPP-2: bursts at an accelerated rate separated
//!   by idle gaps, long-run rate preserved), both seeded and
//!   deterministic;
//! * **compact traces** — the generator records into an
//!   [`ArrivalTrace`]: arrival cycles (sorted) × tenant × recipe id,
//!   12 bytes of meaning per arrival and nothing else. Traces are
//!   replayable (same trace ⇒ same [`ServeReport`], byte for byte) and
//!   diffable ([`ArrivalTrace::diff`]); hand-built traces enter through
//!   the same validated constructor;
//! * **admission control** — each tenant owns a bounded queue
//!   ([`TenantClass::queue_cap`] admitted-but-incomplete requests); an
//!   arrival that would overflow it is **shed**, not served and not
//!   panicked over, with the typed [`ShedCause`] accounted per tenant.
//!   An optional global backlog bound sheds arrivals whose serving cores
//!   have fallen more than [`ServeSpec::backlog_cap_cycles`] behind.
//!   Conservation is structural: `admitted + shed == offered`, exactly;
//! * **autoscaling** — [`ServePolicy::Autoscale`] turns placement into a
//!   feedback controller: every epoch it observes the mean backlog over
//!   the active cores and grows or shrinks the active set within
//!   `[min_cores, max_cores]`, dispatching each chain to the
//!   least-loaded active core. Controller activity is reported
//!   ([`AutoscaleReport`]);
//! * **zero per-request allocation** — arrivals replay through the same
//!   [`Attribution`] sinks and scratch buffers as the closed-loop hot
//!   path ([`crate::load::run_windowed_with`]), so 10⁶–10⁷ simulated
//!   requests run at arena speed.
//!
//! The per-request service pricing, queue discipline (FIFO cores in
//! virtual time), and phase attribution are byte-identical to the
//! closed-loop path — only the *issue rule* changes. At offered load far
//! below capacity the two agree on median latency (pinned by tests); as
//! offered load crosses capacity they diverge, and that divergence *is*
//! the knee curve the `serve` experiment plots.

use crate::ipc::EngineCacheStats;
use crate::ledger::{Attribution, CycleLedger, LedgerArena, Phase};
use crate::load::{percentile, run_request_sink, LoadError, ReqSink};
use crate::multicore::{CoreId, MultiWorld, Placement, Step};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use ycsb::rng::Rng;

/// One recorded arrival: when (virtual cycles), who (tenant), what
/// (recipe index into the roster the trace is served against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in virtual cycles (non-decreasing within a trace).
    pub at: u64,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// Recipe index into the serving roster.
    pub recipe: u32,
}

/// The arrival process an [`OpenLoopGen`] draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals: exponential interarrivals at the
    /// generator's mean rate.
    Poisson,
    /// Bursty two-state on-off modulated Poisson (MMPP-2): bursts of
    /// ~`burst_len` arrivals (uniform in `[1, 2·burst_len − 1]`, so the
    /// mean is `burst_len`) drawn at `accel_x10/10 ×` the mean rate,
    /// separated by idle gaps sized so the *long-run* rate still matches
    /// the generator's mean — same offered load as [`Poisson`], far
    /// worse tail.
    ///
    /// [`Poisson`]: ArrivalProcess::Poisson
    OnOff {
        /// Mean arrivals per burst (≥ 1).
        burst_len: u64,
        /// In-burst rate acceleration, ×10 (must be > 10: bursts are
        /// strictly faster than the long-run mean).
        accel_x10: u64,
    },
}

/// A seeded, deterministic open-loop arrival generator: the recorder
/// side of the generator-to-trace contract. [`OpenLoopGen::trace`]
/// produces the [`ArrivalTrace`] that [`serve`] replays; generating
/// twice with the same spec yields byte-identical traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenLoopGen {
    /// The interarrival process.
    pub process: ArrivalProcess,
    /// Mean interarrival time in cycles (the offered-load knob:
    /// `clock_hz / mean_interarrival_cycles` requests per second).
    pub mean_interarrival_cycles: u64,
    /// Tenants sharing the service (each arrival is tagged with one).
    pub tenants: u32,
    /// Logical user population arrivals are drawn from. Users only
    /// determine tenant tagging (`tenant = user % tenants`) — an open
    /// loop never waits for a user, so millions of users cost nothing.
    pub users: u64,
    /// Seed for interarrival draws, user draws, and recipe picks.
    pub seed: u64,
}

impl OpenLoopGen {
    /// A Poisson generator at `mean_interarrival_cycles`, single tenant,
    /// one million logical users.
    pub fn poisson(mean_interarrival_cycles: u64, seed: u64) -> Self {
        OpenLoopGen {
            process: ArrivalProcess::Poisson,
            mean_interarrival_cycles,
            tenants: 1,
            users: 1_000_000,
            seed,
        }
    }

    /// Draw one exponential interarrival with mean `mean` cycles.
    fn exp_cycles(rng: &mut Rng, mean: f64) -> u64 {
        let u = rng.next_f64();
        // 1 − u ∈ (0, 1], so ln is finite and ≤ 0; |ln(2⁻⁵³)| < 37, so
        // the result is bounded by 37 × mean — far inside u64 for any
        // representable mean, and non-negative by construction.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (-mean * (1.0 - u).ln()) as u64
        }
    }

    /// Record `n` arrivals over a roster of `n_recipes` recipes into a
    /// trace. Deterministic in the spec (same spec ⇒ same trace).
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the spec is degenerate: zero recipes, zero
    /// tenants, zero users, a zero mean interarrival, or an on-off
    /// process whose burst acceleration is not strictly faster than the
    /// long-run rate.
    pub fn trace(&self, n: u64, n_recipes: u32) -> Result<ArrivalTrace, ServeError> {
        if n_recipes == 0 {
            return Err(ServeError::Load(LoadError::EmptyRecipes));
        }
        if self.tenants == 0 {
            return Err(ServeError::NoTenants);
        }
        if self.users == 0 {
            return Err(ServeError::NoUsers);
        }
        if self.mean_interarrival_cycles == 0 {
            return Err(ServeError::ZeroMeanInterarrival);
        }
        let mean = self.mean_interarrival_cycles as f64;
        let (burst_len, accel_x10) = match self.process {
            ArrivalProcess::Poisson => (0, 0),
            ArrivalProcess::OnOff {
                burst_len,
                accel_x10,
            } => {
                if burst_len == 0 || accel_x10 <= 10 {
                    return Err(ServeError::BadBurstSpec {
                        burst_len,
                        accel_x10,
                    });
                }
                (burst_len, accel_x10)
            }
        };
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut arrivals = Vec::with_capacity(usize::try_from(n).expect("trace length fits usize"));
        let mut t = 0u64;
        // On-off state: arrivals left in the current burst (0 in the
        // Poisson case means "not modulated").
        let mut left_in_burst = 0u64;
        for _ in 0..n {
            let gap = match self.process {
                ArrivalProcess::Poisson => Self::exp_cycles(&mut rng, mean),
                ArrivalProcess::OnOff { .. } => {
                    let mean_on = mean * 10.0 / accel_x10 as f64;
                    if left_in_burst == 0 {
                        // New burst: size uniform in [1, 2L−1] (mean L),
                        // preceded by an idle gap sized to restore the
                        // long-run mean rate over the whole cycle.
                        left_in_burst = 1 + rng.below(2 * burst_len - 1);
                        let gap_mean = burst_len as f64 * (mean - mean_on);
                        Self::exp_cycles(&mut rng, gap_mean) + Self::exp_cycles(&mut rng, mean_on)
                    } else {
                        Self::exp_cycles(&mut rng, mean_on)
                    }
                }
            };
            if let ArrivalProcess::OnOff { .. } = self.process {
                left_in_burst -= 1;
            }
            t = t.saturating_add(gap);
            let user = rng.below(self.users);
            let tenant = u32::try_from(user % u64::from(self.tenants)).expect("tenant fits u32");
            let recipe =
                u32::try_from(rng.below(u64::from(n_recipes))).expect("recipe index fits u32");
            arrivals.push(Arrival {
                at: t,
                tenant,
                recipe,
            });
        }
        // Sorted by construction (cumulative time): the validated
        // constructor is still the single entry point.
        ArrivalTrace::from_arrivals(arrivals)
    }
}

/// First divergence between two traces ([`ArrivalTrace::diff`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDiff {
    /// Index of the first differing arrival.
    pub index: usize,
    /// Our arrival at that index ([`None`] when we are shorter).
    pub ours: Option<Arrival>,
    /// Their arrival at that index ([`None`] when they are shorter).
    pub theirs: Option<Arrival>,
}

/// A compact, replayable open-loop trace: arrivals sorted by time.
///
/// The only constructor validates ordering, so every `ArrivalTrace` in
/// the program is sorted — [`serve`] can rely on it without re-checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Wrap pre-built arrivals, validating that arrival times are
    /// non-decreasing.
    ///
    /// # Errors
    ///
    /// [`ServeError::TraceNotSorted`] naming the first out-of-order
    /// index.
    pub fn from_arrivals(arrivals: Vec<Arrival>) -> Result<Self, ServeError> {
        if let Some(i) = arrivals.windows(2).position(|w| w[1].at < w[0].at) {
            return Err(ServeError::TraceNotSorted { index: i + 1 });
        }
        Ok(ArrivalTrace { arrivals })
    }

    /// The recorded arrivals, in time order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals (the offered load of a [`serve`] run).
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Virtual-time span from 0 to the last arrival.
    pub fn span_cycles(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.at)
    }

    /// First divergence against another trace ([`None`] when equal):
    /// the diffable half of the generator-to-trace contract, for
    /// pinpointing where two supposedly identical traces part ways.
    pub fn diff(&self, other: &ArrivalTrace) -> Option<TraceDiff> {
        let n = self.arrivals.len().max(other.arrivals.len());
        (0..n).find_map(|i| {
            let ours = self.arrivals.get(i).copied();
            let theirs = other.arrivals.get(i).copied();
            (ours != theirs).then_some(TraceDiff {
                index: i,
                ours,
                theirs,
            })
        })
    }
}

/// Admission and SLO parameters of one tenant class.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    /// Bounded-queue depth: the most admitted-but-incomplete requests
    /// the tenant may hold. An arrival beyond it is shed with
    /// [`ShedCause::TenantQueueFull`].
    pub queue_cap: usize,
    /// The tenant's p99 latency target in microseconds (reported as
    /// met/missed per tenant, never enforced by shedding).
    pub slo_p99_us: f64,
}

impl Default for TenantClass {
    fn default() -> Self {
        TenantClass {
            queue_cap: 1024,
            slo_p99_us: f64::INFINITY,
        }
    }
}

/// Serving parameters: tenancy, admission bounds, SLO targets.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Tenants the trace may reference (`Arrival::tenant < tenants`).
    pub tenants: u32,
    /// Tenant classes; tenant `t` is governed by `classes[t % len]`.
    pub classes: Vec<TenantClass>,
    /// Global backlog bound in cycles (0 = unbounded): an arrival whose
    /// serving cores have fallen further than this behind virtual time
    /// is shed with [`ShedCause::CoreBacklog`] instead of joining a
    /// queue it would wait that long in.
    pub backlog_cap_cycles: u64,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            tenants: 1,
            classes: vec![TenantClass::default()],
            backlog_cap_cycles: 0,
        }
    }
}

impl ServeSpec {
    /// The class governing `tenant`.
    pub fn class_of(&self, tenant: u32) -> &TenantClass {
        &self.classes[tenant as usize % self.classes.len()]
    }
}

/// Why an arrival was shed instead of admitted. Shedding is an
/// accounted outcome, not an error: the report carries per-tenant
/// counts per cause, and `admitted + shed == offered` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The tenant's bounded admission queue was full.
    TenantQueueFull,
    /// The serving cores' backlog exceeded
    /// [`ServeSpec::backlog_cap_cycles`].
    CoreBacklog,
}

/// The autoscale feedback controller's configuration
/// ([`ServePolicy::Autoscale`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoscaleCfg {
    /// Fewest cores the active set may shrink to (≥ 1).
    pub min_cores: usize,
    /// Most cores the active set may grow to (clamped to the world).
    pub max_cores: usize,
    /// Arrivals between controller decisions.
    pub epoch_arrivals: u64,
    /// Grow when the mean backlog over active cores exceeds this.
    pub grow_backlog_cycles: u64,
    /// Shrink when the mean backlog falls below this (must be below the
    /// grow threshold — the dead band between them prevents flapping).
    pub shrink_backlog_cycles: u64,
}

impl Default for AutoscaleCfg {
    fn default() -> Self {
        AutoscaleCfg {
            min_cores: 1,
            max_cores: usize::MAX,
            epoch_arrivals: 64,
            grow_backlog_cycles: 50_000,
            shrink_backlog_cycles: 5_000,
        }
    }
}

/// How [`serve`] places each admitted chain.
#[derive(Debug, Clone, PartialEq)]
pub enum ServePolicy {
    /// A fixed [`Placement`] policy, per arrival index — the same
    /// policies the closed-loop grids sweep.
    Static(Placement),
    /// The feedback controller: dispatch each chain to the least-loaded
    /// *active* core, and every epoch grow/shrink the active set as the
    /// observed mean backlog crosses the configured thresholds.
    Autoscale(AutoscaleCfg),
}

impl ServePolicy {
    /// Stable label for tables and JSON dumps.
    pub fn label(&self) -> String {
        match self {
            ServePolicy::Static(p) => format!("static:{}", p.label()),
            ServePolicy::Autoscale(_) => "autoscale".to_string(),
        }
    }
}

/// What the autoscale controller did over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscaleReport {
    /// Times the active set grew by one core.
    pub grow_events: u64,
    /// Times it shrank by one core.
    pub shrink_events: u64,
    /// Smallest active set observed.
    pub min_active: usize,
    /// Largest active set observed.
    pub max_active: usize,
    /// Active cores when the trace ended.
    pub final_active: usize,
}

/// Per-tenant serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: u32,
    /// Arrivals addressed to this tenant.
    pub offered: u64,
    /// Arrivals admitted and served.
    pub admitted: u64,
    /// Arrivals shed because the tenant queue was full.
    pub shed_queue_full: u64,
    /// Arrivals shed because the cores' backlog exceeded the bound.
    pub shed_backlog: u64,
    /// Median admitted-request latency (µs).
    pub p50_us: f64,
    /// 99th-percentile admitted-request latency (µs).
    pub p99_us: f64,
    /// The tenant's SLO target (µs).
    pub slo_p99_us: f64,
    /// Whether observed p99 met the target.
    pub slo_met: bool,
}

impl TenantReport {
    /// Shed arrivals over all causes.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_backlog
    }
}

/// The outcome of one open-loop serve run. All quantities derive from
/// virtual time and merged invocation ledgers; same trace + same spec ⇒
/// byte-identical report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// IPC system under test.
    pub system: String,
    /// Policy label ([`ServePolicy::label`]).
    pub policy: String,
    /// Cores in the world.
    pub cores: usize,
    /// Arrivals in the trace (the offered load).
    pub offered: u64,
    /// Arrivals admitted (and, in virtual time, completed).
    pub admitted: u64,
    /// Arrivals shed over all tenants: queue-full cause.
    pub shed_queue_full: u64,
    /// Arrivals shed over all tenants: backlog cause.
    pub shed_backlog: u64,
    /// IPC invocations issued by admitted requests.
    pub ipc_calls: u64,
    /// Virtual time of the last completion (0 if nothing was admitted).
    pub makespan_cycles: u64,
    /// Busy cycles summed over cores.
    pub busy_cycles: u64,
    /// Offered arrival rate over the trace span (requests/second of
    /// virtual time).
    pub offered_rps: f64,
    /// Admitted completions per second of virtual makespan.
    pub goodput_rps: f64,
    /// Mean admitted-request latency (µs).
    pub mean_us: f64,
    /// Median admitted-request latency (µs).
    pub p50_us: f64,
    /// 95th-percentile admitted-request latency (µs).
    pub p95_us: f64,
    /// 99th-percentile admitted-request latency (µs).
    pub p99_us: f64,
    /// Worst admitted-request latency (µs).
    pub max_us: f64,
    /// Phase ledger merged over every admitted request (queue waiting
    /// attributed to [`Phase::Queue`]).
    pub ledger: CycleLedger,
    /// Per-tenant outcomes, tenant order.
    pub tenants: Vec<TenantReport>,
    /// Controller activity ([`None`] under a static policy).
    pub autoscale: Option<AutoscaleReport>,
    /// Engine-cache counters summed over cores, for systems that model
    /// one.
    pub engine_cache: Option<EngineCacheStats>,
}

impl ServeReport {
    /// Shed arrivals over all tenants and causes.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_backlog
    }

    /// Fraction of offered arrivals shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }

    /// Fraction of all ledger cycles that were queue waiting.
    pub fn queue_fraction(&self) -> f64 {
        let total = self.ledger.total();
        if total == 0 {
            0.0
        } else {
            self.ledger.get(Phase::Queue) as f64 / total as f64
        }
    }
}

/// A serve run was asked to do something structurally impossible —
/// distinct from shedding, which is a priced outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// A load-layer precondition failed (empty roster, placement).
    Load(LoadError),
    /// The trace has no arrivals.
    EmptyTrace,
    /// Arrival times regress at this index.
    TraceNotSorted {
        /// Index of the first arrival earlier than its predecessor.
        index: usize,
    },
    /// An arrival names a recipe outside the roster.
    RecipeOutOfRange {
        /// Offending arrival index.
        index: usize,
        /// The recipe id it named.
        recipe: u32,
        /// Roster size.
        n_recipes: usize,
    },
    /// An arrival names a tenant outside the spec.
    TenantOutOfRange {
        /// Offending arrival index.
        index: usize,
        /// The tenant it named.
        tenant: u32,
        /// Tenants the spec covers.
        tenants: u32,
    },
    /// The spec has zero tenants.
    NoTenants,
    /// The generator has zero logical users.
    NoUsers,
    /// The generator's mean interarrival is zero.
    ZeroMeanInterarrival,
    /// An on-off process with no burst or no acceleration.
    BadBurstSpec {
        /// Configured mean burst length.
        burst_len: u64,
        /// Configured acceleration ×10.
        accel_x10: u64,
    },
    /// The spec lists no tenant classes.
    NoTenantClasses,
    /// A tenant class with a zero queue cap can never admit anything.
    ZeroQueueCap,
    /// An autoscale configuration that cannot act.
    BadAutoscale {
        /// What is wrong with it.
        why: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Load(e) => write!(f, "{e}"),
            ServeError::EmptyTrace => write!(f, "empty arrival trace: nothing to serve"),
            ServeError::TraceNotSorted { index } => {
                write!(f, "trace arrival {index} is earlier than its predecessor")
            }
            ServeError::RecipeOutOfRange {
                index,
                recipe,
                n_recipes,
            } => write!(
                f,
                "arrival {index} names recipe {recipe} of a {n_recipes}-recipe roster"
            ),
            ServeError::TenantOutOfRange {
                index,
                tenant,
                tenants,
            } => write!(
                f,
                "arrival {index} names tenant {tenant} of a {tenants}-tenant spec"
            ),
            ServeError::NoTenants => write!(f, "spec has zero tenants"),
            ServeError::NoUsers => write!(f, "generator has zero logical users"),
            ServeError::ZeroMeanInterarrival => {
                write!(f, "zero mean interarrival: infinite offered load")
            }
            ServeError::BadBurstSpec {
                burst_len,
                accel_x10,
            } => write!(
                f,
                "on-off process needs burst_len >= 1 and accel_x10 > 10 \
                 (got burst_len {burst_len}, accel_x10 {accel_x10})"
            ),
            ServeError::NoTenantClasses => write!(f, "spec lists no tenant classes"),
            ServeError::ZeroQueueCap => {
                write!(f, "a tenant class with queue_cap 0 can never admit")
            }
            ServeError::BadAutoscale { why } => write!(f, "autoscale config: {why}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Load(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LoadError> for ServeError {
    fn from(e: LoadError) -> Self {
        ServeError::Load(e)
    }
}

/// Reusable buffers for serve runs, the open-loop sibling of
/// [`crate::load::SweepScratch`]: thread one across the cells of a
/// sweep and every cell after the first serves without heap allocation
/// on the per-arrival path.
#[derive(Default)]
pub struct ServeScratch {
    latencies: Vec<u64>,
    tenant_latencies: Vec<Vec<u64>>,
    map: Vec<CoreId>,
    step_ledger: CycleLedger,
    /// Per-tenant min-heaps of outstanding completion times — the
    /// bounded admission queues.
    outstanding: Vec<BinaryHeap<Reverse<u64>>>,
}

impl ServeScratch {
    /// Fresh (empty) scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every buffer's contents (capacity kept) — called on entry
    /// by [`serve_with`], the same cross-cell hygiene as
    /// [`crate::load::SweepScratch::clear`].
    pub fn clear(&mut self) {
        self.latencies.clear();
        for v in &mut self.tenant_latencies {
            v.clear();
        }
        self.map.clear();
        self.step_ledger.clear();
        for heap in &mut self.outstanding {
            heap.clear();
        }
    }
}

/// Replay `trace` through `mw` under `policy` and `spec` with fresh
/// scratch and full span attribution. Convenience wrapper over
/// [`serve_with`].
///
/// # Errors
///
/// See [`serve_with`].
pub fn serve(
    mw: &mut MultiWorld,
    policy: &ServePolicy,
    n_services: usize,
    recipes: &[Vec<Step>],
    trace: &ArrivalTrace,
    spec: &ServeSpec,
) -> Result<ServeReport, ServeError> {
    let mut scratch = ServeScratch::new();
    let mut arena = LedgerArena::new();
    serve_with(
        mw,
        policy,
        n_services,
        recipes,
        trace,
        spec,
        &mut scratch,
        Attribution::Full(&mut arena),
    )
}

/// Replay an [`ArrivalTrace`] through a [`MultiWorld`]: the open-loop
/// serving engine.
///
/// Arrivals are processed in trace order. Each is either **admitted**
/// (its recipe priced through the same [`Attribution`] sinks as the
/// closed-loop hot path, queueing attributed to [`Phase::Queue`]) or
/// **shed** with a typed [`ShedCause`]; the report conserves arrivals
/// exactly (`admitted + shed == offered`). Same trace + same spec ⇒
/// byte-identical [`ServeReport`].
///
/// # Errors
///
/// [`ServeError`] when the roster is empty, the trace is empty or
/// references tenants/recipes outside bounds, a tenant class can never
/// admit, the autoscale configuration cannot act, or placement rejects
/// a map — all structural problems, reported before (or instead of)
/// pricing anything. Shed arrivals are *not* errors.
#[allow(clippy::too_many_arguments)] // the sweep axes are the signature
#[allow(clippy::too_many_lines)] // one arrival loop, kept whole on purpose
pub fn serve_with(
    mw: &mut MultiWorld,
    policy: &ServePolicy,
    n_services: usize,
    recipes: &[Vec<Step>],
    trace: &ArrivalTrace,
    spec: &ServeSpec,
    scratch: &mut ServeScratch,
    mut att: Attribution<'_>,
) -> Result<ServeReport, ServeError> {
    if recipes.is_empty() {
        return Err(ServeError::Load(LoadError::EmptyRecipes));
    }
    if trace.is_empty() {
        return Err(ServeError::EmptyTrace);
    }
    if spec.tenants == 0 {
        return Err(ServeError::NoTenants);
    }
    if spec.classes.is_empty() {
        return Err(ServeError::NoTenantClasses);
    }
    if spec.classes.iter().any(|c| c.queue_cap == 0) {
        return Err(ServeError::ZeroQueueCap);
    }
    let n_cores = mw.n_cores();
    // Autoscale controller state: the active set is the core prefix
    // [0, active); static policies keep every core active.
    let (mut active, auto) = match policy {
        ServePolicy::Static(_) => (n_cores, None),
        ServePolicy::Autoscale(cfg) => {
            if cfg.min_cores == 0 {
                return Err(ServeError::BadAutoscale {
                    why: "min_cores must be >= 1",
                });
            }
            if cfg.epoch_arrivals == 0 {
                return Err(ServeError::BadAutoscale {
                    why: "epoch_arrivals must be >= 1",
                });
            }
            let max = cfg.max_cores.min(n_cores);
            if cfg.min_cores > max {
                return Err(ServeError::BadAutoscale {
                    why: "min_cores exceeds max_cores (after clamping to the world)",
                });
            }
            if cfg.shrink_backlog_cycles >= cfg.grow_backlog_cycles {
                return Err(ServeError::BadAutoscale {
                    why: "shrink threshold must sit below the grow threshold",
                });
            }
            (cfg.min_cores, Some((cfg, max)))
        }
    };
    let n_tenants = spec.tenants as usize;
    scratch.clear();
    if scratch.outstanding.len() < n_tenants {
        scratch.outstanding.resize_with(n_tenants, BinaryHeap::new);
    }
    if scratch.tenant_latencies.len() < n_tenants {
        scratch.tenant_latencies.resize_with(n_tenants, Vec::new);
    }
    scratch.latencies.reserve(trace.len());
    let mut offered = vec![0u64; n_tenants];
    let mut admitted = vec![0u64; n_tenants];
    let mut shed_queue = vec![0u64; n_tenants];
    let mut shed_backlog = vec![0u64; n_tenants];
    let mut ledger = CycleLedger::new();
    let mut makespan = 0u64;
    let mut ipc_calls = 0u64;
    let mut admitted_total = 0u64;
    let mut since_epoch = 0u64;
    let (mut grow_events, mut shrink_events) = (0u64, 0u64);
    let (mut min_active, mut max_active) = (active, active);
    for (i, a) in trace.arrivals().iter().enumerate() {
        let t = a.at;
        let tenant = a.tenant as usize;
        if tenant >= n_tenants {
            return Err(ServeError::TenantOutOfRange {
                index: i,
                tenant: a.tenant,
                tenants: spec.tenants,
            });
        }
        let recipe = recipes.get(a.recipe as usize).ok_or({
            ServeError::RecipeOutOfRange {
                index: i,
                recipe: a.recipe,
                n_recipes: recipes.len(),
            }
        })?;
        offered[tenant] += 1;
        // The feedback controller: every epoch of *arrivals* (admitted
        // or shed — sheds are pressure too), compare the mean backlog
        // over the active set against the thresholds. Sampled before
        // this arrival dispatches, so an idle system reads as idle
        // instead of as its own just-issued request's footprint.
        if let Some((cfg, max)) = auto {
            since_epoch += 1;
            if since_epoch >= cfg.epoch_arrivals {
                since_epoch = 0;
                let mean_lag = (0..active).map(|c| mw.backlog(c, t)).sum::<u64>() / active as u64;
                if mean_lag > cfg.grow_backlog_cycles && active < max {
                    active += 1;
                    grow_events += 1;
                } else if mean_lag < cfg.shrink_backlog_cycles && active > cfg.min_cores {
                    active -= 1;
                    shrink_events += 1;
                }
                min_active = min_active.min(active);
                max_active = max_active.max(active);
            }
        }
        // Retire completions: an admitted request leaves its tenant's
        // queue the moment virtual time passes its completion.
        let heap = &mut scratch.outstanding[tenant];
        while heap.peek().is_some_and(|Reverse(done)| *done <= t) {
            heap.pop();
        }
        // Admission, stage 1: the tenant's bounded queue.
        if heap.len() >= spec.class_of(a.tenant).queue_cap {
            shed_queue[tenant] += 1;
            continue;
        }
        // Placement: static policies map by arrival index (as the
        // closed loop maps by request index); the autoscaler dispatches
        // to the least-loaded active core.
        match policy {
            ServePolicy::Static(p) => {
                p.assign_into(i as u64, n_services, mw, &mut scratch.map)
                    .map_err(LoadError::Placement)?;
            }
            ServePolicy::Autoscale(_) => {
                // Whole chain on the least-loaded active core: an
                // open-loop arrival has no pinned client core, so the
                // controller behaves like a front-end load balancer
                // assigning the request to one worker — active cores
                // are independent capacity, with no cross-core tax
                // introduced by the scaling itself.
                let chain = mw.least_loaded_among(active);
                scratch.map.clear();
                scratch.map.resize(n_services, chain);
            }
        }
        // Admission, stage 2: the global backlog bound — shed instead
        // of joining a queue the request would wait `> cap` cycles in.
        if spec.backlog_cap_cycles > 0 {
            let lag = scratch
                .map
                .iter()
                .map(|&c| mw.backlog(c, t))
                .max()
                .unwrap_or(0);
            if lag > spec.backlog_cap_cycles {
                shed_backlog[tenant] += 1;
                continue;
            }
        }
        // Admit: price the request through the attribution sink, spans
        // landing exactly as on the closed-loop hot path. Queue waiting
        // is always attributed — an open loop's whole point is that the
        // wait behind earlier work is visible, not folded away.
        let (done, calls) = match &mut att {
            Attribution::Full(arena) => {
                let mark = arena.mark();
                let h = arena.begin();
                let mut sink = ReqSink {
                    totals: None,
                    arena: Some((arena, h)),
                };
                let out = run_request_sink(
                    mw,
                    &scratch.map,
                    recipe,
                    t,
                    true,
                    &mut scratch.step_ledger,
                    &mut sink,
                );
                for (p, cy) in arena.spans(h) {
                    ledger.charge(p, cy);
                }
                arena.truncate(mark);
                out
            }
            Attribution::Sampled {
                every,
                totals,
                arena,
            } => {
                let keep = *every != 0 && admitted_total.is_multiple_of(*every);
                let h = if keep { Some(arena.begin()) } else { None };
                let mut sink = ReqSink {
                    totals: Some(totals),
                    arena: h.map(|h| (&mut **arena, h)),
                };
                run_request_sink(
                    mw,
                    &scratch.map,
                    recipe,
                    t,
                    true,
                    &mut scratch.step_ledger,
                    &mut sink,
                )
            }
        };
        admitted[tenant] += 1;
        admitted_total += 1;
        ipc_calls += calls;
        let latency = done - t;
        scratch.latencies.push(latency);
        scratch.tenant_latencies[tenant].push(latency);
        makespan = makespan.max(done);
        scratch.outstanding[tenant].push(Reverse(done));
    }
    if let Attribution::Sampled { totals, .. } = &att {
        ledger = totals.to_ledger();
    }
    scratch.latencies.sort_unstable();
    let clock_hz = mw.core(0).cost.clock_hz;
    let to_us = |cycles: f64| cycles / clock_hz as f64 * 1e6;
    let latencies = &scratch.latencies;
    let mean = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    let tenants = (0..n_tenants)
        .map(|tn| {
            let lat = &mut scratch.tenant_latencies[tn];
            lat.sort_unstable();
            let p50 = to_us(percentile(lat, 0.50) as f64);
            let p99 = to_us(percentile(lat, 0.99) as f64);
            let tenant = u32::try_from(tn).expect("tenant fits u32");
            let class = spec.class_of(tenant);
            TenantReport {
                tenant,
                offered: offered[tn],
                admitted: admitted[tn],
                shed_queue_full: shed_queue[tn],
                shed_backlog: shed_backlog[tn],
                p50_us: p50,
                p99_us: p99,
                slo_p99_us: class.slo_p99_us,
                slo_met: p99 <= class.slo_p99_us,
            }
        })
        .collect();
    let offered_total = trace.len() as u64;
    Ok(ServeReport {
        system: mw.core(0).ipc_name(),
        policy: policy.label(),
        cores: n_cores,
        offered: offered_total,
        admitted: admitted_total,
        shed_queue_full: shed_queue.iter().sum(),
        shed_backlog: shed_backlog.iter().sum(),
        ipc_calls,
        makespan_cycles: makespan,
        busy_cycles: mw.busy_cycles(),
        offered_rps: offered_total as f64 * clock_hz as f64 / trace.span_cycles().max(1) as f64,
        goodput_rps: if makespan == 0 {
            0.0
        } else {
            admitted_total as f64 * clock_hz as f64 / makespan as f64
        },
        mean_us: to_us(mean),
        p50_us: to_us(percentile(latencies, 0.50) as f64),
        p95_us: to_us(percentile(latencies, 0.95) as f64),
        p99_us: to_us(percentile(latencies, 0.99) as f64),
        max_us: to_us(latencies.last().copied().unwrap_or(0) as f64),
        ledger,
        tenants,
        autoscale: auto.map(|_| AutoscaleReport {
            grow_events,
            shrink_events,
            min_active,
            max_active,
            final_active: active,
        }),
        engine_cache: mw.engine_cache_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipc::IpcSystem;
    use crate::ledger::{Invocation, InvokeOpts, PhaseTotals};
    use crate::topology::Topology;

    struct Fixed;
    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(
                CycleLedger::new()
                    .with(Phase::Trap, 100)
                    .with(Phase::Transfer, msg_len as u64),
                msg_len as u64,
            )
        }
    }

    fn mw(n: usize) -> MultiWorld {
        MultiWorld::builder()
            .topology(Topology::single_socket(n))
            .build(|| Box::new(Fixed))
    }

    fn recipe() -> Vec<Step> {
        vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 64,
            },
            Step::Compute {
                at: 1,
                cycles: 1_000,
            },
            Step::Oneway {
                from: 1,
                to: 0,
                bytes: 256,
            },
        ]
    }

    fn gen(mean: u64) -> OpenLoopGen {
        OpenLoopGen {
            process: ArrivalProcess::Poisson,
            mean_interarrival_cycles: mean,
            tenants: 2,
            users: 1_000_000,
            seed: 0xfeed,
        }
    }

    #[test]
    fn generator_is_deterministic_and_traces_diff_cleanly() {
        let a = gen(5_000).trace(500, 1).unwrap();
        let b = gen(5_000).trace(500, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.diff(&b), None);
        let c = OpenLoopGen {
            seed: 0xbeef,
            ..gen(5_000)
        }
        .trace(500, 1)
        .unwrap();
        let d = a.diff(&c).expect("different seeds diverge");
        assert_eq!(d.index, 0);
        assert!(d.ours.is_some() && d.theirs.is_some());
        // Length mismatches surface as a one-sided diff.
        let short = gen(5_000).trace(100, 1).unwrap();
        let d = a.diff(&short).expect("length mismatch diverges");
        assert_eq!(d.index, 100);
        assert!(d.theirs.is_none());
    }

    #[test]
    fn traces_are_sorted_and_tag_in_range() {
        let tr = gen(2_000).trace(2_000, 3).unwrap();
        assert_eq!(tr.len(), 2_000);
        for w in tr.arrivals().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(tr.arrivals().iter().all(|a| a.tenant < 2 && a.recipe < 3));
        // Both tenants and all recipes actually occur.
        for tn in 0..2u32 {
            assert!(tr.arrivals().iter().any(|a| a.tenant == tn));
        }
        for rc in 0..3u32 {
            assert!(tr.arrivals().iter().any(|a| a.recipe == rc));
        }
    }

    #[test]
    fn poisson_mean_interarrival_lands_near_the_spec() {
        let mean = 10_000u64;
        let n = 20_000u64;
        let tr = gen(mean).trace(n, 1).unwrap();
        let measured = tr.span_cycles() as f64 / n as f64;
        let err = (measured - mean as f64).abs() / mean as f64;
        assert!(
            err < 0.05,
            "measured mean {measured:.0} vs {mean} ({err:.3})"
        );
    }

    #[test]
    fn onoff_preserves_the_long_run_rate_but_clusters() {
        let mean = 10_000u64;
        let n = 20_000u64;
        let spec = OpenLoopGen {
            process: ArrivalProcess::OnOff {
                burst_len: 32,
                accel_x10: 80,
            },
            ..gen(mean)
        };
        let tr = spec.trace(n, 1).unwrap();
        let measured = tr.span_cycles() as f64 / n as f64;
        let err = (measured - mean as f64).abs() / mean as f64;
        assert!(
            err < 0.10,
            "long-run mean {measured:.0} vs {mean} ({err:.3})"
        );
        // Burstiness: the median gap is far below the mean gap (most
        // gaps are in-burst at 8x the rate).
        let mut gaps: Vec<u64> = tr
            .arrivals()
            .windows(2)
            .map(|w| w[1].at - w[0].at)
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        assert!(
            (median as f64) < 0.4 * mean as f64,
            "median gap {median} vs mean {mean}"
        );
    }

    #[test]
    fn trace_constructor_rejects_regressions() {
        let bad = vec![
            Arrival {
                at: 10,
                tenant: 0,
                recipe: 0,
            },
            Arrival {
                at: 5,
                tenant: 0,
                recipe: 0,
            },
        ];
        assert_eq!(
            ArrivalTrace::from_arrivals(bad).unwrap_err(),
            ServeError::TraceNotSorted { index: 1 }
        );
    }

    #[test]
    fn generator_spec_errors_are_typed() {
        assert_eq!(
            gen(0).trace(10, 1).unwrap_err(),
            ServeError::ZeroMeanInterarrival
        );
        assert_eq!(
            gen(100).trace(10, 0).unwrap_err(),
            ServeError::Load(LoadError::EmptyRecipes)
        );
        let bad = OpenLoopGen {
            process: ArrivalProcess::OnOff {
                burst_len: 8,
                accel_x10: 10,
            },
            ..gen(100)
        };
        assert!(matches!(
            bad.trace(10, 1).unwrap_err(),
            ServeError::BadBurstSpec { .. }
        ));
    }

    fn spec2() -> ServeSpec {
        ServeSpec {
            tenants: 2,
            classes: vec![TenantClass {
                queue_cap: 64,
                slo_p99_us: f64::INFINITY,
            }],
            backlog_cap_cycles: 0,
        }
    }

    #[test]
    fn same_trace_same_spec_is_byte_identical() {
        let tr = gen(3_000).trace(2_000, 1).unwrap();
        let run_once = || {
            let mut mw = mw(2);
            serve(
                &mut mw,
                &ServePolicy::Static(Placement::RoundRobin),
                2,
                &[recipe()],
                &tr,
                &spec2(),
            )
            .unwrap()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn conservation_is_exact_globally_and_per_tenant() {
        // Overload a single core so both shed causes fire.
        let tr = gen(200).trace(5_000, 1).unwrap();
        let spec = ServeSpec {
            tenants: 2,
            classes: vec![
                TenantClass {
                    queue_cap: 4,
                    slo_p99_us: 50.0,
                },
                TenantClass {
                    queue_cap: 32,
                    slo_p99_us: f64::INFINITY,
                },
            ],
            backlog_cap_cycles: 60_000,
        };
        let mut mw = mw(1);
        let r = serve(
            &mut mw,
            &ServePolicy::Static(Placement::SameCore),
            2,
            &[recipe()],
            &tr,
            &spec,
        )
        .unwrap();
        assert_eq!(r.offered, 5_000);
        assert_eq!(r.admitted + r.shed(), r.offered, "exact conservation");
        assert!(r.shed_queue_full > 0, "tight caps must shed");
        let mut offered_sum = 0;
        for t in &r.tenants {
            assert_eq!(t.admitted + t.shed(), t.offered, "tenant {}", t.tenant);
            offered_sum += t.offered;
        }
        assert_eq!(offered_sum, r.offered);
        // The tight-cap tenant sheds more than the loose-cap tenant.
        assert!(r.tenants[0].shed_queue_full > r.tenants[1].shed_queue_full);
    }

    #[test]
    fn open_loop_tail_diverges_past_the_knee() {
        // Service time is ~1.4k cycles on one serving core; offered
        // interarrivals of 4x that are easy, 0.7x collapse the queue.
        let mk_report = |mean: u64| {
            let tr = gen(mean).trace(4_000, 1).unwrap();
            let mut mw = mw(2);
            serve(
                &mut mw,
                &ServePolicy::Static(Placement::SameCore),
                2,
                &[recipe()],
                &tr,
                &spec2(),
            )
            .unwrap()
        };
        let light = mk_report(6_000);
        let heavy = mk_report(1_000);
        assert!(
            heavy.p99_us > 5.0 * light.p99_us,
            "open-loop overload must blow the tail: light {} heavy {}",
            light.p99_us,
            heavy.p99_us
        );
        assert!(heavy.ledger.get(Phase::Queue) > light.ledger.get(Phase::Queue));
        // Queueing, not sheds: the default cap is generous.
        assert_eq!(light.shed(), 0);
    }

    #[test]
    fn sampled_attribution_matches_full_totals() {
        let tr = gen(2_500).trace(3_000, 1).unwrap();
        let policy = ServePolicy::Static(Placement::RoundRobin);
        let mut full_mw = mw(2);
        let full = serve(&mut full_mw, &policy, 2, &[recipe()], &tr, &spec2()).unwrap();
        let mut totals = PhaseTotals::new();
        let mut kept = LedgerArena::new();
        let mut scratch = ServeScratch::new();
        let mut sampled_mw = mw(2);
        let sampled = serve_with(
            &mut sampled_mw,
            &policy,
            2,
            &[recipe()],
            &tr,
            &spec2(),
            &mut scratch,
            Attribution::Sampled {
                every: 16,
                totals: &mut totals,
                arena: &mut kept,
            },
        )
        .unwrap();
        for p in Phase::ALL {
            assert_eq!(sampled.ledger.get(p), full.ledger.get(p), "{p:?}");
        }
        assert_eq!(sampled.p99_us, full.p99_us);
        assert_eq!(sampled.admitted, full.admitted);
        assert_eq!(kept.len() as u64, sampled.admitted.div_ceil(16));
    }

    #[test]
    fn autoscaler_grows_under_load_and_shrinks_when_idle() {
        // Phase 1: a hot burst; phase 2: a long idle tail. The
        // controller must grow beyond min_cores during the burst and
        // shrink back by the end.
        let hot = gen(400).trace(4_000, 1).unwrap();
        let mut arrivals = hot.arrivals().to_vec();
        let t0 = arrivals.last().unwrap().at;
        // Sparse tail: one arrival every 50k cycles, long enough for
        // the epoch cadence to walk the active set back down.
        for k in 0..500u64 {
            arrivals.push(Arrival {
                at: t0 + (k + 1) * 50_000,
                tenant: 0,
                recipe: 0,
            });
        }
        let tr = ArrivalTrace::from_arrivals(arrivals).unwrap();
        let cfg = AutoscaleCfg {
            min_cores: 1,
            max_cores: 4,
            epoch_arrivals: 64,
            grow_backlog_cycles: 10_000,
            shrink_backlog_cycles: 2_000,
        };
        let mut world = mw(4);
        let r = serve(
            &mut world,
            &ServePolicy::Autoscale(cfg),
            2,
            &[recipe()],
            &tr,
            &spec2(),
        )
        .unwrap();
        let auto = r.autoscale.expect("autoscale policy reports controller");
        assert!(auto.grow_events > 0, "burst must grow the active set");
        assert!(auto.shrink_events > 0, "idle tail must shrink it");
        assert!(auto.max_active > 1);
        assert_eq!(auto.final_active, 1, "idle tail returns to min_cores");
        assert_eq!(r.policy, "autoscale");
    }

    #[test]
    fn autoscale_growth_beats_a_capacity_capped_controller() {
        // Identical dispatch, identical trace, identical thresholds —
        // the only difference is whether the controller may grow past
        // one core. At an offered load one core cannot sustain, growth
        // is the difference between a bounded tail and collapse.
        let tr = gen(1_200).trace(6_000, 1).unwrap();
        let spec = ServeSpec {
            tenants: 2,
            classes: vec![TenantClass {
                queue_cap: 8_192,
                slo_p99_us: f64::INFINITY,
            }],
            backlog_cap_cycles: 0,
        };
        let run = |max_cores: usize| {
            let cfg = AutoscaleCfg {
                min_cores: 1,
                max_cores,
                epoch_arrivals: 32,
                grow_backlog_cycles: 10_000,
                shrink_backlog_cycles: 1_000,
            };
            let mut world = mw(4);
            serve(
                &mut world,
                &ServePolicy::Autoscale(cfg),
                2,
                &[recipe()],
                &tr,
                &spec,
            )
            .unwrap()
        };
        let capped = run(1);
        let scaled = run(4);
        assert_eq!(capped.autoscale.unwrap().max_active, 1);
        assert!(scaled.autoscale.unwrap().grow_events > 0);
        assert!(
            scaled.p99_us < capped.p99_us / 10.0,
            "scaled {} vs capped {}",
            scaled.p99_us,
            capped.p99_us
        );
    }

    #[test]
    fn structural_errors_are_typed() {
        let tr = gen(1_000).trace(100, 1).unwrap();
        let policy = ServePolicy::Static(Placement::RoundRobin);
        let mut world = mw(2);
        // Empty roster.
        assert_eq!(
            serve(&mut world, &policy, 2, &[], &tr, &spec2()).unwrap_err(),
            ServeError::Load(LoadError::EmptyRecipes)
        );
        // Empty trace.
        let empty = ArrivalTrace::from_arrivals(vec![]).unwrap();
        assert_eq!(
            serve(&mut world, &policy, 2, &[recipe()], &empty, &spec2()).unwrap_err(),
            ServeError::EmptyTrace
        );
        // Recipe out of range: the trace names recipe 1 of a 1-roster.
        let bad = gen(1_000).trace(100, 2).unwrap();
        assert!(matches!(
            serve(&mut world, &policy, 2, &[recipe()], &bad, &spec2()).unwrap_err(),
            ServeError::RecipeOutOfRange { .. }
        ));
        // Tenant out of range: 2-tenant trace, 1-tenant spec.
        let spec1 = ServeSpec {
            tenants: 1,
            ..spec2()
        };
        assert!(matches!(
            serve(&mut world, &policy, 2, &[recipe()], &tr, &spec1).unwrap_err(),
            ServeError::TenantOutOfRange { .. }
        ));
        // Zero queue cap can never admit.
        let cap0 = ServeSpec {
            classes: vec![TenantClass {
                queue_cap: 0,
                slo_p99_us: 1.0,
            }],
            ..spec2()
        };
        assert_eq!(
            serve(&mut world, &policy, 2, &[recipe()], &tr, &cap0).unwrap_err(),
            ServeError::ZeroQueueCap
        );
        // Autoscale config that cannot act.
        let bad_auto = ServePolicy::Autoscale(AutoscaleCfg {
            grow_backlog_cycles: 100,
            shrink_backlog_cycles: 100,
            ..AutoscaleCfg::default()
        });
        assert!(matches!(
            serve(&mut world, &bad_auto, 2, &[recipe()], &tr, &spec2()).unwrap_err(),
            ServeError::BadAutoscale { .. }
        ));
    }

    #[test]
    fn slo_verdicts_follow_the_observed_tail() {
        let tr = gen(4_000).trace(2_000, 1).unwrap();
        let spec = ServeSpec {
            tenants: 2,
            classes: vec![
                TenantClass {
                    queue_cap: 64,
                    slo_p99_us: 1e9, // unmissable
                },
                TenantClass {
                    queue_cap: 64,
                    slo_p99_us: 0.0, // unmeetable (service time > 0)
                },
            ],
            backlog_cap_cycles: 0,
        };
        let mut world = mw(2);
        let r = serve(
            &mut world,
            &ServePolicy::Static(Placement::RoundRobin),
            2,
            &[recipe()],
            &tr,
            &spec,
        )
        .unwrap();
        assert!(r.tenants[0].slo_met);
        assert!(!r.tenants[1].slo_met);
    }

    #[test]
    fn serve_scratch_reuse_matches_fresh_scratch() {
        let big = gen(300).trace(4_000, 1).unwrap();
        let small = gen(4_000).trace(500, 1).unwrap();
        let policy = ServePolicy::Static(Placement::RoundRobin);
        let mut scratch = ServeScratch::new();
        let mut arena = LedgerArena::new();
        let mut w1 = mw(2);
        let _ = serve_with(
            &mut w1,
            &policy,
            2,
            &[recipe()],
            &big,
            &spec2(),
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap();
        let mut w2 = mw(2);
        let reused = serve_with(
            &mut w2,
            &policy,
            2,
            &[recipe()],
            &small,
            &spec2(),
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .unwrap();
        let mut w3 = mw(2);
        let fresh = serve(&mut w3, &policy, 2, &[recipe()], &small, &spec2()).unwrap();
        assert_eq!(reused, fresh, "reused serve scratch must not leak state");
    }
}
