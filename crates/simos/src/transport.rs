//! The long-message mechanisms of Figure 10, with their Table 7
//! properties, as an ablatable family.
//!
//! Given a chain of `n` hops moving an `N`-byte message end to end:
//!
//! * **twofold copy** (Mach/Zircon): 2 copies per hop, TOCTTOU-safe;
//! * **user shared memory** (LRPC): 1 copy total, *not* TOCTTOU-safe;
//! * **shared memory + one defensive copy per hop**: TOCTTOU-safe again,
//!   `n` copies;
//! * **remap** (Tornado): 0 copies but a kernel trap + TLB shootdown per
//!   hop, page granularity;
//! * **relay segment** (XPC): 0 copies, no trap, byte granularity,
//!   TOCTTOU-safe via ownership transfer.

use crate::cost::CostModel;
use crate::ledger::{CycleLedger, Phase};

/// The transfer mechanisms of Figure 10 / Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Kernel twofold copy per hop.
    TwofoldCopy,
    /// Shared user memory, zero additional copies (vulnerable).
    SharedInPlace,
    /// Shared memory + one defensive copy per hop.
    SharedOneCopy,
    /// Page remapping with TLB shootdown per hop.
    Remap,
    /// XPC relay segment handover.
    RelaySeg,
}

/// TLB-shootdown + remap kernel work per hop (trap + PTE edits + IPI-less
/// local invalidate on this single-core model).
const REMAP_HOP_CYCLES: u64 = 480;

impl Transport {
    /// All variants, for ablation sweeps.
    pub const ALL: [Transport; 5] = [
        Transport::TwofoldCopy,
        Transport::SharedInPlace,
        Transport::SharedOneCopy,
        Transport::Remap,
        Transport::RelaySeg,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Transport::TwofoldCopy => "twofold-copy",
            Transport::SharedInPlace => "shared-in-place",
            Transport::SharedOneCopy => "shared-one-copy",
            Transport::Remap => "remap",
            Transport::RelaySeg => "relay-seg",
        }
    }

    /// Copies performed moving `bytes` across `hops` hops (Table 7's
    /// "Copy time" column: 2N, 0, N, 0+∆, 0).
    pub fn copies(self, hops: u64) -> u64 {
        match self {
            Transport::TwofoldCopy => 2 * hops,
            Transport::SharedInPlace => 0,
            Transport::SharedOneCopy => hops,
            Transport::Remap => 0,
            Transport::RelaySeg => 0,
        }
    }

    /// Data-movement cycles for `bytes` across `hops` hops (excluding the
    /// domain-switch cost, which belongs to the IPC mechanism).
    pub fn transfer_cycles(self, cost: &CostModel, bytes: u64, hops: u64) -> u64 {
        match self {
            Transport::TwofoldCopy | Transport::SharedInPlace | Transport::SharedOneCopy => {
                self.copies(hops) * cost.copy_cycles(bytes)
            }
            Transport::Remap => hops * REMAP_HOP_CYCLES,
            Transport::RelaySeg => 0,
        }
    }

    /// Charge this transport's data movement into `ledger`: copies go to
    /// [`Phase::Transfer`], remap's kernel work to [`Phase::Mapping`].
    /// Returns the bytes actually copied (the `copied_bytes` an
    /// [`Invocation`](crate::ledger::Invocation) reports).
    pub fn charge(&self, ledger: &mut CycleLedger, cost: &CostModel, bytes: u64, hops: u64) -> u64 {
        match self {
            Transport::Remap => {
                ledger.charge(Phase::Mapping, hops * REMAP_HOP_CYCLES);
                ledger.charge(Phase::Transfer, 0);
            }
            _ => ledger.charge(Phase::Transfer, self.transfer_cycles(cost, bytes, hops)),
        }
        self.copies(hops) * bytes
    }

    /// Whether the receiver is safe from sender mutation after the check
    /// (Table 7 "w/o TOCTTOU").
    pub fn tocttou_safe(self) -> bool {
        match self {
            Transport::TwofoldCopy | Transport::SharedOneCopy | Transport::RelaySeg => true,
            Transport::SharedInPlace | Transport::Remap => false,
        }
    }

    /// Whether a message passes down a chain without per-hop work
    /// proportional to its size (Table 7 "Handover").
    pub fn supports_handover(self) -> bool {
        matches!(self, Transport::RelaySeg)
    }

    /// Byte- vs page-granularity (Table 7 "Granularity").
    pub fn byte_granular(self) -> bool {
        !matches!(self, Transport::Remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_counts_match_table7() {
        assert_eq!(Transport::TwofoldCopy.copies(3), 6);
        assert_eq!(Transport::SharedOneCopy.copies(3), 3);
        assert_eq!(Transport::RelaySeg.copies(3), 0);
    }

    #[test]
    fn tocttou_column_matches_table7() {
        assert!(Transport::TwofoldCopy.tocttou_safe());
        assert!(!Transport::SharedInPlace.tocttou_safe());
        assert!(Transport::SharedOneCopy.tocttou_safe());
        assert!(Transport::RelaySeg.tocttou_safe());
    }

    #[test]
    fn only_relay_seg_is_safe_and_free() {
        let cost = CostModel::u500();
        for t in Transport::ALL {
            let free = t.transfer_cycles(&cost, 1 << 20, 4) < 10_000;
            let safe = t.tocttou_safe();
            assert_eq!(
                free && safe,
                t == Transport::RelaySeg,
                "{} should not be both cheap and safe",
                t.name()
            );
        }
    }

    #[test]
    fn relay_seg_flat_in_size() {
        let cost = CostModel::u500();
        assert_eq!(Transport::RelaySeg.transfer_cycles(&cost, 1, 1), 0);
        assert_eq!(Transport::RelaySeg.transfer_cycles(&cost, 32 << 20, 5), 0);
    }

    #[test]
    fn charge_splits_mapping_from_transfer() {
        let cost = CostModel::u500();
        let mut l = CycleLedger::new();
        let copied = Transport::Remap.charge(&mut l, &cost, 4096, 2);
        assert_eq!(copied, 0);
        assert_eq!(l.get(Phase::Mapping), 2 * 480);
        assert_eq!(l.get(Phase::Transfer), 0);
        let mut l2 = CycleLedger::new();
        let copied2 = Transport::TwofoldCopy.charge(&mut l2, &cost, 4096, 1);
        assert_eq!(copied2, 2 * 4096);
        assert_eq!(l2.get(Phase::Transfer), 2 * 4010);
        assert_eq!(l2.get(Phase::Mapping), 0);
    }

    #[test]
    fn twofold_scales_linearly() {
        let cost = CostModel::u500();
        let a = Transport::TwofoldCopy.transfer_cycles(&cost, 4096, 1);
        let b = Transport::TwofoldCopy.transfer_cycles(&cost, 8192, 1);
        assert_eq!(a, 2 * 4010);
        assert_eq!(b, 2 * a);
    }
}
