//! The phase-attributed cycle ledger behind every IPC invocation.
//!
//! The paper's whole evaluation is phase-level cycle attribution: Table 1
//! splits a seL4 one-way call into trap / IPC logic / process switch /
//! restore / message transfer, Figure 5 splits an XPC call into
//! trampoline / `xcall` / TLB refill, Table 5 breaks out the 58-cycle
//! translation-base barrier, and §5.2 prices cross-core hops separately.
//! A [`CycleLedger`] is that attribution made first-class: every kernel
//! model charges named [`Phase`] spans instead of summing bare `u64`s,
//! and an [`Invocation`] carries the ledger (plus the total and the bytes
//! copied) back to the harness, which renders tables and figures straight
//! from it.

/// A named cost phase of a cross-process call.
///
/// The first five are Table 1's rows; the next four are the XPC
/// instruction path (Table 3 / Figure 5); the rest cover the slow paths,
/// historical designs and the Binder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Trap into the kernel (Table 1: 107 cycles).
    Trap,
    /// Kernel IPC logic: capability checks, endpoint state (Table 1: 212).
    IpcLogic,
    /// Process switch: queues, reply cap, `satp` (Table 1: 146).
    Switch,
    /// Context restore and return to user (Table 1: 199).
    Restore,
    /// Message payload movement (copies; Table 1: 4010 for 4 KiB).
    Transfer,
    /// Caller-side save/restore trampoline (Figure 5: 76 full / 15 partial).
    Trampoline,
    /// The `xcall` instruction (Table 3: 18).
    Xcall,
    /// The `xret` instruction (Table 3: 23).
    Xret,
    /// The `swapseg` instruction (Table 3: 11).
    Swapseg,
    /// Post-switch TLB refill penalty without tagged TLB (Figure 5: ~40).
    TlbRefill,
    /// Scheduler / wait-queue work (slow paths, async kernels).
    Schedule,
    /// Virtual time a request spent queued behind other work (windowed
    /// pipeline runs only; the closed-loop report folds waiting into
    /// latency as it always did).
    Queue,
    /// Cross-core IPI + remote wakeup + cache transfer (§5.2).
    CrossCore,
    /// Fetching an x-entry from a *remote socket's* x-entry shard (the
    /// sharded-table model: a local-shard `xcall` pays nothing here).
    ShardMiss,
    /// Kernel mapping work: remap, TLB shootdown, temporary mapping.
    Mapping,
    /// Driver / framework control path (Binder ioctl, dispatch).
    Driver,
    /// Application compute attributed to the call (surface touches, draw).
    Compute,
    /// Zero-on-handover scrub of a relay segment (temporal hardening:
    /// priced per byte, charged only when
    /// [`Hardening::zero_on_handover`] is on).
    Scrub,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 18;

    /// Every phase, in canonical (paper) order.
    pub const ALL: [Phase; 18] = [
        Phase::Trap,
        Phase::IpcLogic,
        Phase::Switch,
        Phase::Restore,
        Phase::Transfer,
        Phase::Trampoline,
        Phase::Xcall,
        Phase::Xret,
        Phase::Swapseg,
        Phase::TlbRefill,
        Phase::Schedule,
        Phase::Queue,
        Phase::CrossCore,
        Phase::ShardMiss,
        Phase::Mapping,
        Phase::Driver,
        Phase::Compute,
        Phase::Scrub,
    ];

    /// Stable dense index into [`Phase::ALL`]-ordered arrays (declaration
    /// order matches `ALL`, so the discriminant *is* the index).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable kebab-case key (JSON dumps, machine-readable output).
    pub fn key(self) -> &'static str {
        match self {
            Phase::Trap => "trap",
            Phase::IpcLogic => "ipc-logic",
            Phase::Switch => "switch",
            Phase::Restore => "restore",
            Phase::Transfer => "transfer",
            Phase::Trampoline => "trampoline",
            Phase::Xcall => "xcall",
            Phase::Xret => "xret",
            Phase::Swapseg => "swapseg",
            Phase::TlbRefill => "tlb-refill",
            Phase::Schedule => "schedule",
            Phase::Queue => "queue",
            Phase::CrossCore => "cross-core",
            Phase::ShardMiss => "shard-miss",
            Phase::Mapping => "mapping",
            Phase::Driver => "driver",
            Phase::Compute => "compute",
            Phase::Scrub => "scrub",
        }
    }

    /// Human-readable label as the paper's tables print it.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Trap => "Trap",
            Phase::IpcLogic => "IPC Logic",
            Phase::Switch => "Process Switch",
            Phase::Restore => "Restore",
            Phase::Transfer => "Message Transfer",
            Phase::Trampoline => "Trampoline",
            Phase::Xcall => "xcall",
            Phase::Xret => "xret",
            Phase::Swapseg => "swapseg",
            Phase::TlbRefill => "TLB Refill",
            Phase::Schedule => "Schedule",
            Phase::Queue => "Queue",
            Phase::CrossCore => "Cross-core",
            Phase::ShardMiss => "Shard Miss",
            Phase::Mapping => "Mapping",
            Phase::Driver => "Driver",
            Phase::Compute => "Compute",
            Phase::Scrub => "Scrub",
        }
    }
}

/// An ordered, phase-attributed cycle account of one (or more) calls.
///
/// Spans keep first-charge order, so a ledger prints in the order the
/// phases occur; charging the same phase twice accumulates. Zero-cycle
/// charges are recorded (Table 1 prints "Message Transfer 0" for a 0 B
/// message), so a phase's *presence* is part of the model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleLedger {
    spans: Vec<(Phase, u64)>,
}

impl CycleLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `cycles` to `phase` (accumulates; records zero charges).
    pub fn charge(&mut self, phase: Phase, cycles: u64) {
        if let Some(span) = self.spans.iter_mut().find(|(p, _)| *p == phase) {
            span.1 += cycles;
        } else {
            self.spans.push((phase, cycles));
        }
    }

    /// Builder-style [`charge`](Self::charge).
    #[must_use]
    pub fn with(mut self, phase: Phase, cycles: u64) -> Self {
        self.charge(phase, cycles);
        self
    }

    /// Cycles attributed to `phase` (0 when absent).
    pub fn get(&self, phase: Phase) -> u64 {
        self.spans
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or(0, |(_, c)| *c)
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.spans.iter().map(|(_, c)| c).sum()
    }

    /// The spans in first-charge order.
    pub fn spans(&self) -> &[(Phase, u64)] {
        &self.spans
    }

    /// Fold another ledger in, phase by phase.
    pub fn merge(&mut self, other: &CycleLedger) {
        for &(p, c) in &other.spans {
            self.charge(p, c);
        }
    }

    /// Drop every span but keep the allocation — the reset half of the
    /// reuse-a-scratch-ledger pattern the arena hot path runs on.
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Number of recorded spans (distinct phases charged so far).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span has been charged yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Rewrite every span's cycles in place as `f(phase, cycles)`,
    /// keeping span order. This is how batched pricing rescales a
    /// first-call ledger into an n-call ledger without reallocating.
    pub fn map_cycles(&mut self, mut f: impl FnMut(Phase, u64) -> u64) {
        for (p, c) in &mut self.spans {
            *c = f(*p, *c);
        }
    }

    /// Per-phase delta `self - baseline` over the union of phases (this
    /// ledger's order first, then baseline-only phases). The Figure 5
    /// bars are exactly these diffs between ablation configurations.
    pub fn diff(&self, baseline: &CycleLedger) -> Vec<(Phase, i64)> {
        let mut out = Vec::new();
        self.diff_into(baseline, &mut out);
        out
    }

    /// [`diff`](Self::diff) into a caller-provided buffer (cleared
    /// first), so sweep grids comparing many ledger pairs can reuse one
    /// allocation.
    pub fn diff_into(&self, baseline: &CycleLedger, out: &mut Vec<(Phase, i64)>) {
        out.clear();
        out.extend(
            self.spans
                .iter()
                .map(|&(p, c)| (p, c as i64 - baseline.get(p) as i64)),
        );
        for &(p, c) in &baseline.spans {
            if self.spans.iter().all(|(q, _)| *q != p) {
                out.push((p, -(c as i64)));
            }
        }
    }
}

/// Flat per-phase cycle totals: a `[u64; Phase::COUNT]` keyed by
/// [`Phase::index`] (i.e. [`Phase::ALL`] order).
///
/// This is the sampled-attribution accumulator: adding a span is one
/// array add — no span scan, no ordering metadata — and the result is
/// *exact*, because per-phase totals are plain `u64` sums over the same
/// spans a full ledger would record. Only span ordering and the
/// presence of zero-cycle spans are dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotals {
    cycles: [u64; Phase::COUNT],
}

impl Default for PhaseTotals {
    fn default() -> Self {
        PhaseTotals {
            cycles: [0; Phase::COUNT],
        }
    }
}

impl PhaseTotals {
    /// All-zero totals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `cycles` to `phase`.
    pub fn charge(&mut self, phase: Phase, cycles: u64) {
        self.cycles[phase.index()] += cycles;
    }

    /// Cycles accumulated for `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.cycles[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Whether nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.cycles.iter().all(|&c| c == 0)
    }

    /// Fold a ledger's spans in.
    pub fn add_ledger(&mut self, ledger: &CycleLedger) {
        for &(p, c) in ledger.spans() {
            self.charge(p, c);
        }
    }

    /// Fold another totals array in.
    pub fn merge(&mut self, other: &PhaseTotals) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
    }

    /// Render as a [`CycleLedger`] in canonical [`Phase::ALL`] order,
    /// keeping only non-zero phases (flat totals carry no record of
    /// zero-cycle span presence).
    pub fn to_ledger(&self) -> CycleLedger {
        let mut l = CycleLedger::new();
        for p in Phase::ALL {
            let c = self.get(p);
            if c > 0 {
                l.charge(p, c);
            }
        }
        l
    }
}

/// Handle to one ledger inside a [`LedgerArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerRef(usize);

/// A high-water mark of a [`LedgerArena`], for truncate-and-reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaMark {
    ledgers: usize,
    spans: usize,
}

/// A structure-of-arrays pool of span ledgers: phases and cycles live in
/// two flat slabs, each ledger is a `(start, len)` range over them.
///
/// The invocation hot path charges into the arena instead of allocating
/// a `CycleLedger` per request; [`truncate`](Self::truncate) /
/// [`reset`](Self::reset) roll the slabs back without freeing, so a
/// steady-state sweep performs zero heap allocation per request. Only
/// the most recently begun ledger may still be charged (its span range
/// must sit at the slab tail).
#[derive(Debug, Clone, Default)]
pub struct LedgerArena {
    phases: Vec<Phase>,
    cycles: Vec<u64>,
    /// Per-ledger `(start, len)` into the slabs.
    ranges: Vec<(usize, usize)>,
}

impl LedgerArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena with room for `ledgers` ledgers totalling `spans` spans,
    /// so a bounded workload (e.g. a sampled sweep keeping 1-in-N
    /// request ledgers of at most [`Phase::COUNT`] spans each) never
    /// grows the slabs after construction.
    pub fn with_capacity(ledgers: usize, spans: usize) -> Self {
        LedgerArena {
            phases: Vec::with_capacity(spans),
            cycles: Vec::with_capacity(spans),
            ranges: Vec::with_capacity(ledgers),
        }
    }

    /// Open a fresh (empty) ledger at the slab tail and return its
    /// handle. Charging is only valid for the most recently begun
    /// ledger.
    pub fn begin(&mut self) -> LedgerRef {
        let start = self.phases.len();
        self.ranges.push((start, 0));
        LedgerRef(self.ranges.len() - 1)
    }

    /// Charge `cycles` to `phase` in ledger `h` (accumulating per phase
    /// and recording zero charges, exactly like [`CycleLedger::charge`]).
    ///
    /// # Panics
    ///
    /// When `h` is not the most recently begun ledger (its spans would
    /// no longer sit at the slab tail).
    pub fn charge(&mut self, h: LedgerRef, phase: Phase, cycles: u64) {
        assert_eq!(
            h.0 + 1,
            self.ranges.len(),
            "only the most recently begun arena ledger may be charged"
        );
        let (start, len) = self.ranges[h.0];
        for i in start..start + len {
            if self.phases[i] == phase {
                self.cycles[i] += cycles;
                return;
            }
        }
        self.phases.push(phase);
        self.cycles.push(cycles);
        self.ranges[h.0].1 += 1;
    }

    /// Fold a ledger's spans into arena ledger `h`.
    pub fn merge_ledger(&mut self, h: LedgerRef, ledger: &CycleLedger) {
        for &(p, c) in ledger.spans() {
            self.charge(h, p, c);
        }
    }

    /// The spans of ledger `h`, in first-charge order.
    pub fn spans(&self, h: LedgerRef) -> impl Iterator<Item = (Phase, u64)> + '_ {
        let (start, len) = self.ranges[h.0];
        (start..start + len).map(|i| (self.phases[i], self.cycles[i]))
    }

    /// Total cycles of ledger `h`.
    pub fn total(&self, h: LedgerRef) -> u64 {
        let (start, len) = self.ranges[h.0];
        self.cycles[start..start + len].iter().sum()
    }

    /// Copy ledger `h` out into an owned [`CycleLedger`].
    pub fn to_ledger(&self, h: LedgerRef) -> CycleLedger {
        let mut l = CycleLedger::new();
        for (p, c) in self.spans(h) {
            l.charge(p, c);
        }
        l
    }

    /// Number of ledgers currently held.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Handles to every ledger currently held, in [`begin`](Self::begin)
    /// order (e.g. walking the retained sample after a sampled sweep).
    pub fn handles(&self) -> impl Iterator<Item = LedgerRef> {
        (0..self.ranges.len()).map(LedgerRef)
    }

    /// Whether the arena holds no ledgers.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Allocated span-slab capacity — the steady-state gauge: a warmed-up
    /// sweep must not move this.
    pub fn span_capacity(&self) -> usize {
        self.phases.capacity()
    }

    /// Allocated ledger-table capacity (see
    /// [`span_capacity`](Self::span_capacity)).
    pub fn ledger_capacity(&self) -> usize {
        self.ranges.capacity()
    }

    /// The current high-water mark, for a later
    /// [`truncate`](Self::truncate).
    pub fn mark(&self) -> ArenaMark {
        ArenaMark {
            ledgers: self.ranges.len(),
            spans: self.phases.len(),
        }
    }

    /// Roll back to `mark`, dropping every ledger begun since — without
    /// freeing slab memory (the reuse half of reset-and-reuse).
    pub fn truncate(&mut self, mark: ArenaMark) {
        self.ranges.truncate(mark.ledgers);
        self.phases.truncate(mark.spans);
        self.cycles.truncate(mark.spans);
    }

    /// Drop every ledger, keep the slabs.
    pub fn reset(&mut self) {
        self.truncate(ArenaMark {
            ledgers: 0,
            spans: 0,
        });
    }
}

/// Where the load generators record phase attribution — the
/// caller-provided sink of the arena hot path.
///
/// `Full` keeps a complete span ledger for *every* request (the arena is
/// used as reset-and-reuse scratch, so the report ledger reproduces the
/// pre-arena output bit for bit). `Sampled` accumulates every request
/// into flat [`PhaseTotals`] (exact per-phase sums — see the
/// `PhaseTotals` docs) and additionally retains a full span ledger in
/// the arena for one request in `every`.
pub enum Attribution<'a> {
    /// Full span attribution for every request, staged through `arena`.
    Full(&'a mut LedgerArena),
    /// Flat totals for all requests; 1-in-`every` requests also keep
    /// their span ledger in `arena`.
    Sampled {
        /// Keep a full span ledger for requests where
        /// `request_index % every == 0` (`every = 0` keeps none).
        every: u64,
        /// The exact flat accumulator every request charges into.
        totals: &'a mut PhaseTotals,
        /// Retains the sampled requests' span ledgers.
        arena: &'a mut LedgerArena,
    },
}

/// Temporal-safety mitigations, each independently switchable.
///
/// These are the runtime twins of the `xpc-verify` temporal passes:
/// revocation epochs refute stale grant-cap replay, zero-on-handover
/// scrubs relay-segment reuse leaks, and per-hop flow tags keep one
/// tenant's return from popping another tenant's linkage record. Every
/// `IpcSystem` model prices the mitigations it is asked for —
/// XPC-engine systems at hardware rates (an epoch compare rides the
/// `xcall` cap walk, a flow tag rides the linkage record), trap-based
/// baselines at their software-equivalent rates (kernel-side table
/// lookups in the IPC logic path). All-off (the [`Default`]) charges
/// nothing anywhere, so un-hardened pricing is byte-identical to the
/// pre-hardening model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hardening {
    /// Check the capability's revocation epoch on every call leg.
    pub revocation_epochs: bool,
    /// Zero the relay segment (or message buffer) before ownership
    /// transfer; priced per byte into [`Phase::Scrub`].
    pub zero_on_handover: bool,
    /// Stamp and verify a per-hop tenant flow tag on call and reply.
    pub flow_tags: bool,
}

impl Hardening {
    /// No mitigations (pricing identical to the unhardened model).
    pub const NONE: Hardening = Hardening {
        revocation_epochs: false,
        zero_on_handover: false,
        flow_tags: false,
    };

    /// Every mitigation on.
    pub const ALL: Hardening = Hardening {
        revocation_epochs: true,
        zero_on_handover: true,
        flow_tags: true,
    };

    /// Whether any mitigation is on.
    pub fn any(self) -> bool {
        self.revocation_epochs || self.zero_on_handover || self.flow_tags
    }
}

/// Options for one [`IpcSystem`](crate::ipc::IpcSystem) hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeOpts {
    /// Price the *reply* leg of a round trip instead of the call leg
    /// (XPC replies pay `xret` instead of trampoline + `xcall`).
    pub reply: bool,
    /// Chain hops the payload crosses (handover chains; >= 1).
    pub hops: u32,
    /// Socket distance between the caller and the shard holding the
    /// callee's x-entry (0 = the local shard — always the case on a
    /// single-socket topology). Systems with a sharded x-entry table
    /// (`XpcIpc`) charge [`Phase::ShardMiss`] for the remote fetch;
    /// trap-based systems have one global table and ignore it.
    pub shard_dist: u64,
    /// Temporal-safety mitigations to price on this hop (all-off by
    /// default — see [`Hardening`]).
    pub hardening: Hardening,
}

impl Default for InvokeOpts {
    fn default() -> Self {
        InvokeOpts {
            reply: false,
            hops: 1,
            shard_dist: 0,
            hardening: Hardening::NONE,
        }
    }
}

impl InvokeOpts {
    /// The call leg of a round trip (the default).
    pub fn call() -> Self {
        Self::default()
    }

    /// The reply leg of a round trip.
    pub fn reply_leg() -> Self {
        InvokeOpts {
            reply: true,
            ..Self::default()
        }
    }

    /// This hop resolves its x-entry from a shard `dist` distance units
    /// away (see [`Self::shard_dist`]).
    #[must_use]
    pub fn at_shard_distance(mut self, dist: u64) -> Self {
        self.shard_dist = dist;
        self
    }

    /// Price this hop with `hardening` mitigations on (see
    /// [`Hardening`]).
    #[must_use]
    pub fn hardened(mut self, hardening: Hardening) -> Self {
        self.hardening = hardening;
        self
    }
}

/// The priced outcome of one IPC invocation: the phase ledger, its total,
/// and the payload bytes the mechanism copied (0 for handover).
///
/// Invariant: `total == ledger.total()` — constructors enforce it and the
/// cross-crate invariant tests sweep it over every system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Invocation {
    /// Phase-attributed cycle account.
    pub ledger: CycleLedger,
    /// Total cycles (always the ledger sum).
    pub total: u64,
    /// Bytes copied moving the payload (0 for relay-segment handover).
    pub copied_bytes: u64,
}

impl Invocation {
    /// Build from a ledger; the total is the ledger sum.
    pub fn from_ledger(ledger: CycleLedger, copied_bytes: u64) -> Self {
        let total = ledger.total();
        Invocation {
            ledger,
            total,
            copied_bytes,
        }
    }

    /// A single-phase invocation (handy for fixtures and stubs).
    pub fn single(phase: Phase, cycles: u64) -> Self {
        Self::from_ledger(CycleLedger::new().with(phase, cycles), 0)
    }

    /// Concatenate two invocations (round trips, chains).
    #[must_use]
    pub fn plus(mut self, other: Invocation) -> Self {
        self.ledger.merge(&other.ledger);
        self.total += other.total;
        self.copied_bytes += other.copied_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_keeps_order() {
        let mut l = CycleLedger::new();
        l.charge(Phase::Trap, 100);
        l.charge(Phase::Transfer, 0);
        l.charge(Phase::Trap, 7);
        assert_eq!(l.get(Phase::Trap), 107);
        assert_eq!(l.spans().len(), 2, "zero charge is recorded once");
        assert_eq!(l.spans()[0].0, Phase::Trap);
        assert_eq!(l.total(), 107);
    }

    #[test]
    fn merge_and_plus_preserve_totals() {
        let a = Invocation::from_ledger(
            CycleLedger::new()
                .with(Phase::Trap, 10)
                .with(Phase::Transfer, 5),
            5,
        );
        let b = Invocation::single(Phase::Xret, 23);
        let sum = a.clone().plus(b);
        assert_eq!(sum.total, 38);
        assert_eq!(sum.total, sum.ledger.total());
        assert_eq!(sum.copied_bytes, 5);
    }

    #[test]
    fn diff_covers_union_of_phases() {
        let a = CycleLedger::new()
            .with(Phase::Xcall, 18)
            .with(Phase::TlbRefill, 40);
        let b = CycleLedger::new()
            .with(Phase::Xcall, 6)
            .with(Phase::Trampoline, 15);
        let d = a.diff(&b);
        assert!(d.contains(&(Phase::Xcall, 12)));
        assert!(d.contains(&(Phase::TlbRefill, 40)));
        assert!(d.contains(&(Phase::Trampoline, -15)));
        let total: i64 = d.iter().map(|(_, c)| c).sum();
        assert_eq!(total, a.total() as i64 - b.total() as i64);
    }

    #[test]
    fn phase_keys_are_distinct() {
        let mut keys: Vec<_> = Phase::ALL.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Phase::ALL.len());
    }

    #[test]
    fn invocation_invariant_total_is_ledger_sum() {
        let inv = Invocation::from_ledger(
            CycleLedger::new()
                .with(Phase::Trap, 107)
                .with(Phase::Restore, 199),
            0,
        );
        assert_eq!(inv.total, inv.ledger.total());
    }

    #[test]
    fn phase_count_and_index_match_all() {
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?} index must match its ALL position");
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut l = CycleLedger::new()
            .with(Phase::Trap, 1)
            .with(Phase::Xcall, 2);
        assert_eq!(l.len(), 2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.total(), 0);
    }

    #[test]
    fn map_cycles_rescales_in_place() {
        let mut l = CycleLedger::new()
            .with(Phase::Trap, 100)
            .with(Phase::Transfer, 64);
        l.map_cycles(|p, c| if p == Phase::Trap { c * 3 } else { c });
        assert_eq!(l.get(Phase::Trap), 300);
        assert_eq!(l.get(Phase::Transfer), 64);
        assert_eq!(l.spans()[0].0, Phase::Trap, "span order preserved");
    }

    #[test]
    fn diff_into_matches_diff_and_reuses_buffer() {
        let a = CycleLedger::new()
            .with(Phase::Xcall, 18)
            .with(Phase::TlbRefill, 40);
        let b = CycleLedger::new()
            .with(Phase::Xcall, 6)
            .with(Phase::Trampoline, 15);
        let mut buf = vec![(Phase::Driver, -999)]; // stale content must go
        a.diff_into(&b, &mut buf);
        assert_eq!(buf, a.diff(&b));
    }

    #[test]
    fn phase_totals_sum_ledgers_exactly() {
        let a = CycleLedger::new()
            .with(Phase::Trap, 107)
            .with(Phase::Transfer, 0); // zero span: present in ledger, invisible in totals
        let b = CycleLedger::new()
            .with(Phase::Trap, 7)
            .with(Phase::Xcall, 18);
        let mut t = PhaseTotals::new();
        assert!(t.is_empty());
        t.add_ledger(&a);
        t.add_ledger(&b);
        assert_eq!(t.get(Phase::Trap), 114);
        assert_eq!(t.total(), a.total() + b.total());
        let mut u = PhaseTotals::new();
        u.charge(Phase::Trap, 114);
        u.charge(Phase::Xcall, 18);
        assert_eq!(t, u);
        // to_ledger renders canonical ALL order, non-zero phases only.
        let l = t.to_ledger();
        assert_eq!(l.spans(), &[(Phase::Trap, 114), (Phase::Xcall, 18)]);
    }

    #[test]
    fn arena_charge_matches_cycle_ledger_semantics() {
        let mut arena = LedgerArena::new();
        let h = arena.begin();
        arena.charge(h, Phase::Trap, 100);
        arena.charge(h, Phase::Transfer, 0);
        arena.charge(h, Phase::Trap, 7);
        let l = arena.to_ledger(h);
        let mut want = CycleLedger::new();
        want.charge(Phase::Trap, 100);
        want.charge(Phase::Transfer, 0);
        want.charge(Phase::Trap, 7);
        assert_eq!(l, want, "accumulation, zero spans, and order all match");
        assert_eq!(arena.total(h), 107);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn arena_truncate_and_reset_keep_slab_capacity() {
        let mut arena = LedgerArena::with_capacity(4, 4 * Phase::COUNT);
        let cap = (arena.ledger_capacity(), arena.span_capacity());
        let mark = arena.mark();
        for _ in 0..4 {
            let h = arena.begin();
            for p in Phase::ALL {
                arena.charge(h, p, 1);
            }
        }
        assert_eq!(arena.len(), 4);
        arena.truncate(mark);
        assert!(arena.is_empty());
        assert_eq!(
            (arena.ledger_capacity(), arena.span_capacity()),
            cap,
            "truncate must not free or grow the slabs"
        );
        let h = arena.begin();
        arena.charge(h, Phase::Xcall, 18);
        arena.reset();
        assert!(arena.is_empty());
        assert_eq!((arena.ledger_capacity(), arena.span_capacity()), cap);
    }

    #[test]
    fn arena_merge_ledger_round_trips() {
        let src = CycleLedger::new()
            .with(Phase::Trampoline, 76)
            .with(Phase::Xcall, 18);
        let mut arena = LedgerArena::new();
        let h = arena.begin();
        arena.merge_ledger(h, &src);
        assert_eq!(arena.to_ledger(h), src);
        assert_eq!(
            arena.spans(h).collect::<Vec<_>>(),
            vec![(Phase::Trampoline, 76), (Phase::Xcall, 18)]
        );
    }

    #[test]
    #[should_panic(expected = "most recently begun")]
    fn arena_rejects_charging_a_closed_ledger() {
        let mut arena = LedgerArena::new();
        let old = arena.begin();
        arena.charge(old, Phase::Trap, 1);
        let _tail = arena.begin();
        arena.charge(old, Phase::Trap, 1);
    }
}
