//! The phase-attributed cycle ledger behind every IPC invocation.
//!
//! The paper's whole evaluation is phase-level cycle attribution: Table 1
//! splits a seL4 one-way call into trap / IPC logic / process switch /
//! restore / message transfer, Figure 5 splits an XPC call into
//! trampoline / `xcall` / TLB refill, Table 5 breaks out the 58-cycle
//! translation-base barrier, and §5.2 prices cross-core hops separately.
//! A [`CycleLedger`] is that attribution made first-class: every kernel
//! model charges named [`Phase`] spans instead of summing bare `u64`s,
//! and an [`Invocation`] carries the ledger (plus the total and the bytes
//! copied) back to the harness, which renders tables and figures straight
//! from it.

/// A named cost phase of a cross-process call.
///
/// The first five are Table 1's rows; the next four are the XPC
/// instruction path (Table 3 / Figure 5); the rest cover the slow paths,
/// historical designs and the Binder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Trap into the kernel (Table 1: 107 cycles).
    Trap,
    /// Kernel IPC logic: capability checks, endpoint state (Table 1: 212).
    IpcLogic,
    /// Process switch: queues, reply cap, `satp` (Table 1: 146).
    Switch,
    /// Context restore and return to user (Table 1: 199).
    Restore,
    /// Message payload movement (copies; Table 1: 4010 for 4 KiB).
    Transfer,
    /// Caller-side save/restore trampoline (Figure 5: 76 full / 15 partial).
    Trampoline,
    /// The `xcall` instruction (Table 3: 18).
    Xcall,
    /// The `xret` instruction (Table 3: 23).
    Xret,
    /// The `swapseg` instruction (Table 3: 11).
    Swapseg,
    /// Post-switch TLB refill penalty without tagged TLB (Figure 5: ~40).
    TlbRefill,
    /// Scheduler / wait-queue work (slow paths, async kernels).
    Schedule,
    /// Virtual time a request spent queued behind other work (windowed
    /// pipeline runs only; the closed-loop report folds waiting into
    /// latency as it always did).
    Queue,
    /// Cross-core IPI + remote wakeup + cache transfer (§5.2).
    CrossCore,
    /// Fetching an x-entry from a *remote socket's* x-entry shard (the
    /// sharded-table model: a local-shard `xcall` pays nothing here).
    ShardMiss,
    /// Kernel mapping work: remap, TLB shootdown, temporary mapping.
    Mapping,
    /// Driver / framework control path (Binder ioctl, dispatch).
    Driver,
    /// Application compute attributed to the call (surface touches, draw).
    Compute,
}

impl Phase {
    /// Every phase, in canonical (paper) order.
    pub const ALL: [Phase; 17] = [
        Phase::Trap,
        Phase::IpcLogic,
        Phase::Switch,
        Phase::Restore,
        Phase::Transfer,
        Phase::Trampoline,
        Phase::Xcall,
        Phase::Xret,
        Phase::Swapseg,
        Phase::TlbRefill,
        Phase::Schedule,
        Phase::Queue,
        Phase::CrossCore,
        Phase::ShardMiss,
        Phase::Mapping,
        Phase::Driver,
        Phase::Compute,
    ];

    /// Stable kebab-case key (JSON dumps, machine-readable output).
    pub fn key(self) -> &'static str {
        match self {
            Phase::Trap => "trap",
            Phase::IpcLogic => "ipc-logic",
            Phase::Switch => "switch",
            Phase::Restore => "restore",
            Phase::Transfer => "transfer",
            Phase::Trampoline => "trampoline",
            Phase::Xcall => "xcall",
            Phase::Xret => "xret",
            Phase::Swapseg => "swapseg",
            Phase::TlbRefill => "tlb-refill",
            Phase::Schedule => "schedule",
            Phase::Queue => "queue",
            Phase::CrossCore => "cross-core",
            Phase::ShardMiss => "shard-miss",
            Phase::Mapping => "mapping",
            Phase::Driver => "driver",
            Phase::Compute => "compute",
        }
    }

    /// Human-readable label as the paper's tables print it.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Trap => "Trap",
            Phase::IpcLogic => "IPC Logic",
            Phase::Switch => "Process Switch",
            Phase::Restore => "Restore",
            Phase::Transfer => "Message Transfer",
            Phase::Trampoline => "Trampoline",
            Phase::Xcall => "xcall",
            Phase::Xret => "xret",
            Phase::Swapseg => "swapseg",
            Phase::TlbRefill => "TLB Refill",
            Phase::Schedule => "Schedule",
            Phase::Queue => "Queue",
            Phase::CrossCore => "Cross-core",
            Phase::ShardMiss => "Shard Miss",
            Phase::Mapping => "Mapping",
            Phase::Driver => "Driver",
            Phase::Compute => "Compute",
        }
    }
}

/// An ordered, phase-attributed cycle account of one (or more) calls.
///
/// Spans keep first-charge order, so a ledger prints in the order the
/// phases occur; charging the same phase twice accumulates. Zero-cycle
/// charges are recorded (Table 1 prints "Message Transfer 0" for a 0 B
/// message), so a phase's *presence* is part of the model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleLedger {
    spans: Vec<(Phase, u64)>,
}

impl CycleLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `cycles` to `phase` (accumulates; records zero charges).
    pub fn charge(&mut self, phase: Phase, cycles: u64) {
        if let Some(span) = self.spans.iter_mut().find(|(p, _)| *p == phase) {
            span.1 += cycles;
        } else {
            self.spans.push((phase, cycles));
        }
    }

    /// Builder-style [`charge`](Self::charge).
    #[must_use]
    pub fn with(mut self, phase: Phase, cycles: u64) -> Self {
        self.charge(phase, cycles);
        self
    }

    /// Cycles attributed to `phase` (0 when absent).
    pub fn get(&self, phase: Phase) -> u64 {
        self.spans
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or(0, |(_, c)| *c)
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.spans.iter().map(|(_, c)| c).sum()
    }

    /// The spans in first-charge order.
    pub fn spans(&self) -> &[(Phase, u64)] {
        &self.spans
    }

    /// Fold another ledger in, phase by phase.
    pub fn merge(&mut self, other: &CycleLedger) {
        for &(p, c) in &other.spans {
            self.charge(p, c);
        }
    }

    /// Per-phase delta `self - baseline` over the union of phases (this
    /// ledger's order first, then baseline-only phases). The Figure 5
    /// bars are exactly these diffs between ablation configurations.
    pub fn diff(&self, baseline: &CycleLedger) -> Vec<(Phase, i64)> {
        let mut out: Vec<(Phase, i64)> = self
            .spans
            .iter()
            .map(|&(p, c)| (p, c as i64 - baseline.get(p) as i64))
            .collect();
        for &(p, c) in &baseline.spans {
            if self.spans.iter().all(|(q, _)| *q != p) {
                out.push((p, -(c as i64)));
            }
        }
        out
    }
}

/// Options for one [`IpcSystem`](crate::ipc::IpcSystem) hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeOpts {
    /// Price the *reply* leg of a round trip instead of the call leg
    /// (XPC replies pay `xret` instead of trampoline + `xcall`).
    pub reply: bool,
    /// Chain hops the payload crosses (handover chains; >= 1).
    pub hops: u32,
    /// Socket distance between the caller and the shard holding the
    /// callee's x-entry (0 = the local shard — always the case on a
    /// single-socket topology). Systems with a sharded x-entry table
    /// (`XpcIpc`) charge [`Phase::ShardMiss`] for the remote fetch;
    /// trap-based systems have one global table and ignore it.
    pub shard_dist: u64,
}

impl Default for InvokeOpts {
    fn default() -> Self {
        InvokeOpts {
            reply: false,
            hops: 1,
            shard_dist: 0,
        }
    }
}

impl InvokeOpts {
    /// The call leg of a round trip (the default).
    pub fn call() -> Self {
        Self::default()
    }

    /// The reply leg of a round trip.
    pub fn reply_leg() -> Self {
        InvokeOpts {
            reply: true,
            ..Self::default()
        }
    }

    /// This hop resolves its x-entry from a shard `dist` distance units
    /// away (see [`Self::shard_dist`]).
    #[must_use]
    pub fn at_shard_distance(mut self, dist: u64) -> Self {
        self.shard_dist = dist;
        self
    }
}

/// The priced outcome of one IPC invocation: the phase ledger, its total,
/// and the payload bytes the mechanism copied (0 for handover).
///
/// Invariant: `total == ledger.total()` — constructors enforce it and the
/// cross-crate invariant tests sweep it over every system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Invocation {
    /// Phase-attributed cycle account.
    pub ledger: CycleLedger,
    /// Total cycles (always the ledger sum).
    pub total: u64,
    /// Bytes copied moving the payload (0 for relay-segment handover).
    pub copied_bytes: u64,
}

impl Invocation {
    /// Build from a ledger; the total is the ledger sum.
    pub fn from_ledger(ledger: CycleLedger, copied_bytes: u64) -> Self {
        let total = ledger.total();
        Invocation {
            ledger,
            total,
            copied_bytes,
        }
    }

    /// A single-phase invocation (handy for fixtures and stubs).
    pub fn single(phase: Phase, cycles: u64) -> Self {
        Self::from_ledger(CycleLedger::new().with(phase, cycles), 0)
    }

    /// Concatenate two invocations (round trips, chains).
    #[must_use]
    pub fn plus(mut self, other: Invocation) -> Self {
        self.ledger.merge(&other.ledger);
        self.total += other.total;
        self.copied_bytes += other.copied_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_keeps_order() {
        let mut l = CycleLedger::new();
        l.charge(Phase::Trap, 100);
        l.charge(Phase::Transfer, 0);
        l.charge(Phase::Trap, 7);
        assert_eq!(l.get(Phase::Trap), 107);
        assert_eq!(l.spans().len(), 2, "zero charge is recorded once");
        assert_eq!(l.spans()[0].0, Phase::Trap);
        assert_eq!(l.total(), 107);
    }

    #[test]
    fn merge_and_plus_preserve_totals() {
        let a = Invocation::from_ledger(
            CycleLedger::new()
                .with(Phase::Trap, 10)
                .with(Phase::Transfer, 5),
            5,
        );
        let b = Invocation::single(Phase::Xret, 23);
        let sum = a.clone().plus(b);
        assert_eq!(sum.total, 38);
        assert_eq!(sum.total, sum.ledger.total());
        assert_eq!(sum.copied_bytes, 5);
    }

    #[test]
    fn diff_covers_union_of_phases() {
        let a = CycleLedger::new()
            .with(Phase::Xcall, 18)
            .with(Phase::TlbRefill, 40);
        let b = CycleLedger::new()
            .with(Phase::Xcall, 6)
            .with(Phase::Trampoline, 15);
        let d = a.diff(&b);
        assert!(d.contains(&(Phase::Xcall, 12)));
        assert!(d.contains(&(Phase::TlbRefill, 40)));
        assert!(d.contains(&(Phase::Trampoline, -15)));
        let total: i64 = d.iter().map(|(_, c)| c).sum();
        assert_eq!(total, a.total() as i64 - b.total() as i64);
    }

    #[test]
    fn phase_keys_are_distinct() {
        let mut keys: Vec<_> = Phase::ALL.iter().map(|p| p.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Phase::ALL.len());
    }

    #[test]
    fn invocation_invariant_total_is_ledger_sum() {
        let inv = Invocation::from_ledger(
            CycleLedger::new()
                .with(Phase::Trap, 107)
                .with(Phase::Restore, 199),
            0,
        );
        assert_eq!(inv.total, inv.ledger.total());
    }
}
