//! Program differentials: [`xpc_verify::verify_program`]'s static
//! verdict on each crafted fused program must be the **same `Cause`** a
//! real `XpcKernel`/`XpcEngine` raises when the equivalent chain
//! actually runs — the over-deep chain overflows the real link stack,
//! and the cap-violating chain is refused at the exact hop whose grant
//! is missing.

use rv64::trap::Cause;
use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc_engine::layout::{LINK_RECORD_BYTES, LINK_STACK_BYTES};
use xpc_engine::XpcAsm;
use xpc_verify::{crafted, verify_program};

/// The single cause the verifier statically predicts for a crafted
/// program (asserting there is at least one finding and they agree).
fn static_cause(c: &crafted::CraftedProgram) -> Cause {
    let findings = verify_program(&c.plan, c.label, &c.program);
    assert!(!findings.is_empty(), "{}: no static findings", c.label);
    let cause = findings[0].cause().expect("trap-typed verdict");
    for f in &findings {
        assert_eq!(f.cause(), Some(cause), "{}: mixed causes", c.label);
    }
    assert_eq!(cause, c.expected, "{}: wrong class", c.label);
    cause
}

/// Run the entered thread and return the fault cause it must raise.
fn run_to_fault(k: &mut XpcKernel) -> Cause {
    match k.run(50_000_000).unwrap() {
        KernelEvent::Fault { cause, .. } => cause,
        other => panic!("expected a fault, got {other:?}"),
    }
}

fn exit_syscall(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

#[test]
fn over_deep_program_diffs_to_invalid_linkage() {
    let c = crafted::over_deep_program();
    let predicted = static_cause(&c);

    // The builder itself admits the chain — only the verifier refuses.
    let capacity = LINK_STACK_BYTES / LINK_RECORD_BYTES;
    assert_eq!(c.program.depth() as u64, capacity + 1);

    // Runtime: the program's repeated hops into service 1 are the
    // handler chaining an xcall into its own entry without returning;
    // past the link stack's capacity the engine refuses the push.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p = k.create_process().unwrap();
    let t = k.create_thread(p).unwrap();
    let mut h = Assembler::new(USER_CODE_VA);
    h.li(reg::T6, 1); // first registered entry id
    h.xcall(reg::T6);
    h.ret();
    let hv = k.load_code(p, &h.assemble()).unwrap();
    let entry = k.register_entry(t, t, hv, capacity + 8).unwrap();
    k.grant_xcall(t, t, entry).unwrap();

    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    k.grant_xcall(t, client, entry).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T6, entry.0 as i64);
    a.xcall(reg::T6);
    exit_syscall(&mut a);
    let va = k.load_code(pc, &a.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidLinkage);
}

#[test]
fn cap_violating_program_diffs_to_invalid_xcall_cap() {
    let c = crafted::cap_violating_program();
    let predicted = static_cause(&c);

    // Runtime: service 2's entry is registered and granted to nobody
    // but its owner; service 1's handler chains an xcall into it — the
    // engine refuses at exactly that hop.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p2 = k.create_process().unwrap();
    let s2 = k.create_thread(p2).unwrap();
    let mut h2 = Assembler::new(USER_CODE_VA);
    h2.ret();
    let h2v = k.load_code(p2, &h2.assemble()).unwrap();
    let entry2 = k.register_entry(s2, s2, h2v, 1).unwrap();

    let p1 = k.create_process().unwrap();
    let s1 = k.create_thread(p1).unwrap();
    let mut h1 = Assembler::new(USER_CODE_VA);
    h1.li(reg::T6, entry2.0 as i64);
    h1.xcall(reg::T6); // the ungranted chained hop
    h1.ret();
    let h1v = k.load_code(p1, &h1.assemble()).unwrap();
    let entry1 = k.register_entry(s1, s1, h1v, 1).unwrap();

    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    k.grant_xcall(s1, client, entry1).unwrap();
    // NO grant_xcall(s2, s1, entry2): the missing edge of the plan.
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T6, entry1.0 as i64);
    a.xcall(reg::T6);
    exit_syscall(&mut a);
    let va = k.load_code(pc, &a.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidXcallCap);
}

#[test]
fn granted_chain_verifies_clean_and_runs_fault_free() {
    // The clean sibling of the cap-violating program: identical chain,
    // the 1→2 grant in place — zero findings, and the kernel runs the
    // chained xcalls to completion.
    let c = crafted::cap_violating_program();
    let plan = xpc_verify::Plan::for_program(3, &c.program);
    assert!(verify_program(&plan, "granted-chain", &c.program).is_empty());

    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p2 = k.create_process().unwrap();
    let s2 = k.create_thread(p2).unwrap();
    let mut h2 = Assembler::new(USER_CODE_VA);
    h2.li(reg::A0, 9);
    h2.ret();
    let h2v = k.load_code(p2, &h2.assemble()).unwrap();
    let entry2 = k.register_entry(s2, s2, h2v, 1).unwrap();

    let p1 = k.create_process().unwrap();
    let s1 = k.create_thread(p1).unwrap();
    let mut h1 = Assembler::new(USER_CODE_VA);
    // Preserve sp/ra across the nested call (migrating-thread
    // convention), then chain onward.
    h1.mv(reg::S3, reg::SP);
    h1.mv(reg::S4, reg::RA);
    h1.li(reg::T6, entry2.0 as i64);
    h1.xcall(reg::T6);
    h1.mv(reg::SP, reg::S3);
    h1.mv(reg::RA, reg::S4);
    h1.ret();
    let h1v = k.load_code(p1, &h1.assemble()).unwrap();
    let entry1 = k.register_entry(s1, s1, h1v, 1).unwrap();
    k.grant_xcall(s2, s1, entry2).unwrap(); // the edge that was missing

    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    k.grant_xcall(s1, client, entry1).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T6, entry1.0 as i64);
    a.xcall(reg::T6);
    exit_syscall(&mut a);
    let va = k.load_code(pc, &a.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    let ev = k.run(50_000_000).unwrap();
    assert!(
        !matches!(ev, KernelEvent::Fault { .. }),
        "granted chain must not fault: {ev:?}"
    );
}
