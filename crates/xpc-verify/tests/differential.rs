//! Differential tests: the static verdict on each crafted plan must be
//! the **same `Cause`** a real `XpcKernel`/`XpcEngine` raises when the
//! equivalent misconfiguration actually runs — and the clean control
//! must both verify clean and run fault-free.
//!
//! Each test replays one crafted scenario from
//! [`xpc_verify::crafted`] on the emulator: same entry ids, same
//! missing grants, same segment plans, real guest code.

use rv64::trap::Cause;
use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc_engine::layout::{LINK_RECORD_BYTES, LINK_STACK_BYTES};
use xpc_engine::{csr_map, XpcAsm};
use xpc_verify::{crafted, verify};

/// The single cause the verifier statically predicts for a crafted
/// scenario (asserting there is at least one finding and they agree).
fn static_cause(c: &crafted::Crafted) -> Cause {
    let findings = verify(&c.plan, &c.recipes);
    assert!(!findings.is_empty(), "{}: no static findings", c.label);
    let cause = findings[0].cause().expect("trap-typed verdict");
    for f in &findings {
        assert_eq!(f.cause(), Some(cause), "{}: mixed causes", c.label);
    }
    assert_eq!(Some(cause), c.expected, "{}: wrong class", c.label);
    cause
}

/// Run the entered thread and return the fault cause it must raise.
fn run_to_fault(k: &mut XpcKernel) -> Cause {
    match k.run(50_000_000).unwrap() {
        KernelEvent::Fault { cause, .. } => cause,
        other => panic!("expected a fault, got {other:?}"),
    }
}

fn exit_syscall(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

#[test]
fn out_of_bounds_entry_diffs_to_invalid_x_entry() {
    let c = crafted::invalid_x_entry();
    let predicted = static_cause(&c);

    // Runtime: xcall the same out-of-table entry id the plan binds.
    let entry_id = c.plan.services[1].entry.unwrap();
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p = k.create_process().unwrap();
    let t = k.create_thread(p).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T6, entry_id as i64);
    a.xcall(reg::T6);
    exit_syscall(&mut a);
    let va = k.load_code(p, &a.assemble()).unwrap();
    k.enter_thread(t, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidXEntry);
}

#[test]
fn ungranted_xcall_diffs_to_invalid_xcall_cap() {
    let c = crafted::invalid_xcall_cap();
    let predicted = static_cause(&c);

    // Runtime: a valid registered entry, but the client never received
    // the xcall-cap bit for it.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let ps = k.create_process().unwrap();
    let server = k.create_thread(ps).unwrap();
    let mut h = Assembler::new(USER_CODE_VA);
    h.ret();
    let hv = k.load_code(ps, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, hv, 1).unwrap();

    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T6, entry.0 as i64);
    a.xcall(reg::T6);
    exit_syscall(&mut a);
    let va = k.load_code(pc, &a.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidXcallCap);
}

#[test]
fn self_recursive_service_diffs_to_invalid_linkage() {
    let c = crafted::invalid_linkage();
    let predicted = static_cause(&c);

    // Runtime: the handler xcalls its own entry forever; the 8 KiB link
    // stack fills and the engine refuses the overflowing push.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p = k.create_process().unwrap();
    let t = k.create_thread(p).unwrap();
    let capacity = LINK_STACK_BYTES / LINK_RECORD_BYTES;
    let mut h = Assembler::new(USER_CODE_VA);
    h.li(reg::T6, 1); // first registered entry id
    h.xcall(reg::T6);
    h.ret();
    let hv = k.load_code(p, &h.assemble()).unwrap();
    let entry = k.register_entry(t, t, hv, capacity + 8).unwrap();
    k.grant_xcall(t, t, entry).unwrap();

    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    k.grant_xcall(t, client, entry).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T6, entry.0 as i64);
    a.xcall(reg::T6);
    exit_syscall(&mut a);
    let va = k.load_code(pc, &a.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidLinkage);
}

#[test]
fn empty_slot_swapseg_diffs_to_swapseg_error() {
    let c = crafted::swapseg_error();
    let predicted = static_cause(&c);

    // Runtime: the same plan — one segment installed, then swapseg
    // against slot 5, which nothing was ever stashed into.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p = k.create_process().unwrap();
    let t = k.create_thread(p).unwrap();
    let seg = k.alloc_relay_seg(t, 4096).unwrap();
    k.install_seg(t, seg).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::A0, 5);
    a.swapseg(reg::A0);
    exit_syscall(&mut a);
    let va = k.load_code(p, &a.assemble()).unwrap();
    k.enter_thread(t, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::SwapsegError);
}

#[test]
fn widening_mask_diffs_to_invalid_seg_mask() {
    let c = crafted::invalid_seg_mask();
    let predicted = static_cause(&c);

    // Runtime: a 4 KiB segment installed, then a guest mask write that
    // claims an 8 KiB window — the CSR write must trap.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p = k.create_process().unwrap();
    let t = k.create_thread(p).unwrap();
    let seg = k.alloc_relay_seg(t, 4096).unwrap();
    k.install_seg(t, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T1, seg_va as i64);
    a.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
    a.li(reg::T1, 8192);
    a.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
    exit_syscall(&mut a);
    let va = k.load_code(p, &a.assemble()).unwrap();
    k.enter_thread(t, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidSegMask);
}

#[test]
fn clean_control_verifies_clean_and_runs_fault_free() {
    let c = crafted::clean();
    assert_eq!(c.expected, None);
    let findings = verify(&c.plan, &c.recipes);
    assert!(findings.is_empty(), "clean control flagged: {findings:?}");

    // Runtime: the same wiring — entry registered, cap granted, a relay
    // segment carried along the call — completes without any fault.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let ps = k.create_process().unwrap();
    let server = k.create_thread(ps).unwrap();
    let mut h = Assembler::new(USER_CODE_VA);
    h.li(reg::A0, 7);
    h.ret();
    let hv = k.load_code(ps, &h.assemble()).unwrap();
    let entry = k.register_entry(server, server, hv, 1).unwrap();

    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    k.grant_xcall(server, client, entry).unwrap();
    let seg = k.alloc_relay_seg(client, 4096).unwrap();
    k.install_seg(client, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;

    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T1, seg_va as i64);
    a.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
    a.li(reg::T1, 256); // the plan's shrink-only mask
    a.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
    a.li(reg::T6, entry.0 as i64);
    a.xcall(reg::T6); // the plan's handover call
    exit_syscall(&mut a);
    let va = k.load_code(pc, &a.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
    let ev = k.run(50_000_000).unwrap();
    assert_eq!(ev, KernelEvent::ThreadExit(7), "clean plan must not fault");
}
