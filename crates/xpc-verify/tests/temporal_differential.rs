//! Temporal differential tests: each of the three lifecycle rules the
//! verifier added (revocation epochs, segment taint / mask travel,
//! tenant flow) is replayed on a real `XpcKernel` and must fault with
//! the **same `Cause`** the static pass predicts — and the corrected
//! sibling of each scenario must both verify clean and run fault-free.
//!
//! The kernel side exercises the runtime twins behind
//! [`xpc::KernelHardening`]: `revoke_entry` + `entry_epoch`,
//! `handover_seg`'s travelling mask window and zero-on-handover scrub,
//! and the flow-tag grant refusal.

use rv64::trap::Cause;
use rv64::{reg, Assembler};
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc::{KernelHardening, ProcessId, SegHandle, ThreadId, XpcError};
use xpc_engine::{csr_map, XpcAsm};
use xpc_verify::{crafted, verify, Grant, Plan, SegOp, ServiceBinding, Verdict};

/// The single cause the verifier statically predicts for a crafted
/// scenario (asserting there is at least one finding and they agree).
fn static_cause(c: &crafted::Crafted) -> Cause {
    let findings = verify(&c.plan, &c.recipes);
    assert!(!findings.is_empty(), "{}: no static findings", c.label);
    let cause = findings[0].cause().expect("trap-typed verdict");
    for f in &findings {
        assert_eq!(f.cause(), Some(cause), "{}: mixed causes", c.label);
    }
    assert_eq!(Some(cause), c.expected, "{}: wrong class", c.label);
    cause
}

/// Run the entered thread and return the fault cause it must raise.
fn run_to_fault(k: &mut XpcKernel) -> Cause {
    match k.run(50_000_000).unwrap() {
        KernelEvent::Fault { cause, .. } => cause,
        other => panic!("expected a fault, got {other:?}"),
    }
}

fn exit_syscall(a: &mut Assembler) {
    a.li(reg::A7, syscall::EXIT as i64);
    a.ecall();
}

// ---- rule 1: revocation epochs --------------------------------------

/// Server + client wiring shared by the revocation tests: a registered
/// entry whose handler stamps `a0 = 7`, a second process with a client
/// thread, and the grant already issued.
fn revocation_fixture(h: KernelHardening) -> (XpcKernel, ThreadId, ThreadId, xpc::XEntryId) {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    k.set_hardening(h);
    let ps = k.create_process().unwrap();
    let server = k.create_thread(ps).unwrap();
    let mut ha = Assembler::new(USER_CODE_VA);
    ha.li(reg::A0, 7);
    ha.ret();
    let hv = k.load_code(ps, &ha.assemble()).unwrap();
    let entry = k.register_entry(server, server, hv, 1).unwrap();
    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    k.grant_xcall(server, client, entry).unwrap();
    (k, server, client, entry)
}

/// Enter `client` with a guest that xcalls `entry` once and exits.
fn enter_calling_client(k: &mut XpcKernel, client: ThreadId, entry: xpc::XEntryId) {
    let pid = k.thread_process(client).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T6, entry.0 as i64);
    a.xcall(reg::T6);
    exit_syscall(&mut a);
    let va = k.load_code(pid, &a.assemble()).unwrap();
    k.enter_thread(client, va, &[]).unwrap();
}

#[test]
fn revoked_cap_diffs_to_invalid_xcall_cap() {
    let c = crafted::revoked_xcall();
    let predicted = static_cause(&c);

    // Runtime: grant, then revoke the entry; the epoch counter dates the
    // outstanding grant and the cleared bitmap bit refuses the call.
    let (mut k, _server, client, entry) = revocation_fixture(KernelHardening {
        revocation_epochs: true,
        ..KernelHardening::NONE
    });
    assert_eq!(k.entry_epoch(entry).unwrap(), 0);
    k.revoke_entry(entry).unwrap();
    assert_eq!(
        k.entry_epoch(entry).unwrap(),
        1,
        "revocation opened a new epoch"
    );
    enter_calling_client(&mut k, client, entry);
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidXcallCap);
}

#[test]
fn regrant_after_revoke_is_clean_statically_and_at_runtime() {
    // Static: the corrected sibling re-grants in the new epoch.
    let mut c = crafted::revoked_xcall();
    c.plan.grants.push(Grant::Xcall {
        granter: 1,
        grantee: 0,
        entry: 1,
    });
    let findings = verify(&c.plan, &c.recipes);
    assert!(findings.is_empty(), "re-granted plan flagged: {findings:?}");

    // Runtime: revoke then re-grant; the call completes fault-free.
    let (mut k, server, client, entry) = revocation_fixture(KernelHardening {
        revocation_epochs: true,
        ..KernelHardening::NONE
    });
    k.revoke_entry(entry).unwrap();
    k.grant_xcall(server, client, entry).unwrap();
    enter_calling_client(&mut k, client, entry);
    let ev = k.run(50_000_000).unwrap();
    assert_eq!(
        ev,
        KernelEvent::ThreadExit(7),
        "re-granted call must not fault"
    );
}

#[test]
fn revocation_bites_without_epochs_but_does_not_date_grants() {
    // With the mitigation off the bitmap bit still clears (the call
    // faults either way) — only the epoch counter stays inert.
    let (mut k, _server, client, entry) = revocation_fixture(KernelHardening::NONE);
    k.revoke_entry(entry).unwrap();
    assert_eq!(k.entry_epoch(entry).unwrap(), 0, "epochs are off");
    enter_calling_client(&mut k, client, entry);
    assert_eq!(run_to_fault(&mut k), Cause::InvalidXcallCap);
}

// ---- rule 2: the mask window travels with the handover --------------

/// Two processes, a 4 KiB relay segment installed in `t0`'s seg-reg,
/// shrunk by guest CSR writes to `[seg_va, seg_va + keep)`.
fn handover_fixture(
    h: KernelHardening,
    keep: u64,
) -> (XpcKernel, ThreadId, ThreadId, ProcessId, SegHandle, u64) {
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    k.set_hardening(h);
    let p0 = k.create_process().unwrap();
    let t0 = k.create_thread(p0).unwrap();
    let p1 = k.create_process().unwrap();
    let t1 = k.create_thread(p1).unwrap();
    let seg = k.alloc_relay_seg(t0, 4096).unwrap();
    k.install_seg(t0, seg).unwrap();
    let seg_va = k.segs.seg_reg(seg).va_base;
    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::T1, seg_va as i64);
    a.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
    a.li(reg::T1, keep as i64);
    a.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
    exit_syscall(&mut a);
    let va = k.load_code(p0, &a.assemble()).unwrap();
    k.enter_thread(t0, va, &[]).unwrap();
    assert!(matches!(
        k.run(50_000_000).unwrap(),
        KernelEvent::ThreadExit(_)
    ));
    (k, t0, t1, p1, seg, seg_va)
}

/// Enter `t1` with a guest that re-masks the handed-over window to
/// `[seg_va, seg_va + len)`.
fn enter_masking_receiver(k: &mut XpcKernel, t1: ThreadId, p1: ProcessId, seg_va: u64, len: u64) {
    let mut b = Assembler::new(USER_CODE_VA);
    b.li(reg::T1, seg_va as i64);
    b.csrw(csr_map::XPC_SEG_MASK_VA, reg::T1);
    b.li(reg::T1, len as i64);
    b.csrw(csr_map::XPC_SEG_MASK_LEN, reg::T1);
    exit_syscall(&mut b);
    let vb = k.load_code(p1, &b.assemble()).unwrap();
    k.enter_thread(t1, vb, &[]).unwrap();
}

#[test]
fn widen_after_handover_diffs_to_invalid_seg_mask() {
    let c = crafted::widen_after_handover();
    let predicted = static_cause(&c);

    // Runtime: t0 shrinks to 256 bytes, the kernel hands the segment
    // over (the receiver's segment *is* the masked window), and t1's
    // attempt to widen back to 4 KiB escapes it — the CSR write traps.
    let (mut k, t0, t1, p1, seg, seg_va) = handover_fixture(KernelHardening::NONE, 256);
    k.handover_seg(t0, t1, seg).unwrap();
    enter_masking_receiver(&mut k, t1, p1, seg_va, 4096);
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidSegMask);
}

#[test]
fn shrink_after_handover_is_clean_statically_and_at_runtime() {
    // Static: the corrected sibling shrinks further instead of widening.
    let mut c = crafted::widen_after_handover();
    let Some(SegOp::Mask { len, .. }) = c.plan.seg_ops.last_mut() else {
        panic!("crafted plan ends with the widening mask");
    };
    *len = 64;
    let findings = verify(&c.plan, &c.recipes);
    assert!(findings.is_empty(), "shrinking plan flagged: {findings:?}");

    // Runtime: same handover, but t1 narrows the window to 64 bytes.
    let (mut k, t0, t1, p1, seg, seg_va) = handover_fixture(KernelHardening::NONE, 256);
    k.handover_seg(t0, t1, seg).unwrap();
    enter_masking_receiver(&mut k, t1, p1, seg_va, 64);
    let ev = k.run(50_000_000).unwrap();
    assert!(
        matches!(ev, KernelEvent::ThreadExit(_)),
        "shrinking must not fault: {ev:?}"
    );
}

// ---- rule 3: tenant flow --------------------------------------------

#[test]
fn cross_tenant_return_diffs_to_invalid_linkage() {
    let c = crafted::cross_tenant_return();
    let predicted = static_cause(&c);

    // Runtime anchor: the skip-level return the recipe declares leaves
    // the middle tenant's linkage record orphaned; the unwind reaches a
    // bare `xret` against an empty link stack and the engine refuses —
    // the same `InvalidLinkage` the flow rule predicts.
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    let p0 = k.create_process().unwrap();
    let t0 = k.create_thread(p0).unwrap();
    let p1 = k.create_process().unwrap();
    k.set_tenant(p0, 0).unwrap();
    k.set_tenant(p1, 1).unwrap();
    let mut a = Assembler::new(USER_CODE_VA);
    a.xret();
    exit_syscall(&mut a);
    let va = k.load_code(p0, &a.assemble()).unwrap();
    k.enter_thread(t0, va, &[]).unwrap();
    assert_eq!(run_to_fault(&mut k), predicted);
    assert_eq!(predicted, Cause::InvalidLinkage);
}

#[test]
fn flow_tags_refuse_the_cross_tenant_grant_and_same_tenant_wiring_runs_clean() {
    // Static: relabelling the middle service into the client's tenant
    // makes the crafted skip-return plan verify clean.
    let mut c = crafted::cross_tenant_return();
    c.plan.tenants = vec![0, 0, 0];
    let findings = verify(&c.plan, &c.recipes);
    assert!(
        findings.is_empty(),
        "same-tenant plan flagged: {findings:?}"
    );

    // Runtime twin: with flow tags on, the kernel refuses to mint the
    // cross-tenant capability at grant time…
    let mut k = XpcKernel::boot(XpcKernelConfig::default());
    k.set_hardening(KernelHardening {
        flow_tags: true,
        ..KernelHardening::NONE
    });
    let ps = k.create_process().unwrap();
    let server = k.create_thread(ps).unwrap();
    let mut ha = Assembler::new(USER_CODE_VA);
    ha.li(reg::A0, 7);
    ha.ret();
    let hv = k.load_code(ps, &ha.assemble()).unwrap();
    let entry = k.register_entry(server, server, hv, 1).unwrap();
    let pc = k.create_process().unwrap();
    let client = k.create_thread(pc).unwrap();
    k.set_tenant(ps, 1).unwrap();
    assert_eq!(k.process_tenant(ps).unwrap(), 1);
    let err = k.grant_xcall(server, client, entry).unwrap_err();
    assert_eq!(
        err,
        XpcError::CrossTenantGrant {
            granter_tenant: 1,
            grantee_tenant: 0,
            entry: entry.0,
        }
    );

    // …and the same wiring inside one tenant grants fine and runs the
    // call to completion.
    k.set_tenant(ps, 0).unwrap();
    k.grant_xcall(server, client, entry).unwrap();
    enter_calling_client(&mut k, client, entry);
    let ev = k.run(50_000_000).unwrap();
    assert_eq!(
        ev,
        KernelEvent::ThreadExit(7),
        "same-tenant call must not fault"
    );
}

// ---- the leak finding and its priced mitigation ---------------------

#[test]
fn residue_leak_is_flagged_statically_and_scrubbed_by_zero_on_handover() {
    // Static: a segment that came back through the seg-list carries a
    // previous holder's bytes; handing it across processes without an
    // interposed zero is the one finding that does NOT map to a trap.
    let mut plan = Plan::new();
    plan.threads = vec![0, 1];
    plan.services = vec![
        ServiceBinding {
            thread: 0,
            entry: None,
        },
        ServiceBinding {
            thread: 1,
            entry: None,
        },
    ];
    plan.seg_ops = vec![
        SegOp::Alloc {
            seg: 0,
            owner: 0,
            len: 4096,
            paged: false,
        },
        SegOp::Alloc {
            seg: 1,
            owner: 0,
            len: 4096,
            paged: false,
        },
        SegOp::Install { thread: 0, seg: 0 },
        SegOp::Stash {
            thread: 0,
            slot: 0,
            seg: 1,
        },
        SegOp::Swap { thread: 0, slot: 0 },
        SegOp::Swap { thread: 0, slot: 0 },
        SegOp::HandoverCall { thread: 0, to: 1 },
    ];
    let findings = verify(&plan, &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].verdict, Verdict::DataLeak);
    assert_eq!(findings[0].cause(), None, "leaks do not trap at runtime");

    // Runtime, mitigation off: the residue rides along. The secret
    // pattern fills [64, 4096) while the message is the first 64 bytes;
    // t0 shrinks the window to the message, hands over, and the
    // receiver can still read every secret byte — nothing faulted,
    // which is exactly why this class is a finding, not a trap.
    let secret = vec![0xABu8; 4096 - 64];
    let (mut k, t0, t1, seg) = {
        let (mut k, t0, t1, _p1, seg, _va) = handover_fixture(KernelHardening::NONE, 64);
        k.write_seg(seg, 64, &secret).unwrap();
        (k, t0, t1, seg)
    };
    let scrubbed = k.handover_seg(t0, t1, seg).unwrap();
    assert_eq!(scrubbed, 0, "mitigation off: nothing scrubbed");
    assert_eq!(k.read_seg(seg, 64, secret.len()).unwrap(), secret);

    // Runtime, zero-on-handover: everything outside the 64-byte window
    // is zeroed before the transfer; the message itself is untouched.
    let message = [0x5Au8; 64];
    let (mut k, t0, t1, seg) = {
        let h = KernelHardening {
            zero_on_handover: true,
            ..KernelHardening::NONE
        };
        let (mut k, t0, t1, _p1, seg, _va) = handover_fixture(h, 64);
        k.write_seg(seg, 0, &message).unwrap();
        k.write_seg(seg, 64, &secret).unwrap();
        (k, t0, t1, seg)
    };
    let scrubbed = k.handover_seg(t0, t1, seg).unwrap();
    assert_eq!(
        scrubbed,
        4096 - 64,
        "every byte outside the window scrubbed"
    );
    assert_eq!(k.read_seg(seg, 0, 64).unwrap(), message);
    assert_eq!(
        k.read_seg(seg, 64, secret.len()).unwrap(),
        vec![0u8; secret.len()],
        "residue zeroed before the receiver sees the segment"
    );
}
