//! Check (a): every `xcall` target in-bounds of the x-entry table and
//! reachable in the xcall-cap bitmap lattice, transitively through
//! grant-cap edges.
//!
//! The abstract domain is a pair of bitsets per thread — the xcall-cap
//! bitmap and the grant-cap set — computed by one forward pass over the
//! setup plan in program order. Registration seeds the owner's
//! grant-cap (exactly what `XpcKernel::register_entry` does); a
//! `Grant::Xcall` whose granter lacks the grant-cap is a no-op, because
//! the runtime call fails with `NoGrantCap` and the bit never lands in
//! the grantee's bitmap. The fixpoint is reached after the single pass
//! since grants are ordered.
//!
//! Revocation is temporal: each entry carries a **revocation epoch**,
//! bumped by every authorized [`Grant::Revoke`], and each granted cap
//! records the epoch it landed in. A call through a cap whose epoch
//! predates the entry's current epoch observes a revoked capability —
//! the bitmap bit `revoke_entry` cleared — and is refuted with the same
//! `InvalidXcallCap` the engine raises. A re-grant after the revoke
//! carries the new epoch and is live again; a plan with zero revoke
//! edges leaves every epoch at 0 and the lattice is byte-identical to
//! its pre-epoch behavior.
//!
//! Call sites then replay the engine's exact validation order from
//! `XpcEngine::exec_xcall`: **bounds → cap bit (incl. epoch) → entry
//! validity**, so the first finding at a site names the same [`Cause`]
//! the hardware would trap with first.

use crate::finding::Finding;
use crate::plan::{Grant, Plan, RecipeFlow};
use rv64::trap::Cause;
use std::collections::{HashMap, HashSet};

/// Per-thread capability state after the setup plan ran abstractly.
#[derive(Debug, Clone, Default)]
pub struct CapState {
    /// `xcall_caps[t]` = entry ids thread `t` may xcall into.
    pub xcall_caps: Vec<HashSet<u64>>,
    /// `grant_caps[t]` = entry ids thread `t` may grant onward.
    pub grant_caps: Vec<HashSet<u64>>,
    /// `cap_epochs[t][e]` = the revocation epoch entry `e` was in when
    /// thread `t` received its xcall-cap. A cap whose recorded epoch is
    /// older than the entry's current epoch was cleared by an
    /// intervening [`Grant::Revoke`] and is stale.
    pub cap_epochs: Vec<HashMap<u64, u64>>,
    /// Current revocation epoch per entry. Missing means epoch 0 — the
    /// entry was never revoked, so the lattice behaves exactly as it
    /// did before epochs existed.
    pub entry_epochs: HashMap<u64, u64>,
}

/// Run the setup plan's registrations, grants, and revocations through
/// the lattice.
pub fn propagate(plan: &Plan) -> CapState {
    let n = plan.threads.len();
    let mut st = CapState {
        xcall_caps: vec![HashSet::new(); n],
        grant_caps: vec![HashSet::new(); n],
        cap_epochs: vec![HashMap::new(); n],
        entry_epochs: HashMap::new(),
    };
    for e in &plan.entries {
        if let Some(set) = st.grant_caps.get_mut(e.owner) {
            set.insert(e.id);
        }
    }
    for g in &plan.grants {
        match *g {
            Grant::Xcall {
                granter,
                grantee,
                entry,
            } => {
                let authorized = st
                    .grant_caps
                    .get(granter)
                    .is_some_and(|s| s.contains(&entry));
                if authorized {
                    let epoch = st.entry_epochs.get(&entry).copied().unwrap_or(0);
                    if let Some(set) = st.xcall_caps.get_mut(grantee) {
                        set.insert(entry);
                    }
                    if let Some(map) = st.cap_epochs.get_mut(grantee) {
                        map.insert(entry, epoch);
                    }
                }
            }
            Grant::GrantCap {
                granter,
                grantee,
                entry,
            } => {
                let authorized = st
                    .grant_caps
                    .get(granter)
                    .is_some_and(|s| s.contains(&entry));
                if authorized {
                    if let Some(set) = st.grant_caps.get_mut(grantee) {
                        set.insert(entry);
                    }
                }
            }
            Grant::Revoke { granter, entry } => {
                let authorized = st
                    .grant_caps
                    .get(granter)
                    .is_some_and(|s| s.contains(&entry));
                if authorized {
                    *st.entry_epochs.entry(entry).or_insert(0) += 1;
                }
            }
        }
    }
    st
}

/// Validate one capability-checked call edge against a propagated
/// lattice, mirroring the engine's bounds → cap → validity order.
/// `None` means the edge is clean; otherwise the finding names the
/// *first* cause the hardware would trap with.
pub fn check_call(
    plan: &Plan,
    st: &CapState,
    site: String,
    caller_svc: usize,
    callee_svc: usize,
) -> Option<Finding> {
    let Some(caller) = plan.services.get(caller_svc) else {
        return Some(Finding::trap(
            Cause::InvalidXEntry,
            site,
            format!("caller service {caller_svc} has no binding in the plan"),
        ));
    };
    let Some(callee) = plan.services.get(callee_svc) else {
        return Some(Finding::trap(
            Cause::InvalidXEntry,
            site,
            format!("callee service {callee_svc} has no binding in the plan"),
        ));
    };
    let Some(entry) = callee.entry else {
        return Some(Finding::trap(
            Cause::InvalidXEntry,
            site,
            format!("callee service {callee_svc} binds no x-entry"),
        ));
    };
    // 1. Bounds: the engine refuses an id past the table before it
    //    ever reads the cap bitmap.
    if entry >= plan.table_entries {
        return Some(Finding::trap(
            Cause::InvalidXEntry,
            site,
            format!(
                "entry {entry} out of bounds (table holds {} entries)",
                plan.table_entries
            ),
        ));
    }
    // 2. Capability: the bit must be reachable in the caller's
    //    bitmap through the grant lattice.
    let has_cap = st
        .xcall_caps
        .get(caller.thread)
        .is_some_and(|s| s.contains(&entry));
    if !has_cap {
        return Some(Finding::trap(
            Cause::InvalidXcallCap,
            site,
            format!(
                "thread {} holds no xcall-cap for entry {entry}",
                caller.thread
            ),
        ));
    }
    // 2b. Epoch: a cap granted before the entry's last revocation was
    //     cleared out of the bitmap by `revoke_entry` — the engine
    //     raises the same invalid-xcall-cap it would for a bit that
    //     never landed.
    let current = st.entry_epochs.get(&entry).copied().unwrap_or(0);
    let held = st
        .cap_epochs
        .get(caller.thread)
        .and_then(|m| m.get(&entry))
        .copied()
        .unwrap_or(0);
    if held < current {
        return Some(Finding::trap(
            Cause::InvalidXcallCap,
            site,
            format!(
                "thread {}'s xcall-cap for entry {entry} dates to epoch {held}, \
                 but revocation epoch {current} cleared it",
                caller.thread
            ),
        ));
    }
    // 3. Validity: the table slot must still be live.
    let live = plan.entries.iter().any(|e| e.id == entry && e.valid);
    if !live {
        return Some(Finding::trap(
            Cause::InvalidXEntry,
            site,
            format!("entry {entry} is registered-then-invalidated or missing"),
        ));
    }
    None
}

/// Validate every capability-checked call site of every recipe flow,
/// mirroring the engine's bounds → cap → validity order.
pub fn check(plan: &Plan, flows: &[(String, RecipeFlow)]) -> Vec<Finding> {
    let st = propagate(plan);
    let mut findings = Vec::new();
    let mut check_edge = |site: String, caller_svc: usize, callee_svc: usize| {
        if let Some(f) = check_call(plan, &st, site, caller_svc, callee_svc) {
            findings.push(f);
        }
    };
    for (name, f) in flows {
        for cs in &f.call_sites {
            check_edge(
                format!("{name}: step {} call {}→{}", cs.step, cs.caller, cs.callee),
                cs.caller,
                cs.callee,
            );
        }
    }
    // Declared service-graph edges not exercised by any recipe still
    // get a verdict — a figure may route through them later.
    let seen: HashSet<(usize, usize)> = flows
        .iter()
        .flat_map(|(_, f)| f.call_edges.iter().copied())
        .collect();
    for &(a, b) in &plan.calls {
        if !seen.contains(&(a, b)) {
            check_edge(format!("call-graph edge {a}→{b}"), a, b);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{flow, EntryDecl, ServiceBinding};
    use simos::Step;

    fn two_service_plan() -> Plan {
        let mut plan = Plan::new();
        plan.threads = vec![0, 1];
        plan.services = vec![
            ServiceBinding {
                thread: 0,
                entry: None,
            },
            ServiceBinding {
                thread: 1,
                entry: Some(1),
            },
        ];
        plan.entries = vec![EntryDecl {
            id: 1,
            owner: 1,
            valid: true,
        }];
        plan
    }

    fn call_recipe() -> Vec<Step> {
        vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 8,
            },
            Step::Oneway {
                from: 1,
                to: 0,
                bytes: 8,
            },
        ]
    }

    #[test]
    fn missing_grant_is_invalid_xcall_cap() {
        let plan = two_service_plan();
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        let f = check(&plan, &flows);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidXcallCap));
    }

    #[test]
    fn unauthorized_granter_does_not_propagate() {
        let mut plan = two_service_plan();
        // Thread 0 never held the grant-cap for entry 1, so this grant
        // is dead and the call still lacks the capability.
        plan.grants.push(Grant::Xcall {
            granter: 0,
            grantee: 0,
            entry: 1,
        });
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        let f = check(&plan, &flows);
        assert_eq!(f[0].cause(), Some(Cause::InvalidXcallCap));
    }

    #[test]
    fn grant_cap_chain_authorizes_transitively() {
        let mut plan = two_service_plan();
        plan.threads.push(2);
        plan.services.push(ServiceBinding {
            thread: 2,
            entry: None,
        });
        // owner 1 → grant-cap to 2 → 2 grants xcall to 0.
        plan.grants.push(Grant::GrantCap {
            granter: 1,
            grantee: 2,
            entry: 1,
        });
        plan.grants.push(Grant::Xcall {
            granter: 2,
            grantee: 0,
            entry: 1,
        });
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        assert!(check(&plan, &flows).is_empty());
    }

    #[test]
    fn revoked_cap_is_stale_and_refuted() {
        let mut plan = two_service_plan();
        plan.grants = vec![
            Grant::Xcall {
                granter: 1,
                grantee: 0,
                entry: 1,
            },
            Grant::Revoke {
                granter: 1,
                entry: 1,
            },
        ];
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        let f = check(&plan, &flows);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidXcallCap));
        assert!(f[0].detail.contains("revocation epoch"), "{}", f[0].detail);
    }

    #[test]
    fn regrant_after_revoke_carries_the_new_epoch() {
        let mut plan = two_service_plan();
        plan.grants = vec![
            Grant::Xcall {
                granter: 1,
                grantee: 0,
                entry: 1,
            },
            Grant::Revoke {
                granter: 1,
                entry: 1,
            },
            Grant::Xcall {
                granter: 1,
                grantee: 0,
                entry: 1,
            },
        ];
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        assert!(check(&plan, &flows).is_empty());
    }

    #[test]
    fn unauthorized_revoke_does_not_bump_the_epoch() {
        let mut plan = two_service_plan();
        plan.grants = vec![
            Grant::Xcall {
                granter: 1,
                grantee: 0,
                entry: 1,
            },
            // Thread 0 never held the grant-cap, so this revoke is dead.
            Grant::Revoke {
                granter: 0,
                entry: 1,
            },
        ];
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        assert!(check(&plan, &flows).is_empty());
        assert!(propagate(&plan).entry_epochs.is_empty());
    }

    #[test]
    fn out_of_bounds_entry_trumps_missing_cap() {
        let mut plan = two_service_plan();
        plan.services[1].entry = Some(plan.table_entries + 976);
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        let f = check(&plan, &flows);
        assert_eq!(f[0].cause(), Some(Cause::InvalidXEntry));
    }

    #[test]
    fn invalidated_entry_is_invalid_x_entry_after_cap_passes() {
        let mut plan = two_service_plan();
        plan.grants.push(Grant::Xcall {
            granter: 1,
            grantee: 0,
            entry: 1,
        });
        plan.entries[0].valid = false;
        let flows = vec![("r".to_string(), flow(&call_recipe()))];
        let f = check(&plan, &flows);
        assert_eq!(f[0].cause(), Some(Cause::InvalidXEntry));
    }
}
