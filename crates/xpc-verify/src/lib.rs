//! Static IPC-protocol verifier for the XPC stack.
//!
//! The paper's security argument rests on five hardware exceptions
//! (invalid x-entry, invalid xcall-cap, invalid linkage, swapseg error,
//! invalid seg-mask) that the engine raises *at run time*. This crate
//! proves — or refutes — the same properties *before* anything runs: an
//! abstract interpreter takes a declarative setup [`Plan`] (processes,
//! x-entry registrations, grant edges, relay-segment lifecycles) plus
//! workload recipes ([`simos::load::Step`] sequences) and checks:
//!
//! * **(a) capability reachability** ([`caps`]) — every `xcall` target
//!   in-bounds of the x-entry table and reachable in the xcall-cap
//!   bitmap lattice, transitively through grant-cap edges, and **not
//!   revoked**: each entry carries a revocation epoch bumped by
//!   [`Grant::Revoke`], and a call through a cap from an older epoch is
//!   refuted;
//! * **(b) link-stack depth** ([`depth`]) — worst-case call-chain depth
//!   over the service call graph fits the configured link stack, with
//!   cycle detection for unbounded recursion, plus the **tenant-flow**
//!   rule: no return may pop another tenant's linkage record;
//! * **(c) segment ownership** ([`segs`]) — relay segments keep
//!   single-owner semantics along every `swapseg`/handover
//!   interleaving, seg-mask windows only shrink (even across a
//!   handover), and a **taint automaton** flags any tainted segment
//!   handed across processes without an interposed [`SegOp::Zero`];
//! * **(d) ledger hygiene** ([`lint`]) — every [`simos`] `Invocation` a
//!   kernel model produces decomposes exactly into its phase ledger.
//!
//! Every [`Finding`] carries a [`Verdict`] typed by the
//! [`rv64::trap::Cause`] the runtime would trap with, so static
//! diagnostics and dynamic faults speak the same vocabulary — the
//! differential tests assert they agree, class by class.

#![forbid(unsafe_code)]

pub mod caps;
pub mod crafted;
pub mod depth;
pub mod finding;
pub mod lint;
pub mod plan;
pub mod program;
pub mod segs;

pub use finding::{Finding, Verdict};
pub use plan::{flow, CallSite, EntryDecl, Grant, Plan, RecipeFlow, SegOp, ServiceBinding};
pub use program::check_program;

use simos::{CallProgram, Step};

/// Run every static check — capability reachability (with revocation
/// epochs), link-stack depth, tenant flow, segment ownership and taint
/// — over a plan and its named recipes, returning all findings (empty
/// means *proved clean*). Findings are sorted by site and deduplicated,
/// so a misconfiguration reachable along several paths (e.g. a call
/// edge declared twice) reads as one diagnostic.
pub fn verify(plan: &Plan, recipes: &[(String, Vec<Step>)]) -> Vec<Finding> {
    let flows: Vec<(String, RecipeFlow)> = recipes
        .iter()
        .map(|(name, recipe)| (name.clone(), plan::flow(recipe)))
        .collect();
    let mut findings = caps::check(plan, &flows);
    findings.extend(depth::check(plan, &flows));
    findings.extend(depth::check_tenants(plan, recipes));
    findings.extend(segs::check(plan));
    findings.sort_by(|a, b| {
        (a.site.as_str(), a.verdict.key(), a.detail.as_str()).cmp(&(
            b.site.as_str(),
            b.verdict.key(),
            b.detail.as_str(),
        ))
    });
    findings.dedup();
    findings
}

/// Run every static check that applies to a fused [`CallProgram`] —
/// per-hop capability reachability, the exact fused depth bound,
/// single-owner handover, and the plan's own segment lifecycle —
/// returning all findings (empty means *proved clean*).
pub fn verify_program(plan: &Plan, name: &str, prog: &CallProgram) -> Vec<Finding> {
    let mut findings = program::check_program(plan, name, prog);
    findings.extend(segs::check(plan));
    findings
}

/// Pre-flight gate for the bench experiments: derive the canonical
/// [`Plan::for_recipes`] setup an `n_services` deployment implies and
/// verify the recipes against it. `Err` carries the findings; figures
/// refuse to run an unverifiable recipe.
pub fn preflight(n_services: usize, recipes: &[(String, Vec<Step>)]) -> Result<(), Vec<Finding>> {
    let raw: Vec<Vec<Step>> = recipes.iter().map(|(_, r)| r.clone()).collect();
    let plan = Plan::for_recipes(n_services, &raw);
    let findings = verify(&plan, recipes);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(findings)
    }
}

/// The fused sibling of [`preflight`]: derive the canonical
/// [`Plan::for_program`] setup and verify the program against it. The
/// `fuse` figures refuse to run an unverifiable program.
pub fn preflight_program(
    n_services: usize,
    name: &str,
    prog: &CallProgram,
) -> Result<(), Vec<Finding>> {
    let plan = Plan::for_program(n_services, prog);
    let findings = verify_program(&plan, name, prog);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preflight_accepts_a_simple_service_chain() {
        let recipes = vec![(
            "chain".to_string(),
            vec![
                Step::Oneway {
                    from: 0,
                    to: 1,
                    bytes: 64,
                },
                Step::Roundtrip {
                    from: 1,
                    to: 2,
                    request: 16,
                    response: 64,
                },
                Step::Oneway {
                    from: 1,
                    to: 0,
                    bytes: 64,
                },
            ],
        )];
        assert!(preflight(3, &recipes).is_ok());
    }

    #[test]
    fn preflight_rejects_a_recipe_calling_an_unbound_service() {
        let recipes = vec![(
            "rogue".to_string(),
            vec![Step::Oneway {
                from: 0,
                to: 9,
                bytes: 8,
            }],
        )];
        let err = preflight(3, &recipes).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn duplicate_plan_edges_collapse_to_one_finding() {
        // The same ungranted call edge declared twice in `plan.calls`
        // used to surface as two identical findings.
        let mut plan = Plan::new();
        plan.threads = vec![0, 1];
        plan.services = vec![
            ServiceBinding {
                thread: 0,
                entry: None,
            },
            ServiceBinding {
                thread: 1,
                entry: Some(1),
            },
        ];
        plan.entries = vec![EntryDecl {
            id: 1,
            owner: 1,
            valid: true,
        }];
        plan.calls = vec![(0, 1), (0, 1)];
        let findings = verify(&plan, &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(
            findings[0].cause(),
            Some(rv64::trap::Cause::InvalidXcallCap)
        );
    }

    /// The pre-epoch lattice pass, reimplemented membership-only, as the
    /// oracle for the zero-revoke equivalence property.
    fn legacy_propagate(
        plan: &Plan,
    ) -> (
        Vec<std::collections::HashSet<u64>>,
        Vec<std::collections::HashSet<u64>>,
    ) {
        use std::collections::HashSet;
        let n = plan.threads.len();
        let mut xcall: Vec<HashSet<u64>> = vec![HashSet::new(); n];
        let mut grant: Vec<HashSet<u64>> = vec![HashSet::new(); n];
        for e in &plan.entries {
            if let Some(s) = grant.get_mut(e.owner) {
                s.insert(e.id);
            }
        }
        for g in &plan.grants {
            match *g {
                Grant::Xcall {
                    granter,
                    grantee,
                    entry,
                } => {
                    if grant.get(granter).is_some_and(|s| s.contains(&entry)) {
                        if let Some(s) = xcall.get_mut(grantee) {
                            s.insert(entry);
                        }
                    }
                }
                Grant::GrantCap {
                    granter,
                    grantee,
                    entry,
                } => {
                    if grant.get(granter).is_some_and(|s| s.contains(&entry)) {
                        if let Some(s) = grant.get_mut(grantee) {
                            s.insert(entry);
                        }
                    }
                }
                Grant::Revoke { .. } => unreachable!("zero-revoke property"),
            }
        }
        (xcall, grant)
    }

    #[test]
    fn zero_revoke_plans_propagate_byte_identically_to_the_pre_epoch_lattice() {
        let mut plans: Vec<Plan> = crate::crafted::all_crafted()
            .into_iter()
            .filter(|c| {
                !c.plan
                    .grants
                    .iter()
                    .any(|g| matches!(g, Grant::Revoke { .. }))
            })
            .map(|c| c.plan)
            .collect();
        plans.push(crate::crafted::over_deep_program().plan);
        plans.push(crate::crafted::cap_violating_program().plan);
        plans.push(Plan::for_recipes(
            4,
            &[vec![
                Step::Oneway {
                    from: 0,
                    to: 1,
                    bytes: 8,
                },
                Step::Oneway {
                    from: 1,
                    to: 2,
                    bytes: 8,
                },
                Step::Oneway {
                    from: 2,
                    to: 3,
                    bytes: 8,
                },
            ]],
        ));
        assert!(!plans.is_empty());
        for plan in &plans {
            let st = caps::propagate(plan);
            let (xcall, grant) = legacy_propagate(plan);
            assert_eq!(st.xcall_caps, xcall, "xcall-cap membership unchanged");
            assert_eq!(st.grant_caps, grant, "grant-cap membership unchanged");
            // Epochs are fully inert: no entry ever revoked, every held
            // cap recorded in epoch 0, one epoch record per cap bit.
            assert!(st.entry_epochs.is_empty());
            for (set, map) in st.xcall_caps.iter().zip(&st.cap_epochs) {
                assert_eq!(set.len(), map.len());
                assert!(map.values().all(|&e| e == 0));
                assert!(set.iter().all(|e| map.contains_key(e)));
            }
        }
    }
}
