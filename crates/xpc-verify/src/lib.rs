//! Static IPC-protocol verifier for the XPC stack.
//!
//! The paper's security argument rests on five hardware exceptions
//! (invalid x-entry, invalid xcall-cap, invalid linkage, swapseg error,
//! invalid seg-mask) that the engine raises *at run time*. This crate
//! proves — or refutes — the same properties *before* anything runs: an
//! abstract interpreter takes a declarative setup [`Plan`] (processes,
//! x-entry registrations, grant edges, relay-segment lifecycles) plus
//! workload recipes ([`simos::load::Step`] sequences) and checks:
//!
//! * **(a) capability reachability** ([`caps`]) — every `xcall` target
//!   in-bounds of the x-entry table and reachable in the xcall-cap
//!   bitmap lattice, transitively through grant-cap edges;
//! * **(b) link-stack depth** ([`depth`]) — worst-case call-chain depth
//!   over the service call graph fits the configured link stack, with
//!   cycle detection for unbounded recursion;
//! * **(c) segment ownership** ([`segs`]) — relay segments keep
//!   single-owner semantics along every `swapseg`/handover
//!   interleaving, and seg-mask windows only shrink;
//! * **(d) ledger hygiene** ([`lint`]) — every [`simos`] `Invocation` a
//!   kernel model produces decomposes exactly into its phase ledger.
//!
//! Every [`Finding`] carries a [`Verdict`] typed by the
//! [`rv64::trap::Cause`] the runtime would trap with, so static
//! diagnostics and dynamic faults speak the same vocabulary — the
//! differential tests assert they agree, class by class.

#![forbid(unsafe_code)]

pub mod caps;
pub mod crafted;
pub mod depth;
pub mod finding;
pub mod lint;
pub mod plan;
pub mod program;
pub mod segs;

pub use finding::{Finding, Verdict};
pub use plan::{flow, CallSite, EntryDecl, Grant, Plan, RecipeFlow, SegOp, ServiceBinding};
pub use program::check_program;

use simos::{CallProgram, Step};

/// Run every static check — capability reachability, link-stack depth,
/// segment ownership — over a plan and its named recipes, returning all
/// findings (empty means *proved clean*).
pub fn verify(plan: &Plan, recipes: &[(String, Vec<Step>)]) -> Vec<Finding> {
    let flows: Vec<(String, RecipeFlow)> = recipes
        .iter()
        .map(|(name, recipe)| (name.clone(), plan::flow(recipe)))
        .collect();
    let mut findings = caps::check(plan, &flows);
    findings.extend(depth::check(plan, &flows));
    findings.extend(segs::check(plan));
    findings
}

/// Run every static check that applies to a fused [`CallProgram`] —
/// per-hop capability reachability, the exact fused depth bound,
/// single-owner handover, and the plan's own segment lifecycle —
/// returning all findings (empty means *proved clean*).
pub fn verify_program(plan: &Plan, name: &str, prog: &CallProgram) -> Vec<Finding> {
    let mut findings = program::check_program(plan, name, prog);
    findings.extend(segs::check(plan));
    findings
}

/// Pre-flight gate for the bench experiments: derive the canonical
/// [`Plan::for_recipes`] setup an `n_services` deployment implies and
/// verify the recipes against it. `Err` carries the findings; figures
/// refuse to run an unverifiable recipe.
pub fn preflight(n_services: usize, recipes: &[(String, Vec<Step>)]) -> Result<(), Vec<Finding>> {
    let raw: Vec<Vec<Step>> = recipes.iter().map(|(_, r)| r.clone()).collect();
    let plan = Plan::for_recipes(n_services, &raw);
    let findings = verify(&plan, recipes);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(findings)
    }
}

/// The fused sibling of [`preflight`]: derive the canonical
/// [`Plan::for_program`] setup and verify the program against it. The
/// `fuse` figures refuse to run an unverifiable program.
pub fn preflight_program(
    n_services: usize,
    name: &str,
    prog: &CallProgram,
) -> Result<(), Vec<Finding>> {
    let plan = Plan::for_program(n_services, prog);
    let findings = verify_program(&plan, name, prog);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preflight_accepts_a_simple_service_chain() {
        let recipes = vec![(
            "chain".to_string(),
            vec![
                Step::Oneway {
                    from: 0,
                    to: 1,
                    bytes: 64,
                },
                Step::Roundtrip {
                    from: 1,
                    to: 2,
                    request: 16,
                    response: 64,
                },
                Step::Oneway {
                    from: 1,
                    to: 0,
                    bytes: 64,
                },
            ],
        )];
        assert!(preflight(3, &recipes).is_ok());
    }

    #[test]
    fn preflight_rejects_a_recipe_calling_an_unbound_service() {
        let recipes = vec![(
            "rogue".to_string(),
            vec![Step::Oneway {
                from: 0,
                to: 9,
                bytes: 8,
            }],
        )];
        let err = preflight(3, &recipes).unwrap_err();
        assert!(!err.is_empty());
    }
}
