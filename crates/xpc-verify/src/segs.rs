//! Check (c): relay segments obey single-owner semantics along every
//! `swapseg`/handover interleaving.
//!
//! The abstract domain is a per-segment **ownership automaton**:
//!
//! ```text
//!           Alloc            Install           HandoverCall
//!   (none) ───────▶ Loose ───────────▶ Installed ───────────▶ Revoked
//!                     ▲  ╲ Stash          │  ▲
//!                     │   ╲               ▼  │ Swap (slot must
//!                     │    ▶ Stashed ◀────┘  │  hold a segment)
//!                     └──────── Free ▶ Freed
//! ```
//!
//! plus a per-thread seg-reg window that may only **shrink** (§4.4
//! "Message Shrink"): once a mask narrows the window, no later mask may
//! widen it, and on paged segments masks stay page-granular. Ownership
//! violations — double-install, stash into an occupied slot, swapping
//! an empty slot, use-after-revoke, use-after-free — predict
//! [`Cause::SwapsegError`]; window violations predict
//! [`Cause::InvalidSegMask`], matching what `XpcEngine::exec_swapseg`
//! and the `XPC_SEG_MASK_LEN` CSR write would trap with.

use crate::finding::Finding;
use crate::plan::{Plan, SegOp};
use rv64::trap::Cause;
use std::collections::HashMap;

/// Mask granularity on paged relay segments (the relay page table maps
/// whole pages, so sub-page windows cannot be expressed).
const PAGE: u64 = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    /// Owned by a thread, not installed anywhere.
    Loose(usize),
    /// Live in a thread's seg-reg.
    Installed(usize),
    /// Parked in a process seg-list slot.
    Stashed(usize, u64),
    /// Handed over along an xcall; the original owner lost it.
    Revoked,
    /// Frames returned; any further touch is use-after-free.
    Freed,
}

#[derive(Debug, Clone, Copy)]
struct Window {
    seg: usize,
    lo: u64,
    hi: u64,
}

#[derive(Debug, Clone, Copy)]
struct SegMeta {
    len: u64,
    paged: bool,
}

/// Walk the plan's seg-op sequence through the automaton. An op that
/// violates the automaton is recorded and **skipped** (its state effect
/// does not apply), so one bad op does not cascade into noise.
pub fn check(plan: &Plan) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut states: HashMap<usize, SegState> = HashMap::new();
    let mut metas: HashMap<usize, SegMeta> = HashMap::new();
    let mut regs: HashMap<usize, Window> = HashMap::new();
    let mut slots: HashMap<(usize, u64), usize> = HashMap::new();
    for (i, op) in plan.seg_ops.iter().enumerate() {
        let site = format!("seg-op {i}");
        match *op {
            SegOp::Alloc {
                seg,
                owner,
                len,
                paged,
            } => {
                if states.contains_key(&seg) {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!("segment {seg} allocated twice"),
                    ));
                    continue;
                }
                states.insert(seg, SegState::Loose(owner));
                metas.insert(seg, SegMeta { len, paged });
            }
            SegOp::Install { thread, seg } => {
                match states.get(&seg) {
                    None | Some(SegState::Freed) => {
                        findings.push(Finding::trap(
                            Cause::SwapsegError,
                            site,
                            format!("install of freed or never-allocated segment {seg}"),
                        ));
                        continue;
                    }
                    Some(SegState::Revoked) => {
                        findings.push(Finding::trap(
                            Cause::SwapsegError,
                            site,
                            format!("segment {seg} was handed over; use-after-revoke"),
                        ));
                        continue;
                    }
                    Some(SegState::Installed(t)) => {
                        findings.push(Finding::trap(
                            Cause::SwapsegError,
                            site,
                            format!("segment {seg} already installed in thread {t}'s seg-reg"),
                        ));
                        continue;
                    }
                    Some(SegState::Stashed(p, s)) => {
                        findings.push(Finding::trap(
                            Cause::SwapsegError,
                            site,
                            format!("segment {seg} is stashed in slot {s} of process {p}; swapseg retrieves it"),
                        ));
                        continue;
                    }
                    Some(SegState::Loose(o)) if *o != thread => {
                        findings.push(Finding::trap(
                            Cause::SwapsegError,
                            site,
                            format!("thread {thread} does not own segment {seg} (thread {o} does)"),
                        ));
                        continue;
                    }
                    Some(SegState::Loose(_)) => {}
                }
                if regs.contains_key(&thread) {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!(
                            "thread {thread}'s seg-reg already holds a segment (double-install)"
                        ),
                    ));
                    continue;
                }
                let len = metas[&seg].len;
                states.insert(seg, SegState::Installed(thread));
                regs.insert(
                    thread,
                    Window {
                        seg,
                        lo: 0,
                        hi: len,
                    },
                );
            }
            SegOp::Stash { thread, slot, seg } => {
                if slot >= plan.seg_list_slots {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!(
                            "slot {slot} out of range (seg-list holds {} slots)",
                            plan.seg_list_slots
                        ),
                    ));
                    continue;
                }
                let process = plan.threads.get(thread).copied().unwrap_or(thread);
                match states.get(&seg) {
                    Some(SegState::Loose(o)) if *o == thread => {}
                    Some(SegState::Revoked) => {
                        findings.push(Finding::trap(
                            Cause::SwapsegError,
                            site,
                            format!("segment {seg} was handed over; use-after-revoke"),
                        ));
                        continue;
                    }
                    _ => {
                        findings.push(Finding::trap(
                            Cause::SwapsegError,
                            site,
                            format!("thread {thread} cannot stash segment {seg}: not a loose segment it owns"),
                        ));
                        continue;
                    }
                }
                if let Some(&occupant) = slots.get(&(process, slot)) {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!("slot {slot} already holds segment {occupant}"),
                    ));
                    continue;
                }
                states.insert(seg, SegState::Stashed(process, slot));
                slots.insert((process, slot), seg);
            }
            SegOp::Swap { thread, slot } => {
                if slot >= plan.seg_list_slots {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!(
                            "slot {slot} out of range (seg-list holds {} slots)",
                            plan.seg_list_slots
                        ),
                    ));
                    continue;
                }
                let process = plan.threads.get(thread).copied().unwrap_or(thread);
                let Some(&incoming) = slots.get(&(process, slot)) else {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!("swapseg with empty slot {slot}"),
                    ));
                    continue;
                };
                let outgoing = regs.remove(&thread);
                slots.remove(&(process, slot));
                if let Some(w) = outgoing {
                    states.insert(w.seg, SegState::Stashed(process, slot));
                    slots.insert((process, slot), w.seg);
                }
                states.insert(incoming, SegState::Installed(thread));
                let len = metas[&incoming].len;
                regs.insert(
                    thread,
                    Window {
                        seg: incoming,
                        lo: 0,
                        hi: len,
                    },
                );
            }
            SegOp::Mask {
                thread,
                offset,
                len,
            } => {
                let Some(w) = regs.get_mut(&thread) else {
                    findings.push(Finding::trap(
                        Cause::InvalidSegMask,
                        site,
                        format!("thread {thread} masks with no segment installed"),
                    ));
                    continue;
                };
                let Some(end) = offset.checked_add(len) else {
                    findings.push(Finding::trap(
                        Cause::InvalidSegMask,
                        site,
                        format!("mask [{offset}, {offset}+{len}) wraps the address space"),
                    ));
                    continue;
                };
                if offset < w.lo || end > w.hi {
                    findings.push(Finding::trap(
                        Cause::InvalidSegMask,
                        site,
                        format!(
                            "mask [{offset}, {end}) escapes the current window [{}, {}); windows only shrink",
                            w.lo, w.hi
                        ),
                    ));
                    continue;
                }
                if metas[&w.seg].paged && (offset % PAGE != 0 || len % PAGE != 0) {
                    findings.push(Finding::trap(
                        Cause::InvalidSegMask,
                        site,
                        format!("mask [{offset}, {end}) is not page-granular on a paged segment"),
                    ));
                    continue;
                }
                w.lo = offset;
                w.hi = end;
            }
            SegOp::HandoverCall { thread } => {
                let Some(w) = regs.remove(&thread) else {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!("thread {thread} hands over with an empty seg-reg"),
                    ));
                    continue;
                };
                states.insert(w.seg, SegState::Revoked);
            }
            SegOp::Free { thread, seg } => match states.get(&seg) {
                Some(SegState::Loose(o)) if *o == thread => {
                    states.insert(seg, SegState::Freed);
                }
                Some(SegState::Installed(t)) if *t == thread => {
                    regs.remove(&thread);
                    states.insert(seg, SegState::Freed);
                }
                Some(SegState::Freed) => {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!("segment {seg} freed twice"),
                    ));
                }
                Some(SegState::Revoked) => {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!("segment {seg} was handed over; use-after-revoke"),
                    ));
                }
                _ => {
                    findings.push(Finding::trap(
                        Cause::SwapsegError,
                        site,
                        format!("thread {thread} frees segment {seg} it does not hold"),
                    ));
                }
            },
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with(ops: Vec<SegOp>) -> Plan {
        let mut plan = Plan::new();
        plan.threads = vec![0, 1];
        plan.seg_ops = ops;
        plan
    }

    fn alloc(seg: usize, owner: usize) -> SegOp {
        SegOp::Alloc {
            seg,
            owner,
            len: 8192,
            paged: false,
        }
    }

    #[test]
    fn clean_stash_swap_lifecycle_has_no_findings() {
        let plan = plan_with(vec![
            alloc(0, 0),
            alloc(1, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Stash {
                thread: 0,
                slot: 3,
                seg: 1,
            },
            SegOp::Mask {
                thread: 0,
                offset: 0,
                len: 4096,
            },
            SegOp::Swap { thread: 0, slot: 3 },
            SegOp::Swap { thread: 0, slot: 3 },
            SegOp::HandoverCall { thread: 0 },
        ]);
        assert!(check(&plan).is_empty());
    }

    #[test]
    fn empty_slot_swap_is_swapseg_error() {
        let plan = plan_with(vec![alloc(0, 0), SegOp::Swap { thread: 0, slot: 7 }]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::SwapsegError));
        assert!(f[0].detail.contains("empty slot"));
    }

    #[test]
    fn double_install_is_swapseg_error() {
        let plan = plan_with(vec![
            alloc(0, 0),
            alloc(1, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Install { thread: 0, seg: 1 },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("double-install"));
    }

    #[test]
    fn use_after_handover_is_swapseg_error() {
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::HandoverCall { thread: 0 },
            SegOp::Free { thread: 0, seg: 0 },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("use-after-revoke"));
    }

    #[test]
    fn widening_mask_is_invalid_seg_mask() {
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Mask {
                thread: 0,
                offset: 1024,
                len: 1024,
            },
            SegOp::Mask {
                thread: 0,
                offset: 0,
                len: 8192,
            },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidSegMask));
        assert!(f[0].detail.contains("only shrink"));
    }

    #[test]
    fn sub_page_mask_on_paged_segment_is_invalid_seg_mask() {
        let plan = plan_with(vec![
            SegOp::Alloc {
                seg: 0,
                owner: 0,
                len: 8192,
                paged: true,
            },
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Mask {
                thread: 0,
                offset: 512,
                len: 4096,
            },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidSegMask));
        assert!(f[0].detail.contains("page-granular"));
    }

    #[test]
    fn overflowing_mask_is_caught_not_wrapped() {
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Mask {
                thread: 0,
                offset: u64::MAX - 8,
                len: 64,
            },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("wraps"));
    }

    #[test]
    fn foreign_free_is_swapseg_error() {
        let plan = plan_with(vec![alloc(0, 0), SegOp::Free { thread: 1, seg: 0 }]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("does not hold"));
    }
}
