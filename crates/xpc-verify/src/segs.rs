//! Check (c): relay segments obey single-owner semantics along every
//! `swapseg`/handover interleaving, and never leak a previous holder's
//! bytes across an ownership change.
//!
//! The abstract domain is a per-segment **ownership automaton**:
//!
//! ```text
//!           Alloc            Install        HandoverCall{to}
//!   (none) ───────▶ Loose ───────────▶ Installed ───────────▶ Installed(to)
//!                     ▲  ╲ Stash          │  ▲
//!                     │   ╲               ▼  │ Swap (slot must
//!                     │    ▶ Stashed ◀────┘  │  hold a segment)
//!                     └──────── Free ▶ Freed
//! ```
//!
//! crossed with a per-segment **taint automaton**: a segment is `Zeroed`
//! at `Alloc` (fresh frames) and after an explicit `SegOp::Zero`, and
//! becomes `Tainted` whenever it picks up a previous holder's bytes — a
//! `Swap` pulls back a segment that parked mid-request, a handover
//! arrives carrying the sender's writes. Handing a tainted segment to a
//! thread in a *different process* without an interposed zero is a
//! **data-leak finding** ([`crate::Verdict::DataLeak`]): no trap fires
//! at runtime, which is exactly why the hardened kernel prices a
//! zero-on-handover scrub instead of relying on an exception.
//!
//! Each thread also keeps a seg-reg window that may only **shrink**
//! (§4.4 "Message Shrink") — and the window *travels with the handover*:
//! the callee inherits the caller's shrunk window, so a post-handover
//! mask that widens it predicts [`Cause::InvalidSegMask`] exactly as the
//! `XPC_SEG_MASK_LEN` CSR write would trap. Ownership violations —
//! double-install, stash into an occupied slot, swapping an empty slot,
//! use-after-free — predict [`Cause::SwapsegError`], matching
//! `XpcEngine::exec_swapseg`.
//!
//! Every finding is anchored: [`Finding::op_index`] names the first
//! violating [`SegOp`] by index into [`Plan::seg_ops`].

use crate::finding::Finding;
use crate::plan::{Plan, SegOp};
use rv64::trap::Cause;
use std::collections::HashMap;

/// Mask granularity on paged relay segments (the relay page table maps
/// whole pages, so sub-page windows cannot be expressed).
const PAGE: u64 = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    /// Owned by a thread, not installed anywhere.
    Loose(usize),
    /// Live in a thread's seg-reg.
    Installed(usize),
    /// Parked in a process seg-list slot.
    Stashed(usize, u64),
    /// Frames returned; any further touch is use-after-free.
    Freed,
}

/// Taint state of a segment's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Taint {
    /// Known-zero (fresh alloc, or an explicit `SegOp::Zero` ran).
    Zeroed,
    /// Holds bytes written by a previous holder.
    Tainted,
}

#[derive(Debug, Clone, Copy)]
struct Window {
    seg: usize,
    lo: u64,
    hi: u64,
}

#[derive(Debug, Clone, Copy)]
struct SegMeta {
    len: u64,
    paged: bool,
}

/// Walk the plan's seg-op sequence through the automaton. An op that
/// violates the automaton is recorded and **skipped** (its state effect
/// does not apply), so one bad op does not cascade into noise. The one
/// exception is a data-leak handover: the transfer itself succeeds at
/// runtime (nothing traps), so its state effect *does* apply.
pub fn check(plan: &Plan) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut states: HashMap<usize, SegState> = HashMap::new();
    let mut taints: HashMap<usize, Taint> = HashMap::new();
    let mut metas: HashMap<usize, SegMeta> = HashMap::new();
    let mut regs: HashMap<usize, Window> = HashMap::new();
    let mut slots: HashMap<(usize, u64), usize> = HashMap::new();
    let process_of = |thread: usize| plan.threads.get(thread).copied().unwrap_or(thread);
    for (i, op) in plan.seg_ops.iter().enumerate() {
        let site = format!("seg-op {i}");
        match *op {
            SegOp::Alloc {
                seg,
                owner,
                len,
                paged,
            } => {
                if states.contains_key(&seg) {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("segment {seg} allocated twice"),
                    ));
                    continue;
                }
                states.insert(seg, SegState::Loose(owner));
                taints.insert(seg, Taint::Zeroed);
                metas.insert(seg, SegMeta { len, paged });
            }
            SegOp::Install { thread, seg } => {
                match states.get(&seg) {
                    None | Some(SegState::Freed) => {
                        findings.push(Finding::trap_at(
                            Cause::SwapsegError,
                            i,
                            site,
                            format!("install of freed or never-allocated segment {seg}"),
                        ));
                        continue;
                    }
                    Some(SegState::Installed(t)) => {
                        findings.push(Finding::trap_at(
                            Cause::SwapsegError,
                            i,
                            site,
                            format!("segment {seg} already installed in thread {t}'s seg-reg"),
                        ));
                        continue;
                    }
                    Some(SegState::Stashed(p, s)) => {
                        findings.push(Finding::trap_at(
                            Cause::SwapsegError,
                            i,
                            site,
                            format!("segment {seg} is stashed in slot {s} of process {p}; swapseg retrieves it"),
                        ));
                        continue;
                    }
                    Some(SegState::Loose(o)) if *o != thread => {
                        findings.push(Finding::trap_at(
                            Cause::SwapsegError,
                            i,
                            site,
                            format!("thread {thread} does not own segment {seg} (thread {o} does)"),
                        ));
                        continue;
                    }
                    Some(SegState::Loose(_)) => {}
                }
                if regs.contains_key(&thread) {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!(
                            "thread {thread}'s seg-reg already holds a segment (double-install)"
                        ),
                    ));
                    continue;
                }
                let len = metas[&seg].len;
                states.insert(seg, SegState::Installed(thread));
                regs.insert(
                    thread,
                    Window {
                        seg,
                        lo: 0,
                        hi: len,
                    },
                );
            }
            SegOp::Stash { thread, slot, seg } => {
                if slot >= plan.seg_list_slots {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!(
                            "slot {slot} out of range (seg-list holds {} slots)",
                            plan.seg_list_slots
                        ),
                    ));
                    continue;
                }
                let process = process_of(thread);
                match states.get(&seg) {
                    Some(SegState::Loose(o)) if *o == thread => {}
                    _ => {
                        findings.push(Finding::trap_at(
                            Cause::SwapsegError,
                            i,
                            site,
                            format!("thread {thread} cannot stash segment {seg}: not a loose segment it owns"),
                        ));
                        continue;
                    }
                }
                if let Some(&occupant) = slots.get(&(process, slot)) {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("slot {slot} already holds segment {occupant}"),
                    ));
                    continue;
                }
                states.insert(seg, SegState::Stashed(process, slot));
                slots.insert((process, slot), seg);
            }
            SegOp::Swap { thread, slot } => {
                if slot >= plan.seg_list_slots {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!(
                            "slot {slot} out of range (seg-list holds {} slots)",
                            plan.seg_list_slots
                        ),
                    ));
                    continue;
                }
                let process = process_of(thread);
                let Some(&incoming) = slots.get(&(process, slot)) else {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("swapseg with empty slot {slot}"),
                    ));
                    continue;
                };
                let outgoing = regs.remove(&thread);
                slots.remove(&(process, slot));
                if let Some(w) = outgoing {
                    states.insert(w.seg, SegState::Stashed(process, slot));
                    slots.insert((process, slot), w.seg);
                }
                states.insert(incoming, SegState::Installed(thread));
                // A segment pulled back out of the seg-list parked
                // mid-request: its bytes are a previous holder's.
                taints.insert(incoming, Taint::Tainted);
                let len = metas[&incoming].len;
                regs.insert(
                    thread,
                    Window {
                        seg: incoming,
                        lo: 0,
                        hi: len,
                    },
                );
            }
            SegOp::Mask {
                thread,
                offset,
                len,
            } => {
                let Some(w) = regs.get_mut(&thread) else {
                    findings.push(Finding::trap_at(
                        Cause::InvalidSegMask,
                        i,
                        site,
                        format!("thread {thread} masks with no segment installed"),
                    ));
                    continue;
                };
                let Some(end) = offset.checked_add(len) else {
                    findings.push(Finding::trap_at(
                        Cause::InvalidSegMask,
                        i,
                        site,
                        format!("mask [{offset}, {offset}+{len}) wraps the address space"),
                    ));
                    continue;
                };
                if offset < w.lo || end > w.hi {
                    findings.push(Finding::trap_at(
                        Cause::InvalidSegMask,
                        i,
                        site,
                        format!(
                            "mask [{offset}, {end}) escapes the current window [{}, {}); windows only shrink",
                            w.lo, w.hi
                        ),
                    ));
                    continue;
                }
                if metas[&w.seg].paged && (offset % PAGE != 0 || len % PAGE != 0) {
                    findings.push(Finding::trap_at(
                        Cause::InvalidSegMask,
                        i,
                        site,
                        format!("mask [{offset}, {end}) is not page-granular on a paged segment"),
                    ));
                    continue;
                }
                w.lo = offset;
                w.hi = end;
            }
            SegOp::Zero { thread } => {
                let Some(w) = regs.get(&thread) else {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("thread {thread} zeroes with no segment installed"),
                    ));
                    continue;
                };
                taints.insert(w.seg, Taint::Zeroed);
            }
            SegOp::HandoverCall { thread, to } => {
                let Some(w) = regs.remove(&thread) else {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("thread {thread} hands over with an empty seg-reg"),
                    ));
                    continue;
                };
                let crosses = process_of(thread) != process_of(to);
                if crosses && taints.get(&w.seg) == Some(&Taint::Tainted) {
                    findings.push(Finding::leak_at(
                        i,
                        site.clone(),
                        format!(
                            "segment {} still holds a previous holder's bytes; \
                             handover {thread}→{to} crosses processes without an \
                             interposed zero",
                            w.seg
                        ),
                    ));
                    // The transfer itself succeeds at runtime, so the
                    // state effect applies; only the bytes were dirty.
                }
                if regs.contains_key(&to) {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("handover into thread {to}'s occupied seg-reg"),
                    ));
                    continue;
                }
                states.insert(w.seg, SegState::Installed(to));
                // The callee inherits the sender's bytes and the shrunk
                // window — §4.4: the mask never widens along the chain.
                taints.insert(w.seg, Taint::Tainted);
                regs.insert(to, w);
            }
            SegOp::Free { thread, seg } => match states.get(&seg) {
                Some(SegState::Loose(o)) if *o == thread => {
                    states.insert(seg, SegState::Freed);
                }
                Some(SegState::Installed(t)) if *t == thread => {
                    regs.remove(&thread);
                    states.insert(seg, SegState::Freed);
                }
                Some(SegState::Freed) => {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("segment {seg} freed twice"),
                    ));
                }
                _ => {
                    findings.push(Finding::trap_at(
                        Cause::SwapsegError,
                        i,
                        site,
                        format!("thread {thread} frees segment {seg} it does not hold"),
                    ));
                }
            },
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::Verdict;

    fn plan_with(ops: Vec<SegOp>) -> Plan {
        let mut plan = Plan::new();
        plan.threads = vec![0, 1];
        plan.seg_ops = ops;
        plan
    }

    fn alloc(seg: usize, owner: usize) -> SegOp {
        SegOp::Alloc {
            seg,
            owner,
            len: 8192,
            paged: false,
        }
    }

    #[test]
    fn clean_stash_swap_lifecycle_has_no_findings() {
        let plan = plan_with(vec![
            alloc(0, 0),
            alloc(1, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Stash {
                thread: 0,
                slot: 3,
                seg: 1,
            },
            SegOp::Mask {
                thread: 0,
                offset: 0,
                len: 4096,
            },
            SegOp::Swap { thread: 0, slot: 3 },
            SegOp::Swap { thread: 0, slot: 3 },
            // Segment 0 came back through the seg-list, so it is tainted;
            // the zero scrubs it before the cross-process handover.
            SegOp::Zero { thread: 0 },
            SegOp::HandoverCall { thread: 0, to: 1 },
        ]);
        assert!(check(&plan).is_empty());
    }

    #[test]
    fn empty_slot_swap_is_swapseg_error() {
        let plan = plan_with(vec![alloc(0, 0), SegOp::Swap { thread: 0, slot: 7 }]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::SwapsegError));
        assert!(f[0].detail.contains("empty slot"));
    }

    #[test]
    fn double_install_is_swapseg_error() {
        let plan = plan_with(vec![
            alloc(0, 0),
            alloc(1, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Install { thread: 0, seg: 1 },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("double-install"));
    }

    #[test]
    fn use_after_handover_is_swapseg_error() {
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::HandoverCall { thread: 0, to: 1 },
            SegOp::Free { thread: 0, seg: 0 },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::SwapsegError));
        assert!(f[0].detail.contains("does not hold"), "{}", f[0].detail);
    }

    #[test]
    fn widening_mask_is_invalid_seg_mask() {
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Mask {
                thread: 0,
                offset: 1024,
                len: 1024,
            },
            SegOp::Mask {
                thread: 0,
                offset: 0,
                len: 8192,
            },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidSegMask));
        assert!(f[0].detail.contains("only shrink"));
    }

    #[test]
    fn widening_after_handover_is_invalid_seg_mask_for_the_receiver() {
        // The window travels with the handover: the callee inherits
        // [0, 256) and may not widen it back out.
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Mask {
                thread: 0,
                offset: 0,
                len: 256,
            },
            SegOp::HandoverCall { thread: 0, to: 1 },
            SegOp::Mask {
                thread: 1,
                offset: 0,
                len: 8192,
            },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].cause(), Some(Cause::InvalidSegMask));
        assert!(f[0].detail.contains("only shrink"));
        assert_eq!(f[0].op_index, Some(4), "anchored at the widening mask");
    }

    #[test]
    fn tainted_cross_process_handover_without_zero_is_a_leak() {
        let plan = plan_with(vec![
            alloc(0, 0),
            alloc(1, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Stash {
                thread: 0,
                slot: 0,
                seg: 1,
            },
            // Swap parks seg 0 (holding this request's bytes) and pulls
            // seg 1; swap back pulls seg 0 — now tainted.
            SegOp::Swap { thread: 0, slot: 0 },
            SegOp::Swap { thread: 0, slot: 0 },
            SegOp::HandoverCall { thread: 0, to: 1 },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].verdict, Verdict::DataLeak);
        assert_eq!(f[0].cause(), None, "leaks do not trap");
        assert_eq!(f[0].op_index, Some(6));
        assert!(f[0].detail.contains("interposed zero"), "{}", f[0].detail);
    }

    #[test]
    fn zero_before_handover_clears_the_taint() {
        let plan = plan_with(vec![
            alloc(0, 0),
            alloc(1, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Stash {
                thread: 0,
                slot: 0,
                seg: 1,
            },
            SegOp::Swap { thread: 0, slot: 0 },
            SegOp::Swap { thread: 0, slot: 0 },
            SegOp::Zero { thread: 0 },
            SegOp::HandoverCall { thread: 0, to: 1 },
        ]);
        assert!(check(&plan).is_empty());
    }

    #[test]
    fn same_process_handover_never_leaks() {
        let mut plan = plan_with(vec![
            alloc(0, 0),
            alloc(1, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Stash {
                thread: 0,
                slot: 0,
                seg: 1,
            },
            SegOp::Swap { thread: 0, slot: 0 },
            SegOp::Swap { thread: 0, slot: 0 },
            SegOp::HandoverCall { thread: 0, to: 1 },
        ]);
        // Threads 0 and 1 share a process: no ownership boundary crossed.
        plan.threads = vec![7, 7];
        assert!(check(&plan).is_empty());
    }

    #[test]
    fn zero_with_empty_seg_reg_is_swapseg_error() {
        let plan = plan_with(vec![SegOp::Zero { thread: 0 }]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::SwapsegError));
        assert!(f[0].detail.contains("no segment installed"));
    }

    #[test]
    fn findings_anchor_the_first_violating_op_index() {
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Swap { thread: 0, slot: 9 },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].op_index, Some(2));
        assert!(f[0].site.contains("seg-op 2"));
    }

    #[test]
    fn sub_page_mask_on_paged_segment_is_invalid_seg_mask() {
        let plan = plan_with(vec![
            SegOp::Alloc {
                seg: 0,
                owner: 0,
                len: 8192,
                paged: true,
            },
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Mask {
                thread: 0,
                offset: 512,
                len: 4096,
            },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidSegMask));
        assert!(f[0].detail.contains("page-granular"));
    }

    #[test]
    fn overflowing_mask_is_caught_not_wrapped() {
        let plan = plan_with(vec![
            alloc(0, 0),
            SegOp::Install { thread: 0, seg: 0 },
            SegOp::Mask {
                thread: 0,
                offset: u64::MAX - 8,
                len: 64,
            },
        ]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("wraps"));
    }

    #[test]
    fn foreign_free_is_swapseg_error() {
        let plan = plan_with(vec![alloc(0, 0), SegOp::Free { thread: 1, seg: 0 }]);
        let f = check(&plan);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("does not hold"));
    }
}
