//! Verifier diagnostics: `Cause`-typed verdicts that map 1:1 onto the
//! runtime trap each finding predicts.

use rv64::trap::Cause;
use std::fmt;

/// What the verifier predicts would happen at runtime if the plan ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The XPC engine would raise this exception (one of the five custom
    /// causes of paper Table 2). The differential tests pin each verdict
    /// to the identical [`Cause`] the engine traps with.
    Trap(Cause),
    /// An [`simos::Invocation`] whose phase
    /// decomposition does not sum to its total — unattributed cycles in
    /// the ledger. No hardware trap; the cycle accounting itself is
    /// broken (the ledger-lint pass of the verifier).
    LedgerDrift,
    /// A tainted relay segment is handed to a different owner without an
    /// interposed zero (the segment-taint automaton of [`crate::segs`]).
    /// No hardware trap fires — the bytes simply arrive — which is
    /// exactly why the temporal hardening prices a zero-on-handover
    /// scrub instead of relying on an exception.
    DataLeak,
}

impl Verdict {
    /// The runtime trap this verdict predicts, if it predicts one.
    pub fn cause(self) -> Option<Cause> {
        match self {
            Verdict::Trap(c) => Some(c),
            Verdict::LedgerDrift | Verdict::DataLeak => None,
        }
    }

    /// Stable kebab-case key for tables and JSON dumps.
    pub fn key(self) -> &'static str {
        match self {
            Verdict::Trap(Cause::InvalidXEntry) => "invalid-x-entry",
            Verdict::Trap(Cause::InvalidXcallCap) => "invalid-xcall-cap",
            Verdict::Trap(Cause::InvalidLinkage) => "invalid-linkage",
            Verdict::Trap(Cause::SwapsegError) => "swapseg-error",
            Verdict::Trap(Cause::InvalidSegMask) => "invalid-seg-mask",
            Verdict::Trap(_) => "trap",
            Verdict::LedgerDrift => "ledger-drift",
            Verdict::DataLeak => "data-leak",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Trap(c) => write!(f, "{c}"),
            Verdict::LedgerDrift => f.write_str("ledger drift"),
            Verdict::DataLeak => f.write_str("data leak"),
        }
    }
}

/// One statically proven protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The predicted runtime outcome.
    pub verdict: Verdict,
    /// Where in the plan/recipes the violation sits (stable, printable).
    pub site: String,
    /// What is wrong, in terms of the abstract domain that refuted it.
    pub detail: String,
    /// For seg-op findings: the index into [`crate::plan::Plan::seg_ops`]
    /// of the **first** violating op, so tooling can point at the exact
    /// plan line instead of parsing the `site` string. `None` for
    /// findings that do not anchor to a seg-op.
    pub op_index: Option<usize>,
}

impl Finding {
    /// Construct a trap-predicting finding.
    pub fn trap(cause: Cause, site: impl Into<String>, detail: impl Into<String>) -> Self {
        Finding {
            verdict: Verdict::Trap(cause),
            site: site.into(),
            detail: detail.into(),
            op_index: None,
        }
    }

    /// Construct a trap-predicting finding anchored at a seg-op index.
    pub fn trap_at(
        cause: Cause,
        op_index: usize,
        site: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Finding {
            verdict: Verdict::Trap(cause),
            site: site.into(),
            detail: detail.into(),
            op_index: Some(op_index),
        }
    }

    /// Construct a data-leak finding anchored at a seg-op index.
    pub fn leak_at(op_index: usize, site: impl Into<String>, detail: impl Into<String>) -> Self {
        Finding {
            verdict: Verdict::DataLeak,
            site: site.into(),
            detail: detail.into(),
            op_index: Some(op_index),
        }
    }

    /// The runtime trap this finding predicts, if any.
    pub fn cause(&self) -> Option<Cause> {
        self.verdict.cause()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ({})", self.site, self.verdict, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_keys_cover_the_five_exceptions() {
        let five = [
            Cause::InvalidXEntry,
            Cause::InvalidXcallCap,
            Cause::InvalidLinkage,
            Cause::SwapsegError,
            Cause::InvalidSegMask,
        ];
        let mut keys: Vec<_> = five.iter().map(|&c| Verdict::Trap(c).key()).collect();
        keys.push(Verdict::LedgerDrift.key());
        keys.push(Verdict::DataLeak.key());
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn anchored_findings_carry_the_op_index_and_leaks_predict_no_trap() {
        let f = Finding::trap_at(Cause::InvalidSegMask, 4, "seg-op 4", "widens");
        assert_eq!(f.op_index, Some(4));
        assert_eq!(f.cause(), Some(Cause::InvalidSegMask));
        let l = Finding::leak_at(2, "seg-op 2", "tainted handover");
        assert_eq!(l.verdict, Verdict::DataLeak);
        assert_eq!(l.op_index, Some(2));
        assert_eq!(l.cause(), None, "a leak is silent at runtime");
    }

    #[test]
    fn finding_displays_site_and_verdict() {
        let f = Finding::trap(Cause::SwapsegError, "seg-op 3", "slot 2 is empty");
        let s = f.to_string();
        assert!(s.contains("seg-op 3") && s.contains("swapseg error"));
        assert_eq!(f.cause(), Some(Cause::SwapsegError));
    }
}
