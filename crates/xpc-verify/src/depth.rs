//! Check (b): worst-case call-chain depth fits the link stack, and no
//! return pops another tenant's linkage record.
//!
//! Two complementary depth bounds. The *recipe* bound is exact: the
//! flow abstraction replays each `Step` sequence and counts outstanding
//! linkage records. The *graph* bound is conservative: over the
//! declared service call graph, a cycle means a request can re-enter a
//! service it is already serving — the engine pushes a fresh 80-byte
//! linkage record per hop, so depth is unbounded and the stack
//! overflows into `InvalidLinkage` no matter its size; an acyclic graph
//! is bounded by its longest path, which must fit the configured record
//! capacity.
//!
//! The **tenant-flow** check ([`check_tenants`]) labels every pushed
//! linkage record with the tenant of the frame that pushed it
//! ([`Plan::tenants`]) and replays each recipe against the link stack.
//! A *skip-level return* — an `Oneway` back to a service whose record
//! sits below the top of the stack — pops through every record above
//! it; if any popped-through record belongs to a different tenant, the
//! return discards that tenant's linkage state, which the engine
//! refuses as `InvalidLinkage` (the orphaned records unwind to a bare
//! `xret` on an empty stack). Plans that declare no tenants (or one
//! tenant) are unaffected.

use crate::finding::Finding;
use crate::plan::{Plan, RecipeFlow};
use rv64::trap::Cause;
use simos::Step;

/// Longest-path / cycle analysis over `plan.calls`, plus the exact
/// per-recipe depth bound.
pub fn check(plan: &Plan, flows: &[(String, RecipeFlow)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, f) in flows {
        if f.max_depth > plan.link_capacity_records {
            findings.push(Finding::trap(
                Cause::InvalidLinkage,
                format!("recipe {name}"),
                format!(
                    "needs {} outstanding linkage records; the link stack holds {}",
                    f.max_depth, plan.link_capacity_records
                ),
            ));
        }
    }
    let n = plan.services.len().max(
        plan.calls
            .iter()
            .map(|&(a, b)| a.max(b) + 1)
            .max()
            .unwrap_or(0),
    );
    match longest_path(n, &plan.calls) {
        GraphDepth::Cyclic(cycle) => {
            let path = cycle
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("→");
            findings.push(Finding::trap(
                Cause::InvalidLinkage,
                "service call graph",
                format!("cycle {path} makes link-stack depth unbounded"),
            ));
        }
        GraphDepth::Bounded(depth) => {
            if depth > plan.link_capacity_records {
                findings.push(Finding::trap(
                    Cause::InvalidLinkage,
                    "service call graph",
                    format!(
                        "longest call chain is {depth} records; the link stack holds {}",
                        plan.link_capacity_records
                    ),
                ));
            }
        }
    }
    findings
}

/// Replay each recipe against a tenant-labeled link stack and refute
/// every return that would pop another tenant's linkage record. See the
/// module docs for the exact rule.
pub fn check_tenants(plan: &Plan, recipes: &[(String, Vec<Step>)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, recipe) in recipes {
        // Suspended frames whose linkage records sit on the stack,
        // bottom to top.
        let mut stack: Vec<usize> = Vec::new();
        let mut current = 0usize;
        for (i, step) in recipe.iter().enumerate() {
            let Step::Oneway { from, to, .. } = *step else {
                continue;
            };
            if stack.last() == Some(&to) && from == current {
                // Well-nested return: pops the caller's own record.
                stack.pop();
                current = to;
            } else if to == current {
                // Reply payload into the already-live frame.
            } else if let Some(pos) = stack.iter().rposition(|&s| s == to) {
                // Skip-level return: resuming `to` pops every record
                // above its own. Records pushed by a different tenant
                // may not be discarded by this tenant's return.
                let crossed: Vec<usize> = stack[pos + 1..]
                    .iter()
                    .copied()
                    .filter(|&s| plan.tenant(s) != plan.tenant(to))
                    .collect();
                if let Some(&victim) = crossed.first() {
                    findings.push(Finding::trap(
                        Cause::InvalidLinkage,
                        format!("{name}: step {i} return {from}→{to}"),
                        format!(
                            "return pops through tenant {}'s linkage record \
                             (service {victim}) while resuming tenant {}'s frame",
                            plan.tenant(victim),
                            plan.tenant(to)
                        ),
                    ));
                }
                stack.truncate(pos);
                current = to;
            } else {
                // A call: pushes the current frame's record.
                stack.push(current);
                current = to;
            }
        }
    }
    findings
}

/// Result of the call-graph depth analysis.
enum GraphDepth {
    /// A cycle exists; the vertices of one witness cycle.
    Cyclic(Vec<usize>),
    /// Acyclic: the longest path, counted in edges (= linkage records).
    Bounded(u64),
}

/// Iterative DFS with colors; memoizes longest path from each vertex.
fn longest_path(n: usize, edges: &[(usize, usize)]) -> GraphDepth {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut best = vec![0u64; n];
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        // Stack of (vertex, next child index).
        let mut stack = vec![(root, 0usize)];
        color[root] = 1;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next];
                *next += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => {
                        // Back edge: extract the witness cycle from the
                        // DFS stack.
                        let start = stack.iter().position(|&(x, _)| x == w).unwrap_or(0);
                        let mut cycle: Vec<usize> =
                            stack[start..].iter().map(|&(x, _)| x).collect();
                        cycle.push(w);
                        return GraphDepth::Cyclic(cycle);
                    }
                    _ => {
                        best[v] = best[v].max(best[w] + 1);
                    }
                }
            } else {
                color[v] = 2;
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    best[p] = best[p].max(best[v] + 1);
                }
            }
        }
    }
    GraphDepth::Bounded(best.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::flow;
    use simos::Step;

    #[test]
    fn self_recursive_entry_is_flagged_cyclic() {
        let mut plan = Plan::new();
        plan.calls = vec![(1, 1)];
        let f = check(&plan, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidLinkage));
        assert!(f[0].detail.contains("cycle"));
    }

    #[test]
    fn mutual_recursion_is_flagged_cyclic() {
        let mut plan = Plan::new();
        plan.calls = vec![(0, 1), (1, 2), (2, 1)];
        let f = check(&plan, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("cycle"));
    }

    #[test]
    fn acyclic_chain_within_capacity_is_clean() {
        let mut plan = Plan::new();
        plan.calls = vec![(0, 1), (1, 2), (2, 3)];
        assert!(check(&plan, &[]).is_empty());
    }

    #[test]
    fn long_acyclic_chain_past_capacity_is_flagged() {
        let mut plan = Plan::new();
        let cap = plan.link_capacity_records as usize;
        plan.calls = (0..=cap).map(|i| (i, i + 1)).collect();
        let f = check(&plan, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("longest call chain"));
    }

    fn skip_return_recipe() -> Vec<(String, Vec<Step>)> {
        vec![(
            "skip".to_string(),
            vec![
                Step::Oneway {
                    from: 0,
                    to: 1,
                    bytes: 8,
                },
                Step::Oneway {
                    from: 1,
                    to: 2,
                    bytes: 8,
                },
                // Returns straight to the client, popping through the
                // record service 1 pushed.
                Step::Oneway {
                    from: 2,
                    to: 0,
                    bytes: 8,
                },
            ],
        )]
    }

    #[test]
    fn cross_tenant_skip_return_is_invalid_linkage() {
        let mut plan = Plan::new();
        plan.threads = vec![0, 1, 2];
        plan.tenants = vec![0, 1, 0];
        let f = check_tenants(&plan, &skip_return_recipe());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].cause(), Some(Cause::InvalidLinkage));
        assert!(f[0].detail.contains("tenant 1"), "{}", f[0].detail);
        assert!(f[0].site.contains("step 2"), "{}", f[0].site);
    }

    #[test]
    fn undeclared_tenants_make_the_check_inert() {
        let mut plan = Plan::new();
        plan.threads = vec![0, 1, 2];
        assert!(check_tenants(&plan, &skip_return_recipe()).is_empty());
    }

    #[test]
    fn same_tenant_skip_return_is_clean() {
        let mut plan = Plan::new();
        plan.threads = vec![0, 1, 2];
        plan.tenants = vec![3, 3, 3];
        assert!(check_tenants(&plan, &skip_return_recipe()).is_empty());
    }

    #[test]
    fn well_nested_cross_tenant_returns_are_clean() {
        let mut plan = Plan::new();
        plan.threads = vec![0, 1, 2];
        plan.tenants = vec![0, 1, 2];
        let recipe = vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 8,
            },
            Step::Oneway {
                from: 1,
                to: 2,
                bytes: 8,
            },
            Step::Oneway {
                from: 2,
                to: 1,
                bytes: 8,
            },
            Step::Oneway {
                from: 1,
                to: 0,
                bytes: 8,
            },
        ];
        let recipes = vec![("nested".to_string(), recipe)];
        assert!(check_tenants(&plan, &recipes).is_empty());
    }

    #[test]
    fn recipe_deeper_than_the_stack_is_flagged() {
        let mut plan = Plan::new();
        plan.link_capacity_records = 2;
        let recipe = vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 8,
            },
            Step::Oneway {
                from: 1,
                to: 2,
                bytes: 8,
            },
            Step::Oneway {
                from: 2,
                to: 3,
                bytes: 8,
            },
        ];
        let flows = vec![("deep".to_string(), flow(&recipe))];
        let f = check(&plan, &flows);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidLinkage));
        assert!(f[0].site.contains("deep"));
    }
}
