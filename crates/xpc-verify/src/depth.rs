//! Check (b): worst-case call-chain depth fits the link stack.
//!
//! Two complementary bounds. The *recipe* bound is exact: the flow
//! abstraction replays each `Step` sequence and counts outstanding
//! linkage records. The *graph* bound is conservative: over the
//! declared service call graph, a cycle means a request can re-enter a
//! service it is already serving — the engine pushes a fresh 80-byte
//! linkage record per hop, so depth is unbounded and the stack
//! overflows into `InvalidLinkage` no matter its size; an acyclic graph
//! is bounded by its longest path, which must fit the configured record
//! capacity.

use crate::finding::Finding;
use crate::plan::{Plan, RecipeFlow};
use rv64::trap::Cause;

/// Longest-path / cycle analysis over `plan.calls`, plus the exact
/// per-recipe depth bound.
pub fn check(plan: &Plan, flows: &[(String, RecipeFlow)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, f) in flows {
        if f.max_depth > plan.link_capacity_records {
            findings.push(Finding::trap(
                Cause::InvalidLinkage,
                format!("recipe {name}"),
                format!(
                    "needs {} outstanding linkage records; the link stack holds {}",
                    f.max_depth, plan.link_capacity_records
                ),
            ));
        }
    }
    let n = plan.services.len().max(
        plan.calls
            .iter()
            .map(|&(a, b)| a.max(b) + 1)
            .max()
            .unwrap_or(0),
    );
    match longest_path(n, &plan.calls) {
        GraphDepth::Cyclic(cycle) => {
            let path = cycle
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("→");
            findings.push(Finding::trap(
                Cause::InvalidLinkage,
                "service call graph",
                format!("cycle {path} makes link-stack depth unbounded"),
            ));
        }
        GraphDepth::Bounded(depth) => {
            if depth > plan.link_capacity_records {
                findings.push(Finding::trap(
                    Cause::InvalidLinkage,
                    "service call graph",
                    format!(
                        "longest call chain is {depth} records; the link stack holds {}",
                        plan.link_capacity_records
                    ),
                ));
            }
        }
    }
    findings
}

/// Result of the call-graph depth analysis.
enum GraphDepth {
    /// A cycle exists; the vertices of one witness cycle.
    Cyclic(Vec<usize>),
    /// Acyclic: the longest path, counted in edges (= linkage records).
    Bounded(u64),
}

/// Iterative DFS with colors; memoizes longest path from each vertex.
fn longest_path(n: usize, edges: &[(usize, usize)]) -> GraphDepth {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut best = vec![0u64; n];
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        // Stack of (vertex, next child index).
        let mut stack = vec![(root, 0usize)];
        color[root] = 1;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next];
                *next += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => {
                        // Back edge: extract the witness cycle from the
                        // DFS stack.
                        let start = stack.iter().position(|&(x, _)| x == w).unwrap_or(0);
                        let mut cycle: Vec<usize> =
                            stack[start..].iter().map(|&(x, _)| x).collect();
                        cycle.push(w);
                        return GraphDepth::Cyclic(cycle);
                    }
                    _ => {
                        best[v] = best[v].max(best[w] + 1);
                    }
                }
            } else {
                color[v] = 2;
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    best[p] = best[p].max(best[v] + 1);
                }
            }
        }
    }
    GraphDepth::Bounded(best.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::flow;
    use simos::Step;

    #[test]
    fn self_recursive_entry_is_flagged_cyclic() {
        let mut plan = Plan::new();
        plan.calls = vec![(1, 1)];
        let f = check(&plan, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidLinkage));
        assert!(f[0].detail.contains("cycle"));
    }

    #[test]
    fn mutual_recursion_is_flagged_cyclic() {
        let mut plan = Plan::new();
        plan.calls = vec![(0, 1), (1, 2), (2, 1)];
        let f = check(&plan, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("cycle"));
    }

    #[test]
    fn acyclic_chain_within_capacity_is_clean() {
        let mut plan = Plan::new();
        plan.calls = vec![(0, 1), (1, 2), (2, 3)];
        assert!(check(&plan, &[]).is_empty());
    }

    #[test]
    fn long_acyclic_chain_past_capacity_is_flagged() {
        let mut plan = Plan::new();
        let cap = plan.link_capacity_records as usize;
        plan.calls = (0..=cap).map(|i| (i, i + 1)).collect();
        let f = check(&plan, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("longest call chain"));
    }

    #[test]
    fn recipe_deeper_than_the_stack_is_flagged() {
        let mut plan = Plan::new();
        plan.link_capacity_records = 2;
        let recipe = vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 8,
            },
            Step::Oneway {
                from: 1,
                to: 2,
                bytes: 8,
            },
            Step::Oneway {
                from: 2,
                to: 3,
                bytes: 8,
            },
        ];
        let flows = vec![("deep".to_string(), flow(&recipe))];
        let f = check(&plan, &flows);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(Cause::InvalidLinkage));
        assert!(f[0].site.contains("deep"));
    }
}
