//! The declarative **setup plan** the verifier reasons about, plus the
//! call-flow abstraction that turns a [`Step`] recipe into call edges
//! and a worst-case link-stack depth.
//!
//! A [`Plan`] is everything a deployment would do *before* serving
//! traffic — create processes/threads, register x-entries, wire
//! `grant_xcall`/`grant_grant` edges, allocate and stash relay segments
//! — written down as data instead of executed. Workload recipes stay in
//! their existing [`simos::load::Step`] vocabulary; a [`ServiceBinding`]
//! table maps recipe service ids onto the plan's threads and entries.

use simos::{CallProgram, Step};
use xpc::layout::{SEG_LIST_SLOTS, XENTRY_TABLE_ENTRIES};
use xpc_engine::layout::{LINK_RECORD_BYTES, LINK_STACK_BYTES};

/// One x-entry registration (`xpc_register_entry` in Listing 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryDecl {
    /// Index into the global x-entry table.
    pub id: u64,
    /// Thread that registers (and therefore owns) the entry; it receives
    /// the grant-cap, exactly as the kernel's `register_entry` does.
    pub owner: usize,
    /// Whether the entry is still valid at run time. `false` models an
    /// entry whose owner process died after registration (§4.2): the
    /// capability bits survive in caller bitmaps, the table slot does
    /// not.
    pub valid: bool,
}

/// One capability grant edge of the setup plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grant {
    /// `grant_xcall(granter, grantee, entry)`: sets one bit of the
    /// grantee's xcall-cap bitmap. Requires the granter to hold the
    /// grant-cap; an unauthorized grant has **no effect** (the runtime
    /// call fails with `NoGrantCap`), so a later call through it is
    /// refuted at the call site.
    Xcall {
        /// Granting thread (must hold the grant-cap).
        granter: usize,
        /// Receiving thread.
        grantee: usize,
        /// Entry being granted.
        entry: u64,
    },
    /// `grant_grant(granter, grantee, entry)`: passes the grant-cap
    /// itself onward — the transitive edge of the capability lattice.
    GrantCap {
        /// Granting thread (must hold the grant-cap).
        granter: usize,
        /// Receiving thread.
        grantee: usize,
        /// Entry whose grant-cap moves.
        entry: u64,
    },
    /// `revoke_entry(granter, entry)`: clears every outstanding
    /// xcall-cap for `entry` and opens a new **revocation epoch**.
    /// Ordering matters twice over: a cap granted *before* the revoke is
    /// stale afterwards, while a re-grant *after* the revoke carries the
    /// new epoch and is live again. Requires the granter to hold the
    /// grant-cap; an unauthorized revoke has no effect.
    Revoke {
        /// Revoking thread (must hold the grant-cap).
        granter: usize,
        /// Entry whose outstanding xcall-caps are cleared.
        entry: u64,
    },
}

/// Maps one recipe service id onto the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceBinding {
    /// The thread whose xcall-cap bitmap is live while this service
    /// executes (the handler thread; for the client, the client thread).
    pub thread: usize,
    /// The x-entry a call *into* this service goes through. `None` for
    /// the client (service 0), which is only ever called back via
    /// `xret`/reply legs that need no capability.
    pub entry: Option<u64>,
}

/// One step of the relay-segment lifecycle plan, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegOp {
    /// `alloc_relay_seg` / `alloc_relay_pt_seg`: segment `seg` of `len`
    /// bytes, owned by `owner`.
    Alloc {
        /// Plan-local segment id.
        seg: usize,
        /// Owning thread.
        owner: usize,
        /// Segment length in bytes.
        len: u64,
        /// Paged (§6.2 relay page table) — masks must be page-granular.
        paged: bool,
    },
    /// `install_seg`: make `seg` the live seg-reg of `thread`.
    Install {
        /// Installing thread (must own the segment).
        thread: usize,
        /// Segment to install.
        seg: usize,
    },
    /// `stash_seg`: park `seg` in `thread`'s process seg-list at `slot`
    /// (ownership moves to the slot).
    Stash {
        /// Stashing thread (must own the segment).
        thread: usize,
        /// Seg-list slot index.
        slot: u64,
        /// Segment to stash.
        seg: usize,
    },
    /// Guest `swapseg slot`: exchange the live seg-reg with the slot.
    Swap {
        /// Swapping thread.
        thread: usize,
        /// Seg-list slot index.
        slot: u64,
    },
    /// Guest seg-mask write: shrink the live window to
    /// `[offset, offset + len)` relative to the installed segment.
    Mask {
        /// Masking thread.
        thread: usize,
        /// Window start, relative to the live window's segment base.
        offset: u64,
        /// Window length in bytes.
        len: u64,
    },
    /// Guest zeroing pass over the live seg-reg window: scrubs the
    /// segment's bytes, moving its taint state back to `Zeroed`. This is
    /// the plan-level spelling of the zero-on-handover mitigation the
    /// runtime prices into `Phase::Scrub`.
    Zero {
        /// Zeroing thread (must have a segment installed).
        thread: usize,
    },
    /// An `xcall` handing the live segment over: the callee sees
    /// `seg ∩ mask` and the window shrinks permanently for the rest of
    /// the chain (§4.4 "Message Shrink"). Ownership moves to the callee
    /// thread; the caller's seg-reg is cleared.
    HandoverCall {
        /// Calling thread.
        thread: usize,
        /// Callee thread receiving the segment (and its shrunk window).
        to: usize,
    },
    /// `free_relay_seg`: return the frames (caller must own the seg).
    Free {
        /// Freeing thread.
        thread: usize,
        /// Segment to free.
        seg: usize,
    },
}

/// The declarative setup plan. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// x-entry table capacity (entries). Defaults to the kernel's.
    pub table_entries: u64,
    /// Link-stack capacity in linkage records. Defaults to the engine's
    /// `LINK_STACK_BYTES / LINK_RECORD_BYTES`.
    pub link_capacity_records: u64,
    /// Per-process seg-list capacity in slots.
    pub seg_list_slots: u64,
    /// Thread → process map (index = thread id).
    pub threads: Vec<usize>,
    /// x-entry registrations, in setup order.
    pub entries: Vec<EntryDecl>,
    /// Capability grants, in setup order (order matters: a grant-cap
    /// must arrive before it is exercised).
    pub grants: Vec<Grant>,
    /// Recipe service id → (thread, entry) binding.
    pub services: Vec<ServiceBinding>,
    /// The declared service call graph (the kernels-roster service
    /// graphs): an edge `(a, b)` means service `a` may call service `b`
    /// *while serving a request* — i.e. nested, holding a linkage
    /// record. Cycles here mean unbounded link-stack depth.
    pub calls: Vec<(usize, usize)>,
    /// Relay-segment lifecycle plan, in program order.
    pub seg_ops: Vec<SegOp>,
    /// Per-service tenant label (index = service id). Empty means every
    /// service belongs to one tenant — the tenant-flow check is inert
    /// and the plan behaves exactly as it did before tenants existed.
    /// Services past the end of the vector default to tenant 0.
    pub tenants: Vec<u64>,
}

impl Plan {
    /// An empty plan with the kernel's real capacities.
    pub fn new() -> Self {
        Plan {
            table_entries: XENTRY_TABLE_ENTRIES,
            link_capacity_records: LINK_STACK_BYTES / LINK_RECORD_BYTES,
            seg_list_slots: SEG_LIST_SLOTS,
            threads: Vec::new(),
            entries: Vec::new(),
            grants: Vec::new(),
            services: Vec::new(),
            calls: Vec::new(),
            seg_ops: Vec::new(),
            tenants: Vec::new(),
        }
    }

    /// The tenant a service belongs to (0 when none was declared).
    pub fn tenant(&self, service: usize) -> u64 {
        self.tenants.get(service).copied().unwrap_or(0)
    }

    /// The canonical plan the existing experiments implicitly assume for
    /// an `n_services`-service recipe set: one process + one thread per
    /// service, service `i > 0` registered as x-entry `i` by its own
    /// thread, and every *call edge* the recipes' flow analysis
    /// discovers granted caller ← owner. Service 0 is the client (no
    /// entry). This is what the pre-flight gate verifies before a
    /// figure runs.
    pub fn for_recipes(n_services: usize, recipes: &[Vec<Step>]) -> Self {
        let mut plan = Plan::new();
        plan.threads = (0..n_services).collect();
        plan.services = (0..n_services)
            .map(|i| ServiceBinding {
                thread: i,
                entry: if i == 0 { None } else { Some(i as u64) },
            })
            .collect();
        plan.entries = (1..n_services)
            .map(|i| EntryDecl {
                id: i as u64,
                owner: i,
                valid: true,
            })
            .collect();
        for recipe in recipes {
            for edge in flow(recipe).call_edges {
                if !plan.calls.contains(&edge) {
                    plan.calls.push(edge);
                }
            }
        }
        for &(caller, callee) in &plan.calls {
            if callee == 0 || callee >= n_services {
                continue;
            }
            let grant = Grant::Xcall {
                granter: callee,
                grantee: caller,
                entry: callee as u64,
            };
            if !plan.grants.contains(&grant) {
                plan.grants.push(grant);
            }
        }
        // One relay segment per recipe set, owned and installed by the
        // client — the handover chain's message buffer.
        plan.seg_ops = vec![
            SegOp::Alloc {
                seg: 0,
                owner: 0,
                len: 4096,
                paged: false,
            },
            SegOp::Install { thread: 0, seg: 0 },
        ];
        plan
    }

    /// The canonical plan a fused [`CallProgram`] implies, mirroring
    /// [`Plan::for_recipes`]: one process + one thread per service,
    /// service `i > 0` registered as x-entry `i`, and every consecutive
    /// program edge (client → hop 0 → hop 1 → …) granted caller ←
    /// owner. This is what [`crate::preflight_program`] verifies before
    /// the `fuse` figures run.
    pub fn for_program(n_services: usize, program: &CallProgram) -> Self {
        let mut plan = Plan::new();
        plan.threads = (0..n_services).collect();
        plan.services = (0..n_services)
            .map(|i| ServiceBinding {
                thread: i,
                entry: if i == 0 { None } else { Some(i as u64) },
            })
            .collect();
        plan.entries = (1..n_services)
            .map(|i| EntryDecl {
                id: i as u64,
                owner: i,
                valid: true,
            })
            .collect();
        let mut caller = program.client();
        for hop in program.hops() {
            let edge = (caller, hop.service);
            if !plan.calls.contains(&edge) {
                plan.calls.push(edge);
            }
            caller = hop.service;
        }
        for &(caller, callee) in &plan.calls {
            if callee == 0 || callee >= n_services {
                continue;
            }
            let grant = Grant::Xcall {
                granter: callee,
                grantee: caller,
                entry: callee as u64,
            };
            if !plan.grants.contains(&grant) {
                plan.grants.push(grant);
            }
        }
        // The program's message buffer: one relay segment, owned and
        // installed by the client, handed hop to hop.
        plan.seg_ops = vec![
            SegOp::Alloc {
                seg: 0,
                owner: 0,
                len: 4096,
                paged: false,
            },
            SegOp::Install { thread: 0, seg: 0 },
        ];
        plan
    }
}

impl Default for Plan {
    fn default() -> Self {
        Plan::new()
    }
}

/// One capability-checked call site a recipe implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Step index within the recipe.
    pub step: usize,
    /// Service whose xcall-cap bitmap is live when the call issues.
    pub caller: usize,
    /// Service being called (its entry is fetched from the table).
    pub callee: usize,
}

/// The call-flow abstraction of one recipe: which steps are *calls*
/// (push a linkage record, pay the capability check) versus *returns /
/// reply legs* (`xret`, no capability), plus the worst-case number of
/// simultaneously outstanding linkage records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecipeFlow {
    /// Distinct call edges `(caller, callee)`, in first-seen order.
    pub call_edges: Vec<(usize, usize)>,
    /// Capability-checked call sites, one per calling step.
    pub call_sites: Vec<CallSite>,
    /// Worst-case outstanding linkage records while the recipe runs.
    pub max_depth: u64,
}

/// Abstractly interpret `recipe` against the migrating-thread call
/// model: the request enters at service 0 (the client) and each
/// forward hop pushes a linkage record that the matching return pops.
///
/// Classification, mirroring how the engine executes the same sequence:
///
/// * `Oneway { from, to }` where `to` is the caller on top of the link
///   stack and `from` is the current frame — a **return** (`xret`),
///   pops;
/// * `Oneway`/`Batch` whose `to` *is* the current frame — a **reply
///   payload** riding back to the frame that is already executing (the
///   file body a cache server sends its caller): no new record;
/// * any other `Oneway` — a **call** (`xcall`): pushes a record, moves
///   the current frame to `to`;
/// * `Roundtrip`/`Batch` to another service — a call that returns
///   before the next step: one record outstanding *during* the step;
/// * `Compute`/`DataPass` — local work, no call structure;
/// * `Fused` — an opaque program id the flow abstraction cannot
///   resolve (the program body lives in a `MultiWorld` registry);
///   fused programs are verified separately by
///   [`crate::verify_program`] against their own derived plan.
pub fn flow(recipe: &[Step]) -> RecipeFlow {
    let mut stack: Vec<usize> = Vec::new();
    let mut current = 0usize;
    let mut out = RecipeFlow::default();
    let note_edge = |out: &mut RecipeFlow, step: usize, caller: usize, callee: usize| {
        if !out.call_edges.contains(&(caller, callee)) {
            out.call_edges.push((caller, callee));
        }
        out.call_sites.push(CallSite {
            step,
            caller,
            callee,
        });
    };
    for (i, step) in recipe.iter().enumerate() {
        match *step {
            Step::Oneway { from, to, .. } => {
                if stack.last() == Some(&to) && from == current {
                    stack.pop();
                    current = to;
                } else if to == current {
                    // Reply payload into the already-live frame.
                } else {
                    note_edge(&mut out, i, from, to);
                    stack.push(current);
                    current = to;
                    out.max_depth = out.max_depth.max(stack.len() as u64);
                }
            }
            Step::Roundtrip { from, to, .. } | Step::Batch { from, to, .. } => {
                if to != current {
                    note_edge(&mut out, i, from, to);
                    out.max_depth = out.max_depth.max(stack.len() as u64 + 1);
                }
            }
            Step::Compute { .. } | Step::DataPass { .. } | Step::Fused(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oneway(from: usize, to: usize) -> Step {
        Step::Oneway { from, to, bytes: 8 }
    }

    #[test]
    fn chain_flow_classifies_calls_and_returns() {
        // client → http → (cache roundtrip, reply payload) → client:
        // the shape of services::http::chain_steps.
        let recipe = vec![
            oneway(0, 1),
            Step::Compute { at: 1, cycles: 10 },
            Step::Roundtrip {
                from: 1,
                to: 2,
                request: 8,
                response: 0,
            },
            oneway(2, 1), // reply payload into the live http frame
            oneway(1, 0), // return to the client
        ];
        let f = flow(&recipe);
        assert_eq!(f.call_edges, vec![(0, 1), (1, 2)]);
        assert_eq!(f.max_depth, 2, "http frame + transient cache roundtrip");
        assert_eq!(f.call_sites.len(), 2);
    }

    #[test]
    fn batch_reply_to_the_live_frame_is_not_a_call() {
        let recipe = vec![
            Step::Batch {
                from: 0,
                to: 1,
                calls: 8,
                bytes_each: 64,
            },
            Step::Batch {
                from: 1,
                to: 0,
                calls: 8,
                bytes_each: 64,
            },
        ];
        let f = flow(&recipe);
        assert_eq!(f.call_edges, vec![(0, 1)]);
        assert_eq!(f.max_depth, 1);
    }

    #[test]
    fn nested_oneways_deepen_the_stack() {
        let recipe = vec![oneway(0, 1), oneway(1, 2), oneway(2, 3)];
        assert_eq!(flow(&recipe).max_depth, 3);
    }

    #[test]
    fn for_recipes_grants_every_call_edge_from_the_owner() {
        let recipes = vec![vec![
            oneway(0, 1),
            Step::Roundtrip {
                from: 1,
                to: 2,
                request: 4,
                response: 4,
            },
            oneway(1, 0),
        ]];
        let plan = Plan::for_recipes(3, &recipes);
        assert_eq!(plan.entries.len(), 2);
        assert!(plan.grants.contains(&Grant::Xcall {
            granter: 1,
            grantee: 0,
            entry: 1
        }));
        assert!(plan.grants.contains(&Grant::Xcall {
            granter: 2,
            grantee: 1,
            entry: 2
        }));
        assert_eq!(plan.calls, vec![(0, 1), (1, 2)]);
    }
}
