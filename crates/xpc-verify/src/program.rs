//! Check (e): fused call programs obey the same protocol the engine
//! enforces hop by hop at run time.
//!
//! A [`CallProgram`] executes server-side without returning to the
//! client between hops, so its protocol obligations differ from a step
//! recipe's in two ways the other passes cannot see:
//!
//! * the **whole chain** is outstanding at reply time — every hop
//!   pushed a linkage record and none popped, so the exact depth bound
//!   is the program's hop count, not a flow abstraction's worst case;
//! * the relay segment travels along **handover edges** — each
//!   handover must be issued by the segment's current owner, and
//!   ownership moves to the callee (the engine's `Revoked` transition),
//!   so a later hop of the *same* program can violate single-owner
//!   semantics that no per-plan seg-op sequence expresses.
//!
//! Per-hop capability checks reuse [`caps::check_call`] — the identical
//! bounds → cap bit → entry validity order `XpcEngine::exec_xcall`
//! replays — over the consecutive edges client → hop 0 → hop 1 → ….

use crate::caps;
use crate::finding::Finding;
use crate::plan::Plan;
use rv64::trap::Cause;
use simos::CallProgram;

/// Run the four program-specific checks: per-hop grant caps, bounded
/// hop count, tenant-pure linkage, single-owner handover. Empty means
/// *proved clean*.
///
/// # Panics
///
/// If the program's hop count does not fit `u64` — impossible for any
/// builder-admitted program ([`simos::MAX_PROGRAM_HOPS`] is tiny).
pub fn check_program(plan: &Plan, name: &str, program: &CallProgram) -> Vec<Finding> {
    let mut findings = Vec::new();

    // (1) Per-hop capability: every consecutive edge is an xcall whose
    // caller's bitmap must hold the callee's entry bit.
    let st = caps::propagate(plan);
    let mut caller = program.client();
    for (i, hop) in program.hops().iter().enumerate() {
        let site = format!("program {name}: hop {i} call {caller}→{}", hop.service);
        if let Some(f) = caps::check_call(plan, &st, site, caller, hop.service) {
            findings.push(f);
        }
        caller = hop.service;
    }

    // (2) Bounded hop count: fused hops never return until the reply,
    // so the chain holds exactly `depth` linkage records at its peak.
    let depth = u64::try_from(program.depth()).expect("program depth fits u64");
    if depth > plan.link_capacity_records {
        findings.push(Finding::trap(
            Cause::InvalidLinkage,
            format!("program {name}"),
            format!(
                "fused chain holds {depth} outstanding linkage records; the link stack holds {}",
                plan.link_capacity_records
            ),
        ));
    }

    // (3) Tenant flow: a fused chain never returns between hops, so the
    // reply pops the *entire* chain's linkage records at once. Every
    // record therefore belongs to whichever tenant's frame pushed it —
    // a hop that crosses tenants plants a record the eventual reply
    // (issued from the far side of the boundary) has no right to pop.
    let mut prev = program.client();
    for (i, hop) in program.hops().iter().enumerate() {
        let (from_tenant, to_tenant) = (plan.tenant(prev), plan.tenant(hop.service));
        if from_tenant != to_tenant {
            findings.push(Finding::trap(
                Cause::InvalidLinkage,
                format!("program {name}: hop {i} call {prev}→{}", hop.service),
                format!(
                    "hop crosses tenants {from_tenant}→{to_tenant}: the fused reply \
                     would pop tenant {from_tenant}'s linkage record from tenant \
                     {to_tenant}'s frame"
                ),
            ));
        }
        prev = hop.service;
    }

    // (4) Single-owner handover: the relay segment starts at the
    // client and moves only along handover edges; a handover issued by
    // a service that no longer (or never) owned the segment is exactly
    // the use-after-revoke `swapseg`/handover trap.
    let mut owner = program.client();
    let mut caller = program.client();
    for (i, hop) in program.hops().iter().enumerate() {
        if hop.handover {
            if caller == owner {
                owner = hop.service;
            } else {
                findings.push(Finding::trap(
                    Cause::SwapsegError,
                    format!("program {name}: hop {i} handover {caller}→{}", hop.service),
                    format!(
                        "service {caller} hands the relay segment over, but service {owner} owns it (handed over earlier in the chain)"
                    ),
                ));
            }
        }
        caller = hop.service;
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::Recipe;

    fn chain(depth: usize, handover: bool) -> CallProgram {
        let mut r = Recipe::new(0);
        for svc in 1..=depth {
            r = if handover {
                r.handover(svc, 256)
            } else {
                r.hop(svc, 256)
            };
        }
        r.reply(64).build().unwrap()
    }

    #[test]
    fn a_fully_granted_handover_chain_is_clean() {
        let p = chain(4, true);
        let plan = Plan::for_program(5, &p);
        assert!(check_program(&plan, "chain", &p).is_empty());
    }

    #[test]
    fn an_ungranted_hop_is_invalid_xcall_cap_at_that_hop() {
        let p = chain(3, false);
        let mut plan = Plan::for_program(4, &p);
        // Drop the grant for the 2→3 edge only.
        plan.grants
            .retain(|g| !matches!(g, crate::Grant::Xcall { entry: 3, .. }));
        let f = check_program(&plan, "chain", &p);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(rv64::trap::Cause::InvalidXcallCap));
        assert!(f[0].site.contains("hop 2"), "{}", f[0].site);
    }

    #[test]
    fn handover_after_a_skipped_edge_is_swapseg_error() {
        // client ──handover──▶ 1 ──plain──▶ 2 ──handover──▶ 3:
        // service 2 never received the segment (service 1 owns it), so
        // its handover is a use-after-revoke.
        let p = Recipe::new(0)
            .handover(1, 256)
            .hop(2, 256)
            .handover(3, 256)
            .reply(0)
            .build()
            .unwrap();
        let plan = Plan::for_program(4, &p);
        let f = check_program(&plan, "theft", &p);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cause(), Some(rv64::trap::Cause::SwapsegError));
        assert!(f[0].detail.contains("service 1 owns it"), "{}", f[0].detail);
    }

    #[test]
    fn cross_tenant_hop_is_invalid_linkage() {
        let p = chain(2, true);
        let mut plan = Plan::for_program(3, &p);
        // Client and hop 0 share tenant 0; hop 1 belongs to tenant 1.
        plan.tenants = vec![0, 0, 1];
        let f = check_program(&plan, "xtenant", &p);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].cause(), Some(rv64::trap::Cause::InvalidLinkage));
        assert!(f[0].site.contains("hop 1"), "{}", f[0].site);
        assert!(f[0].detail.contains("crosses tenants"), "{}", f[0].detail);
    }

    #[test]
    fn tenant_uniform_chain_stays_clean() {
        let p = chain(3, true);
        let mut plan = Plan::for_program(4, &p);
        plan.tenants = vec![2, 2, 2, 2];
        assert!(check_program(&plan, "uniform", &p).is_empty());
    }

    #[test]
    fn depth_past_the_link_stack_is_invalid_linkage() {
        let cap = usize::try_from(Plan::new().link_capacity_records).unwrap();
        let mut r = Recipe::new(0);
        for _ in 0..=cap {
            r = r.hop(1, 8);
        }
        let p = r.reply(0).build().unwrap();
        let plan = Plan::for_program(2, &p);
        let f = check_program(&plan, "deep", &p);
        assert!(f
            .iter()
            .any(|f| f.cause() == Some(rv64::trap::Cause::InvalidLinkage)));
    }
}
