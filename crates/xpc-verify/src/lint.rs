//! Check (d): the **ledger lint** — every [`Invocation`] a system
//! produces must decompose exactly into its phase ledger, with no
//! unattributed cycles.
//!
//! This is the cost-model counterpart of the hardware checks: the
//! figures are ledger diffs and ledger totals, so an invocation whose
//! `total` drifts from `ledger.total()` silently corrupts every chart
//! built on it. The lint drives each system through the same invocation
//! shapes the experiments use (one-way call and reply legs across the
//! message-size sweep, round trips, batched submissions) and verifies
//! the invariant on every result.

use crate::finding::{Finding, Verdict};
use simos::ipc::IpcSystem;
use simos::ledger::{Invocation, InvokeOpts};

/// Message sizes the lint sweeps — the experiments' sweep points plus
/// byte-odd sizes that would expose rounding drift.
const SWEEP: [usize; 6] = [0, 1, 64, 1024, 4096, 65536];

/// Batch sizes exercised against `invoke_batch`.
const BATCHES: [u64; 3] = [1, 8, 64];

/// Lint one invocation: `total` must equal the ledger sum.
pub fn lint_invocation(system: &str, what: &str, inv: &Invocation) -> Option<Finding> {
    let attributed = inv.ledger.total();
    if inv.total == attributed {
        return None;
    }
    Some(Finding {
        verdict: Verdict::LedgerDrift,
        site: format!("{system}: {what}"),
        detail: format!(
            "total {} cycles but phases sum to {attributed} ({} unattributed)",
            inv.total,
            inv.total.abs_diff(attributed)
        ),
    })
}

/// Drive `sys` through the experiments' invocation shapes and lint
/// every resulting ledger.
pub fn lint_system(sys: &mut dyn IpcSystem) -> Vec<Finding> {
    let name = sys.name();
    let mut findings = Vec::new();
    let mut note = |f: Option<Finding>| findings.extend(f);
    for &len in &SWEEP {
        note(lint_invocation(
            &name,
            &format!("oneway({len})"),
            &sys.oneway(len, &InvokeOpts::call()),
        ));
        note(lint_invocation(
            &name,
            &format!("reply({len})"),
            &sys.oneway(len, &InvokeOpts::reply_leg()),
        ));
        note(lint_invocation(
            &name,
            &format!("roundtrip({len})"),
            &sys.roundtrip(len, len),
        ));
        for &calls in &BATCHES {
            note(lint_invocation(
                &name,
                &format!("batch({calls}x{len})"),
                &sys.invoke_batch(calls, len, &InvokeOpts::call()),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::ledger::{CycleLedger, Phase};

    #[test]
    fn consistent_invocation_passes() {
        let inv = Invocation::from_ledger(CycleLedger::new().with(Phase::Trap, 120), 0);
        assert!(lint_invocation("sys", "oneway(0)", &inv).is_none());
    }

    #[test]
    fn drifted_total_is_flagged_with_the_gap() {
        let mut inv = Invocation::from_ledger(CycleLedger::new().with(Phase::Trap, 120), 0);
        inv.total += 33;
        let f = lint_invocation("sys", "oneway(0)", &inv).expect("drift must be flagged");
        assert_eq!(f.verdict, Verdict::LedgerDrift);
        assert!(f.detail.contains("33 unattributed"));
        assert_eq!(f.cause(), None, "drift predicts no hardware trap");
    }

    struct Drifting;
    impl IpcSystem for Drifting {
        fn name(&self) -> String {
            "drifting".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            let mut inv =
                Invocation::from_ledger(CycleLedger::new().with(Phase::Trap, 100), msg_len as u64);
            inv.total += 1; // one unattributed cycle per hop
            inv
        }
    }

    #[test]
    fn lint_system_catches_a_drifting_model() {
        let findings = lint_system(&mut Drifting);
        assert!(!findings.is_empty());
        assert!(findings.iter().all(|f| f.verdict == Verdict::LedgerDrift));
    }

    #[test]
    fn full_roster_is_drift_free() {
        for factory in kernels::full_roster_factories() {
            let mut sys = factory();
            let findings = lint_system(sys.as_mut());
            assert!(
                findings.is_empty(),
                "{}: {:?}",
                sys.name(),
                findings.first()
            );
        }
    }
}
