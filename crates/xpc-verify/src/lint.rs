//! Check (d): the **ledger lint** — every [`Invocation`] a system
//! produces must decompose exactly into its phase ledger, with no
//! unattributed cycles.
//!
//! This is the cost-model counterpart of the hardware checks: the
//! figures are ledger diffs and ledger totals, so an invocation whose
//! `total` drifts from `ledger.total()` silently corrupts every chart
//! built on it. The lint drives each system through the same invocation
//! shapes the experiments use (one-way call and reply legs across the
//! message-size sweep, round trips, batched submissions) and verifies
//! the invariant on every result.
//!
//! Since the arena refactor the hot path prices through the *sink*
//! methods (`oneway_into` / `invoke_batch_into`) while tables and ad-hoc
//! callers still use the allocating ones, so the lint also runs both
//! sides of each pair and flags any divergence — same spans in the same
//! order, same copied bytes — as ledger drift.

use crate::finding::{Finding, Verdict};
use simos::ipc::IpcSystem;
use simos::ledger::{CycleLedger, Invocation, InvokeOpts};

/// Message sizes the lint sweeps — the experiments' sweep points plus
/// byte-odd sizes that would expose rounding drift.
const SWEEP: [usize; 6] = [0, 1, 64, 1024, 4096, 65536];

/// Batch sizes exercised against `invoke_batch`.
const BATCHES: [u64; 3] = [1, 8, 64];

/// Lint one invocation: `total` must equal the ledger sum.
pub fn lint_invocation(system: &str, what: &str, inv: &Invocation) -> Option<Finding> {
    let attributed = inv.ledger.total();
    if inv.total == attributed {
        return None;
    }
    Some(Finding {
        verdict: Verdict::LedgerDrift,
        site: format!("{system}: {what}"),
        detail: format!(
            "total {} cycles but phases sum to {attributed} ({} unattributed)",
            inv.total,
            inv.total.abs_diff(attributed)
        ),
        op_index: None,
    })
}

/// Lint one alloc-vs-sink pair: the sink path must reproduce the
/// allocating path span for span (order included) and byte for byte.
pub fn lint_sink_pair(
    system: &str,
    what: &str,
    alloc: &Invocation,
    sink: &CycleLedger,
    sink_copied: u64,
) -> Option<Finding> {
    if alloc.ledger == *sink && alloc.copied_bytes == sink_copied {
        return None;
    }
    Some(Finding {
        verdict: Verdict::LedgerDrift,
        site: format!("{system}: {what}"),
        detail: format!(
            "sink path diverges from allocating path: \
             spans {:?} vs {:?}, copied {} vs {}",
            sink.spans(),
            alloc.ledger.spans(),
            sink_copied,
            alloc.copied_bytes
        ),
        op_index: None,
    })
}

/// Drive `sys` through the experiments' invocation shapes and lint
/// every resulting ledger, including the sink-vs-alloc differentials.
pub fn lint_system(sys: &mut dyn IpcSystem) -> Vec<Finding> {
    let name = sys.name();
    let mut findings = Vec::new();
    let mut note = |f: Option<Finding>| findings.extend(f);
    let mut sink = CycleLedger::new();
    for &len in &SWEEP {
        for opts in [InvokeOpts::call(), InvokeOpts::reply_leg()] {
            let leg = if opts.reply { "reply" } else { "oneway" };
            let inv = sys.oneway(len, &opts);
            note(lint_invocation(&name, &format!("{leg}({len})"), &inv));
            sink.clear();
            let copied = sys.oneway_into(len, &opts, &mut sink);
            note(lint_sink_pair(
                &name,
                &format!("{leg}_into({len})"),
                &inv,
                &sink,
                copied,
            ));
        }
        note(lint_invocation(
            &name,
            &format!("roundtrip({len})"),
            &sys.roundtrip(len, len),
        ));
        for &calls in &BATCHES {
            let inv = sys.invoke_batch(calls, len, &InvokeOpts::call());
            note(lint_invocation(
                &name,
                &format!("batch({calls}x{len})"),
                &inv,
            ));
            sink.clear();
            let copied = sys.invoke_batch_into(calls, len, &InvokeOpts::call(), &mut sink);
            note(lint_sink_pair(
                &name,
                &format!("batch_into({calls}x{len})"),
                &inv,
                &sink,
                copied,
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::ledger::{CycleLedger, Phase};

    #[test]
    fn consistent_invocation_passes() {
        let inv = Invocation::from_ledger(CycleLedger::new().with(Phase::Trap, 120), 0);
        assert!(lint_invocation("sys", "oneway(0)", &inv).is_none());
    }

    #[test]
    fn drifted_total_is_flagged_with_the_gap() {
        let mut inv = Invocation::from_ledger(CycleLedger::new().with(Phase::Trap, 120), 0);
        inv.total += 33;
        let f = lint_invocation("sys", "oneway(0)", &inv).expect("drift must be flagged");
        assert_eq!(f.verdict, Verdict::LedgerDrift);
        assert!(f.detail.contains("33 unattributed"));
        assert_eq!(f.cause(), None, "drift predicts no hardware trap");
    }

    struct Drifting;
    impl IpcSystem for Drifting {
        fn name(&self) -> String {
            "drifting".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            let mut inv =
                Invocation::from_ledger(CycleLedger::new().with(Phase::Trap, 100), msg_len as u64);
            inv.total += 1; // one unattributed cycle per hop
            inv
        }
    }

    #[test]
    fn lint_system_catches_a_drifting_model() {
        let findings = lint_system(&mut Drifting);
        assert!(!findings.is_empty());
        assert!(findings.iter().all(|f| f.verdict == Verdict::LedgerDrift));
        // The default `oneway_into` delegates to `oneway`, so a model
        // that only drifts its total never trips the sink differential.
        assert!(
            findings.iter().all(|f| !f.detail.contains("sink path")),
            "{:?}",
            findings.first()
        );
    }

    /// A model whose native sink path disagrees with its allocating path
    /// — the regression the differential lint exists to catch.
    struct SinkDiverging;
    impl IpcSystem for SinkDiverging {
        fn name(&self) -> String {
            "sink-diverging".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::from_ledger(CycleLedger::new().with(Phase::Trap, 100), msg_len as u64)
        }
        fn oneway_into(
            &mut self,
            msg_len: usize,
            _opts: &InvokeOpts,
            out: &mut CycleLedger,
        ) -> u64 {
            out.charge(Phase::Trap, 90); // ten cycles short
            msg_len as u64
        }
    }

    #[test]
    fn lint_system_catches_a_diverging_sink_path() {
        let findings = lint_system(&mut SinkDiverging);
        assert!(!findings.is_empty());
        assert!(findings.iter().any(|f| f.site.contains("oneway_into")));
        // The amortized batch default prices through the broken sink, so
        // the batch differential pair stays consistent with itself — the
        // oneway pair is what exposes the bug.
        assert!(findings.iter().all(|f| f.verdict == Verdict::LedgerDrift));
    }

    #[test]
    fn full_roster_is_drift_free() {
        for factory in kernels::full_roster_factories() {
            let mut sys = factory();
            let findings = lint_system(sys.as_mut());
            assert!(
                findings.is_empty(),
                "{}: {:?}",
                sys.name(),
                findings.first()
            );
        }
    }
}
