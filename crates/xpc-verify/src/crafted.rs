//! Crafted plans, one per exception class, plus a clean control.
//!
//! Each crafted plan is the *minimal* misconfiguration that provokes
//! one of the five XPC exceptions, paired with the `Cause` the verifier
//! must predict. The differential tests replay the same
//! misconfiguration on a real [`xpc::XpcKernel`] and assert the engine
//! traps with the identical cause; the bench `verify` experiment prints
//! the predicted-vs-expected table.

use crate::plan::{EntryDecl, Grant, Plan, SegOp, ServiceBinding};
use rv64::trap::Cause;
use simos::{CallProgram, Recipe, Step};

/// One crafted scenario: a plan, its recipes, and the verdict the
/// verifier must reach.
pub struct Crafted {
    /// Stable scenario name (kebab-case, used in tables and JSON).
    pub label: &'static str,
    /// The exact cause every finding must predict; `None` for the clean
    /// control (zero findings expected).
    pub expected: Option<Cause>,
    /// The setup plan.
    pub plan: Plan,
    /// Named workload recipes run against the plan.
    pub recipes: Vec<(String, Vec<Step>)>,
}

fn call_and_return() -> Vec<(String, Vec<Step>)> {
    vec![(
        "call".to_string(),
        vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 8,
            },
            Step::Oneway {
                from: 1,
                to: 0,
                bytes: 8,
            },
        ],
    )]
}

fn client_and_service() -> Plan {
    let mut plan = Plan::new();
    plan.threads = vec![0, 1];
    plan.services = vec![
        ServiceBinding {
            thread: 0,
            entry: None,
        },
        ServiceBinding {
            thread: 1,
            entry: Some(1),
        },
    ];
    plan.entries = vec![EntryDecl {
        id: 1,
        owner: 1,
        valid: true,
    }];
    plan
}

/// The service binds an entry id past the end of the x-entry table, so
/// the very first bounds check refuses the call.
pub fn invalid_x_entry() -> Crafted {
    let mut plan = client_and_service();
    plan.entries.clear();
    plan.services[1].entry = Some(plan.table_entries + 976);
    Crafted {
        label: "out-of-bounds-entry",
        expected: Some(Cause::InvalidXEntry),
        plan,
        recipes: call_and_return(),
    }
}

/// The entry exists and is valid, but nobody ever granted the client
/// the xcall-cap bit — the bitmap check refuses the call.
pub fn invalid_xcall_cap() -> Crafted {
    let plan = client_and_service();
    Crafted {
        label: "ungranted-xcall",
        expected: Some(Cause::InvalidXcallCap),
        plan,
        recipes: call_and_return(),
    }
}

/// The service's call graph declares it re-enters itself while serving
/// a request; every hop pushes a linkage record, so depth is unbounded
/// and the link stack overflows.
pub fn invalid_linkage() -> Crafted {
    let mut plan = client_and_service();
    plan.grants = vec![
        Grant::Xcall {
            granter: 1,
            grantee: 0,
            entry: 1,
        },
        Grant::Xcall {
            granter: 1,
            grantee: 1,
            entry: 1,
        },
    ];
    plan.calls = vec![(0, 1), (1, 1)];
    Crafted {
        label: "self-recursive-service",
        expected: Some(Cause::InvalidLinkage),
        plan,
        recipes: call_and_return(),
    }
}

/// The seg plan swaps against a seg-list slot nothing was ever stashed
/// into — the slot is invalid and `swapseg` refuses.
pub fn swapseg_error() -> Crafted {
    let mut plan = Plan::new();
    plan.threads = vec![0];
    plan.services = vec![ServiceBinding {
        thread: 0,
        entry: None,
    }];
    plan.seg_ops = vec![
        SegOp::Alloc {
            seg: 0,
            owner: 0,
            len: 4096,
            paged: false,
        },
        SegOp::Install { thread: 0, seg: 0 },
        SegOp::Swap { thread: 0, slot: 5 },
    ];
    Crafted {
        label: "empty-slot-swapseg",
        expected: Some(Cause::SwapsegError),
        plan,
        recipes: Vec::new(),
    }
}

/// The mask plan widens the seg window past the installed segment —
/// windows only shrink, so the mask write traps.
pub fn invalid_seg_mask() -> Crafted {
    let mut plan = Plan::new();
    plan.threads = vec![0];
    plan.services = vec![ServiceBinding {
        thread: 0,
        entry: None,
    }];
    plan.seg_ops = vec![
        SegOp::Alloc {
            seg: 0,
            owner: 0,
            len: 4096,
            paged: false,
        },
        SegOp::Install { thread: 0, seg: 0 },
        SegOp::Mask {
            thread: 0,
            offset: 0,
            len: 8192,
        },
    ];
    Crafted {
        label: "widening-seg-mask",
        expected: Some(Cause::InvalidSegMask),
        plan,
        recipes: Vec::new(),
    }
}

/// The client held the xcall-cap once, but the owner revoked the entry
/// after granting — the cap is from a dead revocation epoch, and the
/// bitmap bit `revoke_entry` cleared is gone when the call issues.
pub fn revoked_xcall() -> Crafted {
    let mut plan = client_and_service();
    plan.grants = vec![
        Grant::Xcall {
            granter: 1,
            grantee: 0,
            entry: 1,
        },
        Grant::Revoke {
            granter: 1,
            entry: 1,
        },
    ];
    Crafted {
        label: "revoked-xcall",
        expected: Some(Cause::InvalidXcallCap),
        plan,
        recipes: call_and_return(),
    }
}

/// The caller shrinks the relay window and hands the segment over; the
/// receiver then tries to widen the window back out. §4.4: the mask
/// travels with the handover and only ever shrinks, so the widening CSR
/// write traps.
pub fn widen_after_handover() -> Crafted {
    let mut plan = Plan::new();
    plan.threads = vec![0, 1];
    plan.services = vec![
        ServiceBinding {
            thread: 0,
            entry: None,
        },
        ServiceBinding {
            thread: 1,
            entry: None,
        },
    ];
    plan.seg_ops = vec![
        SegOp::Alloc {
            seg: 0,
            owner: 0,
            len: 4096,
            paged: false,
        },
        SegOp::Install { thread: 0, seg: 0 },
        SegOp::Mask {
            thread: 0,
            offset: 0,
            len: 256,
        },
        SegOp::HandoverCall { thread: 0, to: 1 },
        SegOp::Mask {
            thread: 1,
            offset: 0,
            len: 4096,
        },
    ];
    Crafted {
        label: "widen-after-handover",
        expected: Some(Cause::InvalidSegMask),
        plan,
        recipes: Vec::new(),
    }
}

/// Two tenants share a middle service; the recipe returns straight from
/// the tail service to the client, popping through the other tenant's
/// linkage record. Every capability is granted — only the tenant-flow
/// rule refutes the interleaving.
pub fn cross_tenant_return() -> Crafted {
    let mut plan = Plan::new();
    plan.threads = vec![0, 1, 2];
    plan.services = vec![
        ServiceBinding {
            thread: 0,
            entry: Some(3),
        },
        ServiceBinding {
            thread: 1,
            entry: Some(1),
        },
        ServiceBinding {
            thread: 2,
            entry: Some(2),
        },
    ];
    plan.entries = vec![
        EntryDecl {
            id: 1,
            owner: 1,
            valid: true,
        },
        EntryDecl {
            id: 2,
            owner: 2,
            valid: true,
        },
        EntryDecl {
            id: 3,
            owner: 0,
            valid: true,
        },
    ];
    plan.grants = vec![
        Grant::Xcall {
            granter: 1,
            grantee: 0,
            entry: 1,
        },
        Grant::Xcall {
            granter: 2,
            grantee: 1,
            entry: 2,
        },
        Grant::Xcall {
            granter: 0,
            grantee: 2,
            entry: 3,
        },
    ];
    plan.tenants = vec![0, 1, 0];
    Crafted {
        label: "cross-tenant-return",
        expected: Some(Cause::InvalidLinkage),
        plan,
        recipes: vec![(
            "skip".to_string(),
            vec![
                Step::Oneway {
                    from: 0,
                    to: 1,
                    bytes: 8,
                },
                Step::Oneway {
                    from: 1,
                    to: 2,
                    bytes: 8,
                },
                Step::Oneway {
                    from: 2,
                    to: 0,
                    bytes: 8,
                },
            ],
        )],
    }
}

/// Fully wired two-service plan: entry granted, acyclic graph, clean
/// segment lifecycle. Zero findings, and the kernel runs it fault-free.
pub fn clean() -> Crafted {
    let mut plan = client_and_service();
    plan.grants = vec![Grant::Xcall {
        granter: 1,
        grantee: 0,
        entry: 1,
    }];
    plan.calls = vec![(0, 1)];
    plan.seg_ops = vec![
        SegOp::Alloc {
            seg: 0,
            owner: 0,
            len: 4096,
            paged: false,
        },
        SegOp::Install { thread: 0, seg: 0 },
        SegOp::Mask {
            thread: 0,
            offset: 0,
            len: 256,
        },
        SegOp::HandoverCall { thread: 0, to: 1 },
    ];
    Crafted {
        label: "clean-control",
        expected: None,
        plan,
        recipes: call_and_return(),
    }
}

/// One crafted fused-program scenario: a plan, the program run against
/// it, and the verdict [`crate::verify_program`] must reach. Kept
/// separate from [`all_crafted`] — the recipe-plan scenarios feed the
/// bench `verify` table, the program scenarios feed the program
/// differential tests.
pub struct CraftedProgram {
    /// Stable scenario name (kebab-case).
    pub label: &'static str,
    /// The exact cause every finding must predict.
    pub expected: Cause,
    /// The setup plan.
    pub plan: Plan,
    /// The fused program verified against the plan.
    pub program: CallProgram,
}

/// A fused chain one hop deeper than the link stack holds. The builder
/// admits it — [`simos::MAX_PROGRAM_HOPS`] caps structure, not
/// deployment — so the *verifier* must refuse it, with the same
/// `InvalidLinkage` the engine raises when the 103rd record pushes.
///
/// # Panics
///
/// Never: the chain sits one past the link-stack capacity, far below
/// [`simos::MAX_PROGRAM_HOPS`], so the builder always admits it.
pub fn over_deep_program() -> CraftedProgram {
    let plan_caps = Plan::new();
    let cap = usize::try_from(plan_caps.link_capacity_records).expect("capacity fits usize");
    let mut r = Recipe::new(0);
    for _ in 0..=cap {
        r = r.hop(1, 8);
    }
    let program = r.reply(0).build().expect("within MAX_PROGRAM_HOPS");
    let plan = Plan::for_program(2, &program);
    CraftedProgram {
        label: "over-deep-program",
        expected: Cause::InvalidLinkage,
        plan,
        program,
    }
}

/// A two-hop program whose middle service never received the xcall-cap
/// for the final hop: the first edge is granted, the second is not, so
/// the chained call must refuse with `InvalidXcallCap` exactly where
/// the runtime handler's own `xcall` would.
///
/// # Panics
///
/// Never: two hops always build.
pub fn cap_violating_program() -> CraftedProgram {
    let program = Recipe::new(0)
        .hop(1, 8)
        .hop(2, 8)
        .reply(0)
        .build()
        .expect("two hops");
    let mut plan = Plan::for_program(3, &program);
    // Revoke the 1→2 grant the canonical plan would wire.
    plan.grants
        .retain(|g| !matches!(g, Grant::Xcall { entry: 2, .. }));
    CraftedProgram {
        label: "ungranted-chained-hop",
        expected: Cause::InvalidXcallCap,
        plan,
        program,
    }
}

/// A two-hop fused chain whose tail hop crosses into another tenant:
/// the fused reply would pop tenant 0's linkage record from tenant 1's
/// frame, so the verifier refuses the program outright.
///
/// # Panics
///
/// Never: two hops always build.
pub fn cross_tenant_program() -> CraftedProgram {
    let program = Recipe::new(0)
        .hop(1, 8)
        .hop(2, 8)
        .reply(0)
        .build()
        .expect("two hops");
    let mut plan = Plan::for_program(3, &program);
    plan.tenants = vec![0, 0, 1];
    CraftedProgram {
        label: "cross-tenant-chain",
        expected: Cause::InvalidLinkage,
        plan,
        program,
    }
}

/// Every crafted scenario: the five spatial exception classes, then the
/// three temporal-lifecycle classes (revocation epoch, post-handover
/// widening, cross-tenant linkage), the clean control last.
pub fn all_crafted() -> Vec<Crafted> {
    vec![
        invalid_x_entry(),
        invalid_xcall_cap(),
        invalid_linkage(),
        swapseg_error(),
        invalid_seg_mask(),
        revoked_xcall(),
        widen_after_handover(),
        cross_tenant_return(),
        clean(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn each_crafted_plan_yields_exactly_its_expected_cause() {
        for c in all_crafted() {
            let findings = verify(&c.plan, &c.recipes);
            match c.expected {
                None => assert!(findings.is_empty(), "{}: {:?}", c.label, findings),
                Some(cause) => {
                    assert!(!findings.is_empty(), "{}: no findings", c.label);
                    for f in &findings {
                        assert_eq!(f.cause(), Some(cause), "{}: {f}", c.label);
                    }
                }
            }
        }
    }

    #[test]
    fn each_crafted_program_yields_exactly_its_expected_cause() {
        for c in [
            over_deep_program(),
            cap_violating_program(),
            cross_tenant_program(),
        ] {
            let findings = crate::verify_program(&c.plan, c.label, &c.program);
            assert!(!findings.is_empty(), "{}: no findings", c.label);
            for f in &findings {
                assert_eq!(f.cause(), Some(c.expected), "{}: {f}", c.label);
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = all_crafted().iter().map(|c| c.label).collect();
        labels.sort_unstable();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
