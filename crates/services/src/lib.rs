//! User-level OS services of the XPC evaluation (§5.3, §5.4).
//!
//! The paper's microkernel workloads split every OS function into
//! separate servers communicating by IPC:
//!
//! * [`blockdev::BlockDev`] — the ramdisk block server;
//! * [`fs::Xv6Fs`] — the xv6fs-style journaling file system server
//!   (ported from FSCQ in the paper), talking to the block server one
//!   block per IPC;
//! * [`net`] — the lwIP-style TCP stack server with a loopback device
//!   server and client-side buffering;
//! * [`aes::Aes128`] — a real AES-128 implementation backing the
//!   encryption server of the §5.4 web stack;
//! * [`filecache::FileCache`] — the in-memory file cache server;
//! * [`http`] — the HTTP server chaining cache → (AES) → client, the
//!   handover showcase of Figure 8(c).
//!
//! All servers do *real* data work on real bytes; the cycle cost of every
//! IPC hop comes from the active [`simos::IpcSystem`], so the same
//! service code reproduces all five systems of Figure 7/8.

#![forbid(unsafe_code)]

pub mod aes;
pub mod blockdev;
pub mod filecache;
pub mod fs;
pub mod http;
pub mod net;

pub use blockdev::{BlockDev, BLOCK_SIZE};
pub use fs::{FsClient, Xv6Fs};
