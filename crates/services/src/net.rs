//! The network stack (lwIP stand-in, §5.3): a TCP-ish protocol server in
//! front of a loopback device server.
//!
//! The paper's Figure 7(c) measures TCP throughput against the send
//! buffer size: lwIP buffers client messages and batches them, so a
//! larger buffer means fewer client→stack IPCs per byte, which helps the
//! slow baseline far more than XPC — the speedup shrinks from ~8× to ~4×
//! as the buffer grows. This model reproduces exactly those mechanics:
//! a per-`send` IPC, segmentation into MSS-sized packets, per-packet
//! protocol work, and a device hop per packet.

use simos::World;

/// TCP maximum segment size.
pub const MSS: usize = 1460;

/// Per-packet protocol processing: checksum, header build, timers, ACK
/// bookkeeping (lwIP-grade software TCP on an in-order core).
const PACKET_COMPUTE: u64 = 2000;

/// Per-send library/socket-layer cost on the client side.
const SEND_COMPUTE: u64 = 800;

/// The loopback device server: takes a packet, hands it back.
#[derive(Debug, Clone, Default)]
pub struct Loopback {
    /// Packets forwarded.
    pub packets: u64,
}

impl Loopback {
    /// Forward one packet (one pass over the payload).
    pub fn send(&mut self, w: &mut World, bytes: usize) {
        w.data_pass(bytes as u64, 10);
        self.packets += 1;
    }
}

/// One TCP connection through the stack server.
#[derive(Debug)]
pub struct TcpStack {
    dev: Loopback,
    /// Bytes delivered end to end.
    pub delivered: u64,
    /// Receive-side reassembly buffer (loopback delivers to ourselves).
    rx: Vec<u8>,
    seq: u32,
}

impl TcpStack {
    /// A fresh connection over a loopback device.
    pub fn new() -> Self {
        TcpStack {
            dev: Loopback::default(),
            delivered: 0,
            rx: Vec::new(),
            seq: 0,
        }
    }

    /// Client `send(buf)`: one client→stack IPC carrying the buffer, then
    /// segmentation; each segment pays protocol work and a stack→device
    /// IPC (the loopback reflects it straight into our receive path).
    pub fn send(&mut self, w: &mut World, buf: &[u8]) {
        // Client-side socket library, then client → network stack server.
        w.compute(SEND_COMPUTE);
        w.ipc_roundtrip(buf.len() as u64 + 64, 16);
        for seg in buf.chunks(MSS) {
            w.compute(PACKET_COMPUTE);
            // Stack → device server (header + payload), loopback reflects.
            w.ipc_roundtrip(seg.len() as u64 + 40, 16);
            self.dev.send(w, seg.len() + 40);
            // Receive path: demux + ack bookkeeping.
            w.compute(PACKET_COMPUTE / 2);
            self.rx.extend_from_slice(seg);
            self.seq = self.seq.wrapping_add(seg.len() as u32);
            self.delivered += seg.len() as u64;
        }
    }

    /// Drain received bytes (the echo client reading its own traffic).
    pub fn recv(&mut self, w: &mut World, len: usize) -> Vec<u8> {
        let take = len.min(self.rx.len());
        // Stack → client delivery.
        w.ipc_roundtrip(64, take as u64);
        self.rx.drain(..take).collect()
    }

    /// Packets the device forwarded.
    pub fn packets(&self) -> u64 {
        self.dev.packets
    }
}

impl Default for TcpStack {
    fn default() -> Self {
        Self::new()
    }
}

/// Run the Figure 7(c) workload: push `total` bytes through the stack in
/// `buf`-sized sends; returns throughput in MB/s under the world's IPC
/// mechanism.
pub fn tcp_throughput_mb_s(w: &mut World, buf: usize, total: u64) -> f64 {
    let mut tcp = TcpStack::new();
    let data = vec![0xabu8; buf];
    let mut sent = 0u64;
    let start = w.cycles;
    while sent < total {
        tcp.send(w, &data);
        sent += buf as u64;
    }
    let cycles = w.cycles - start;
    w.cost.throughput_mb_s(sent, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{CycleLedger, Invocation, InvokeOpts, IpcSystem, Phase};

    struct Fixed(u64);
    impl IpcSystem for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn oneway(&mut self, msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            let ledger = CycleLedger::new()
                .with(Phase::Trap, self.0)
                .with(Phase::Transfer, msg_len as u64);
            Invocation::from_ledger(ledger, msg_len as u64)
        }
    }

    #[test]
    fn data_round_trips_through_stack() {
        let mut w = simos::World::new(Box::new(Fixed(10)));
        let mut tcp = TcpStack::new();
        let msg: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        tcp.send(&mut w, &msg);
        let got = tcp.recv(&mut w, 5000);
        assert_eq!(got, msg);
        assert_eq!(tcp.packets(), 5000_u64.div_ceil(MSS as u64));
    }

    #[test]
    fn larger_buffers_help_expensive_ipc_more() {
        // The Figure 7(c) mechanic: batching reduces IPC count, which
        // matters more when IPC is expensive.
        let mut slow_small = simos::World::new(Box::new(Fixed(8000)));
        let t_slow_small = tcp_throughput_mb_s(&mut slow_small, 256, 1 << 20);
        let mut slow_big = simos::World::new(Box::new(Fixed(8000)));
        let t_slow_big = tcp_throughput_mb_s(&mut slow_big, 4096, 1 << 20);
        let mut fast_small = simos::World::new(Box::new(Fixed(100)));
        let t_fast_small = tcp_throughput_mb_s(&mut fast_small, 256, 1 << 20);
        let mut fast_big = simos::World::new(Box::new(Fixed(100)));
        let t_fast_big = tcp_throughput_mb_s(&mut fast_big, 4096, 1 << 20);
        let slow_gain = t_slow_big / t_slow_small;
        let fast_gain = t_fast_big / t_fast_small;
        assert!(
            slow_gain > fast_gain,
            "batching must help the slow mechanism more: {slow_gain:.2} vs {fast_gain:.2}"
        );
    }
}
