//! The in-memory file cache server of the §5.4 web stack ("an in-memory
//! file cache server which is used to cache the HTML files in both
//! modes").

use simos::World;
use std::collections::HashMap;

/// In-memory file cache keyed by path.
#[derive(Debug, Clone, Default)]
pub struct FileCache {
    files: HashMap<String, Vec<u8>>,
    /// Cache hits served.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl FileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Populate a file (host-side setup, uncharged).
    pub fn put(&mut self, path: &str, contents: Vec<u8>) {
        self.files.insert(path.to_string(), contents);
    }

    /// Serve a file request: one pass to move the file into the reply
    /// message (or relay segment), plus a small lookup cost.
    pub fn get(&mut self, w: &mut World, path: &str) -> Option<Vec<u8>> {
        w.compute(120); // hash lookup
        match self.files.get(path) {
            Some(data) => {
                w.data_pass(data.len() as u64, 10);
                self.hits += 1;
                Some(data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Invocation, InvokeOpts, IpcSystem};

    struct Free;
    impl IpcSystem for Free {
        fn name(&self) -> String {
            "free".into()
        }
        fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::default()
        }
    }

    #[test]
    fn hit_and_miss_paths() {
        let mut w = simos::World::new(Box::new(Free));
        let mut c = FileCache::new();
        c.put("/index.html", b"<html>hi</html>".to_vec());
        assert_eq!(
            c.get(&mut w, "/index.html").as_deref(),
            Some(b"<html>hi</html>".as_ref())
        );
        assert_eq!(c.get(&mut w, "/nope"), None);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn serving_charges_by_size() {
        let mut w = simos::World::new(Box::new(Free));
        let mut c = FileCache::new();
        c.put("/small", vec![0; 100]);
        c.put("/big", vec![0; 100_000]);
        c.get(&mut w, "/small");
        let small = w.cycles;
        c.get(&mut w, "/big");
        assert!(w.cycles - small > 10 * small);
    }
}
