//! AES-128: a real implementation backing the §5.4 web-server encryption
//! service ("an AES encryption server which encrypts the network traffic
//! with a 128-bit key").
//!
//! Block encryption per FIPS-197 plus CTR mode for arbitrary-length
//! traffic. Verified against the FIPS-197 known-answer vector.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// AES-128 with an expanded key schedule.
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand `key` into the round-key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: byte (row r, col c) at index 4c + r.
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            let t = col[0] ^ col[1] ^ col[2] ^ col[3];
            for r in 0..4 {
                state[4 * c + r] = col[r] ^ t ^ xtime(col[r] ^ col[(r + 1) % 4]);
            }
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// CTR-mode keystream XOR: encrypts and decrypts (symmetric).
    pub fn ctr_xor(&self, nonce: u64, data: &mut [u8]) {
        for (counter, chunk) in data.chunks_mut(16).enumerate() {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&nonce.to_be_bytes());
            block[8..].copy_from_slice(&(counter as u64).to_be_bytes());
            self.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }
}

/// The AES *server* of the §5.4 web stack: encrypts traffic it receives
/// over IPC, charging real compute for the rounds.
#[derive(Debug, Clone)]
pub struct AesServer {
    aes: Aes128,
    nonce: u64,
    /// Cycles per byte ×10 charged for the AES compute (software AES on
    /// an in-order core is ~2.5 cycles/byte in this model).
    pub intensity_x10: u64,
}

impl AesServer {
    /// A server with `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        AesServer {
            aes: Aes128::new(key),
            nonce: 0,
            intensity_x10: 25,
        }
    }

    /// Serve an encryption request: really encrypts `data` and charges
    /// the [`simos::World`] for the compute.
    pub fn encrypt(&mut self, w: &mut simos::World, data: &mut [u8]) {
        w.data_pass(data.len() as u64, self.intensity_x10);
        self.aes.ctr_xor(self.nonce, data);
        self.nonce += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_known_answer() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn ctr_round_trips() {
        let aes = Aes128::new(b"0123456789abcdef");
        let plain: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut data = plain.clone();
        aes.ctr_xor(42, &mut data);
        assert_ne!(data, plain, "ciphertext differs");
        aes.ctr_xor(42, &mut data);
        assert_eq!(data, plain, "CTR is an involution");
    }

    #[test]
    fn different_nonces_differ() {
        let aes = Aes128::new(b"0123456789abcdef");
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        aes.ctr_xor(1, &mut a);
        aes.ctr_xor(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn server_charges_compute() {
        use simos::{Invocation, InvokeOpts, IpcSystem};
        struct Free;
        impl IpcSystem for Free {
            fn name(&self) -> String {
                "free".into()
            }
            fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
                Invocation::default()
            }
        }
        let mut w = simos::World::new(Box::new(Free));
        let mut srv = AesServer::new(b"0123456789abcdef");
        let mut data = vec![7u8; 4096];
        srv.encrypt(&mut w, &mut data);
        assert!(w.stats.other_cycles > 4096, "AES costs > 1 cycle/byte");
    }
}
