//! The ramdisk block device server (the paper's "in-memory ram disk
//! server" behind the file system, §5.3).

use simos::World;

/// Block size in bytes (matches the FS and the paper's 4 KiB transfers).
pub const BLOCK_SIZE: usize = 4096;

/// An in-memory block store. Each request costs one pass over the block
/// (the ramdisk moving data between its store and the message), charged
/// to the [`World`]; the IPC hop itself is charged by the caller.
#[derive(Debug, Clone)]
pub struct BlockDev {
    blocks: Vec<Vec<u8>>,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
}

impl BlockDev {
    /// A ramdisk with `nblocks` zeroed blocks.
    pub fn new(nblocks: usize) -> Self {
        BlockDev {
            blocks: vec![vec![0u8; BLOCK_SIZE]; nblocks],
            reads: 0,
            writes: 0,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the device has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Serve a block read.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range block (FS bug, not user input).
    pub fn read(&mut self, w: &mut World, idx: u64) -> Vec<u8> {
        w.data_pass(BLOCK_SIZE as u64, 10);
        self.reads += 1;
        self.blocks[idx as usize].clone()
    }

    /// Serve a block write.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range block or a wrong-sized buffer.
    pub fn write(&mut self, w: &mut World, idx: u64, data: &[u8]) {
        assert_eq!(data.len(), BLOCK_SIZE, "partial block write");
        w.data_pass(BLOCK_SIZE as u64, 10);
        self.writes += 1;
        self.blocks[idx as usize].copy_from_slice(data);
    }

    /// Host-side peek without cycle charge (test inspection).
    pub fn peek(&self, idx: u64) -> &[u8] {
        &self.blocks[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Invocation, InvokeOpts, IpcSystem};

    struct Free;
    impl IpcSystem for Free {
        fn name(&self) -> String {
            "free".into()
        }
        fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::default()
        }
    }

    fn world() -> World {
        World::new(Box::new(Free))
    }

    #[test]
    fn read_write_round_trip() {
        let mut w = world();
        let mut d = BlockDev::new(8);
        let mut data = vec![0u8; BLOCK_SIZE];
        data[0] = 0xaa;
        data[BLOCK_SIZE - 1] = 0x55;
        d.write(&mut w, 3, &data);
        assert_eq!(d.read(&mut w, 3), data);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn accesses_charge_cycles() {
        let mut w = world();
        let mut d = BlockDev::new(2);
        let before = w.cycles;
        let _ = d.read(&mut w, 0);
        assert!(w.cycles > before, "ramdisk pass must cost cycles");
    }

    #[test]
    #[should_panic(expected = "partial block write")]
    fn partial_write_rejected() {
        let mut w = world();
        let mut d = BlockDev::new(2);
        d.write(&mut w, 0, &[1, 2, 3]);
    }
}
