//! An xv6fs-style journaling file system server (the paper ports xv6fs
//! from FSCQ, §5.3), running on the [`crate::blockdev`] server with one
//! IPC round trip per block.
//!
//! On-disk layout (4 KiB blocks):
//!
//! ```text
//! 0            superblock (magic, alloc cursor)
//! 1            journal header (committed count + target block numbers)
//! 2..=33       journal data area (32-block write-ahead log)
//! 34..=37      inode table (128 inodes x 128 B)
//! 38..=39      block allocation bitmap
//! 40..         data blocks
//! ```
//!
//! Every write is journaled: staged blocks go to the log area first, the
//! header write is the commit point, then blocks are installed home and
//! the header cleared — so [`Xv6Fs::mount`] can recover a crash between
//! commit and install (tested with failure injection). That write
//! amplification is exactly why Figure 7(b)'s write path gains the most
//! from XPC: "write operations … cause many IPCs and data transfers
//! between the file system server and the block device server".

use crate::blockdev::{BlockDev, BLOCK_SIZE};
use simos::World;
use std::collections::BTreeMap;

const SUPER_BLOCK: u64 = 0;
const JOURNAL_HEADER: u64 = 1;
const JOURNAL_DATA: u64 = 2;
/// Capacity of the write-ahead log in blocks.
pub const JOURNAL_CAP: usize = 32;
const INODE_START: u64 = 34;
const INODE_BLOCKS: u64 = 4;
const INODE_BYTES: usize = 128;
/// Number of inodes.
pub const NINODES: usize = (INODE_BLOCKS as usize * BLOCK_SIZE) / INODE_BYTES;
/// Block allocation bitmap (2 blocks cover 64 Ki blocks = 256 MiB).
const BITMAP_START: u64 = 38;
const BITMAP_BLOCKS: u64 = 2;
/// First data block.
pub const DATA_START: u64 = 40;
const NDIRECT: usize = 12;
const MAGIC: u64 = 0x7876_3666_735f_7870; // "xv6fs_xp"

/// Root directory inode.
pub const ROOT_INO: u64 = 0;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Inode {
    used: bool,
    size: u64,
    direct: [u64; NDIRECT],
    indirect: u64,
}

impl Inode {
    fn to_bytes(&self) -> [u8; INODE_BYTES] {
        let mut b = [0u8; INODE_BYTES];
        b[0] = self.used as u8;
        b[8..16].copy_from_slice(&self.size.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            b[16 + 8 * i..24 + 8 * i].copy_from_slice(&d.to_le_bytes());
        }
        b[16 + 8 * NDIRECT..24 + 8 * NDIRECT].copy_from_slice(&self.indirect.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8]) -> Inode {
        let mut direct = [0u64; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u64::from_le_bytes(b[16 + 8 * i..24 + 8 * i].try_into().unwrap());
        }
        Inode {
            used: b[0] != 0,
            size: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            direct,
            indirect: u64::from_le_bytes(b[16 + 8 * NDIRECT..24 + 8 * NDIRECT].try_into().unwrap()),
        }
    }
}

/// File system statistics (journal traffic feeds the write benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Journal commits performed.
    pub commits: u64,
    /// Blocks written through the journal (log + install).
    pub journaled_blocks: u64,
}

/// The file system server. See the [module docs](self).
#[derive(Debug)]
pub struct Xv6Fs {
    /// The block device server behind this FS (public for inspection).
    pub dev: BlockDev,
    inodes: Vec<Inode>,
    dir: Vec<(String, u64)>,
    /// In-memory mirror of the on-disk block bitmap (bit = block used).
    bitmap: Vec<u8>,
    alloc_cursor: u64,
    staged: BTreeMap<u64, Vec<u8>>,
    /// Commit after every operation (the paper's Sqlite3 runs journaled).
    pub sync_mode: bool,
    /// Statistics.
    pub stats: FsStats,
}

impl Xv6Fs {
    /// Format a fresh ramdisk of `nblocks` and mount it.
    pub fn mkfs(w: &mut World, nblocks: usize) -> Self {
        let mut fs = Xv6Fs {
            dev: BlockDev::new(nblocks),
            inodes: vec![Inode::default(); NINODES],
            dir: Vec::new(),
            bitmap: vec![0; (BITMAP_BLOCKS as usize) * BLOCK_SIZE],
            alloc_cursor: DATA_START,
            staged: BTreeMap::new(),
            sync_mode: true,
            stats: FsStats::default(),
        };
        // Metadata blocks are permanently allocated.
        for b in 0..DATA_START {
            fs.bitmap_set(b, true);
        }
        // Root directory inode.
        fs.inodes[ROOT_INO as usize].used = true;
        fs.flush_superblock(w);
        fs.flush_inodes(w);
        fs.flush_bitmap_staged();
        fs.sync(w);
        fs.clear_journal(w);
        fs
    }

    /// Mount an existing device, running journal recovery first.
    pub fn mount(w: &mut World, dev: BlockDev) -> Self {
        let mut fs = Xv6Fs {
            dev,
            inodes: Vec::new(),
            dir: Vec::new(),
            bitmap: Vec::new(),
            alloc_cursor: DATA_START,
            staged: BTreeMap::new(),
            sync_mode: true,
            stats: FsStats::default(),
        };
        fs.recover(w);
        // Superblock.
        let sb = fs.dev_read(w, SUPER_BLOCK);
        let magic = u64::from_le_bytes(sb[0..8].try_into().unwrap());
        assert_eq!(magic, MAGIC, "not an xv6fs device");
        fs.alloc_cursor = u64::from_le_bytes(sb[8..16].try_into().unwrap());
        // Block bitmap.
        let mut bitmap = Vec::with_capacity((BITMAP_BLOCKS as usize) * BLOCK_SIZE);
        for b in 0..BITMAP_BLOCKS {
            bitmap.extend(fs.dev_read(w, BITMAP_START + b));
        }
        fs.bitmap = bitmap;
        // Inode table.
        let mut inodes = Vec::with_capacity(NINODES);
        for b in 0..INODE_BLOCKS {
            let blk = fs.dev_read(w, INODE_START + b);
            for i in 0..(BLOCK_SIZE / INODE_BYTES) {
                inodes.push(Inode::from_bytes(
                    &blk[i * INODE_BYTES..(i + 1) * INODE_BYTES],
                ));
            }
        }
        fs.inodes = inodes;
        // Root directory.
        fs.dir = fs.load_dir(w);
        fs
    }

    // ---- block server boundary (IPC charged here) -----------------------

    fn dev_read(&mut self, w: &mut World, blk: u64) -> Vec<u8> {
        w.ipc_roundtrip(64, BLOCK_SIZE as u64);
        self.dev.read(w, blk)
    }

    fn dev_write(&mut self, w: &mut World, blk: u64, data: &[u8]) {
        w.ipc_roundtrip(64 + BLOCK_SIZE as u64, 16);
        self.dev.write(w, blk, data);
    }

    // ---- journal ---------------------------------------------------------

    fn clear_journal(&mut self, w: &mut World) {
        self.dev_write(w, JOURNAL_HEADER, &vec![0u8; BLOCK_SIZE]);
    }

    fn recover(&mut self, w: &mut World) {
        let hdr = self.dev_read(w, JOURNAL_HEADER);
        let n = u64::from_le_bytes(hdr[0..8].try_into().unwrap()) as usize;
        if n == 0 || n > JOURNAL_CAP {
            return;
        }
        for i in 0..n {
            let target = u64::from_le_bytes(hdr[8 + 8 * i..16 + 8 * i].try_into().unwrap());
            let data = self.dev_read(w, JOURNAL_DATA + i as u64);
            self.dev_write(w, target, &data);
        }
        self.clear_journal(w);
    }

    /// Stage a whole-block write into the current transaction.
    fn stage(&mut self, blk: u64, data: Vec<u8>) {
        debug_assert_eq!(data.len(), BLOCK_SIZE);
        self.staged.insert(blk, data);
    }

    /// Commit the staged transaction: log, commit point, install, clear.
    pub fn sync(&mut self, w: &mut World) {
        if self.staged.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.staged);
        // Large transactions commit in journal-capacity chunks.
        let entries: Vec<(u64, Vec<u8>)> = staged.into_iter().collect();
        for chunk in entries.chunks(JOURNAL_CAP) {
            // 1. Log.
            for (i, (_, data)) in chunk.iter().enumerate() {
                self.dev_write(w, JOURNAL_DATA + i as u64, data);
            }
            // 2. Commit point.
            let mut hdr = vec![0u8; BLOCK_SIZE];
            hdr[0..8].copy_from_slice(&(chunk.len() as u64).to_le_bytes());
            for (i, (blk, _)) in chunk.iter().enumerate() {
                hdr[8 + 8 * i..16 + 8 * i].copy_from_slice(&blk.to_le_bytes());
            }
            self.dev_write(w, JOURNAL_HEADER, &hdr);
            // 3. Install.
            for (blk, data) in chunk {
                self.dev_write(w, *blk, data);
            }
            // 4. Clear.
            self.clear_journal(w);
            self.stats.commits += 1;
            self.stats.journaled_blocks += chunk.len() as u64;
        }
    }

    /// Failure injection: run steps 1–2 of [`Xv6Fs::sync`] (log + commit
    /// point) and then "crash" — staged data reaches only the journal.
    /// A subsequent [`Xv6Fs::mount`] must recover it.
    pub fn sync_crash_before_install(&mut self, w: &mut World) -> BlockDev {
        let staged = std::mem::take(&mut self.staged);
        let entries: Vec<(u64, Vec<u8>)> = staged.into_iter().collect();
        let chunk = &entries[..entries.len().min(JOURNAL_CAP)];
        for (i, (_, data)) in chunk.iter().enumerate() {
            self.dev_write(w, JOURNAL_DATA + i as u64, data);
        }
        let mut hdr = vec![0u8; BLOCK_SIZE];
        hdr[0..8].copy_from_slice(&(chunk.len() as u64).to_le_bytes());
        for (i, (blk, _)) in chunk.iter().enumerate() {
            hdr[8 + 8 * i..16 + 8 * i].copy_from_slice(&blk.to_le_bytes());
        }
        self.dev_write(w, JOURNAL_HEADER, &hdr);
        // Crash: hand the raw device to the caller.
        self.dev.clone()
    }

    // ---- metadata persistence -------------------------------------------

    fn flush_superblock(&mut self, w: &mut World) {
        let mut sb = vec![0u8; BLOCK_SIZE];
        sb[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&self.alloc_cursor.to_le_bytes());
        self.stage(SUPER_BLOCK, sb);
        if self.sync_mode {
            self.sync(w);
        }
    }

    fn flush_inodes(&mut self, w: &mut World) {
        for b in 0..INODE_BLOCKS {
            let mut blk = vec![0u8; BLOCK_SIZE];
            for i in 0..(BLOCK_SIZE / INODE_BYTES) {
                let ino = b as usize * (BLOCK_SIZE / INODE_BYTES) + i;
                blk[i * INODE_BYTES..(i + 1) * INODE_BYTES]
                    .copy_from_slice(&self.inodes[ino].to_bytes());
            }
            self.stage(INODE_START + b, blk);
        }
        if self.sync_mode {
            self.sync(w);
        }
    }

    fn load_dir(&mut self, w: &mut World) -> Vec<(String, u64)> {
        let size = self.inodes[ROOT_INO as usize].size;
        let raw = self.read_inode(w, ROOT_INO, 0, size);
        let mut dir = Vec::new();
        let mut off = 0;
        while off < raw.len() {
            let nlen = raw[off] as usize;
            let name = String::from_utf8_lossy(&raw[off + 1..off + 1 + nlen]).into_owned();
            let ino = u64::from_le_bytes(raw[off + 1 + nlen..off + 9 + nlen].try_into().unwrap());
            dir.push((name, ino));
            off += 9 + nlen;
        }
        dir
    }

    fn store_dir(&mut self, w: &mut World) {
        let mut raw = Vec::new();
        for (name, ino) in self.dir.clone() {
            raw.push(name.len() as u8);
            raw.extend_from_slice(name.as_bytes());
            raw.extend_from_slice(&ino.to_le_bytes());
        }
        // The directory may shrink (unlink): reset its size first.
        self.inodes[ROOT_INO as usize].size = 0;
        self.write(w, ROOT_INO, 0, &raw);
        // An emptied directory still needs its metadata journaled.
        if raw.is_empty() {
            self.flush_inodes_staged();
            if self.sync_mode {
                self.sync(w);
            }
        }
    }

    // ---- block mapping ----------------------------------------------------

    /// Map file block index -> device block, allocating when `alloc`.
    fn bmap(&mut self, w: &mut World, ino: u64, fbn: u64, alloc: bool) -> u64 {
        let per_block = (BLOCK_SIZE / 8) as u64;
        if fbn < NDIRECT as u64 {
            let cur = self.inodes[ino as usize].direct[fbn as usize];
            if cur != 0 || !alloc {
                return cur;
            }
            let blk = self.alloc_block();
            self.inodes[ino as usize].direct[fbn as usize] = blk;
            return blk;
        }
        let idx = fbn - NDIRECT as u64;
        assert!(idx < per_block, "file too large for single indirect");
        // Indirect table lives in a device block.
        let mut itable_blk = self.inodes[ino as usize].indirect;
        if itable_blk == 0 {
            if !alloc {
                return 0;
            }
            itable_blk = self.alloc_block();
            self.inodes[ino as usize].indirect = itable_blk;
            self.stage(itable_blk, vec![0u8; BLOCK_SIZE]);
        }
        let mut table = self
            .staged
            .get(&itable_blk)
            .cloned()
            .unwrap_or_else(|| self.dev.peek(itable_blk).to_vec());
        let slot = idx as usize * 8;
        let cur = u64::from_le_bytes(table[slot..slot + 8].try_into().unwrap());
        if cur != 0 || !alloc {
            let _ = w;
            return cur;
        }
        let blk = self.alloc_block();
        table[slot..slot + 8].copy_from_slice(&blk.to_le_bytes());
        self.stage(itable_blk, table);
        blk
    }

    fn bitmap_get(&self, blk: u64) -> bool {
        (self.bitmap[(blk / 8) as usize] >> (blk % 8)) & 1 == 1
    }

    fn bitmap_set(&mut self, blk: u64, used: bool) {
        let byte = &mut self.bitmap[(blk / 8) as usize];
        if used {
            *byte |= 1 << (blk % 8);
        } else {
            *byte &= !(1 << (blk % 8));
        }
    }

    fn flush_bitmap_staged(&mut self) {
        for b in 0..BITMAP_BLOCKS {
            let start = (b as usize) * BLOCK_SIZE;
            self.stage(
                BITMAP_START + b,
                self.bitmap[start..start + BLOCK_SIZE].to_vec(),
            );
        }
    }

    /// Allocate a data block from the bitmap (rotating first-fit).
    fn alloc_block(&mut self) -> u64 {
        let limit = (self.dev.len() as u64).min(self.bitmap.len() as u64 * 8);
        for step in 0..limit {
            let b = DATA_START + (self.alloc_cursor - DATA_START + step) % (limit - DATA_START);
            if !self.bitmap_get(b) {
                self.bitmap_set(b, true);
                self.alloc_cursor = b + 1;
                return b;
            }
        }
        panic!("ramdisk full");
    }

    /// Free a data block.
    fn free_block(&mut self, blk: u64) {
        debug_assert!(blk >= DATA_START);
        self.bitmap_set(blk, false);
    }

    // ---- public file API ---------------------------------------------------

    /// Create a file, returning its inode number.
    ///
    /// # Panics
    ///
    /// Panics when the inode table is exhausted or the name is taken.
    pub fn create(&mut self, w: &mut World, name: &str) -> u64 {
        assert!(self.lookup(name).is_none(), "file exists: {name}");
        let ino = self
            .inodes
            .iter()
            .position(|i| !i.used)
            .expect("inode table full") as u64;
        self.inodes[ino as usize].used = true;
        self.inodes[ino as usize].size = 0;
        self.dir.push((name.to_string(), ino));
        self.store_dir(w);
        self.flush_inodes(w);
        ino
    }

    /// Delete a file: free its data blocks (direct, indirect, and the
    /// indirect table itself) back to the bitmap, clear the inode, drop
    /// the directory entry — all journaled.
    ///
    /// Returns whether the file existed.
    pub fn unlink(&mut self, w: &mut World, name: &str) -> bool {
        let Some(ino) = self.lookup(name) else {
            return false;
        };
        assert_ne!(ino, ROOT_INO, "cannot unlink the root directory");
        let inode = self.inodes[ino as usize].clone();
        for blk in inode.direct {
            if blk != 0 {
                self.free_block(blk);
            }
        }
        if inode.indirect != 0 {
            let table = self
                .staged
                .get(&inode.indirect)
                .cloned()
                .unwrap_or_else(|| self.dev.peek(inode.indirect).to_vec());
            for slot in table.chunks_exact(8) {
                let blk = u64::from_le_bytes(slot.try_into().unwrap());
                if blk != 0 {
                    self.free_block(blk);
                }
            }
            self.free_block(inode.indirect);
            self.staged.remove(&inode.indirect);
        }
        self.inodes[ino as usize] = Inode::default();
        self.dir.retain(|(n, _)| n != name);
        self.store_dir(w);
        self.flush_inodes_staged();
        self.flush_bitmap_staged();
        if self.sync_mode {
            self.sync(w);
        }
        true
    }

    /// Count of free data blocks (bitmap census, for tests/tools).
    pub fn free_blocks(&self) -> u64 {
        let limit = (self.dev.len() as u64).min(self.bitmap.len() as u64 * 8);
        (DATA_START..limit).filter(|&b| !self.bitmap_get(b)).count() as u64
    }

    /// Look up a file by name.
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.dir.iter().find(|(n, _)| n == name).map(|(_, i)| *i)
    }

    /// List the root directory: (name, inode, size) per file.
    pub fn list(&self) -> Vec<(String, u64, u64)> {
        self.dir
            .iter()
            .map(|(n, i)| (n.clone(), *i, self.inodes[*i as usize].size))
            .collect()
    }

    /// File size.
    pub fn size(&self, ino: u64) -> u64 {
        self.inodes[ino as usize].size
    }

    /// Read `len` bytes at `off` (server-side; the fs→blockdev IPC is
    /// charged per block run).
    pub fn read(&mut self, w: &mut World, ino: u64, off: u64, len: u64) -> Vec<u8> {
        w.compute(2000); // inode lock, bmap, request validation
        self.read_inode(w, ino, off, len)
    }

    fn read_inode(&mut self, w: &mut World, ino: u64, off: u64, len: u64) -> Vec<u8> {
        let size = self.inodes[ino as usize].size;
        let end = (off + len).min(size);
        if off >= end {
            return Vec::new();
        }
        // Plan the spans first so physically contiguous device blocks can
        // be fetched with one scatter-gather request to the block server
        // (real block-device protocols are multi-block; issuing one IPC
        // per 4 KiB would overstate read-path IPC counts).
        struct Span {
            blk: u64, // 0 = hole
            boff: usize,
            take: usize,
        }
        let mut spans = Vec::new();
        let mut pos = off;
        while pos < end {
            let fbn = pos / BLOCK_SIZE as u64;
            let boff = (pos % BLOCK_SIZE as u64) as usize;
            let take = ((BLOCK_SIZE - boff) as u64).min(end - pos) as usize;
            let blk = self.bmap(w, ino, fbn, false);
            spans.push(Span { blk, boff, take });
            pos += take as u64;
        }
        let mut out = Vec::with_capacity(len as usize);
        let mut i = 0;
        while i < spans.len() {
            let s = &spans[i];
            if s.blk == 0 {
                out.extend(std::iter::repeat_n(0u8, s.take));
                i += 1;
            } else if self.staged.contains_key(&s.blk) {
                let st = &self.staged[&s.blk];
                out.extend_from_slice(&st[s.boff..s.boff + s.take]);
                i += 1;
            } else {
                // Extend the run over physically consecutive device blocks.
                let mut j = i + 1;
                let mut run_bytes = s.take as u64;
                while j < spans.len()
                    && spans[j].blk == spans[j - 1].blk + 1
                    && !self.staged.contains_key(&spans[j].blk)
                {
                    run_bytes += spans[j].take as u64;
                    j += 1;
                }
                w.ipc_roundtrip(64, run_bytes);
                for s in &spans[i..j] {
                    let data = self.dev.read(w, s.blk);
                    out.extend_from_slice(&data[s.boff..s.boff + s.take]);
                }
                i = j;
            }
        }
        out
    }

    /// Write `data` at `off` (journaled; commits immediately in
    /// `sync_mode`, otherwise at the next [`Xv6Fs::sync`]).
    pub fn write(&mut self, w: &mut World, ino: u64, off: u64, data: &[u8]) {
        w.compute(2500); // inode lock, bmap/alloc, log bookkeeping
        let mut pos = 0usize;
        while pos < data.len() {
            let fpos = off + pos as u64;
            let fbn = fpos / BLOCK_SIZE as u64;
            let boff = (fpos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - boff).min(data.len() - pos);
            let blk = self.bmap(w, ino, fbn, true);
            let mut buf = if let Some(st) = self.staged.get(&blk) {
                st.clone()
            } else if take == BLOCK_SIZE {
                vec![0u8; BLOCK_SIZE]
            } else {
                // Partial block: read-modify-write.
                self.dev_read(w, blk)
            };
            buf[boff..boff + take].copy_from_slice(&data[pos..pos + take]);
            self.stage(blk, buf);
            pos += take;
        }
        let ino_ref = &mut self.inodes[ino as usize];
        ino_ref.size = ino_ref.size.max(off + data.len() as u64);
        self.flush_inodes_staged();
        self.flush_superblock_staged();
        self.flush_bitmap_staged();
        if self.sync_mode {
            self.sync(w);
        }
    }

    fn flush_inodes_staged(&mut self) {
        for b in 0..INODE_BLOCKS {
            let mut blk = vec![0u8; BLOCK_SIZE];
            for i in 0..(BLOCK_SIZE / INODE_BYTES) {
                let ino = b as usize * (BLOCK_SIZE / INODE_BYTES) + i;
                blk[i * INODE_BYTES..(i + 1) * INODE_BYTES]
                    .copy_from_slice(&self.inodes[ino].to_bytes());
            }
            self.stage(INODE_START + b, blk);
        }
    }

    fn flush_superblock_staged(&mut self) {
        let mut sb = vec![0u8; BLOCK_SIZE];
        sb[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&self.alloc_cursor.to_le_bytes());
        self.stage(SUPER_BLOCK, sb);
    }
}

/// Client-side handle: adds the client→fs IPC hop to every call
/// (the paper's applications talk to the FS *server*, not a library).
#[derive(Debug)]
pub struct FsClient;

impl FsClient {
    /// Client read: VFS layer + request + data-carrying reply.
    pub fn read(fs: &mut Xv6Fs, w: &mut World, ino: u64, off: u64, len: u64) -> Vec<u8> {
        w.compute(1500); // client VFS: fd table, offset bookkeeping
        w.ipc_roundtrip(64, len);
        fs.read(w, ino, off, len)
    }

    /// Client write: VFS layer + data-carrying request + small reply.
    pub fn write(fs: &mut Xv6Fs, w: &mut World, ino: u64, off: u64, data: &[u8]) {
        w.compute(1500);
        w.ipc_roundtrip(64 + data.len() as u64, 16);
        fs.write(w, ino, off, data);
    }

    /// Client create.
    pub fn create(fs: &mut Xv6Fs, w: &mut World, name: &str) -> u64 {
        w.ipc_roundtrip(64 + name.len() as u64, 16);
        fs.create(w, name)
    }

    /// Client sync.
    pub fn sync(fs: &mut Xv6Fs, w: &mut World) {
        w.ipc_roundtrip(64, 16);
        fs.sync(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Invocation, InvokeOpts, IpcSystem, Phase};

    struct Free;
    impl IpcSystem for Free {
        fn name(&self) -> String {
            "free".into()
        }
        fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::single(Phase::Trap, 1)
        }
    }

    fn world() -> World {
        World::new(Box::new(Free))
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let ino = fs.create(&mut w, "hello.txt");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        fs.write(&mut w, ino, 0, &data);
        assert_eq!(fs.read(&mut w, ino, 0, data.len() as u64), data);
        assert_eq!(fs.size(ino), data.len() as u64);
    }

    #[test]
    fn partial_overwrite() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let ino = fs.create(&mut w, "f");
        fs.write(&mut w, ino, 0, &[1u8; 8192]);
        fs.write(&mut w, ino, 100, &[2u8; 50]);
        let back = fs.read(&mut w, ino, 0, 8192);
        assert_eq!(&back[..100], &[1u8; 100][..]);
        assert_eq!(&back[100..150], &[2u8; 50][..]);
        assert_eq!(&back[150..], &[1u8; 8042][..]);
    }

    #[test]
    fn sparse_and_offset_writes() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let ino = fs.create(&mut w, "sparse");
        fs.write(&mut w, ino, 100_000, b"tail");
        assert_eq!(fs.size(ino), 100_004);
        assert_eq!(fs.read(&mut w, ino, 100_000, 4), b"tail");
        assert_eq!(fs.read(&mut w, ino, 0, 4), vec![0u8; 4], "hole reads zero");
    }

    #[test]
    fn large_file_uses_indirect_blocks() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 8192);
        let ino = fs.create(&mut w, "big");
        // > 12 * 4096 = 48 KiB forces the indirect path.
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 256) as u8).collect();
        fs.write(&mut w, ino, 0, &data);
        assert_eq!(fs.read(&mut w, ino, 0, data.len() as u64), data);
    }

    #[test]
    fn list_reports_names_and_sizes() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let a = fs.create(&mut w, "a.txt");
        fs.write(&mut w, a, 0, &[1u8; 10]);
        fs.create(&mut w, "b.txt");
        let mut names: Vec<(String, u64)> = fs
            .list()
            .into_iter()
            .map(|(n, _, size)| (n, size))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![("a.txt".to_string(), 10), ("b.txt".to_string(), 0)]
        );
    }

    #[test]
    fn persistence_across_mount() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let ino = fs.create(&mut w, "persist");
        fs.write(&mut w, ino, 0, b"survives remount");
        let dev = fs.dev.clone();
        let mut fs2 = Xv6Fs::mount(&mut w, dev);
        let ino2 = fs2.lookup("persist").expect("directory persisted");
        assert_eq!(ino2, ino);
        assert_eq!(fs2.read(&mut w, ino2, 0, 16), b"survives remount");
    }

    #[test]
    fn crash_after_commit_recovers() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let ino = fs.create(&mut w, "crashy");
        fs.sync_mode = false;
        fs.write(&mut w, ino, 0, b"committed but not installed");
        let dev = fs.sync_crash_before_install(&mut w);
        // Remount: recovery must replay the journal.
        let mut fs2 = Xv6Fs::mount(&mut w, dev);
        let ino2 = fs2.lookup("crashy").unwrap();
        assert_eq!(
            fs2.read(&mut w, ino2, 0, 27),
            b"committed but not installed"
        );
    }

    #[test]
    fn crash_before_commit_loses_cleanly() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let ino = fs.create(&mut w, "f");
        fs.write(&mut w, ino, 0, b"old");
        fs.sync_mode = false;
        fs.write(&mut w, ino, 0, b"new");
        // Crash with the transaction only staged in memory.
        let dev = fs.dev.clone();
        let mut fs2 = Xv6Fs::mount(&mut w, dev);
        let ino2 = fs2.lookup("f").unwrap();
        assert_eq!(fs2.read(&mut w, ino2, 0, 3), b"old", "atomicity");
    }

    #[test]
    fn unlink_frees_blocks_for_reuse() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let free0 = fs.free_blocks();
        let ino = fs.create(&mut w, "victim");
        fs.write(&mut w, ino, 0, &vec![7u8; 100_000]); // forces indirect
        let free_after_write = fs.free_blocks();
        assert!(free_after_write < free0);
        assert!(fs.unlink(&mut w, "victim"));
        assert!(fs.lookup("victim").is_none());
        assert!(
            fs.free_blocks() > free_after_write + 20,
            "data + indirect blocks returned"
        );
        assert!(!fs.unlink(&mut w, "victim"), "second unlink is a no-op");
        // The freed space is genuinely reusable.
        let ino2 = fs.create(&mut w, "next");
        fs.write(&mut w, ino2, 0, &vec![9u8; 100_000]);
        assert_eq!(fs.read(&mut w, ino2, 0, 4), vec![9u8; 4]);
    }

    #[test]
    fn unlink_persists_across_mount() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let a = fs.create(&mut w, "a");
        fs.write(&mut w, a, 0, b"stay");
        let b = fs.create(&mut w, "b");
        fs.write(&mut w, b, 0, b"go");
        fs.unlink(&mut w, "b");
        let dev = fs.dev.clone();
        let mut fs2 = Xv6Fs::mount(&mut w, dev);
        assert!(fs2.lookup("b").is_none(), "unlink persisted");
        let a2 = fs2.lookup("a").unwrap();
        assert_eq!(fs2.read(&mut w, a2, 0, 4), b"stay");
    }

    #[test]
    fn writes_generate_journal_traffic() {
        let mut w = world();
        let mut fs = Xv6Fs::mkfs(&mut w, 4096);
        let ino = fs.create(&mut w, "f");
        let commits_before = fs.stats.commits;
        fs.write(&mut w, ino, 0, &[9u8; 4096]);
        assert!(fs.stats.commits > commits_before);
        assert!(fs.stats.journaled_blocks > 0);
    }

    #[test]
    fn read_is_cheaper_than_write_in_ipc_terms() {
        let mut setup = world();
        let mut fs = Xv6Fs::mkfs(&mut setup, 4096);
        let ino = fs.create(&mut setup, "f");
        fs.write(&mut setup, ino, 0, &[1u8; 8192]);

        let mut wr = world();
        fs.write(&mut wr, ino, 0, &[2u8; 8192]);
        let write_ipcs = wr.stats.ipc_count;
        let mut rd = world();
        let _ = fs.read(&mut rd, ino, 0, 8192);
        assert!(
            write_ipcs > 2 * rd.stats.ipc_count,
            "journaling amplifies write IPCs: {} vs {}",
            write_ipcs,
            rd.stats.ipc_count
        );
    }
}
