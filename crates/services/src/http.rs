//! The HTTP server of §5.4: parses requests, fetches files from the
//! cache server, optionally encrypts through the AES server, and replies.
//!
//! This is the three-server chain of Figure 8(c): the message crosses
//! client → HTTP → file cache (→ AES) → client, which is where the
//! handover optimization pays: "using handover can efficiently reduce
//! the times of memory copying in these IPC".

use crate::aes::AesServer;
use crate::filecache::FileCache;
use simos::{CallProgram, CostModel, Recipe, Step, World};

/// Service index of the client in the [`chain_steps`] recipe.
pub const SVC_CLIENT: usize = 0;
/// Service index of the HTTP server.
pub const SVC_HTTP: usize = 1;
/// Service index of the file-cache server.
pub const SVC_CACHE: usize = 2;
/// Service index of the AES server.
pub const SVC_AES: usize = 3;
/// Number of services in the chain recipe (client included).
pub const CHAIN_SERVICES: usize = 4;

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (only GET is served).
    pub method: String,
    /// Request path.
    pub path: String,
}

/// Parse the request line of an HTTP/1.x request.
pub fn parse_request(raw: &str) -> Option<Request> {
    let line = raw.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    Some(Request { method, path })
}

/// HTTP response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 404.
    NotFound,
    /// 400.
    BadRequest,
}

impl Status {
    fn line(self) -> &'static str {
        match self {
            Status::Ok => "HTTP/1.1 200 OK",
            Status::NotFound => "HTTP/1.1 404 Not Found",
            Status::BadRequest => "HTTP/1.1 400 Bad Request",
        }
    }
}

/// The HTTP server with its downstream servers.
#[derive(Debug)]
pub struct HttpServer {
    /// File cache server.
    pub cache: FileCache,
    /// Optional AES server (the paper's encryption-enabled mode).
    pub aes: Option<AesServer>,
    /// Requests served.
    pub served: u64,
}

impl HttpServer {
    /// A server over `cache`, optionally encrypting with `aes`.
    pub fn new(cache: FileCache, aes: Option<AesServer>) -> Self {
        HttpServer {
            cache,
            aes,
            served: 0,
        }
    }

    /// Handle one raw request end-to-end, charging every hop:
    /// client→HTTP (request), HTTP→cache (path / file back),
    /// HTTP→AES round trip when enabled, HTTP→client (response).
    ///
    /// With a handover-capable mechanism the *payload* rides one relay
    /// segment through the whole chain, so only the first hop carries it;
    /// copy mechanisms pay per hop (that is inherent in how their
    /// [`simos::IpcSystem::oneway`] prices payload bytes).
    pub fn handle(&mut self, w: &mut World, raw_request: &str) -> (Status, Vec<u8>) {
        // Client → HTTP server.
        w.ipc_oneway(raw_request.len() as u64);
        w.compute(200); // request parsing
        let req = match parse_request(raw_request) {
            Some(r) if r.method == "GET" => r,
            _ => {
                let body = b"bad request".to_vec();
                w.ipc_oneway(body.len() as u64);
                self.served += 1;
                return (Status::BadRequest, body);
            }
        };
        // HTTP → file cache server.
        w.ipc_roundtrip(req.path.len() as u64, 0);
        let file = self.cache.get(w, &req.path);
        let (status, mut body) = match file {
            Some(data) => {
                // The file body travels back as the reply payload.
                w.ipc_reply_payload(data.len() as u64);
                (Status::Ok, data)
            }
            None => {
                let body = b"not found".to_vec();
                w.ipc_reply_payload(body.len() as u64);
                (Status::NotFound, body)
            }
        };
        // HTTP → AES server, if encryption is on.
        if let Some(aes) = self.aes.as_mut() {
            w.ipc_roundtrip_payload(body.len() as u64);
            aes.encrypt(w, &mut body);
        }
        // HTTP → client: status line + headers + body.
        let header = format!(
            "{}\r\nContent-Length: {}\r\n\r\n",
            status.line(),
            body.len()
        );
        w.compute(150); // response assembly
        w.ipc_oneway(header.len() as u64 + body.len() as u64);
        self.served += 1;
        (status, body)
    }
}

/// Figure 8(c) driver: serve `requests` GETs for `path` and return the
/// throughput in operations per second under the world's mechanism.
pub fn http_throughput_ops(
    w: &mut World,
    server: &mut HttpServer,
    path: &str,
    requests: u64,
) -> f64 {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    let start = w.cycles;
    for _ in 0..requests {
        let (status, _) = server.handle(w, &raw);
        assert_eq!(status, Status::Ok, "bench file must exist");
    }
    let cycles = w.cycles - start;
    let secs = cycles as f64 / w.cost.clock_hz as f64;
    requests as f64 / secs
}

/// A mixed-path request workload: serve each (path, count) pair and
/// report total ops/s plus the per-status tally — closer to a real
/// webserver trace than a single hot file.
pub fn http_mixed_workload(
    w: &mut World,
    server: &mut HttpServer,
    requests: &[(&str, u64)],
) -> (f64, u64, u64) {
    let start = w.cycles;
    let (mut ok, mut not_found) = (0u64, 0u64);
    for (path, count) in requests {
        let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
        for _ in 0..*count {
            match server.handle(w, &raw).0 {
                Status::Ok => ok += 1,
                Status::NotFound => not_found += 1,
                Status::BadRequest => {}
            }
        }
    }
    let total: u64 = requests.iter().map(|(_, c)| c).sum();
    let secs = (w.cycles - start) as f64 / w.cost.clock_hz as f64;
    (total as f64 / secs, ok, not_found)
}

/// Options for the §5.4 chain recipes ([`chain_steps`] and
/// [`chain_program`]), replacing the former positional bool pair.
///
/// The default is the paper's headline configuration: encryption on
/// (the full three-server chain of Figure 8(c)), handover off (the
/// conservative copy pricing — opt in per mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSpec {
    /// Route the file through the AES server (Figure 8(c)'s
    /// encryption-enabled mode).
    pub encrypt: bool,
    /// Price payload legs as relay-segment handovers (16-byte control
    /// descriptors instead of the file body). Must match
    /// `supports_handover()` of the system the steps will run on — the
    /// chain's control-reply shortcuts depend on it.
    pub handover: bool,
}

impl Default for ChainSpec {
    fn default() -> Self {
        ChainSpec {
            encrypt: true,
            handover: false,
        }
    }
}

impl ChainSpec {
    /// The unencrypted two-server chain (client → HTTP → cache).
    pub fn plain() -> Self {
        ChainSpec {
            encrypt: false,
            handover: false,
        }
    }

    /// The same spec with `handover` matched to a mechanism.
    pub fn with_handover(self, handover: bool) -> Self {
        ChainSpec { handover, ..self }
    }

    /// The same spec with encryption toggled.
    pub fn with_encrypt(self, encrypt: bool) -> Self {
        ChainSpec { encrypt, ..self }
    }
}

/// The [`HttpServer::handle`] chain as a placement-agnostic recipe: the
/// exact sequence of hops and compute a successful `GET path` charges,
/// attributed to [`SVC_CLIENT`]/[`SVC_HTTP`]/[`SVC_CACHE`]/[`SVC_AES`],
/// for replay on a [`simos::MultiWorld`] under any placement policy.
///
/// The anchoring test below pins this recipe to `handle()`
/// cycle-for-cycle on a single core.
pub fn chain_steps(path: &str, file_len: u64, spec: ChainSpec) -> Vec<Step> {
    let ChainSpec { encrypt, handover } = spec;
    let raw_len = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").len() as u64;
    let header_len = format!(
        "{}\r\nContent-Length: {}\r\n\r\n",
        Status::Ok.line(),
        file_len
    )
    .len() as u64;
    let reply = if handover { 16 } else { file_len };
    let mut steps = vec![
        Step::Oneway {
            from: SVC_CLIENT,
            to: SVC_HTTP,
            bytes: raw_len,
        },
        Step::Compute {
            at: SVC_HTTP,
            cycles: 200,
        },
        Step::Roundtrip {
            from: SVC_HTTP,
            to: SVC_CACHE,
            request: path.len() as u64,
            response: 0,
        },
        Step::Compute {
            at: SVC_CACHE,
            cycles: 120,
        },
        Step::DataPass {
            at: SVC_CACHE,
            bytes: file_len,
            intensity_x10: 10,
        },
        Step::Oneway {
            from: SVC_CACHE,
            to: SVC_HTTP,
            bytes: reply,
        },
    ];
    if encrypt {
        let leg = if handover { 16 } else { file_len };
        steps.push(Step::Roundtrip {
            from: SVC_HTTP,
            to: SVC_AES,
            request: leg,
            response: leg,
        });
        steps.push(Step::DataPass {
            at: SVC_AES,
            bytes: file_len,
            intensity_x10: 25,
        });
    }
    steps.push(Step::Compute {
        at: SVC_HTTP,
        cycles: 150,
    });
    steps.push(Step::Oneway {
        from: SVC_HTTP,
        to: SVC_CLIENT,
        bytes: header_len + file_len,
    });
    steps
}

/// The same chain re-expressed as a fused [`CallProgram`] (AnyCall
/// style): the request is submitted once and chains client → HTTP →
/// cache (→ AES) server-side, with the response as the single return
/// leg — no intermediate returns to the client.
///
/// Unlike [`chain_steps`], handover is *not* a spec knob here: payload
/// edges are declared as handover edges and each mechanism prices them
/// per its own capability (a relay segment moves a 16-byte descriptor,
/// a copy mechanism moves the body). `spec.handover` is ignored.
/// Per-service data passes fold into hop compute using `cost`'s copy
/// pricing, exactly as `Step::DataPass` would charge them.
pub fn chain_program(path: &str, file_len: u64, spec: ChainSpec, cost: &CostModel) -> CallProgram {
    let raw_len = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").len() as u64;
    let header_len = format!(
        "{}\r\nContent-Length: {}\r\n\r\n",
        Status::Ok.line(),
        file_len
    )
    .len() as u64;
    let mut r = Recipe::new(SVC_CLIENT)
        .hop(SVC_HTTP, raw_len)
        .compute(200)
        .handover(SVC_CACHE, path.len() as u64)
        .compute(120 + cost.copy_cycles(file_len));
    if spec.encrypt {
        r = r
            .handover(SVC_AES, file_len)
            .compute(cost.copy_cycles(file_len) * 25 / 10);
    }
    r.compute(150)
        .reply(header_len + file_len)
        .build()
        .expect("chain depth is far below MAX_PROGRAM_HOPS")
}

/// World extensions used by the chain: payload-bearing replies and
/// chain hops that a handover mechanism carries for free.
trait ChainIpc {
    fn ipc_reply_payload(&mut self, bytes: u64);
    fn ipc_roundtrip_payload(&mut self, bytes: u64);
}

impl ChainIpc for World {
    /// A reply carrying `bytes` of payload. Under handover the payload
    /// already sits in the relay segment — only a control reply is paid.
    fn ipc_reply_payload(&mut self, bytes: u64) {
        if self.handover() {
            self.ipc_oneway(16);
        } else {
            self.ipc_oneway(bytes);
        }
    }

    /// A downstream round trip whose payload continues along the chain.
    fn ipc_roundtrip_payload(&mut self, bytes: u64) {
        if self.handover() {
            self.ipc_roundtrip(16, 16);
        } else {
            self.ipc_roundtrip(bytes, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use simos::{Invocation, InvokeOpts, IpcSystem, Phase};

    struct Free;
    impl IpcSystem for Free {
        fn name(&self) -> String {
            "free".into()
        }
        fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::single(Phase::Trap, 1)
        }
    }

    fn server(aes: bool) -> HttpServer {
        let mut cache = FileCache::new();
        cache.put("/index.html", b"<html><body>42</body></html>".to_vec());
        let aes = aes.then(|| AesServer::new(b"0123456789abcdef"));
        HttpServer::new(cache, aes)
    }

    #[test]
    fn parses_request_lines() {
        let r = parse_request("GET /a/b.html HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/a/b.html");
        assert!(parse_request("garbage").is_none());
        assert!(parse_request("GET /x NOTHTTP").is_none());
    }

    #[test]
    fn serves_200_and_404() {
        let mut w = simos::World::new(Box::new(Free));
        let mut s = server(false);
        let (st, body) = s.handle(&mut w, "GET /index.html HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::Ok);
        assert_eq!(body, b"<html><body>42</body></html>");
        let (st, _) = s.handle(&mut w, "GET /missing HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::NotFound);
        let (st, _) = s.handle(&mut w, "POST /index.html HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::BadRequest);
        assert_eq!(s.served, 3);
    }

    #[test]
    fn encryption_mode_really_encrypts() {
        let mut w = simos::World::new(Box::new(Free));
        let mut s = server(true);
        let (st, body) = s.handle(&mut w, "GET /index.html HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::Ok);
        assert_ne!(body, b"<html><body>42</body></html>");
        // Decrypt with the same key/nonce to verify integrity.
        let aes = Aes128::new(b"0123456789abcdef");
        let mut plain = body.clone();
        aes.ctr_xor(0, &mut plain);
        assert_eq!(plain, b"<html><body>42</body></html>");
    }

    #[test]
    fn mixed_workload_tallies_statuses() {
        let mut w = simos::World::new(Box::new(Free));
        let mut s = server(false);
        let (ops, ok, nf) =
            http_mixed_workload(&mut w, &mut s, &[("/index.html", 5), ("/missing", 2)]);
        assert!(ops > 0.0);
        assert_eq!(ok, 5);
        assert_eq!(nf, 2);
    }

    #[test]
    fn chain_steps_is_anchored_to_handle() {
        // The recipe must price exactly what `handle()` charges — for a
        // copying system and a handover system, with and without AES.
        // Replay on a 1-core MultiWorld (no cross-core surcharge) must
        // land on the same cycle count as the real server.
        use kernels::{Sel4, Sel4Transfer, XpcIpc};
        use simos::load::run_request;
        use simos::MultiWorld;

        let path = "/index.html";
        let file = b"<html><body>42</body></html>".to_vec();
        let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");

        type Mk = fn() -> Box<dyn IpcSystem>;
        let mks: [Mk; 2] = [
            || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
            || Box::new(XpcIpc::sel4_xpc()),
        ];
        for mk in mks {
            for encrypt in [false, true] {
                let mut w = simos::World::new(mk());
                let mut cache = FileCache::new();
                cache.put(path, file.clone());
                let aes = encrypt.then(|| AesServer::new(b"0123456789abcdef"));
                let mut s = HttpServer::new(cache, aes);
                let (st, _) = s.handle(&mut w, &raw);
                assert_eq!(st, Status::Ok);

                let handover = mk().supports_handover();
                let spec = ChainSpec::default()
                    .with_encrypt(encrypt)
                    .with_handover(handover);
                let steps = chain_steps(path, file.len() as u64, spec);
                let mut mw = MultiWorld::builder().cores(1).build(mk);
                let (done, ledger) = run_request(&mut mw, &[0; CHAIN_SERVICES], &steps, 0);
                assert_eq!(
                    done, w.cycles,
                    "recipe diverged from handle() (handover={handover}, aes={encrypt})"
                );
                // The request ledger carries the IPC phases only —
                // compute lands in the clock, exactly as in `World`.
                assert_eq!(ledger.total(), w.stats.ipc_cycles);
            }
        }
    }

    #[test]
    fn chain_program_mirrors_the_chain_shape() {
        let cost = simos::CostModel::u500();
        let p = chain_program("/index.html", 4096, ChainSpec::default(), &cost);
        assert_eq!(p.client(), SVC_CLIENT);
        assert_eq!(p.depth(), 3, "http, cache, aes");
        assert_eq!(p.hops()[1].service, SVC_CACHE);
        assert!(p.hops()[1].handover, "the payload edges hand over");
        assert!(p.hops()[2].handover);
        assert!(!p.hops()[0].handover, "the request edge is a plain call");
        let plain = chain_program("/index.html", 4096, ChainSpec::plain(), &cost);
        assert_eq!(plain.depth(), 2, "no AES hop");
        assert!(plain.response() > 4096, "header + body ride the reply");
    }

    #[test]
    fn encryption_costs_cycles() {
        let mut w1 = simos::World::new(Box::new(Free));
        let mut s1 = server(false);
        s1.handle(&mut w1, "GET /index.html HTTP/1.1\r\n\r\n");
        let mut w2 = simos::World::new(Box::new(Free));
        let mut s2 = server(true);
        s2.handle(&mut w2, "GET /index.html HTTP/1.1\r\n\r\n");
        assert!(w2.cycles > w1.cycles);
    }
}
