//! The HTTP server of §5.4: parses requests, fetches files from the
//! cache server, optionally encrypts through the AES server, and replies.
//!
//! This is the three-server chain of Figure 8(c): the message crosses
//! client → HTTP → file cache (→ AES) → client, which is where the
//! handover optimization pays: "using handover can efficiently reduce
//! the times of memory copying in these IPC".

use crate::aes::AesServer;
use crate::filecache::FileCache;
use simos::World;

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (only GET is served).
    pub method: String,
    /// Request path.
    pub path: String,
}

/// Parse the request line of an HTTP/1.x request.
pub fn parse_request(raw: &str) -> Option<Request> {
    let line = raw.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    Some(Request { method, path })
}

/// HTTP response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 404.
    NotFound,
    /// 400.
    BadRequest,
}

impl Status {
    fn line(self) -> &'static str {
        match self {
            Status::Ok => "HTTP/1.1 200 OK",
            Status::NotFound => "HTTP/1.1 404 Not Found",
            Status::BadRequest => "HTTP/1.1 400 Bad Request",
        }
    }
}

/// The HTTP server with its downstream servers.
#[derive(Debug)]
pub struct HttpServer {
    /// File cache server.
    pub cache: FileCache,
    /// Optional AES server (the paper's encryption-enabled mode).
    pub aes: Option<AesServer>,
    /// Requests served.
    pub served: u64,
}

impl HttpServer {
    /// A server over `cache`, optionally encrypting with `aes`.
    pub fn new(cache: FileCache, aes: Option<AesServer>) -> Self {
        HttpServer {
            cache,
            aes,
            served: 0,
        }
    }

    /// Handle one raw request end-to-end, charging every hop:
    /// client→HTTP (request), HTTP→cache (path / file back),
    /// HTTP→AES round trip when enabled, HTTP→client (response).
    ///
    /// With a handover-capable mechanism the *payload* rides one relay
    /// segment through the whole chain, so only the first hop carries it;
    /// copy mechanisms pay per hop (that is inherent in how their
    /// [`simos::IpcSystem::oneway`] prices payload bytes).
    pub fn handle(&mut self, w: &mut World, raw_request: &str) -> (Status, Vec<u8>) {
        // Client → HTTP server.
        w.ipc_oneway(raw_request.len() as u64);
        w.compute(200); // request parsing
        let req = match parse_request(raw_request) {
            Some(r) if r.method == "GET" => r,
            _ => {
                let body = b"bad request".to_vec();
                w.ipc_oneway(body.len() as u64);
                self.served += 1;
                return (Status::BadRequest, body);
            }
        };
        // HTTP → file cache server.
        w.ipc_roundtrip(req.path.len() as u64, 0);
        let file = self.cache.get(w, &req.path);
        let (status, mut body) = match file {
            Some(data) => {
                // The file body travels back as the reply payload.
                w.ipc_reply_payload(data.len() as u64);
                (Status::Ok, data)
            }
            None => {
                let body = b"not found".to_vec();
                w.ipc_reply_payload(body.len() as u64);
                (Status::NotFound, body)
            }
        };
        // HTTP → AES server, if encryption is on.
        if let Some(aes) = self.aes.as_mut() {
            w.ipc_roundtrip_payload(body.len() as u64);
            aes.encrypt(w, &mut body);
        }
        // HTTP → client: status line + headers + body.
        let header = format!(
            "{}\r\nContent-Length: {}\r\n\r\n",
            status.line(),
            body.len()
        );
        w.compute(150); // response assembly
        w.ipc_oneway(header.len() as u64 + body.len() as u64);
        self.served += 1;
        (status, body)
    }
}

/// Figure 8(c) driver: serve `requests` GETs for `path` and return the
/// throughput in operations per second under the world's mechanism.
pub fn http_throughput_ops(w: &mut World, server: &mut HttpServer, path: &str, requests: u64) -> f64 {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    let start = w.cycles;
    for _ in 0..requests {
        let (status, _) = server.handle(w, &raw);
        assert_eq!(status, Status::Ok, "bench file must exist");
    }
    let cycles = w.cycles - start;
    let secs = cycles as f64 / w.cost.clock_hz as f64;
    requests as f64 / secs
}

/// A mixed-path request workload: serve each (path, count) pair and
/// report total ops/s plus the per-status tally — closer to a real
/// webserver trace than a single hot file.
pub fn http_mixed_workload(
    w: &mut World,
    server: &mut HttpServer,
    requests: &[(&str, u64)],
) -> (f64, u64, u64) {
    let start = w.cycles;
    let (mut ok, mut not_found) = (0u64, 0u64);
    for (path, count) in requests {
        let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
        for _ in 0..*count {
            match server.handle(w, &raw).0 {
                Status::Ok => ok += 1,
                Status::NotFound => not_found += 1,
                Status::BadRequest => {}
            }
        }
    }
    let total: u64 = requests.iter().map(|(_, c)| c).sum();
    let secs = (w.cycles - start) as f64 / w.cost.clock_hz as f64;
    (total as f64 / secs, ok, not_found)
}

/// World extensions used by the chain: payload-bearing replies and
/// chain hops that a handover mechanism carries for free.
trait ChainIpc {
    fn ipc_reply_payload(&mut self, bytes: u64);
    fn ipc_roundtrip_payload(&mut self, bytes: u64);
}

impl ChainIpc for World {
    /// A reply carrying `bytes` of payload. Under handover the payload
    /// already sits in the relay segment — only a control reply is paid.
    fn ipc_reply_payload(&mut self, bytes: u64) {
        if self.handover() {
            self.ipc_oneway(16);
        } else {
            self.ipc_oneway(bytes);
        }
    }

    /// A downstream round trip whose payload continues along the chain.
    fn ipc_roundtrip_payload(&mut self, bytes: u64) {
        if self.handover() {
            self.ipc_roundtrip(16, 16);
        } else {
            self.ipc_roundtrip(bytes, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use simos::{Invocation, InvokeOpts, IpcSystem, Phase};

    struct Free;
    impl IpcSystem for Free {
        fn name(&self) -> String {
            "free".into()
        }
        fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
            Invocation::single(Phase::Trap, 1)
        }
    }

    fn server(aes: bool) -> HttpServer {
        let mut cache = FileCache::new();
        cache.put("/index.html", b"<html><body>42</body></html>".to_vec());
        let aes = aes.then(|| AesServer::new(b"0123456789abcdef"));
        HttpServer::new(cache, aes)
    }

    #[test]
    fn parses_request_lines() {
        let r = parse_request("GET /a/b.html HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/a/b.html");
        assert!(parse_request("garbage").is_none());
        assert!(parse_request("GET /x NOTHTTP").is_none());
    }

    #[test]
    fn serves_200_and_404() {
        let mut w = simos::World::new(Box::new(Free));
        let mut s = server(false);
        let (st, body) = s.handle(&mut w, "GET /index.html HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::Ok);
        assert_eq!(body, b"<html><body>42</body></html>");
        let (st, _) = s.handle(&mut w, "GET /missing HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::NotFound);
        let (st, _) = s.handle(&mut w, "POST /index.html HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::BadRequest);
        assert_eq!(s.served, 3);
    }

    #[test]
    fn encryption_mode_really_encrypts() {
        let mut w = simos::World::new(Box::new(Free));
        let mut s = server(true);
        let (st, body) = s.handle(&mut w, "GET /index.html HTTP/1.1\r\n\r\n");
        assert_eq!(st, Status::Ok);
        assert_ne!(body, b"<html><body>42</body></html>");
        // Decrypt with the same key/nonce to verify integrity.
        let aes = Aes128::new(b"0123456789abcdef");
        let mut plain = body.clone();
        aes.ctr_xor(0, &mut plain);
        assert_eq!(plain, b"<html><body>42</body></html>");
    }

    #[test]
    fn mixed_workload_tallies_statuses() {
        let mut w = simos::World::new(Box::new(Free));
        let mut s = server(false);
        let (ops, ok, nf) =
            http_mixed_workload(&mut w, &mut s, &[("/index.html", 5), ("/missing", 2)]);
        assert!(ops > 0.0);
        assert_eq!(ok, 5);
        assert_eq!(nf, 2);
    }

    #[test]
    fn encryption_costs_cycles() {
        let mut w1 = simos::World::new(Box::new(Free));
        let mut s1 = server(false);
        s1.handle(&mut w1, "GET /index.html HTTP/1.1\r\n\r\n");
        let mut w2 = simos::World::new(Box::new(Free));
        let mut s2 = server(true);
        s2.handle(&mut w2, "GET /index.html HTTP/1.1\r\n\r\n");
        assert!(w2.cycles > w1.cycles);
    }
}
