//! Property-based tests of the engine's architectural invariants under
//! random call/return interleavings driven by real guest execution.
//!
//! Gated behind the off-by-default `proptest` feature: enabling it
//! requires adding the external `proptest` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rv64::mem::DRAM_BASE;
use rv64::{reg, Assembler, Exit, Machine, MachineConfig};
use xpc_engine::{SegMask, SegReg, XEntry, XpcAsm, XpcEngine, XpcEngineConfig};

const TABLE: u64 = DRAM_BASE + 0x10_0000;
const CAP: u64 = DRAM_BASE + 0x11_0040;
const LINK: u64 = DRAM_BASE + 0x13_0080;
const CALLEE_BASE: u64 = DRAM_BASE + 0x2_0000;

fn engine(m: &mut Machine) -> &mut XpcEngine {
    m.extension()
        .as_any_mut()
        .downcast_mut::<XpcEngine>()
        .unwrap()
}

/// Build a machine with `n` entries whose callees immediately xret.
fn machine_with_entries(n: u64) -> Machine {
    let mut m = Machine::with_extension(
        MachineConfig::rocket_u500(),
        Box::new(XpcEngine::new(XpcEngineConfig::paper_default())),
    );
    let mut c = Assembler::new(CALLEE_BASE);
    c.xret();
    let callee = c.assemble();
    m.load_program_at(CALLEE_BASE, &callee);
    for id in 0..n {
        XEntry {
            page_table: 0,
            cap_ptr: CAP,
            entry_pc: CALLEE_BASE,
            valid: true,
        }
        .store(&mut m.core, TABLE, id)
        .unwrap();
    }
    // Grant all caps.
    for byte in 0..n.div_ceil(8) {
        m.core.mem.write(CAP + byte, 1, 0xff).unwrap();
    }
    let eng = engine(&mut m);
    eng.regs.x_entry_table = TABLE;
    eng.regs.x_entry_table_size = n;
    eng.regs.xcall_cap = CAP;
    eng.regs.link = LINK;
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any sequence of nested calls (depth ≤ 16) the link stack
    /// balances: after matching xrets it is exactly empty, and the
    /// engine's call/return counters agree.
    #[test]
    fn nested_calls_balance_the_link_stack(ids in prop::collection::vec(0u64..4, 1..16)) {
        let mut m = machine_with_entries(4);
        // Caller: a chain of `xcall id` as nested frames would do —
        // since every callee xrets immediately, emit call pairs
        // sequentially; nesting is exercised by re-entering CALLEE_BASE
        // from the "caller" side between frames.
        let mut a = Assembler::new(DRAM_BASE);
        for id in &ids {
            a.li(reg::T6, *id as i64);
            a.xcall(reg::T6);
        }
        a.ebreak();
        m.load_program(&a.assemble());
        let r = m.run(1_000_000).unwrap();
        prop_assert_eq!(r.exit, Exit::Break);
        let eng = engine(&mut m);
        prop_assert_eq!(eng.stats.xcalls, ids.len() as u64);
        prop_assert_eq!(eng.stats.xrets, ids.len() as u64);
        prop_assert_eq!(eng.regs.link_sp, 0, "stack balanced");
        prop_assert_eq!(eng.stats.exceptions, 0);
    }

    /// Out-of-range IDs always raise invalid x-entry, never execute.
    #[test]
    fn out_of_range_ids_always_trap(id in 4u64..1000) {
        let mut m = machine_with_entries(4);
        // Trap handler: stop.
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let mut a = Assembler::new(DRAM_BASE);
        a.li(reg::T1, (DRAM_BASE + 0x8000) as i64);
        a.csrw(0x305, reg::T1);
        a.li(reg::T6, id as i64);
        a.xcall(reg::T6);
        a.ebreak();
        m.load_program(&a.assemble());
        let r = m.run(100_000).unwrap();
        prop_assert_eq!(r.exit, Exit::Break);
        prop_assert_eq!(m.core.cpu.x(reg::A0), rv64::trap::Cause::InvalidXEntry.code());
        prop_assert_eq!(engine(&mut m).stats.xcalls, 0, "no call completed");
    }

    /// len/perm CSR packing round-trips for arbitrary field values.
    #[test]
    fn len_perm_round_trip(len in 0u64..1 << 48, writable: bool, paged: bool) {
        let seg = SegReg { va_base: 0, pa_base: 0, len, writable, paged };
        let mut back = SegReg::default();
        back.set_len_perm_raw(seg.len_perm_raw());
        prop_assert_eq!(back.len, len);
        prop_assert_eq!(back.writable, writable);
        prop_assert_eq!(back.paged, paged);
    }

    /// Masking is idempotent: masking an already-masked segment with the
    /// same window changes nothing.
    #[test]
    fn masking_is_idempotent(base in 0u64..1 << 30, len in 4096u64..1 << 20,
                             off in 0u64..1 << 12, mlen in 1u64..4096) {
        let seg = SegReg { va_base: base, pa_base: 0x9000_0000, len, writable: true, paged: false };
        let mask = SegMask { va_base: base + off, len: mlen };
        prop_assume!(mask.within(&seg));
        let once = seg.masked(mask);
        let twice = once.masked(mask);
        prop_assert_eq!(once, twice);
    }
}
