//! Table 2 conformance: every register, instruction and exception the
//! paper specifies exists with the documented semantics. This is the
//! architectural contract of the reproduction, enumerated row by row.

use rv64::trap::Cause;
use rv64::{reg, Assembler, Exit, Machine, MachineConfig};
use xpc_engine::asm_ext::{encode_swapseg, encode_xcall, encode_xret};
use xpc_engine::csr_map as csr;
use xpc_engine::{XpcEngine, XpcEngineConfig};

fn machine() -> Machine {
    Machine::with_extension(
        MachineConfig::rocket_u500(),
        Box::new(XpcEngine::new(XpcEngineConfig::paper_default())),
    )
}

/// Table 2, "Register Name" column: all seven architectural registers
/// (plus the two implementation registers) are CSR-addressable.
#[test]
fn all_table2_registers_are_addressable() {
    let mut m = machine();
    // Write from M-mode through real CSR instructions, read back.
    let regs: [(u16, u64); 9] = [
        (csr::XPC_XENTRY_TABLE, 0x8001_0000),
        (csr::XPC_XENTRY_TABLE_SIZE, 1024),
        (csr::XPC_XCALL_CAP, 0x8002_0000),
        (csr::XPC_LINK, 0x8003_0000),
        (csr::XPC_LINK_SP, 160),
        (csr::XPC_SEG_VA, 0x7000_0000),
        (csr::XPC_SEG_PA, 0x8004_0000),
        (csr::XPC_SEG_LIST, 0x8005_0000),
        (csr::XPC_SEG_LIST_SIZE, 128),
    ];
    let mut a = Assembler::new(rv64::mem::DRAM_BASE);
    for (i, (addr, val)) in regs.iter().enumerate() {
        a.li(reg::T1, *val as i64);
        a.csrw(*addr, reg::T1);
        a.li(
            reg::T2,
            (rv64::mem::DRAM_BASE + 0x9000 + 8 * i as u64) as i64,
        );
        a.csrr(reg::T3, *addr);
        a.sd(reg::T3, reg::T2, 0);
    }
    a.ebreak();
    let mut mprog = a.assemble();
    m.load_program(&mprog);
    let r = m.run(10_000).unwrap();
    assert_eq!(r.exit, Exit::Break);
    for (i, (_, val)) in regs.iter().enumerate() {
        let got = m
            .core
            .mem
            .read(rv64::mem::DRAM_BASE + 0x9000 + 8 * i as u64, 8)
            .unwrap();
        assert_eq!(got, *val, "register {i} round trip");
    }
    let _ = &mut mprog;
}

/// Table 2, "Instruction" column: the three instructions decode in the
/// custom-0 space with the documented operand positions.
#[test]
fn all_table2_instructions_encode() {
    for (word, f3) in [
        (encode_xcall(17), 0u32),
        (encode_xret(), 1),
        (encode_swapseg(9), 2),
    ] {
        assert_eq!(word & 0x7f, 0b000_1011, "custom-0 opcode");
        assert_eq!((word >> 12) & 7, f3, "funct3 selects the operation");
    }
    assert_eq!((encode_xcall(17) >> 15) & 31, 17, "xcall rs1");
    assert_eq!((encode_swapseg(9) >> 15) & 31, 9, "swapseg rs1");
}

/// Table 2, "Exception" column: all five causes exist, are distinct, and
/// sit in the custom cause range.
#[test]
fn all_table2_exceptions_exist() {
    let causes = [
        (Cause::InvalidXEntry, "xcall"),
        (Cause::InvalidXcallCap, "xcall"),
        (Cause::InvalidLinkage, "xret"),
        (Cause::SwapsegError, "swapseg"),
        (Cause::InvalidSegMask, "csrw seg-mask"),
    ];
    let mut codes: Vec<u64> = causes.iter().map(|(c, _)| c.code()).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), 5, "distinct cause codes");
    for (c, _) in causes {
        assert!(c.is_xpc());
        assert_eq!(Cause::from_code(c.code()), Some(c), "round trip");
    }
}

/// Table 2 access rules: user mode may read the seg registers but only
/// write seg-mask; the kernel registers are unreachable from user mode.
#[test]
fn table2_privilege_matrix() {
    // Kernel CSRs (0x5xx) are S-level by address-range convention.
    for a in [
        csr::XPC_XENTRY_TABLE,
        csr::XPC_XENTRY_TABLE_SIZE,
        csr::XPC_XCALL_CAP,
        csr::XPC_LINK,
        csr::XPC_LINK_SP,
        csr::XPC_SEG_LIST_SIZE,
    ] {
        assert_eq!((a >> 8) & 0b11, 0b01, "{a:#x} kernel-level");
    }
    // User-readable CSRs (0x8xx).
    for a in [
        csr::XPC_SEG_VA,
        csr::XPC_SEG_PA,
        csr::XPC_SEG_LEN_PERM,
        csr::XPC_SEG_MASK_VA,
        csr::XPC_SEG_MASK_LEN,
        csr::XPC_SEG_LIST,
    ] {
        assert_eq!((a >> 8) & 0b11, 0b00, "{a:#x} user-level");
    }
}
