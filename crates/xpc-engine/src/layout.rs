//! In-memory layouts of the XPC engine's architectural structures: the
//! x-entry table, linkage records on the link stack, and relay segment
//! descriptors in the seg-list.
//!
//! The layouts are part of the hardware/software contract: the kernel (the
//! control plane, §3) writes these structures with ordinary stores and the
//! engine walks them with hardware accesses, so both sides must agree on
//! every offset. Sizes are multiples of 8 and kept cache-line friendly.

use rv64::machine::Core;
use rv64::trap::Trap;

/// One x-entry (paper Figure 2): a procedure another process may `xcall`.
///
/// 32 bytes in memory:
/// `+0` page-table pointer (raw `satp`), `+8` capability pointer (the
/// callee's xcall-cap-reg value), `+16` entrance address, `+24` flags
/// (bit 0 = valid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XEntry {
    /// Callee address space (raw `satp` value).
    pub page_table: u64,
    /// Callee capability-bitmap address (becomes `xcall-cap-reg`).
    pub cap_ptr: u64,
    /// Procedure entrance PC.
    pub entry_pc: u64,
    /// Valid bit.
    pub valid: bool,
}

/// Size of one x-entry in bytes.
pub const XENTRY_BYTES: u64 = 32;

impl XEntry {
    /// Read entry `id` from the table at `table_pa`, charging the engine's
    /// memory accesses through the core's D-cache.
    ///
    /// # Errors
    ///
    /// Propagates physical access faults (bad table pointer).
    pub fn load(core: &mut Core, table_pa: u64, id: u64) -> Result<XEntry, Trap> {
        let base = table_pa + id * XENTRY_BYTES;
        Ok(XEntry {
            page_table: core.phys_load(base, 8)?,
            cap_ptr: core.phys_load(base + 8, 8)?,
            entry_pc: core.phys_load(base + 16, 8)?,
            valid: core.phys_load(base + 24, 8)? & 1 == 1,
        })
    }

    /// Write entry `id` into the table at `table_pa` (kernel-side store).
    ///
    /// # Errors
    ///
    /// Propagates physical access faults.
    pub fn store(&self, core: &mut Core, table_pa: u64, id: u64) -> Result<(), Trap> {
        let base = table_pa + id * XENTRY_BYTES;
        core.phys_store(base, 8, self.page_table)?;
        core.phys_store(base + 8, 8, self.cap_ptr)?;
        core.phys_store(base + 16, 8, self.entry_pc)?;
        core.phys_store(base + 24, 8, self.valid as u64)
    }
}

/// The relay segment register (`seg-reg`, 3×64 bits in Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegReg {
    /// Virtual base.
    pub va_base: u64,
    /// Physical base (data, or the relay page table when `paged`).
    pub pa_base: u64,
    /// Length in bytes (bits 47:0 of the len/perm register).
    pub len: u64,
    /// Writable permission (bit 63 of the len/perm register).
    pub writable: bool,
    /// §6.2 relay-page-table mode (bit 62 of the len/perm register):
    /// the segment's backing memory is scattered pages reached through a
    /// one-level table; masks must then be page-granular.
    pub paged: bool,
}

impl SegReg {
    /// Pack length+permission into the raw CSR value.
    pub fn len_perm_raw(&self) -> u64 {
        (self.len & ((1 << 48) - 1)) | ((self.writable as u64) << 63) | ((self.paged as u64) << 62)
    }

    /// Unpack a raw len/perm CSR value into this register.
    pub fn set_len_perm_raw(&mut self, raw: u64) {
        self.len = raw & ((1 << 48) - 1);
        self.writable = raw >> 63 == 1;
        self.paged = (raw >> 62) & 1 == 1;
    }

    /// An empty (invalid) segment.
    pub fn invalid() -> SegReg {
        SegReg::default()
    }

    /// Whether the segment maps anything.
    pub fn is_valid(&self) -> bool {
        self.len > 0
    }

    /// Intersect with a mask, producing the callee-visible segment.
    /// An unset mask yields the segment unchanged; a mask outside the
    /// segment yields the empty segment (callers validate before this).
    pub fn masked(&self, mask: SegMask) -> SegReg {
        if !mask.is_set() {
            return *self;
        }
        if mask.va_base < self.va_base || mask.va_base + mask.len > self.va_base + self.len {
            return SegReg::invalid();
        }
        if self.paged {
            // Page-granular shrink (§6.2): the table pointer advances by
            // whole slots; validation guarantees page alignment.
            let off = mask.va_base - self.va_base;
            debug_assert_eq!(off % 4096, 0, "paged masks are page-granular");
            return SegReg {
                va_base: mask.va_base,
                pa_base: self.pa_base + (off >> 12) * 8,
                len: mask.len,
                writable: self.writable,
                paged: true,
            };
        }
        SegReg {
            va_base: mask.va_base,
            pa_base: self.pa_base + (mask.va_base - self.va_base),
            len: mask.len,
            writable: self.writable,
            paged: false,
        }
    }
}

/// The seg-mask register (2×64 bits in Table 2): a user-shrinkable window
/// over the current relay segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegMask {
    /// Masked virtual base.
    pub va_base: u64,
    /// Masked length; [`crate::csr_map::SEG_MASK_NONE`] means unset.
    pub len: u64,
}

impl SegMask {
    /// The cleared mask.
    pub fn none() -> SegMask {
        SegMask {
            va_base: 0,
            len: crate::csr_map::SEG_MASK_NONE,
        }
    }

    /// Whether a mask is currently set.
    pub fn is_set(&self) -> bool {
        self.len != crate::csr_map::SEG_MASK_NONE
    }

    /// Whether the mask lies fully inside `seg`.
    pub fn within(&self, seg: &SegReg) -> bool {
        !self.is_set()
            || (self.va_base >= seg.va_base
                && self
                    .va_base
                    .checked_add(self.len)
                    .is_some_and(|end| end <= seg.va_base + seg.len))
    }

    /// Full validity against `seg`: inside it, and — for a §6.2 paged
    /// segment — page-granular (the relay page table cannot express
    /// sub-page windows; "relay page table can only support page-level
    /// granularity").
    pub fn valid_for(&self, seg: &SegReg) -> bool {
        if !self.within(seg) {
            return false;
        }
        if self.is_set() && seg.paged {
            return self.va_base.is_multiple_of(4096) && self.len.is_multiple_of(4096);
        }
        true
    }
}

impl Default for SegMask {
    fn default() -> Self {
        SegMask::none()
    }
}

/// One slot of the per-process seg-list (Figure 2's "Relay Segment List").
///
/// 32 bytes: `+0` VA base, `+8` PA base, `+16` len/perm, `+24` flags
/// (bit 0 = slot valid; a valid slot with zero length swaps in an *empty*
/// segment, which is how a thread invalidates its `seg-reg`, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegDescriptor {
    /// The stored segment.
    pub seg: SegReg,
    /// Slot validity (kernel-managed).
    pub valid: bool,
}

/// Size of one seg-list slot in bytes.
pub const SEG_SLOT_BYTES: u64 = 32;

impl SegDescriptor {
    /// Read slot `idx` of the list at `list_pa` with engine accesses.
    ///
    /// # Errors
    ///
    /// Propagates physical access faults.
    pub fn load(core: &mut Core, list_pa: u64, idx: u64) -> Result<SegDescriptor, Trap> {
        let base = list_pa + idx * SEG_SLOT_BYTES;
        let mut seg = SegReg {
            va_base: core.phys_load(base, 8)?,
            pa_base: core.phys_load(base + 8, 8)?,
            ..SegReg::default()
        };
        seg.set_len_perm_raw(core.phys_load(base + 16, 8)?);
        let valid = core.phys_load(base + 24, 8)? & 1 == 1;
        Ok(SegDescriptor { seg, valid })
    }

    /// Write slot `idx` of the list at `list_pa`.
    ///
    /// # Errors
    ///
    /// Propagates physical access faults.
    pub fn store(&self, core: &mut Core, list_pa: u64, idx: u64) -> Result<(), Trap> {
        let base = list_pa + idx * SEG_SLOT_BYTES;
        core.phys_store(base, 8, self.seg.va_base)?;
        core.phys_store(base + 8, 8, self.seg.pa_base)?;
        core.phys_store(base + 16, 8, self.seg.len_perm_raw())?;
        core.phys_store(base + 24, 8, self.valid as u64)
    }
}

/// A linkage record on the per-thread link stack (§3.2): everything needed
/// to return to the caller that user space cannot be trusted to recover.
///
/// 80 bytes: satp, return PC, xcall-cap-reg, seg-list-reg, seg-list-size,
/// seg (3 words), mask (2 words at 56/64 — packed with list size), flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkageRecord {
    /// Caller address space (raw `satp`).
    pub satp: u64,
    /// Return address (instruction after the `xcall`).
    pub ret_pc: u64,
    /// Caller capability bitmap address.
    pub xcall_cap: u64,
    /// Caller seg-list base.
    pub seg_list: u64,
    /// Caller relay segment at call time.
    pub seg: SegReg,
    /// Caller seg-mask at call time.
    pub mask: SegMask,
    /// Valid bit — cleared by the kernel when the caller terminates
    /// (§4.2 "Application Termination").
    pub valid: bool,
}

/// Size of one linkage record in bytes.
pub const LINK_RECORD_BYTES: u64 = 80;

/// Capacity of a per-thread link stack (§4.1 allocates 8 KiB per thread).
pub const LINK_STACK_BYTES: u64 = 8192;

impl LinkageRecord {
    /// Read the record at byte offset `off` on the stack at `stack_pa`.
    ///
    /// # Errors
    ///
    /// Propagates physical access faults.
    pub fn load(core: &mut Core, stack_pa: u64, off: u64) -> Result<LinkageRecord, Trap> {
        let b = stack_pa + off;
        let satp = core.phys_load(b, 8)?;
        let ret_pc = core.phys_load(b + 8, 8)?;
        let xcall_cap = core.phys_load(b + 16, 8)?;
        let seg_list = core.phys_load(b + 24, 8)?;
        let mut seg = SegReg {
            va_base: core.phys_load(b + 32, 8)?,
            pa_base: core.phys_load(b + 40, 8)?,
            ..SegReg::default()
        };
        seg.set_len_perm_raw(core.phys_load(b + 48, 8)?);
        let mask = SegMask {
            va_base: core.phys_load(b + 56, 8)?,
            len: core.phys_load(b + 64, 8)?,
        };
        let valid = core.phys_load(b + 72, 8)? & 1 == 1;
        Ok(LinkageRecord {
            satp,
            ret_pc,
            xcall_cap,
            seg_list,
            seg,
            mask,
            valid,
        })
    }

    /// Write the record at byte offset `off` on the stack at `stack_pa`.
    /// `charged` selects whether the stores go through the D-cache timing
    /// model (blocking link stack) or are buffered for free (the
    /// non-blocking optimization of §3.2 — data is still written).
    ///
    /// # Errors
    ///
    /// Propagates physical access faults.
    pub fn store(
        &self,
        core: &mut Core,
        stack_pa: u64,
        off: u64,
        charged: bool,
    ) -> Result<(), Trap> {
        let b = stack_pa + off;
        let words = [
            self.satp,
            self.ret_pc,
            self.xcall_cap,
            self.seg_list,
            self.seg.va_base,
            self.seg.pa_base,
            self.seg.len_perm_raw(),
            self.mask.va_base,
            self.mask.len,
            self.valid as u64,
        ];
        for (i, w) in words.iter().enumerate() {
            let pa = b + 8 * i as u64;
            if charged {
                core.phys_store(pa, 8, *w)?;
            } else {
                // Buffered store: free on the critical path, but it still
                // drains into the cache, so the matching xret loads hit.
                core.mem.write(pa, 8, *w)?;
                core.dcache.touch(pa);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv64::mem::DRAM_BASE;
    use rv64::{Core, MachineConfig};

    fn core() -> Core {
        Core::new(MachineConfig::rocket_u500())
    }

    #[test]
    fn xentry_round_trip() {
        let mut c = core();
        let e = XEntry {
            page_table: 0x8000_0000_0001_2345,
            cap_ptr: DRAM_BASE + 0x100,
            entry_pc: 0x40_0000,
            valid: true,
        };
        e.store(&mut c, DRAM_BASE + 0x1000, 3).unwrap();
        assert_eq!(XEntry::load(&mut c, DRAM_BASE + 0x1000, 3).unwrap(), e);
    }

    #[test]
    fn linkage_round_trip_charged_and_not() {
        let mut c = core();
        let r = LinkageRecord {
            satp: 1,
            ret_pc: 2,
            xcall_cap: 3,
            seg_list: 4,
            seg: SegReg {
                va_base: 0x1000,
                pa_base: DRAM_BASE,
                len: 4096,
                writable: true,
                paged: false,
            },
            mask: SegMask {
                va_base: 0x1000,
                len: 64,
            },
            valid: true,
        };
        r.store(&mut c, DRAM_BASE + 0x2000, 0, true).unwrap();
        assert_eq!(
            LinkageRecord::load(&mut c, DRAM_BASE + 0x2000, 0).unwrap(),
            r
        );
        let before = c.cycles;
        r.store(&mut c, DRAM_BASE + 0x3000, 80, false).unwrap();
        assert_eq!(c.cycles, before, "non-blocking store is uncharged");
        assert_eq!(
            LinkageRecord::load(&mut c, DRAM_BASE + 0x3000, 80).unwrap(),
            r
        );
    }

    #[test]
    fn seg_masking_intersects() {
        let seg = SegReg {
            va_base: 0x1000,
            pa_base: 0x8000_0000,
            len: 0x1000,
            writable: true,
            paged: false,
        };
        let m = SegMask {
            va_base: 0x1800,
            len: 0x100,
        };
        let s = seg.masked(m);
        assert_eq!(s.va_base, 0x1800);
        assert_eq!(s.pa_base, 0x8000_0800);
        assert_eq!(s.len, 0x100);
        assert!(s.writable);
    }

    #[test]
    fn unset_mask_is_identity() {
        let seg = SegReg {
            va_base: 0x1000,
            pa_base: 0x8000_0000,
            len: 0x1000,
            writable: false,
            paged: false,
        };
        assert_eq!(seg.masked(SegMask::none()), seg);
    }

    #[test]
    fn mask_within_checks_bounds() {
        let seg = SegReg {
            va_base: 0x1000,
            pa_base: 0,
            len: 0x1000,
            writable: false,
            paged: false,
        };
        assert!(SegMask {
            va_base: 0x1000,
            len: 0x1000
        }
        .within(&seg));
        assert!(!SegMask {
            va_base: 0xfff,
            len: 8
        }
        .within(&seg));
        assert!(!SegMask {
            va_base: 0x1ff9,
            len: 0x10
        }
        .within(&seg));
        assert!(SegMask::none().within(&seg));
    }

    #[test]
    fn mask_overflow_is_rejected() {
        let seg = SegReg {
            va_base: 0x1000,
            pa_base: 0,
            len: 0x1000,
            writable: false,
            paged: false,
        };
        assert!(!SegMask {
            va_base: 0x1800,
            len: u64::MAX - 1
        }
        .within(&seg));
    }

    #[test]
    fn len_perm_packing() {
        let mut s = SegReg::default();
        s.set_len_perm_raw((1 << 63) | 4096);
        assert!(s.writable);
        assert_eq!(s.len, 4096);
        assert_eq!(s.len_perm_raw(), (1 << 63) | 4096);
    }

    #[test]
    fn seg_descriptor_round_trip() {
        let mut c = core();
        let d = SegDescriptor {
            seg: SegReg {
                va_base: 0x7000,
                pa_base: DRAM_BASE + 0x9000,
                len: 64,
                writable: true,
                paged: false,
            },
            valid: true,
        };
        d.store(&mut c, DRAM_BASE + 0x4000, 5).unwrap();
        assert_eq!(
            SegDescriptor::load(&mut c, DRAM_BASE + 0x4000, 5).unwrap(),
            d
        );
    }
}
