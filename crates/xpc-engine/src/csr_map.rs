//! CSR addresses of the XPC engine (Table 2 of the paper).
//!
//! Address-range privilege follows the RISC-V convention the core enforces:
//! `0x5xx` CSRs are supervisor-only (the kernel control plane), `0x8xx`
//! CSRs are user-reachable (the relay-segment registers the paper marks
//! "R/ in user mode" / "R/W in user mode"). Writes to the user-readable
//! but kernel-owned registers are additionally mode-checked by the engine.
//!
//! One deliberate implementation choice: the paper's registers hold virtual
//! addresses; here they hold *physical* addresses and the kernel keeps all
//! XPC objects in identity-mapped kernel memory. This keeps the hardware
//! table walks deterministic without modelling a second translation path,
//! and matches how the prototype kernel in the `xpc` crate lays out memory.

/// Base address of the x-entry table (S-mode R/W).
pub const XPC_XENTRY_TABLE: u16 = 0x5c0;
/// Number of entries in the x-entry table (S-mode R/W).
pub const XPC_XENTRY_TABLE_SIZE: u16 = 0x5c1;
/// Per-thread xcall capability bitmap address (S-mode R/W).
pub const XPC_XCALL_CAP: u16 = 0x5c2;
/// Per-thread link stack base (S-mode R/W).
pub const XPC_LINK: u16 = 0x5c3;
/// Link stack top offset in bytes (S-mode R/W; saved on context switch).
pub const XPC_LINK_SP: u16 = 0x5c4;
/// Number of slots in the per-process relay segment list (S-mode R/W).
pub const XPC_SEG_LIST_SIZE: u16 = 0x5c6;

/// Relay segment virtual base (user-readable, kernel-writable).
pub const XPC_SEG_VA: u16 = 0x8c0;
/// Relay segment physical base (user-readable, kernel-writable).
pub const XPC_SEG_PA: u16 = 0x8c1;
/// Relay segment length+permission (user-readable, kernel-writable).
/// Bits 47:0 length in bytes; bit 63 set = writable.
pub const XPC_SEG_LEN_PERM: u16 = 0x8c2;
/// Seg-mask virtual base (user R/W).
pub const XPC_SEG_MASK_VA: u16 = 0x8c3;
/// Seg-mask length (user R/W; the write validates the pair and raises
/// invalid seg-mask if it leaves the current relay segment).
pub const XPC_SEG_MASK_LEN: u16 = 0x8c4;
/// Per-process relay segment list base (user-readable, kernel-writable).
pub const XPC_SEG_LIST: u16 = 0x8c5;

/// Sentinel stored in the seg-mask length meaning "no mask set".
pub const SEG_MASK_NONE: u64 = u64::MAX;

/// All engine CSR addresses, for save/restore loops in kernels.
pub const ALL: [u16; 12] = [
    XPC_XENTRY_TABLE,
    XPC_XENTRY_TABLE_SIZE,
    XPC_XCALL_CAP,
    XPC_LINK,
    XPC_LINK_SP,
    XPC_SEG_LIST_SIZE,
    XPC_SEG_VA,
    XPC_SEG_PA,
    XPC_SEG_LEN_PERM,
    XPC_SEG_MASK_VA,
    XPC_SEG_MASK_LEN,
    XPC_SEG_LIST,
];

/// The per-thread CSRs the kernel must save/restore on a context switch
/// (§4.1: "During a context switch, the kernel saves and restores the
/// per_thread objects").
pub const PER_THREAD: [u16; 3] = [XPC_XCALL_CAP, XPC_LINK, XPC_LINK_SP];

/// The per-address-space CSRs (seg-list) plus live segment state.
pub const PER_SPACE: [u16; 6] = [
    XPC_SEG_LIST,
    XPC_SEG_LIST_SIZE,
    XPC_SEG_VA,
    XPC_SEG_PA,
    XPC_SEG_LEN_PERM,
    XPC_SEG_MASK_VA,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_csrs_are_supervisor_range() {
        for a in [
            XPC_XENTRY_TABLE,
            XPC_XENTRY_TABLE_SIZE,
            XPC_XCALL_CAP,
            XPC_LINK,
        ] {
            assert_eq!((a >> 8) & 0b11, 0b01, "{a:#x} should be S-level");
        }
    }

    #[test]
    fn seg_csrs_are_user_range() {
        for a in [XPC_SEG_VA, XPC_SEG_MASK_VA, XPC_SEG_MASK_LEN, XPC_SEG_LIST] {
            assert_eq!((a >> 8) & 0b11, 0b00, "{a:#x} should be U-level");
        }
    }

    #[test]
    fn addresses_unique() {
        let mut v = ALL.to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), ALL.len());
    }
}
