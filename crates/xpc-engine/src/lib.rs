//! The XPC engine of *XPC: Architectural Support for Secure and Efficient
//! Cross Process Call* (ISCA'19), implemented as an [`rv64`] ISA extension.
//!
//! The engine adds, per §3 and Table 2 of the paper:
//!
//! * **x-entry table** — a global table of callable entries, addressed by
//!   `x-entry-table-reg` and bounded by `x-entry-table-size`;
//! * **xcall-cap bitmap** — a per-thread capability bitmap at
//!   `xcall-cap-reg`, checked in hardware on every `xcall`;
//! * **link stack** — a per-thread stack of linkage records at `link-reg`
//!   used by `xret` and validated against tampering/termination;
//! * **relay segment** — `seg-reg`/`seg-mask`/`seg-list-reg`, a
//!   register-mapped message window translated ahead of the page table
//!   (installed into [`rv64::mmu::Mmu::seg_window`]);
//! * **instructions** `xcall #reg`, `xret`, `swapseg #reg` in the custom-0
//!   opcode space;
//! * **five exceptions** — invalid x-entry, invalid xcall-cap, invalid
//!   linkage, swapseg error, invalid seg-mask;
//! * the two §3.2 optimizations: a software-managed one-entry **engine
//!   cache** (prefetch by calling with a negative ID) and the
//!   **non-blocking link stack**.
//!
//! # Example
//!
//! Register an x-entry by writing engine CSRs from M/S-mode guest code,
//! grant the capability, then `xcall` from user mode — all executed on the
//! emulated core. See `crates/xpc-engine/tests/` and the `xpc` crate for
//! full scenarios.

#![forbid(unsafe_code)]

pub mod asm_ext;
pub mod cap;
pub mod config;
pub mod csr_map;
pub mod engine;
pub mod hwcost;
pub mod layout;

pub use asm_ext::XpcAsm;
pub use config::{XpcEngineConfig, XpcTimings};
pub use engine::{XpcEngine, XpcStats};
pub use layout::{LinkageRecord, SegDescriptor, SegMask, SegReg, XEntry};
