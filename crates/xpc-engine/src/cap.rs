//! xcall-cap representations: the bitmap the prototype uses, and the
//! radix-tree alternative §6.2 discusses ("Scalable xcall-cap"), kept here
//! so the `cap_scalability` ablation bench can compare lookup costs and
//! memory footprint.
//!
//! Both structures answer the same question the hardware asks on every
//! `xcall`: *may this thread invoke x-entry `id`?* — and both report the
//! number of 64-bit memory words a hardware walker would touch, which is
//! what the lookup cost model charges.

/// Result of a capability probe: the answer plus modelled memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapProbe {
    /// Whether the capability is present.
    pub allowed: bool,
    /// 64-bit words a hardware walker reads to decide.
    pub words_touched: u64,
}

/// Common interface of the capability stores.
pub trait CapStore {
    /// Grant capability `id`.
    fn grant(&mut self, id: u64);
    /// Revoke capability `id`.
    fn revoke(&mut self, id: u64);
    /// Probe capability `id`.
    fn probe(&self, id: u64) -> CapProbe;
    /// Bytes of backing memory currently used.
    fn footprint_bytes(&self) -> usize;
}

/// The paper's bitmap: one bit per x-entry, single word probe.
///
/// O(1) lookup (one word), but footprint scales with the *table size*, not
/// the number of grants — the scalability concern of §6.2.
#[derive(Debug, Clone)]
pub struct BitmapCaps {
    bits: Vec<u64>,
}

impl BitmapCaps {
    /// A bitmap covering `entries` x-entry IDs.
    pub fn new(entries: u64) -> Self {
        BitmapCaps {
            bits: vec![0; entries.div_ceil(64) as usize],
        }
    }
}

impl CapStore for BitmapCaps {
    fn grant(&mut self, id: u64) {
        let w = (id / 64) as usize;
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        self.bits[w] |= 1 << (id % 64);
    }

    fn revoke(&mut self, id: u64) {
        if let Some(w) = self.bits.get_mut((id / 64) as usize) {
            *w &= !(1 << (id % 64));
        }
    }

    fn probe(&self, id: u64) -> CapProbe {
        let allowed = self
            .bits
            .get((id / 64) as usize)
            .is_some_and(|w| (w >> (id % 64)) & 1 == 1);
        CapProbe {
            allowed,
            words_touched: 1,
        }
    }

    fn footprint_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// §6.2's radix-tree alternative: 3-level tree over the 64-bit ID space
/// with 64-ary fanout at the leaves. Footprint scales with grants; lookup
/// touches one word per level.
#[derive(Debug, Clone, Default)]
pub struct RadixCaps {
    root: RadixNode,
}

#[derive(Debug, Clone, Default)]
struct RadixNode {
    children: std::collections::BTreeMap<u16, RadixNode>,
    leaf_bits: u64,
}

const LEVEL_BITS: u64 = 9;
const LEVELS: u32 = 2; // two internal levels + a 64-bit leaf word

impl RadixCaps {
    /// An empty radix capability tree.
    pub fn new() -> Self {
        Self::default()
    }

    fn path(id: u64) -> ([u16; LEVELS as usize], u64) {
        let leaf_bit = id % 64;
        let mut rest = id / 64;
        let mut idx = [0u16; LEVELS as usize];
        for slot in idx.iter_mut().rev() {
            *slot = (rest & ((1 << LEVEL_BITS) - 1)) as u16;
            rest >>= LEVEL_BITS;
        }
        (idx, leaf_bit)
    }
}

impl CapStore for RadixCaps {
    fn grant(&mut self, id: u64) {
        let (idx, bit) = Self::path(id);
        let mut node = &mut self.root;
        for i in idx {
            node = node.children.entry(i).or_default();
        }
        node.leaf_bits |= 1 << bit;
    }

    fn revoke(&mut self, id: u64) {
        let (idx, bit) = Self::path(id);
        let mut node = &mut self.root;
        for i in idx {
            match node.children.get_mut(&i) {
                Some(n) => node = n,
                None => return,
            }
        }
        node.leaf_bits &= !(1 << bit);
    }

    fn probe(&self, id: u64) -> CapProbe {
        let (idx, bit) = Self::path(id);
        let mut node = &self.root;
        let mut words = 0;
        for i in idx {
            words += 1;
            match node.children.get(&i) {
                Some(n) => node = n,
                None => {
                    return CapProbe {
                        allowed: false,
                        words_touched: words,
                    }
                }
            }
        }
        words += 1;
        CapProbe {
            allowed: (node.leaf_bits >> bit) & 1 == 1,
            words_touched: words,
        }
    }

    fn footprint_bytes(&self) -> usize {
        fn count(n: &RadixNode) -> usize {
            // One pointer word per child slot plus the leaf word.
            8 + n.children.len() * 8 + n.children.values().map(count).sum::<usize>()
        }
        count(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn CapStore) {
        assert!(!store.probe(5).allowed);
        store.grant(5);
        assert!(store.probe(5).allowed);
        assert!(!store.probe(6).allowed);
        store.revoke(5);
        assert!(!store.probe(5).allowed);
        // Far-apart IDs.
        store.grant(0);
        store.grant(1023);
        store.grant(1_000_000);
        assert!(store.probe(0).allowed);
        assert!(store.probe(1023).allowed);
        assert!(store.probe(1_000_000).allowed);
        assert!(!store.probe(999_999).allowed);
    }

    #[test]
    fn bitmap_semantics() {
        let mut b = BitmapCaps::new(1024);
        exercise(&mut b);
    }

    #[test]
    fn radix_semantics() {
        let mut r = RadixCaps::new();
        exercise(&mut r);
    }

    #[test]
    fn bitmap_probe_is_one_word() {
        let mut b = BitmapCaps::new(1024);
        b.grant(100);
        assert_eq!(b.probe(100).words_touched, 1);
    }

    #[test]
    fn radix_probe_costs_levels() {
        let mut r = RadixCaps::new();
        r.grant(100);
        assert_eq!(r.probe(100).words_touched, LEVELS as u64 + 1);
        // Early-out on absent subtree touches fewer words.
        assert!(r.probe(u64::MAX / 2).words_touched <= LEVELS as u64 + 1);
    }

    #[test]
    fn footprints_diverge_as_6_2_predicts() {
        // Sparse grants over a huge ID space: bitmap explodes, radix stays
        // proportional to grants.
        let mut b = BitmapCaps::new(64);
        let mut r = RadixCaps::new();
        for id in [0u64, 1 << 20, 1 << 24] {
            b.grant(id);
            r.grant(id);
        }
        assert!(b.footprint_bytes() > 1 << 20);
        assert!(r.footprint_bytes() < 1 << 12);
        // Dense small table: bitmap wins.
        let mut b2 = BitmapCaps::new(1024);
        let mut r2 = RadixCaps::new();
        for id in 0..1024 {
            b2.grant(id);
            r2.grant(id);
        }
        assert!(b2.footprint_bytes() <= r2.footprint_bytes());
    }
}
