//! Hardware resource cost model (Table 6).
//!
//! The paper reports Vivado synthesis results for the Freedom U500 with and
//! without the XPC engine. We cannot synthesize RTL here, so this module
//! does two things, clearly separated:
//!
//! 1. records the **published** Table 6 numbers verbatim, and
//! 2. derives a **first-order estimate** of the engine's LUT/FF cost from
//!    its architectural state (7 new CSRs, comparators, adders), to show
//!    the published deltas are consistent with the design's size.
//!
//! `EXPERIMENTS.md` reports both, labeled as published vs modeled.

/// One row of the FPGA utilization table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceRow {
    /// Resource class name.
    pub resource: &'static str,
    /// Baseline Freedom U500 usage.
    pub freedom: u64,
    /// Usage with the XPC engine.
    pub xpc: u64,
}

impl ResourceRow {
    /// Relative cost in percent (the paper's "Cost" column).
    pub fn cost_percent(&self) -> f64 {
        if self.freedom == 0 {
            0.0
        } else {
            (self.xpc as f64 - self.freedom as f64) / self.freedom as f64 * 100.0
        }
    }
}

/// The published Table 6 (Freedom U500, Vivado, no engine cache).
pub fn published_table6() -> Vec<ResourceRow> {
    vec![
        ResourceRow {
            resource: "LUT",
            freedom: 44_643,
            xpc: 45_531,
        },
        ResourceRow {
            resource: "LUTRAM",
            freedom: 3_370,
            xpc: 3_370,
        },
        ResourceRow {
            resource: "SRL",
            freedom: 636,
            xpc: 636,
        },
        ResourceRow {
            resource: "FF",
            freedom: 30_379,
            xpc: 31_386,
        },
        ResourceRow {
            resource: "RAMB36",
            freedom: 3,
            xpc: 3,
        },
        ResourceRow {
            resource: "RAMB18",
            freedom: 48,
            xpc: 48,
        },
        ResourceRow {
            resource: "DSP48 Blocks",
            freedom: 15,
            xpc: 16,
        },
    ]
}

/// First-order structural estimate of the engine's incremental cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineEstimate {
    /// Flip-flops for architectural registers.
    pub ff: u64,
    /// LUTs for muxing/compare/add logic.
    pub lut: u64,
    /// DSP blocks (address arithmetic).
    pub dsp: u64,
}

/// Estimate from the architectural register inventory: 7 paper registers
/// plus the implementation's link-sp/list-size (~12 × 64-bit state words,
/// not all bits implemented), comparators for bounds/validity checks, and
/// adders for table indexing. Constants follow common FPGA rules of thumb
/// (1 FF/bit of state, ~0.5 LUT/bit of compare/mux fabric).
pub fn estimated_engine_cost() -> EngineEstimate {
    let csr_bits: u64 = [
        64,           // x-entry-table-reg
        16,           // x-entry-table-size (1024 entries needs 10+ bits)
        64,           // xcall-cap-reg
        64,           // link-reg
        13,           // link-sp (8 KiB stack)
        64 + 64 + 49, // seg-reg (va, pa, len+perm)
        64 + 49,      // seg-mask
        64 + 8,       // seg-list + size
    ]
    .iter()
    .sum();
    // Comparators: cap bit test, table bound, mask-in-seg (2×64-bit),
    // seg equality on xret (3×64-bit), link bound.
    let compare_bits: u64 = 64 * 7;
    // Adders: table index (id*32), stack offset, seg offset arithmetic.
    let adder_bits: u64 = 64 * 3;
    EngineEstimate {
        ff: csr_bits,
        lut: compare_bits / 2 + adder_bits / 2 + csr_bits / 4,
        dsp: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_lut_cost_is_1_99_percent() {
        let t = published_table6();
        let lut = t.iter().find(|r| r.resource == "LUT").unwrap();
        assert!((lut.cost_percent() - 1.99).abs() < 0.01);
    }

    #[test]
    fn published_ff_cost_is_3_31_percent() {
        let t = published_table6();
        let ff = t.iter().find(|r| r.resource == "FF").unwrap();
        assert!((ff.cost_percent() - 3.31).abs() < 0.01);
    }

    #[test]
    fn ram_unchanged() {
        for r in published_table6() {
            if r.resource.starts_with("RAMB") || r.resource == "LUTRAM" {
                assert_eq!(r.freedom, r.xpc, "{} must not grow", r.resource);
            }
        }
    }

    #[test]
    fn estimate_is_same_order_as_published_delta() {
        // Published deltas: +888 LUT, +1007 FF, +1 DSP.
        let e = estimated_engine_cost();
        assert!(e.ff > 300 && e.ff < 3000, "FF estimate {} off-order", e.ff);
        assert!(
            e.lut > 200 && e.lut < 3000,
            "LUT estimate {} off-order",
            e.lut
        );
        assert_eq!(e.dsp, 1);
    }
}
