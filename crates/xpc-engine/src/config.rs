//! Engine configuration and the calibrated timing constants.
//!
//! The constants below are the "XPC logic" cycles the engine charges on top
//! of its real (cache-modelled) memory accesses. They are calibrated so the
//! *warm-cache* totals land on the paper's measurements:
//!
//! * Figure 5: `xcall` = 34 cycles baseline, 18 with the non-blocking link
//!   stack (−16), 6 with the engine cache on top (−12);
//! * Table 3: `xcall` 18, `xret` 23, `swapseg` 11 (measured in the paper
//!   under the default configuration, i.e. non-blocking link stack).
//!
//! Warm-cache arithmetic with the Rocket D-cache model (1 cycle/hit):
//! `xcall` = 1 fetch + logic 2 + cap (1 load + 2) + entry (4 loads + 8) +
//! push (10 stores + 6 drain) = 34; dropping the push gives 18; an
//! engine-cache hit drops the entry fetch too, giving 6 (+1 fetch = 7
//! issue slot, matching the paper's "one xcall can achieve 6 cycles"
//! engine view).

/// Feature toggles of the engine (the Figure 5 ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpcEngineConfig {
    /// §3.2 "XPC Engine Cache": one software-managed entry, prefetch via
    /// `xcall` with a negative ID.
    pub engine_cache: bool,
    /// §3.2 non-blocking link stack: linkage-record pushes are buffered and
    /// retire off the critical path.
    pub nonblocking_link_stack: bool,
    /// Timing constants.
    pub timings: XpcTimings,
}

impl XpcEngineConfig {
    /// The paper's default evaluation configuration: "Full-Cxt with
    /// Non-blocking Link Stack" (§5.2).
    pub fn paper_default() -> Self {
        XpcEngineConfig {
            engine_cache: false,
            nonblocking_link_stack: true,
            timings: XpcTimings::rocket(),
        }
    }

    /// Everything off: the "Full-Cxt"/"Partial-Cxt" baseline of Figure 5.
    pub fn minimal() -> Self {
        XpcEngineConfig {
            engine_cache: false,
            nonblocking_link_stack: false,
            timings: XpcTimings::rocket(),
        }
    }

    /// Everything on: the "+Engine Cache" rightmost bar of Figure 5.
    pub fn all_optimizations() -> Self {
        XpcEngineConfig {
            engine_cache: true,
            nonblocking_link_stack: true,
            timings: XpcTimings::rocket(),
        }
    }
}

impl Default for XpcEngineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Fixed logic cycles charged by the engine beyond its memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XpcTimings {
    /// Base `xcall` dispatch/redirect cost.
    pub xcall_logic: u64,
    /// Capability bitmap check beyond the bitmap load.
    pub cap_check_extra: u64,
    /// x-entry fetch/validate beyond the four loads (skipped on an engine
    /// cache hit together with the loads).
    pub entry_fetch_extra: u64,
    /// Store-buffer drain wait of a *blocking* linkage-record push, beyond
    /// the ten stores (the non-blocking stack skips stores and drain).
    pub link_push_drain: u64,
    /// Base `xret` cost.
    pub xret_logic: u64,
    /// seg-reg-vs-linkage comparison on `xret`.
    pub seg_check: u64,
    /// Context restore (satp/cap/seg registers) on `xret`.
    pub restore_extra: u64,
    /// Linkage valid-bit check.
    pub valid_check: u64,
    /// Base `swapseg` cost.
    pub swapseg_logic: u64,
    /// ARM-style translation-base write barrier charged when the engine
    /// switches address spaces (0 on Rocket, 58 on the HPI model — the
    /// "+58" of Table 5).
    pub space_switch_barrier: u64,
}

impl XpcTimings {
    /// Rocket/FPGA calibration (see module docs).
    pub fn rocket() -> Self {
        XpcTimings {
            xcall_logic: 2,
            cap_check_extra: 2,
            entry_fetch_extra: 8,
            link_push_drain: 6,
            xret_logic: 5,
            seg_check: 2,
            restore_extra: 4,
            valid_check: 1,
            swapseg_logic: 2,
            space_switch_barrier: 0,
        }
    }

    /// ARM HPI calibration (Table 5): with pipelined L1 hits (the HPI
    /// model's in-order pipeline hides hit latency), warm `xcall` is
    /// 1 + 2 + (0+1) + (0+3) = 7 and warm `xret` is
    /// 1 + 4 + 0 + 1 + 2 + 2 = 10, matching the paper's 7/10; every
    /// address-space switch additionally pays the 58-cycle TTBR barrier
    /// measured on a Hikey-960 (the "+58" column).
    pub fn arm_hpi() -> Self {
        XpcTimings {
            xcall_logic: 2,
            cap_check_extra: 1,
            entry_fetch_extra: 3,
            link_push_drain: 0,
            xret_logic: 4,
            seg_check: 2,
            restore_extra: 2,
            valid_check: 1,
            swapseg_logic: 3,
            space_switch_barrier: 58,
        }
    }
}

impl Default for XpcTimings {
    fn default() -> Self {
        Self::rocket()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_features() {
        assert!(!XpcEngineConfig::paper_default().engine_cache);
        assert!(XpcEngineConfig::paper_default().nonblocking_link_stack);
        assert!(XpcEngineConfig::all_optimizations().engine_cache);
        assert!(!XpcEngineConfig::minimal().nonblocking_link_stack);
    }

    #[test]
    fn warm_xcall_calibration_arithmetic() {
        // fetch(1) + logic + (1 + cap_extra) + (4 + entry_extra) + (10 + drain)
        let t = XpcTimings::rocket();
        let blocking = 1
            + t.xcall_logic
            + (1 + t.cap_check_extra)
            + (4 + t.entry_fetch_extra)
            + (10 + t.link_push_drain);
        assert_eq!(blocking, 34, "Figure 5 xcall component");
        let nonblocking = blocking - 10 - t.link_push_drain;
        assert_eq!(nonblocking, 18, "Table 3 xcall");
        let cached = nonblocking - 4 - t.entry_fetch_extra;
        assert_eq!(cached, 6, "Figure 5 engine-cache xcall");
    }

    #[test]
    fn warm_xret_swapseg_calibration_arithmetic() {
        let t = XpcTimings::rocket();
        // 1 issue slot + logic + 10 record loads + checks + restore.
        let xret = 1 + t.xret_logic + 10 + t.seg_check + t.restore_extra + t.valid_check;
        assert_eq!(xret, 23, "Table 3 xret");
        // 1 issue slot + logic + 4 slot loads + 4 swap stores.
        let swapseg = 1 + t.swapseg_logic + 4 + 4;
        assert_eq!(swapseg, 11, "Table 3 swapseg");
    }

    #[test]
    fn arm_barrier_matches_table5() {
        assert_eq!(XpcTimings::arm_hpi().space_switch_barrier, 58);
    }
}
