//! `xcall`/`xret`/`swapseg` encoders and the [`XpcAsm`] assembler extension.
//!
//! The three instructions live in the RISC-V custom-0 opcode space
//! (`0001011`), distinguished by funct3: 0 = `xcall`, 1 = `xret`,
//! 2 = `swapseg`, mirroring §4.1's RocketChip integration.

use rv64::inst::OPCODE_CUSTOM0;
use rv64::Assembler;

/// Encode `xcall #rs1`.
pub fn encode_xcall(rs1: u8) -> u32 {
    OPCODE_CUSTOM0 | ((rs1 as u32) << 15)
}

/// Encode `xret`.
pub fn encode_xret() -> u32 {
    OPCODE_CUSTOM0 | (1 << 12)
}

/// Encode `swapseg #rs1`.
pub fn encode_swapseg(rs1: u8) -> u32 {
    OPCODE_CUSTOM0 | (2 << 12) | ((rs1 as u32) << 15)
}

/// Assembler sugar for the XPC instructions.
///
/// ```
/// use rv64::{Assembler, reg};
/// use xpc_engine::XpcAsm;
/// let mut a = Assembler::new(0x8000_0000);
/// a.li(reg::A0, 1);
/// a.xcall(reg::A0);
/// a.xret();
/// ```
pub trait XpcAsm {
    /// Emit `xcall #rs1` (x-entry ID, or negative ID to prefetch).
    fn xcall(&mut self, rs1: u8);
    /// Emit `xret`.
    fn xret(&mut self);
    /// Emit `swapseg #rs1` (seg-list index).
    fn swapseg(&mut self, rs1: u8);
}

impl XpcAsm for Assembler {
    fn xcall(&mut self, rs1: u8) {
        self.raw(encode_xcall(rs1));
    }

    fn xret(&mut self) {
        self.raw(encode_xret());
    }

    fn swapseg(&mut self, rs1: u8) {
        self.raw(encode_swapseg(rs1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv64::inst::decode;

    #[test]
    fn encodings_are_custom0_and_undecoded() {
        for w in [encode_xcall(10), encode_xret(), encode_swapseg(11)] {
            assert_eq!(w & 0x7f, OPCODE_CUSTOM0);
            assert!(decode(w).is_none(), "base decoder must not claim {w:#x}");
        }
    }

    #[test]
    fn funct3_distinguishes() {
        assert_eq!((encode_xcall(0) >> 12) & 7, 0);
        assert_eq!((encode_xret() >> 12) & 7, 1);
        assert_eq!((encode_swapseg(0) >> 12) & 7, 2);
    }

    #[test]
    fn rs1_encoded() {
        assert_eq!((encode_xcall(17) >> 15) & 31, 17);
        assert_eq!((encode_swapseg(3) >> 15) & 31, 3);
    }
}
