//! The XPC engine state machine: registers, `xcall`/`xret`/`swapseg`
//! execution, CSR routing, engine cache, non-blocking link stack.

use rv64::cpu::Mode;
use rv64::ext::{ExtResult, IsaExtension};
use rv64::inst::OPCODE_CUSTOM0;
use rv64::machine::Core;
use rv64::mmu::SegWindow;
use rv64::reg;
use rv64::trap::{Cause, Trap};

use crate::config::XpcEngineConfig;
use crate::csr_map as csr;
use crate::layout::{
    LinkageRecord, SegDescriptor, SegMask, SegReg, XEntry, LINK_RECORD_BYTES, LINK_STACK_BYTES,
};

/// The engine's architectural registers (Table 2), exposed so that
/// host-side kernel models can save/restore them on context switches the
/// same way guest kernels do through CSR instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XpcRegs {
    /// `x-entry-table-reg`.
    pub x_entry_table: u64,
    /// `x-entry-table-size` (entries).
    pub x_entry_table_size: u64,
    /// `xcall-cap-reg` (per-thread bitmap address).
    pub xcall_cap: u64,
    /// `link-reg` (per-thread link stack base).
    pub link: u64,
    /// Link stack top offset in bytes (implementation register).
    pub link_sp: u64,
    /// `seg-reg`.
    pub seg: SegReg,
    /// `seg-mask`.
    pub mask: SegMask,
    /// `seg-list-reg` (per-process relay segment list base).
    pub seg_list: u64,
    /// Seg-list capacity in slots (implementation register).
    pub seg_list_size: u64,
}

/// Counters for experiment output and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XpcStats {
    /// Completed `xcall`s.
    pub xcalls: u64,
    /// Completed `xret`s.
    pub xrets: u64,
    /// Completed `swapseg`s.
    pub swapsegs: u64,
    /// Engine-cache prefetch operations.
    pub prefetches: u64,
    /// `xcall`s served from the engine cache.
    pub cache_hits: u64,
    /// XPC exceptions raised.
    pub exceptions: u64,
}

/// The XPC engine. Install into a machine with
/// `Machine::with_extension(cfg, Box::new(XpcEngine::new(...)))`.
#[derive(Debug)]
pub struct XpcEngine {
    /// Feature/timing configuration.
    pub cfg: XpcEngineConfig,
    /// Architectural registers.
    pub regs: XpcRegs,
    /// One-entry software-managed cache of (id, entry).
    cache: Option<(u64, XEntry)>,
    /// Statistics.
    pub stats: XpcStats,
}

const F3_XCALL: u32 = 0;
const F3_XRET: u32 = 1;
const F3_SWAPSEG: u32 = 2;

impl XpcEngine {
    /// A reset engine with configuration `cfg`.
    pub fn new(cfg: XpcEngineConfig) -> Self {
        XpcEngine {
            cfg,
            regs: XpcRegs::default(),
            cache: None,
            stats: XpcStats::default(),
        }
    }

    /// Push the current `seg-reg` into the core's MMU window (the relay
    /// segment is an extension of the TLB module, §3.3).
    pub fn sync_seg_window(&self, core: &mut Core) {
        core.mmu.seg_window = if self.regs.seg.is_valid() {
            Some(SegWindow {
                va_base: self.regs.seg.va_base,
                pa_base: self.regs.seg.pa_base,
                len: self.regs.seg.len,
                writable: self.regs.seg.writable,
                paged: self.regs.seg.paged,
            })
        } else {
            None
        };
    }

    /// Invalidate the engine cache (kernel does this when it rewrites the
    /// x-entry table).
    pub fn invalidate_cache(&mut self) {
        self.cache = None;
    }

    fn switch_space(&self, core: &mut Core, satp_raw: u64) {
        core.cpu.csr.satp = satp_raw;
        if !core.mmu.tlb.tagged() {
            core.mmu.tlb.flush_all();
        }
        core.charge(self.cfg.timings.space_switch_barrier);
    }

    fn trap(&mut self, cause: Cause, tval: u64) -> ExtResult {
        self.stats.exceptions += 1;
        ExtResult::Trapped(Trap::new(cause, tval))
    }

    fn exec_xcall(&mut self, core: &mut Core, rs1: u8) -> ExtResult {
        let t = self.cfg.timings;
        core.charge(t.xcall_logic);
        let idv = core.cpu.x(rs1) as i64;

        // Negative ID = prefetch into the engine cache (§4.1).
        if idv < 0 {
            if !self.cfg.engine_cache {
                return self.trap(Cause::InvalidXEntry, idv as u64);
            }
            let id = (-idv) as u64;
            if id >= self.regs.x_entry_table_size {
                return self.trap(Cause::InvalidXEntry, id);
            }
            core.charge(t.entry_fetch_extra);
            let entry = match XEntry::load(core, self.regs.x_entry_table, id) {
                Ok(e) => e,
                Err(tr) => return ExtResult::Trapped(tr),
            };
            self.cache = Some((id, entry));
            self.stats.prefetches += 1;
            core.cpu.pc += 4;
            return ExtResult::Done;
        }

        let id = idv as u64;
        if id >= self.regs.x_entry_table_size {
            return self.trap(Cause::InvalidXEntry, id);
        }

        // 1. Capability check: one bit of the per-thread bitmap.
        let byte = match core.phys_load(self.regs.xcall_cap + id / 8, 1) {
            Ok(b) => b,
            Err(tr) => return ExtResult::Trapped(tr),
        };
        core.charge(t.cap_check_extra);
        if (byte >> (id % 8)) & 1 == 0 {
            return self.trap(Cause::InvalidXcallCap, id);
        }

        // 2. x-entry fetch (engine cache may short-circuit it).
        let entry = match self.cache {
            Some((cid, e)) if self.cfg.engine_cache && cid == id => {
                self.stats.cache_hits += 1;
                e
            }
            _ => {
                core.charge(t.entry_fetch_extra);
                match XEntry::load(core, self.regs.x_entry_table, id) {
                    Ok(e) => e,
                    Err(tr) => return ExtResult::Trapped(tr),
                }
            }
        };
        if !entry.valid {
            return self.trap(Cause::InvalidXEntry, id);
        }

        // Defensive re-validation of the mask before it transfers.
        if !self.regs.mask.valid_for(&self.regs.seg) {
            return self.trap(Cause::InvalidSegMask, self.regs.mask.va_base);
        }

        // 3. Push the linkage record.
        if self.regs.link_sp + LINK_RECORD_BYTES > LINK_STACK_BYTES {
            return self.trap(Cause::InvalidLinkage, self.regs.link_sp);
        }
        let record = LinkageRecord {
            satp: core.cpu.csr.satp,
            ret_pc: core.cpu.pc + 4,
            xcall_cap: self.regs.xcall_cap,
            seg_list: self.regs.seg_list,
            seg: self.regs.seg,
            mask: self.regs.mask,
            valid: true,
        };
        let charged = !self.cfg.nonblocking_link_stack;
        if let Err(tr) = record.store(core, self.regs.link, self.regs.link_sp, charged) {
            return ExtResult::Trapped(tr);
        }
        if charged {
            core.charge(t.link_push_drain);
        }
        self.regs.link_sp += LINK_RECORD_BYTES;

        // 4. Switch: address space, capability register, relay segment, PC.
        // The caller's xcall-cap-reg lands in t0 so the callee can identify
        // the caller (§3.2); it cannot be forged because only the engine
        // and the kernel ever set xcall-cap-reg.
        core.cpu.set_x(reg::T0, self.regs.xcall_cap);
        self.regs.xcall_cap = entry.cap_ptr;
        self.regs.seg = self.regs.seg.masked(self.regs.mask);
        self.regs.mask = SegMask::none();
        self.switch_space(core, entry.page_table);
        self.sync_seg_window(core);
        core.cpu.pc = entry.entry_pc;
        self.stats.xcalls += 1;
        ExtResult::Done
    }

    fn exec_xret(&mut self, core: &mut Core) -> ExtResult {
        let t = self.cfg.timings;
        core.charge(t.xret_logic);
        if self.regs.link_sp < LINK_RECORD_BYTES {
            return self.trap(Cause::InvalidLinkage, 0);
        }
        let off = self.regs.link_sp - LINK_RECORD_BYTES;
        let rec = match LinkageRecord::load(core, self.regs.link, off) {
            Ok(r) => r,
            Err(tr) => return ExtResult::Trapped(tr),
        };
        core.charge(t.valid_check);
        if !rec.valid {
            // Caller terminated (§4.2): leave the stack for the kernel's
            // handler, which pops the dead record and unwinds further.
            return self.trap(Cause::InvalidLinkage, off);
        }
        // The callee must return exactly the segment it was handed
        // (seg-reg == saved seg ∩ saved mask), or a malicious callee could
        // swap the caller's relay-seg into its own seg-list and return a
        // different one (§3.3 "Return a relay-seg").
        core.charge(t.seg_check);
        if self.regs.seg != rec.seg.masked(rec.mask) {
            return self.trap(Cause::InvalidLinkage, off + 1);
        }
        self.regs.link_sp = off;
        self.regs.xcall_cap = rec.xcall_cap;
        self.regs.seg_list = rec.seg_list;
        self.regs.seg = rec.seg;
        self.regs.mask = rec.mask;
        self.switch_space(core, rec.satp);
        core.charge(t.restore_extra);
        self.sync_seg_window(core);
        core.cpu.pc = rec.ret_pc;
        self.stats.xrets += 1;
        ExtResult::Done
    }

    fn exec_swapseg(&mut self, core: &mut Core, rs1: u8) -> ExtResult {
        let t = self.cfg.timings;
        core.charge(t.swapseg_logic);
        let idx = core.cpu.x(rs1);
        if self.regs.seg_list == 0 || idx >= self.regs.seg_list_size {
            return self.trap(Cause::SwapsegError, idx);
        }
        let slot = match SegDescriptor::load(core, self.regs.seg_list, idx) {
            Ok(s) => s,
            Err(tr) => return ExtResult::Trapped(tr),
        };
        if !slot.valid {
            return self.trap(Cause::SwapsegError, idx);
        }
        let old = SegDescriptor {
            seg: self.regs.seg,
            valid: true,
        };
        if let Err(tr) = old.store(core, self.regs.seg_list, idx) {
            return ExtResult::Trapped(tr);
        }
        self.regs.seg = slot.seg;
        self.regs.mask = SegMask::none();
        self.sync_seg_window(core);
        core.cpu.pc += 4;
        self.stats.swapsegs += 1;
        ExtResult::Done
    }

    fn kernel_only_write(&self, core: &Core) -> bool {
        core.cpu.mode == Mode::User
    }
}

impl IsaExtension for XpcEngine {
    fn name(&self) -> &'static str {
        "xpc"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn execute(&mut self, raw: u32, core: &mut Core) -> ExtResult {
        if raw & 0x7f != OPCODE_CUSTOM0 {
            return ExtResult::NotClaimed;
        }
        let funct3 = (raw >> 12) & 7;
        let rs1 = ((raw >> 15) & 31) as u8;
        match funct3 {
            F3_XCALL => self.exec_xcall(core, rs1),
            F3_XRET => self.exec_xret(core),
            F3_SWAPSEG => self.exec_swapseg(core, rs1),
            _ => ExtResult::NotClaimed,
        }
    }

    fn csr_read(&mut self, addr: u16, _core: &mut Core) -> Option<Result<u64, Trap>> {
        let v = match addr {
            csr::XPC_XENTRY_TABLE => self.regs.x_entry_table,
            csr::XPC_XENTRY_TABLE_SIZE => self.regs.x_entry_table_size,
            csr::XPC_XCALL_CAP => self.regs.xcall_cap,
            csr::XPC_LINK => self.regs.link,
            csr::XPC_LINK_SP => self.regs.link_sp,
            csr::XPC_SEG_LIST_SIZE => self.regs.seg_list_size,
            csr::XPC_SEG_VA => self.regs.seg.va_base,
            csr::XPC_SEG_PA => self.regs.seg.pa_base,
            csr::XPC_SEG_LEN_PERM => self.regs.seg.len_perm_raw(),
            csr::XPC_SEG_MASK_VA => self.regs.mask.va_base,
            csr::XPC_SEG_MASK_LEN => self.regs.mask.len,
            csr::XPC_SEG_LIST => self.regs.seg_list,
            _ => return None,
        };
        Some(Ok(v))
    }

    fn csr_write(&mut self, addr: u16, value: u64, core: &mut Core) -> Option<Result<(), Trap>> {
        let illegal = || Some(Err(Trap::new(Cause::IllegalInst, addr as u64)));
        match addr {
            csr::XPC_XENTRY_TABLE => {
                self.regs.x_entry_table = value;
                self.invalidate_cache();
            }
            csr::XPC_XENTRY_TABLE_SIZE => {
                self.regs.x_entry_table_size = value;
                self.invalidate_cache();
            }
            csr::XPC_XCALL_CAP => self.regs.xcall_cap = value,
            csr::XPC_LINK => self.regs.link = value,
            csr::XPC_LINK_SP => self.regs.link_sp = value,
            csr::XPC_SEG_LIST_SIZE => self.regs.seg_list_size = value,
            csr::XPC_SEG_VA => {
                if self.kernel_only_write(core) {
                    return illegal();
                }
                self.regs.seg.va_base = value;
                self.sync_seg_window(core);
            }
            csr::XPC_SEG_PA => {
                if self.kernel_only_write(core) {
                    return illegal();
                }
                self.regs.seg.pa_base = value;
                self.sync_seg_window(core);
            }
            csr::XPC_SEG_LEN_PERM => {
                if self.kernel_only_write(core) {
                    return illegal();
                }
                self.regs.seg.set_len_perm_raw(value);
                self.sync_seg_window(core);
            }
            csr::XPC_SEG_MASK_VA => self.regs.mask.va_base = value,
            csr::XPC_SEG_MASK_LEN => {
                // The validating write (Table 2's "invalid seg-mask"
                // exception): convention is VA base first, then length.
                let candidate = SegMask {
                    va_base: self.regs.mask.va_base,
                    len: value,
                };
                if !candidate.valid_for(&self.regs.seg) {
                    self.stats.exceptions += 1;
                    return Some(Err(Trap::new(Cause::InvalidSegMask, candidate.va_base)));
                }
                self.regs.mask = candidate;
            }
            csr::XPC_SEG_LIST => {
                if self.kernel_only_write(core) {
                    return illegal();
                }
                self.regs.seg_list = value;
            }
            _ => return None,
        }
        Some(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm_ext::XpcAsm;
    use rv64::mem::DRAM_BASE;
    use rv64::{Assembler, Exit, Machine, MachineConfig};

    /// Addresses used by the test fixture.
    const TABLE: u64 = DRAM_BASE + 0x10_0000;
    const CAP_A: u64 = DRAM_BASE + 0x11_0000;
    const CAP_B: u64 = DRAM_BASE + 0x12_0000;
    const LINK: u64 = DRAM_BASE + 0x13_0000;
    const CALLEE: u64 = DRAM_BASE + 0x2_0000;

    /// Machine with engine installed, one x-entry (id 1) pointing at
    /// CALLEE, caller granted the capability, all in bare (M-mode-less,
    /// satp-off) addressing for unit simplicity.
    fn fixture(cfg: XpcEngineConfig) -> Machine {
        let mut m =
            Machine::with_extension(MachineConfig::rocket_u500(), Box::new(XpcEngine::new(cfg)));
        // Callee: a1 = 77; xret.
        let mut c = Assembler::new(CALLEE);
        c.li(rv64::reg::A1, 77);
        c.xret();
        let callee = c.assemble();
        m.load_program_at(CALLEE, &callee);

        // x-entry 1.
        {
            let eng = engine(&mut m);
            eng.regs.x_entry_table = TABLE;
            eng.regs.x_entry_table_size = 16;
            eng.regs.xcall_cap = CAP_A;
            eng.regs.link = LINK;
            eng.regs.link_sp = 0;
        }
        let e = XEntry {
            page_table: 0,
            cap_ptr: CAP_B,
            entry_pc: CALLEE,
            valid: true,
        };
        e.store(&mut m.core, TABLE, 1).unwrap();
        // Grant capability bit 1 to caller A.
        m.core.mem.write(CAP_A, 1, 0b10).unwrap();
        m
    }

    fn engine(m: &mut Machine) -> &mut XpcEngine {
        m.extension()
            .as_any_mut()
            .downcast_mut::<XpcEngine>()
            .expect("xpc engine installed")
    }

    fn run_caller(m: &mut Machine, body: impl FnOnce(&mut Assembler)) -> Exit {
        let mut a = Assembler::new(DRAM_BASE);
        body(&mut a);
        m.load_program(&a.assemble());
        m.run(100_000).expect("sim ok").exit
    }

    #[test]
    fn xcall_xret_round_trip() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::A0, 1); // x-entry id
            a.xcall(rv64::reg::A0);
            a.ebreak(); // back here after xret
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A1), 77, "callee executed");
        let st = engine(&mut m).stats;
        assert_eq!(st.xcalls, 1);
        assert_eq!(st.xrets, 1);
        assert_eq!(engine(&mut m).regs.link_sp, 0, "stack balanced");
    }

    #[test]
    fn callee_sees_caller_cap_in_t0() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        // Callee copies t0 to a2 before returning.
        let mut c = Assembler::new(CALLEE);
        c.mv(rv64::reg::A2, rv64::reg::T0);
        c.xret();
        let callee = c.assemble();
        m.load_program_at(CALLEE, &callee);
        run_caller(&mut m, |a| {
            a.li(rv64::reg::A0, 1);
            a.xcall(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(rv64::reg::A2), CAP_A, "caller identity");
    }

    #[test]
    fn missing_capability_raises_invalid_xcall_cap() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        m.core.mem.write(CAP_A, 1, 0).unwrap(); // revoke
                                                // Install an M-mode trap handler that stops.
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342); // mcause
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1); // mtvec
            a.li(rv64::reg::A0, 1);
            a.xcall(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A0), Cause::InvalidXcallCap.code());
        assert_eq!(engine(&mut m).stats.exceptions, 1);
    }

    #[test]
    fn invalid_entry_raises() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        // Grant cap bit 2, but entry 2 is invalid (zeroed memory).
        m.core.mem.write(CAP_A, 1, 0b110).unwrap();
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1);
            a.li(rv64::reg::A0, 2);
            a.xcall(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A0), Cause::InvalidXEntry.code());
    }

    #[test]
    fn out_of_range_id_raises_invalid_x_entry() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1);
            a.li(rv64::reg::A0, 1000); // >= table size 16
            a.xcall(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A0), Cause::InvalidXEntry.code());
    }

    #[test]
    fn xret_on_empty_stack_raises_invalid_linkage() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1);
            a.xret();
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A0), Cause::InvalidLinkage.code());
    }

    #[test]
    fn invalidated_linkage_record_raises_on_xret() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        // Callee: clobber nothing, just xret; but before running, the
        // "kernel" (host) marks the record invalid mid-call. We emulate by
        // having the callee spin once; easier: call, then during the callee
        // we can't intervene — instead pre-push a dead record and xret.
        {
            let eng = engine(&mut m);
            eng.regs.link_sp = LINK_RECORD_BYTES;
        }
        let rec = LinkageRecord {
            satp: 0,
            ret_pc: DRAM_BASE,
            xcall_cap: CAP_A,
            seg_list: 0,
            seg: SegReg::default(),
            mask: SegMask::none(),
            valid: false, // terminated caller
        };
        rec.store(&mut m.core, LINK, 0, true).unwrap();
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1);
            a.xret();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A0), Cause::InvalidLinkage.code());
    }

    #[test]
    fn engine_cache_hit_is_faster_and_counted() {
        let mut warm = fixture(XpcEngineConfig::paper_default());
        run_caller(&mut warm, |a| {
            a.li(rv64::reg::A0, 1);
            a.xcall(rv64::reg::A0); // warm caches
            a.xcall(rv64::reg::A0); // measured-equivalent second call
            a.ebreak();
        });
        let base_cycles = warm.core.cycles;

        let mut cached = fixture(XpcEngineConfig::all_optimizations());
        run_caller(&mut cached, |a| {
            a.li(rv64::reg::A0, 1);
            a.xcall(rv64::reg::A0);
            a.li(rv64::reg::A0, -1); // prefetch entry 1
            a.xcall(rv64::reg::A0);
            a.li(rv64::reg::A0, 1);
            a.xcall(rv64::reg::A0); // hit
            a.ebreak();
        });
        assert_eq!(engine(&mut cached).stats.prefetches, 1);
        assert_eq!(engine(&mut cached).stats.cache_hits, 1);
        let _ = base_cycles; // cycle comparison done in bench, not here
    }

    #[test]
    fn swapseg_swaps_and_clears_mask() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        let list = DRAM_BASE + 0x14_0000;
        let seg0 = SegReg {
            va_base: 0x4000_0000,
            pa_base: DRAM_BASE + 0x20_0000,
            len: 4096,
            writable: true,
            paged: false,
        };
        let slot_seg = SegReg {
            va_base: 0x5000_0000,
            pa_base: DRAM_BASE + 0x21_0000,
            len: 8192,
            writable: false,
            paged: false,
        };
        SegDescriptor {
            seg: slot_seg,
            valid: true,
        }
        .store(&mut m.core, list, 3)
        .unwrap();
        {
            let eng = engine(&mut m);
            eng.regs.seg = seg0;
            eng.regs.seg_list = list;
            eng.regs.seg_list_size = 8;
        }
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::A0, 3);
            a.swapseg(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        let eng = engine(&mut m);
        assert_eq!(eng.regs.seg, slot_seg);
        assert!(!eng.regs.mask.is_set());
        // Old segment landed in the slot.
        let stored = SegDescriptor::load(&mut m.core, list, 3).unwrap();
        assert_eq!(stored.seg, seg0);
    }

    #[test]
    fn swapseg_invalid_slot_raises() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        {
            let eng = engine(&mut m);
            eng.regs.seg_list = DRAM_BASE + 0x14_0000;
            eng.regs.seg_list_size = 4;
        }
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1);
            a.li(rv64::reg::A0, 2); // slot exists but invalid (zeroed)
            a.swapseg(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A0), Cause::SwapsegError.code());
    }

    #[test]
    fn malicious_callee_returning_wrong_seg_is_caught() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        // Give the caller a relay segment; the callee swaps it away and
        // xrets with a different one -> invalid linkage exception.
        let list = DRAM_BASE + 0x14_0000;
        let caller_seg = SegReg {
            va_base: 0x4000_0000,
            pa_base: DRAM_BASE + 0x20_0000,
            len: 4096,
            writable: true,
            paged: false,
        };
        let callee_own = SegReg {
            va_base: 0x6000_0000,
            pa_base: DRAM_BASE + 0x22_0000,
            len: 4096,
            writable: true,
            paged: false,
        };
        SegDescriptor {
            seg: callee_own,
            valid: true,
        }
        .store(&mut m.core, list, 0)
        .unwrap();
        {
            let (core, ext) = m.split();
            let eng = ext.as_any_mut().downcast_mut::<XpcEngine>().unwrap();
            eng.regs.seg = caller_seg;
            eng.regs.seg_list = list;
            eng.regs.seg_list_size = 4;
            eng.sync_seg_window(core);
        }
        // Callee: swapseg slot 0 (steals caller's seg), then xret.
        let mut c = Assembler::new(CALLEE);
        c.li(rv64::reg::A3, 0);
        c.swapseg(rv64::reg::A3);
        c.xret();
        let callee = c.assemble();
        m.load_program_at(CALLEE, &callee);

        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1);
            a.li(rv64::reg::A0, 1);
            a.xcall(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(
            m.core.cpu.x(rv64::reg::A0),
            Cause::InvalidLinkage.code(),
            "seg-reg mismatch on xret must trap"
        );
    }

    #[test]
    fn seg_mask_csr_write_validates() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        {
            let eng = engine(&mut m);
            eng.regs.seg = SegReg {
                va_base: 0x4000_0000,
                pa_base: DRAM_BASE + 0x20_0000,
                len: 4096,
                writable: true,
                paged: false,
            };
        }
        let mut h = Assembler::new(DRAM_BASE + 0x8000);
        h.csrr(rv64::reg::A0, 0x342);
        h.ebreak();
        let handler = h.assemble();
        m.load_program_at(DRAM_BASE + 0x8000, &handler);
        let exit = run_caller(&mut m, |a| {
            a.li(rv64::reg::T1, (DRAM_BASE + 0x8000) as i64);
            a.csrw(0x305, rv64::reg::T1);
            // Valid shrink: [0x40000100, +256)
            a.li(rv64::reg::T2, 0x4000_0100);
            a.csrw(csr::XPC_SEG_MASK_VA, rv64::reg::T2);
            a.li(rv64::reg::T2, 256);
            a.csrw(csr::XPC_SEG_MASK_LEN, rv64::reg::T2);
            // Invalid shrink: escapes the segment -> trap.
            a.li(rv64::reg::T2, 0x4000_0100);
            a.csrw(csr::XPC_SEG_MASK_VA, rv64::reg::T2);
            a.li(rv64::reg::T2, 8192);
            a.csrw(csr::XPC_SEG_MASK_LEN, rv64::reg::T2);
            a.ebreak();
        });
        assert_eq!(exit, Exit::Break);
        assert_eq!(m.core.cpu.x(rv64::reg::A0), Cause::InvalidSegMask.code());
    }

    #[test]
    fn xcall_applies_mask_to_callee_segment() {
        let mut m = fixture(XpcEngineConfig::paper_default());
        let caller_seg = SegReg {
            va_base: 0x4000_0000,
            pa_base: DRAM_BASE + 0x20_0000,
            len: 4096,
            writable: true,
            paged: false,
        };
        {
            let (core, ext) = m.split();
            let eng = ext.as_any_mut().downcast_mut::<XpcEngine>().unwrap();
            eng.regs.seg = caller_seg;
            eng.regs.mask = SegMask {
                va_base: 0x4000_0800,
                len: 1024,
            };
            eng.sync_seg_window(core);
        }
        // Callee: read seg CSRs into a2/a3 then xret.
        let mut c = Assembler::new(CALLEE);
        c.csrr(rv64::reg::A2, csr::XPC_SEG_VA);
        c.csrr(rv64::reg::A3, csr::XPC_SEG_LEN_PERM);
        c.xret();
        let callee = c.assemble();
        m.load_program_at(CALLEE, &callee);
        run_caller(&mut m, |a| {
            a.li(rv64::reg::A0, 1);
            a.xcall(rv64::reg::A0);
            a.ebreak();
        });
        assert_eq!(m.core.cpu.x(rv64::reg::A2), 0x4000_0800, "masked base");
        assert_eq!(
            m.core.cpu.x(rv64::reg::A3) & 0xffff_ffff,
            1024,
            "masked len"
        );
        // After return the caller's full segment is restored.
        let eng = engine(&mut m);
        assert_eq!(eng.regs.seg, caller_seg);
        assert!(
            eng.regs.mask.is_set(),
            "caller's own mask survives the call"
        );
    }

    #[test]
    fn user_mode_cannot_write_seg_reg() {
        // Core blocks 0x5xx addresses for U-mode; the engine must itself
        // block user writes to the kernel-owned 0x8xx registers while
        // allowing user writes to seg-mask.
        let mut core = Core::new(MachineConfig::rocket_u500());
        core.cpu.mode = Mode::User;
        let mut eng = XpcEngine::new(XpcEngineConfig::paper_default());
        let r = eng.csr_write(csr::XPC_SEG_VA, 0x1234, &mut core);
        assert!(matches!(r, Some(Err(_))));
        let r = eng.csr_write(csr::XPC_SEG_LIST, 0x1234, &mut core);
        assert!(matches!(r, Some(Err(_))));
        let r = eng.csr_write(csr::XPC_SEG_MASK_VA, 0x1234, &mut core);
        assert!(matches!(r, Some(Ok(()))));
    }
}
