//! The six core workload mixes and the operation stream generator.

use crate::generator::{LatestGen, ScrambledZipfian, UniformGen};
use crate::rng::Rng;

/// One database operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read the full row at key.
    Read(String),
    /// Overwrite one field of the row at key.
    Update(String, Vec<u8>),
    /// Insert a new row.
    Insert(String, Vec<u8>),
    /// Scan `len` rows from key.
    Scan(String, usize),
    /// Read then update (workload F).
    ReadModifyWrite(String, Vec<u8>),
}

/// The six YCSB core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    A,
    B,
    C,
    D,
    E,
    F,
}

impl Workload {
    /// All six, in figure order.
    pub const ALL: [Workload; 6] = [
        Workload::A,
        Workload::B,
        Workload::C,
        Workload::D,
        Workload::E,
        Workload::F,
    ];

    /// Display name as in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::A => "YCSB-A",
            Workload::B => "YCSB-B",
            Workload::C => "YCSB-C",
            Workload::D => "YCSB-D",
            Workload::E => "YCSB-E",
            Workload::F => "YCSB-F",
        }
    }
}

/// Workload parameters (defaults follow §5.4: 1000-record table; YCSB
/// defaults elsewhere: 10 fields × 100 B).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which mix.
    pub workload: Workload,
    /// Records loaded before the run.
    pub records: u64,
    /// Operations to generate.
    pub ops: u64,
    /// Fields per row.
    pub fields: usize,
    /// Bytes per field.
    pub field_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's configuration for `workload`.
    pub fn paper(workload: Workload) -> Self {
        WorkloadSpec {
            workload,
            records: 1000,
            ops: 1000,
            fields: 10,
            field_len: 100,
            seed: 0x5eed,
        }
    }

    /// Key for record `n` (YCSB's `user<hash>` flavour, simplified).
    pub fn key(&self, n: u64) -> String {
        format!("user{n:08}")
    }

    /// A full row payload (fields concatenated, deterministic content).
    pub fn row_bytes(&self, rng: &mut Rng) -> Vec<u8> {
        let mut row = Vec::with_capacity(self.fields * self.field_len);
        for _ in 0..self.fields * self.field_len {
            row.push(rng.byte());
        }
        row
    }

    /// One field's worth of fresh bytes (update payload).
    pub fn field_bytes(&self, rng: &mut Rng) -> Vec<u8> {
        (0..self.field_len).map(|_| rng.byte()).collect()
    }

    /// Generate the operation stream.
    pub fn generate(&self) -> Vec<Op> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let zipf = ScrambledZipfian::new(self.records);
        let latest = LatestGen::new(self.records);
        let scan_len = UniformGen::new(100);
        let mut max_insert = self.records - 1;
        let mut ops = Vec::with_capacity(usize::try_from(self.ops).expect("op count fits usize"));
        for _ in 0..self.ops {
            let p = rng.next_f64();
            let op = match self.workload {
                Workload::A => {
                    if p < 0.5 {
                        Op::Read(self.key(zipf.next(&mut rng)))
                    } else {
                        Op::Update(self.key(zipf.next(&mut rng)), self.field_bytes(&mut rng))
                    }
                }
                Workload::B => {
                    if p < 0.95 {
                        Op::Read(self.key(zipf.next(&mut rng)))
                    } else {
                        Op::Update(self.key(zipf.next(&mut rng)), self.field_bytes(&mut rng))
                    }
                }
                Workload::C => Op::Read(self.key(zipf.next(&mut rng))),
                Workload::D => {
                    if p < 0.95 {
                        Op::Read(self.key(latest.next(&mut rng, max_insert)))
                    } else {
                        max_insert += 1;
                        Op::Insert(self.key(max_insert), self.row_bytes(&mut rng))
                    }
                }
                Workload::E => {
                    if p < 0.95 {
                        Op::Scan(
                            self.key(zipf.next(&mut rng)),
                            1 + usize::try_from(scan_len.next(&mut rng))
                                .expect("scan length fits usize"),
                        )
                    } else {
                        max_insert += 1;
                        Op::Insert(self.key(max_insert), self.row_bytes(&mut rng))
                    }
                }
                Workload::F => {
                    if p < 0.5 {
                        Op::Read(self.key(zipf.next(&mut rng)))
                    } else {
                        Op::ReadModifyWrite(
                            self.key(zipf.next(&mut rng)),
                            self.field_bytes(&mut rng),
                        )
                    }
                }
            };
            ops.push(op);
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count<F: Fn(&Op) -> bool>(ops: &[Op], f: F) -> usize {
        ops.iter().filter(|o| f(o)).count()
    }

    #[test]
    fn workload_a_is_half_updates() {
        let spec = WorkloadSpec {
            ops: 10_000,
            ..WorkloadSpec::paper(Workload::A)
        };
        let ops = spec.generate();
        let updates = count(&ops, |o| matches!(o, Op::Update(..)));
        assert!((4_500..5_500).contains(&updates), "{updates}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let ops = WorkloadSpec::paper(Workload::C).generate();
        assert!(ops.iter().all(|o| matches!(o, Op::Read(_))));
    }

    #[test]
    fn workload_e_is_mostly_scans() {
        let spec = WorkloadSpec {
            ops: 10_000,
            ..WorkloadSpec::paper(Workload::E)
        };
        let ops = spec.generate();
        let scans = count(&ops, |o| matches!(o, Op::Scan(..)));
        assert!(scans > 9_000, "{scans}");
        // Scan lengths bounded by 100.
        for op in &ops {
            if let Op::Scan(_, len) = op {
                assert!((1..=100).contains(len));
            }
        }
    }

    #[test]
    fn workload_d_inserts_fresh_keys() {
        let spec = WorkloadSpec {
            ops: 10_000,
            ..WorkloadSpec::paper(Workload::D)
        };
        let ops = spec.generate();
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            if let Op::Insert(k, _) = op {
                assert!(seen.insert(k.clone()), "duplicate insert {k}");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadSpec::paper(Workload::A).generate();
        let b = WorkloadSpec::paper(Workload::A).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn rows_have_spec_size() {
        let spec = WorkloadSpec::paper(Workload::A);
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(spec.row_bytes(&mut rng).len(), 1000);
        assert_eq!(spec.field_bytes(&mut rng).len(), 100);
    }
}
