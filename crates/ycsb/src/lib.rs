//! YCSB core workloads for the Figure 1 / Figure 8 experiments.
//!
//! Implements the standard six core workloads with the standard request
//! distributions:
//!
//! | Workload | Mix | Distribution |
//! |---|---|---|
//! | A | 50% read / 50% update | zipfian |
//! | B | 95% read / 5% update | zipfian |
//! | C | 100% read | zipfian |
//! | D | 95% read / 5% insert | latest |
//! | E | 95% scan / 5% insert | zipfian (scan length uniform <= 100) |
//! | F | 50% read / 50% read-modify-write | zipfian |
//!
//! Deterministic given a seed, so every figure regenerates bit-for-bit.

#![forbid(unsafe_code)]

pub mod generator;
pub mod rng;
pub mod workload;

pub use generator::{LatestGen, ScrambledZipfian, UniformGen, ZipfianGen};
pub use rng::{stream_seed, Rng, SplitMix64, Xoshiro256StarStar};
pub use workload::{Op, Workload, WorkloadSpec};
