//! Request-distribution generators: zipfian (with YCSB's scrambling),
//! latest, and uniform.

use crate::rng::Rng;

/// The YCSB zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Gray's zipfian generator over `0..items` (the YCSB algorithm).
#[derive(Debug, Clone)]
pub struct ZipfianGen {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl ZipfianGen {
    /// A generator over `items` items with the standard constant.
    pub fn new(items: u64) -> Self {
        let theta = ZIPFIAN_CONSTANT;
        let zetan = zeta(items, theta);
        let zeta2 = zeta(2, theta);
        ZipfianGen {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Draw the next item (0 is the hottest).
    pub fn next(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        // The float product is < items by construction; truncation toward
        // zero is the YCSB-specified rounding.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let item = ((self.items as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        item
    }
}

/// YCSB's scrambled zipfian: zipfian popularity, hashed over the keyspace
/// so hot keys are spread out.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: ZipfianGen,
    items: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

/// FNV-1a over the 8 bytes of `v` (YCSB's `fnvhash64`).
pub fn fnv_hash64(v: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for i in 0..8 {
        h ^= (v >> (8 * i)) & 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl ScrambledZipfian {
    /// A scrambled generator over `items`.
    pub fn new(items: u64) -> Self {
        ScrambledZipfian {
            inner: ZipfianGen::new(items),
            items,
        }
    }

    /// Draw the next (scrambled) item.
    pub fn next(&self, rng: &mut Rng) -> u64 {
        fnv_hash64(self.inner.next(rng)) % self.items
    }
}

/// Uniform over `0..items`.
#[derive(Debug, Clone, Copy)]
pub struct UniformGen {
    items: u64,
}

impl UniformGen {
    /// A uniform generator over `items`.
    pub fn new(items: u64) -> Self {
        UniformGen { items }
    }

    /// Draw the next item.
    pub fn next(&self, rng: &mut Rng) -> u64 {
        rng.below(self.items)
    }
}

/// The "latest" distribution of workload D: zipfian over recency, keyed
/// from the current maximum item.
#[derive(Debug, Clone)]
pub struct LatestGen {
    zipf: ZipfianGen,
}

impl LatestGen {
    /// A latest-distribution generator for an initial keyspace of
    /// `items`.
    pub fn new(items: u64) -> Self {
        LatestGen {
            zipf: ZipfianGen::new(items),
        }
    }

    /// Draw, favouring keys close to `max_item`.
    pub fn next(&self, rng: &mut Rng, max_item: u64) -> u64 {
        let back = self.zipf.next(rng);
        max_item.saturating_sub(back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn zipfian_in_range_and_skewed() {
        let g = ZipfianGen::new(1000);
        let mut r = rng();
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let v = g.next(&mut r);
            assert!(v < 1000);
            counts[v as usize] += 1;
        }
        // Item 0 should dominate the tail decisively.
        assert!(counts[0] > 20 * counts[500].max(1));
        // The head (top 10%) should take the majority of requests.
        let head: u64 = counts[..100].iter().sum();
        assert!(head > 60_000, "zipf head weight: {head}");
    }

    #[test]
    fn scrambled_spreads_the_head() {
        let g = ScrambledZipfian::new(1000);
        let mut r = rng();
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[g.next(&mut r) as usize] += 1;
        }
        // Still skewed overall (some key is hot)...
        let max = *counts.iter().max().unwrap();
        assert!(max > 5_000);
        // ...but the hottest key is not key 0 in general.
        let argmax = counts.iter().position(|&c| c == max).unwrap();
        assert_ne!(argmax, 0, "scrambling must move the hot key");
    }

    #[test]
    fn uniform_is_flat() {
        let g = UniformGen::new(100);
        let mut r = rng();
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[g.next(&mut r) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform spread: {min}..{max}");
    }

    #[test]
    fn latest_favours_recent() {
        let g = LatestGen::new(1000);
        let mut r = rng();
        let mut recent = 0;
        for _ in 0..10_000 {
            if g.next(&mut r, 999) > 900 {
                recent += 1;
            }
        }
        assert!(recent > 5_000, "latest head weight: {recent}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ScrambledZipfian::new(1000);
        let a: Vec<u64> = {
            let mut r = rng();
            (0..100).map(|_| g.next(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng();
            (0..100).map(|_| g.next(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
