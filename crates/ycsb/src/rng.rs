//! In-tree pseudo-random number generation: SplitMix64 seeding and
//! xoshiro256** generation.
//!
//! The workload generators need a small, fast, seedable PRNG with good
//! statistical quality — nothing cryptographic. Keeping it in-tree keeps
//! the whole workspace buildable with zero external crates (the offline
//! build policy; see DESIGN.md). Algorithms: Vigna's SplitMix64 (used to
//! expand a 64-bit seed into the 256-bit xoshiro state, as its authors
//! recommend) and xoshiro256** 1.0.

/// SplitMix64: a tiny 64-bit PRNG, mainly used here as a seed expander.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed directly from a 64-bit value.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derive the seed of stream `stream_id` from `base_seed` — the
/// SplitMix64 stream-derivation contract behind [`Rng::split`].
///
/// The derivation runs SplitMix64 from `base_seed`, *skips*
/// `stream_id + 1` outputs, and mixes the last one with one more
/// SplitMix64 step keyed by the stream id. Because every SplitMix64
/// output is a bijective mix of a distinct counter value, distinct
/// `(base_seed, stream_id)` pairs map to distinct derived seeds for any
/// realistic stream count, and neighboring stream ids share no
/// low-entropy structure (each differs by a full avalanche step).
///
/// Exposed separately from [`Rng::split`] because some callers need the
/// raw derived *seed* (e.g. to put in a `LoadGen`/trace spec that seeds
/// its own generator internally) rather than a constructed generator.
pub fn stream_seed(base_seed: u64, stream_id: u64) -> u64 {
    let mut sm = SplitMix64::new(base_seed);
    let mut last = 0u64;
    // Cheap skip for practical stream counts (sweep grids are O(100)
    // cells); the final xor-fold makes even stream 0 differ from the
    // plain `seed_from_u64(base_seed)` expansion.
    for _ in 0..=stream_id.min(1024) {
        last = sm.next_u64();
    }
    SplitMix64::new(last ^ stream_id.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// xoshiro256**: the workloads' generator. 256 bits of state, period
/// 2^256 − 1, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The default generator type used throughout the workloads.
pub type Rng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion of `seed` (never yields the
    /// all-zero state, which xoshiro cannot escape).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 high bits of the next output).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)` via 128-bit widening multiply
    /// (Lemire's method without the rejection step — the bias is
    /// ≤ n/2^64, irrelevant for workload generation).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` — `[0, 0)` is empty, so there is nothing to
    /// draw. This holds in release builds too (it used to be a
    /// `debug_assert!`, which silently returned 0 in release; callers
    /// indexing a roster with that 0 would then read an element of an
    /// empty collection downstream). Callers that want saturation
    /// semantics must handle the empty case themselves *before*
    /// drawing; the recipe-pick sites do this by rejecting empty
    /// rosters with a typed error at entry (see
    /// `simos::load::LoadError::EmptyRecipes`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0): cannot draw from the empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// One uniform byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Seed stream `stream_id` derived from `base_seed` — the per-cell
    /// seeding primitive for parallel sweeps.
    ///
    /// Contract: `split(b, s)` equals
    /// `seed_from_u64(stream_seed(b, s))`, is deterministic in
    /// `(base_seed, stream_id)` alone (no global state, no ordering
    /// dependence), and distinct stream ids yield statistically
    /// uncorrelated generators (see [`stream_seed`] for the SplitMix64
    /// derivation). A parallel grid gives cell *i* the stream
    /// `Rng::split(GRID_SEED, i)`; results are then independent of
    /// which worker runs the cell and in what order.
    pub fn split(base_seed: u64, stream_id: u64) -> Self {
        Self::seed_from_u64(stream_seed(base_seed, stream_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // First outputs for seed 0, from Vigna's reference C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_looks_uniform() {
        let mut r = Rng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((0.47..0.53).contains(&mean), "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_flat() {
        let mut r = Rng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics_in_every_build() {
        // The documented contract: `below(0)` panics (release builds
        // included), instead of the old debug_assert that silently
        // returned 0 and let callers index empty rosters downstream.
        let mut r = Rng::seed_from_u64(1);
        let _ = r.below(0);
    }

    #[test]
    fn below_one_is_always_zero() {
        // The smallest *legal* range: every draw from [0, 1) is 0.
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..64 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn split_is_deterministic_and_matches_stream_seed() {
        let a = Rng::split(0x5eed, 3);
        let b = Rng::split(0x5eed, 3);
        let c = Rng::seed_from_u64(stream_seed(0x5eed, 3));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn split_streams_are_distinct_and_differ_from_plain_seeding() {
        // No two of the first 256 streams share a derived seed, and
        // stream 0 is not the plain seed_from_u64 expansion (so code
        // that mixes both conventions never aliases).
        let mut seeds: Vec<u64> = (0..256).map(|s| stream_seed(0xabcd, s)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 256, "derived seeds collide");
        assert_ne!(Rng::split(0xabcd, 0), Rng::seed_from_u64(0xabcd));
    }

    #[test]
    fn split_streams_do_not_correlate() {
        // Statistical smoke test: adjacent streams (the worst case for
        // a weak derivation) agree on ~50% of output bits, and their
        // early outputs are disjoint.
        let mut a = Rng::split(42, 0);
        let mut b = Rng::split(42, 1);
        let head_a: Vec<u64> = (0..1024).map(|_| a.next_u64()).collect();
        let head_b: Vec<u64> = (0..1024).map(|_| b.next_u64()).collect();
        assert!(
            head_a.iter().all(|x| !head_b.contains(x)),
            "adjacent streams share early outputs"
        );
        let agree: u32 = head_a
            .iter()
            .zip(&head_b)
            .map(|(x, y)| (!(x ^ y)).count_ones())
            .sum();
        let total = 1024 * 64;
        let frac = f64::from(agree) / f64::from(total);
        assert!(
            (0.48..0.52).contains(&frac),
            "bit agreement {frac} outside [0.48, 0.52]"
        );
    }

    #[test]
    fn bytes_cover_the_range() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[r.byte() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all byte values reachable");
    }
}
