//! Registry-driven sweep harness: run any roster of [`IpcSystem`]s over a
//! size axis and render the resulting [`Invocation`]s — as cycle tables,
//! as phase-attributed ledger tables, or as a JSON dump for plotting.
//!
//! Every per-figure module used to hand-roll its own loop over systems
//! and sizes; they now all call [`sweep`] and format the shared
//! [`SweepRow`]s, so a figure is just "which systems, which sizes, which
//! view of the ledger".

use crate::experiments::Report;
use kernels::{Invocation, InvokeOpts, IpcSystem};

/// The default message-size axis (bytes) for sweep-driven figures.
pub const SIZES: [usize; 5] = [0, 64, 1024, 4096, 16384];

/// One system's sweep: the invocation (with full ledger) per size.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The system's display name.
    pub system: String,
    /// `(msg_len, invocation)` per point of the size axis.
    pub points: Vec<(usize, Invocation)>,
}

/// Drive every system over every size with the same [`InvokeOpts`].
pub fn sweep(
    mut systems: Vec<Box<dyn IpcSystem>>,
    sizes: &[usize],
    opts: &InvokeOpts,
) -> Vec<SweepRow> {
    systems
        .iter_mut()
        .map(|s| SweepRow {
            system: s.name(),
            points: sizes.iter().map(|&b| (b, s.oneway(b, opts))).collect(),
        })
        .collect()
}

/// The full 12-system roster over the default axis — the observability
/// dump behind `figures --json`. One pool cell per system: the worker
/// builds its system from the roster *factory* (a `Send + Sync` fn
/// pointer), so fanning out needs no `Send` bound on the systems
/// themselves, and index-ordered reduction keeps roster order.
pub fn roster_sweep() -> Vec<SweepRow> {
    simos::par::map_cells(kernels::full_roster_factories(), |_, mk, _| {
        let mut s = mk();
        SweepRow {
            system: s.name(),
            points: SIZES
                .iter()
                .map(|&b| (b, s.oneway(b, &InvokeOpts::call())))
                .collect(),
        }
    })
}

/// Render sweep rows as a size-by-system cycle table (the Figure 6 shape:
/// one row per size, one column per system, cells are total cycles).
pub fn cycles_table(id: &'static str, caption: &'static str, rows: &[SweepRow]) -> Report {
    let mut headers = vec!["Message size".to_string()];
    headers.extend(rows.iter().map(|r| r.system.clone()));
    let n = rows.first().map_or(0, |r| r.points.len());
    let table = (0..n)
        .map(|i| {
            let mut row = vec![format!("{}B", rows[0].points[i].0)];
            row.extend(rows.iter().map(|r| r.points[i].1.total.to_string()));
            row
        })
        .collect();
    Report {
        id,
        caption,
        headers,
        rows: table,
    }
}

/// Render labelled invocations as a phase-by-column ledger table (the
/// Table 1 shape: one row per phase in first-charge order, one column per
/// invocation, plus a Sum row). Columns may attribute different phase
/// sets; absent phases print as "-".
pub fn ledger_table(
    id: &'static str,
    caption: &'static str,
    cols: &[(String, Invocation)],
) -> Report {
    // Phase order: first-charge order across columns, left to right.
    let mut phases = Vec::new();
    for (_, inv) in cols {
        for &(p, _) in inv.ledger.spans() {
            if !phases.contains(&p) {
                phases.push(p);
            }
        }
    }
    let mut headers = vec!["Phases (cycles)".to_string()];
    headers.extend(cols.iter().map(|(n, _)| n.clone()));
    let mut rows: Vec<Vec<String>> = phases
        .iter()
        .map(|&p| {
            let mut row = vec![p.label().to_string()];
            row.extend(cols.iter().map(|(_, inv)| {
                if inv.ledger.spans().iter().any(|&(q, _)| q == p) {
                    inv.ledger.get(p).to_string()
                } else {
                    "-".into()
                }
            }));
            row
        })
        .collect();
    let mut sum = vec!["Sum".to_string()];
    sum.extend(cols.iter().map(|(_, inv)| inv.total.to_string()));
    rows.push(sum);
    Report {
        id,
        caption,
        headers,
        rows,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_invocation(msg_len: usize, inv: &Invocation) -> String {
    let phases = inv
        .ledger
        .spans()
        .iter()
        .map(|(p, c)| format!("\"{}\": {c}", p.key()))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"msg_len\": {msg_len}, \"total\": {}, \"copied_bytes\": {}, \"phases\": {{{phases}}}}}",
        inv.total, inv.copied_bytes
    )
}

/// Serialize sweep rows plus extra labelled invocations (e.g. the Figure 5
/// ablation ladder) as the `BENCH_figures.json` document: per-system,
/// per-size, per-phase cycle attributions. `raw` appends pre-rendered
/// JSON values as further top-level sections (e.g. the scale-out grid,
/// whose rows are load reports rather than invocations).
pub fn json_dump(
    rows: &[SweepRow],
    extra: &[(&str, Vec<(String, Invocation)>)],
    raw: &[(&str, String)],
) -> String {
    let mut out = String::from("{\n  \"systems\": [\n");
    let systems = rows
        .iter()
        .map(|r| {
            let points = r
                .points
                .iter()
                .map(|(b, inv)| format!("      {}", json_invocation(*b, inv)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "    {{\"name\": \"{}\", \"points\": [\n{points}\n    ]}}",
                json_escape(&r.system)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    out.push_str(&systems);
    out.push_str("\n  ]");
    for (key, cols) in extra {
        out.push_str(&format!(",\n  \"{}\": [\n", json_escape(key)));
        let items = cols
            .iter()
            .map(|(name, inv)| {
                format!(
                    "    {{\"name\": \"{}\", \"invocation\": {}}}",
                    json_escape(name),
                    json_invocation(0, inv)
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        out.push_str(&items);
        out.push_str("\n  ]");
    }
    for (key, value) in raw {
        out.push_str(&format!(",\n  \"{}\": {value}", json_escape(key)));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{Phase, Sel4, Sel4Transfer};

    #[test]
    fn roster_sweep_covers_every_system_and_size() {
        let rows = roster_sweep();
        assert_eq!(rows.len(), kernels::full_roster().len());
        for r in &rows {
            assert_eq!(r.points.len(), SIZES.len(), "{}", r.system);
            for (b, inv) in &r.points {
                assert_eq!(inv.total, inv.ledger.total(), "{} at {b}B", r.system);
            }
        }
    }

    #[test]
    fn cycles_table_has_one_row_per_size() {
        let rows = roster_sweep();
        let t = cycles_table("T", "test", &rows);
        assert_eq!(t.rows.len(), SIZES.len());
        assert_eq!(t.headers.len(), rows.len() + 1);
    }

    #[test]
    fn ledger_table_prints_sum_matching_totals() {
        let mut s = Sel4::new(Sel4Transfer::OneCopy);
        let cols = vec![
            ("0B".to_string(), s.oneway(0, &InvokeOpts::call())),
            ("4KB".to_string(), s.oneway(4096, &InvokeOpts::call())),
        ];
        let t = ledger_table("T", "test", &cols);
        let sum = t.rows.last().unwrap();
        assert_eq!(sum[1], cols[0].1.total.to_string());
        assert_eq!(sum[2], cols[1].1.total.to_string());
    }

    #[test]
    fn json_dump_is_parseable_shape() {
        let mut s = Sel4::new(Sel4Transfer::OneCopy);
        let rows = sweep(
            vec![Box::new(Sel4::new(Sel4Transfer::OneCopy))],
            &[0, 64],
            &InvokeOpts::call(),
        );
        let extra = vec![(
            "fig5",
            vec![("bar".to_string(), s.oneway(0, &InvokeOpts::call()))],
        )];
        let raw = vec![("scale", "[{\"x\": 1}]".to_string())];
        let j = json_dump(&rows, &extra, &raw);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"seL4-onecopy\""), "{j}");
        assert!(j.contains(&format!("\"{}\"", Phase::Trap.key())));
        assert!(j.contains("\"fig5\""));
        assert!(j.contains("\"scale\": [{\"x\": 1}]"));
        // Balanced braces/brackets — a cheap well-formedness proxy.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
