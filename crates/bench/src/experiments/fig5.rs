//! **Figure 5** — XPC optimizations and breakdown: one wrapped IPC call
//! measured on the emulator under the five cumulative configurations.
//!
//! Each bar is the [`Invocation`] of an [`EmulatedXpc`] rung — the
//! phase split (trampoline / xcall / xret) comes from its ledger, and the
//! per-rung saving is the [`kernels::CycleLedger::diff`] against the
//! previous bar's ledger.

use super::Report;
use crate::harness::{CallBenchConfig, EmulatedXpc};
use kernels::{Invocation, InvokeOpts, IpcSystem, Phase};

/// One Figure 5 bar.
#[derive(Debug, Clone)]
pub struct Fig5Bar {
    /// Configuration name.
    pub config: &'static str,
    /// The measured invocation (ledger: trampoline + xcall + xret).
    pub invocation: Invocation,
    /// Whole wrapped call (save + xcall + callee + xret + restore).
    pub total: u64,
    /// The `xcall` instruction alone.
    pub xcall: u64,
    /// The `xret` instruction alone.
    pub xret: u64,
    /// Per-phase change vs the previous bar (empty for the first).
    pub delta: Vec<(Phase, i64)>,
}

/// Measure the five ladder invocations.
pub fn invocations() -> Vec<(&'static str, Invocation)> {
    CallBenchConfig::fig5_ladder()
        .into_iter()
        .map(|(config, cfg)| {
            let inv = EmulatedXpc::new(config, &cfg).oneway(0, &InvokeOpts::call());
            (config, inv)
        })
        .collect()
}

/// Measure all five bars, each annotated with its ledger diff vs the
/// previous rung.
pub fn bars() -> Vec<Fig5Bar> {
    let mut prev: Option<Invocation> = None;
    // One diff buffer across the ladder; each bar clones only its own
    // (tiny) delta out of the warm scratch.
    let mut scratch: Vec<(Phase, i64)> = Vec::new();
    invocations()
        .into_iter()
        .map(|(config, inv)| {
            let delta = match &prev {
                Some(p) => {
                    inv.ledger.diff_into(&p.ledger, &mut scratch);
                    scratch.clone()
                }
                None => Vec::new(),
            };
            let bar = Fig5Bar {
                config,
                total: inv.total,
                xcall: inv.ledger.get(Phase::Xcall),
                xret: inv.ledger.get(Phase::Xret),
                delta,
                invocation: inv.clone(),
            };
            prev = Some(inv);
            bar
        })
        .collect()
}

/// Regenerate Figure 5.
pub fn run() -> Report {
    let rows = bars()
        .into_iter()
        .map(|b| {
            let saved: i64 = -b.delta.iter().map(|&(_, d)| d).sum::<i64>();
            vec![
                b.config.to_string(),
                b.total.to_string(),
                b.invocation.ledger.get(Phase::Trampoline).to_string(),
                b.xcall.to_string(),
                b.xret.to_string(),
                if b.delta.is_empty() {
                    "-".into()
                } else {
                    format!("-{saved}")
                },
            ]
        })
        .collect();
    Report {
        id: "Figure 5",
        caption: "XPC optimizations and breakdown (one IPC call, emulator-measured; paper totals 150/89/49/33/21)",
        headers: vec![
            "Configuration".into(),
            "IPC call (cycles)".into(),
            "trampoline".into(),
            "xcall".into(),
            "xret".into(),
            "vs prev".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_strictly_improves() {
        let b = bars();
        for pair in b.windows(2) {
            assert!(
                pair[1].total < pair[0].total,
                "{} ({}) should beat {} ({})",
                pair[1].config,
                pair[1].total,
                pair[0].config,
                pair[0].total
            );
        }
    }

    #[test]
    fn deltas_account_for_the_total_drop() {
        // The ledger diff is a faithful decomposition: summing the
        // per-phase deltas reproduces the total's change at every rung.
        let b = bars();
        for pair in b.windows(2) {
            let d: i64 = pair[1].delta.iter().map(|&(_, d)| d).sum();
            assert_eq!(
                d,
                pair[1].total as i64 - pair[0].total as i64,
                "{} vs {}",
                pair[1].config,
                pair[0].config
            );
        }
    }

    #[test]
    fn full_ctx_total_in_paper_band() {
        // Paper: 150 cycles for Full-Cxt (trampoline 76 + xcall 34 +
        // TLB 40). Our wrapped call includes xret, so allow a band.
        let t = bars()[0].total;
        assert!((120..=230).contains(&t), "Full-Cxt total {t}");
    }

    #[test]
    fn best_config_near_paper_21() {
        let b = bars();
        let best = b.last().unwrap();
        // Paper: 21 cycles (one-way view). Our round trip adds the xret;
        // subtracting it should land close to the paper's number.
        let oneway_view = best.total - best.xret;
        assert!(
            (15..=45).contains(&oneway_view),
            "best one-way view {oneway_view}"
        );
        assert_eq!(best.xcall, 6, "engine-cache xcall = 6");
    }

    #[test]
    fn nonblocking_saves_the_push() {
        let b = bars();
        let tagged = b.iter().find(|x| x.config == "+Tagged-TLB").unwrap();
        let nonblock = b
            .iter()
            .find(|x| x.config == "+Nonblock LinkStack")
            .unwrap();
        let saved = tagged.xcall - nonblock.xcall;
        assert_eq!(saved, 16, "paper: non-blocking link stack saves 16 cycles");
        // And the diff attributes that saving to the xcall phase.
        let xcall_delta = nonblock
            .delta
            .iter()
            .find(|&&(p, _)| p == Phase::Xcall)
            .map(|&(_, d)| d)
            .unwrap_or(0);
        assert_eq!(xcall_delta, -16, "ledger diff pins the win on xcall");
    }
}
