//! **Figure 5** — XPC optimizations and breakdown: one wrapped IPC call
//! measured on the emulator under the five cumulative configurations.

use super::Report;
use crate::harness::{CallBench, CallBenchConfig};

/// One Figure 5 bar.
#[derive(Debug, Clone)]
pub struct Fig5Bar {
    /// Configuration name.
    pub config: &'static str,
    /// Whole wrapped call (save + xcall + callee + xret + restore).
    pub total: u64,
    /// The `xcall` instruction alone.
    pub xcall: u64,
    /// The `xret` instruction alone.
    pub xret: u64,
}

/// Measure all five bars.
pub fn bars() -> Vec<Fig5Bar> {
    CallBenchConfig::fig5_ladder()
        .into_iter()
        .map(|(config, cfg)| {
            let mut b = CallBench::new(&cfg);
            let m = b.measure(3);
            Fig5Bar {
                config,
                total: m.roundtrip,
                xcall: m.xcall,
                xret: m.xret,
            }
        })
        .collect()
}

/// Regenerate Figure 5.
pub fn run() -> Report {
    let rows = bars()
        .into_iter()
        .map(|b| {
            vec![
                b.config.to_string(),
                b.total.to_string(),
                b.xcall.to_string(),
                b.xret.to_string(),
            ]
        })
        .collect();
    Report {
        id: "Figure 5",
        caption: "XPC optimizations and breakdown (one IPC call, emulator-measured; paper totals 150/89/49/33/21)",
        headers: vec![
            "Configuration".into(),
            "IPC call (cycles)".into(),
            "xcall".into(),
            "xret".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_strictly_improves() {
        let b = bars();
        for pair in b.windows(2) {
            assert!(
                pair[1].total < pair[0].total,
                "{} ({}) should beat {} ({})",
                pair[1].config,
                pair[1].total,
                pair[0].config,
                pair[0].total
            );
        }
    }

    #[test]
    fn full_ctx_total_in_paper_band() {
        // Paper: 150 cycles for Full-Cxt (trampoline 76 + xcall 34 +
        // TLB 40). Our wrapped call includes xret, so allow a band.
        let t = bars()[0].total;
        assert!((120..=230).contains(&t), "Full-Cxt total {t}");
    }

    #[test]
    fn best_config_near_paper_21() {
        let b = bars();
        let best = b.last().unwrap();
        // Paper: 21 cycles (one-way view). Our round trip adds the xret;
        // subtracting it should land close to the paper's number.
        let oneway_view = best.total - best.xret;
        assert!(
            (15..=45).contains(&oneway_view),
            "best one-way view {oneway_view}"
        );
        assert_eq!(best.xcall, 6, "engine-cache xcall = 6");
    }

    #[test]
    fn nonblocking_saves_the_push() {
        let b = bars();
        let tagged = b.iter().find(|x| x.config == "+Tagged-TLB").unwrap();
        let nonblock = b.iter().find(|x| x.config == "+Nonblock LinkStack").unwrap();
        let saved = tagged.xcall - nonblock.xcall;
        assert_eq!(saved, 16, "paper: non-blocking link stack saves 16 cycles");
    }
}
