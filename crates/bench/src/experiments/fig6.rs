//! **Figure 6** — one-way call latency vs message size, seL4 vs seL4-XPC,
//! same-core and cross-core.

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc};
use simos::{InvokeOpts, IpcSystem};

/// The paper's x-axis.
pub const SIZES: [u64; 11] = [0, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

/// One curve: (system, per-size one-way cycles). Driven through the
/// shared [`crate::sweep`] harness; the totals are ledger sums.
pub fn curves() -> Vec<(String, Vec<u64>)> {
    let systems: Vec<Box<dyn IpcSystem>> = vec![
        Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        Box::new(XpcIpc::sel4_xpc()),
        Box::new(Sel4::cross_core(Sel4Transfer::TwoCopy)),
        Box::new(XpcIpc::sel4_xpc().cross_core()),
    ];
    let labels = [
        "seL4 (same core)",
        "seL4-XPC (same core)",
        "seL4 (cross cores)",
        "seL4-XPC (cross cores)",
    ];
    let sizes: Vec<usize> = SIZES.iter().map(|&s| s as usize).collect();
    crate::sweep::sweep(systems, &sizes, &InvokeOpts::call())
        .into_iter()
        .zip(labels)
        .map(|(row, l)| {
            let vals = row.points.into_iter().map(|(_, inv)| inv.total).collect();
            (l.to_string(), vals)
        })
        .collect()
}

/// Regenerate Figure 6.
pub fn run() -> Report {
    let c = curves();
    let mut headers = vec!["Message size".to_string()];
    headers.extend(c.iter().map(|(l, _)| l.clone()));
    let rows = SIZES
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut row = vec![format!("{s}B")];
            row.extend(c.iter().map(|(_, v)| v[i].to_string()));
            row
        })
        .collect();
    Report {
        id: "Figure 6",
        caption: "One-way call latency (cycles, log scale in the paper); speedups 5-37x same-core, 81-141x cross-core",
        headers,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(name: &str) -> Vec<u64> {
        curves().into_iter().find(|(l, _)| l == name).unwrap().1
    }

    #[test]
    fn xpc_is_flat_sel4_grows() {
        let sel4 = curve("seL4 (same core)");
        let xpc = curve("seL4-XPC (same core)");
        assert_eq!(xpc.first(), xpc.last(), "relay-seg is size-independent");
        assert!(sel4.last().unwrap() > &(10 * sel4.first().unwrap()));
    }

    #[test]
    fn same_core_speedup_band_5_to_37() {
        let sel4 = curve("seL4 (same core)");
        let xpc = curve("seL4-XPC (same core)");
        let s0 = sel4[0] as f64 / xpc[0] as f64;
        let s4k = sel4[7] as f64 / xpc[7] as f64;
        assert!((4.5..6.5).contains(&s0), "0B speedup {s0:.1}");
        assert!((30.0..40.0).contains(&s4k), "4KB speedup {s4k:.1}");
    }

    #[test]
    fn cross_core_speedup_band_81_to_141() {
        let sel4 = curve("seL4 (cross cores)");
        let xpc = curve("seL4-XPC (cross cores)");
        let small = sel4[0] as f64 / xpc[0] as f64;
        let big = sel4[7] as f64 / xpc[7] as f64;
        assert!((70.0..95.0).contains(&small), "small {small:.1}");
        assert!((125.0..160.0).contains(&big), "4KB {big:.1}");
    }

    #[test]
    fn medium_sizes_take_sel4_slow_path() {
        let sel4 = curve("seL4 (same core)");
        // 64B (slow path) costs more than 128B relative to its size —
        // the §2.2 anomaly where medium messages are disproportionately
        // expensive.
        assert!(sel4[1] > 2000, "64B slow path");
    }
}
