//! **Table 5** — IPC cost on the ARM HPI model: seL4 IPC-logic baseline
//! vs XPC, with the 58-cycle translation-base barrier broken out.
//!
//! The paper replayed a recorded seL4 `fastpath_call` /
//! `fastpath_reply_recv` instruction trace in GEM5. We do not have their
//! trace, so [`emit_fastpath_logic`] synthesizes an instruction sequence
//! with the same *shape* — capability fetch and validation, endpoint
//! checks, badge/thread-state bookkeeping — whose warm-cache cost on the
//! HPI model lands in the measured band (66/79 cycles). The XPC side is
//! measured for real: `xcall`/`xret` executed on the HPI-configured
//! emulator with the ARM engine timings.

use super::Report;
use crate::harness::{CallBench, CallBenchConfig};
use rv64::mem::DRAM_BASE;
use rv64::{reg, Assembler, Machine, MachineConfig};
use xpc::trampoline::ContextMode;
use xpc_engine::{XpcEngineConfig, XpcTimings};

/// Synthesize the seL4 fastpath IPC-logic instruction mix. `ret_path`
/// selects the (longer) `fastpath_reply_recv` shape.
pub fn emit_fastpath_logic(a: &mut Assembler, data: u64, ret_path: bool) {
    let uniq = a.here();
    let l = |n: &str| format!("fp_{n}_{uniq:x}");
    a.li(reg::T0, data as i64);
    // Fetch the cap and validate its type/rights (loads + masks + branches).
    for i in 0..4 {
        a.ld(reg::T1, reg::T0, 8 * i);
        a.andi(reg::T2, reg::T1, 0xf);
        a.bne(reg::T2, reg::ZERO, &l("slow"));
    }
    // Endpoint state checks.
    for i in 4..8 {
        a.ld(reg::T3, reg::T0, 8 * i);
        a.srli(reg::T4, reg::T3, 4);
        a.and(reg::T4, reg::T4, reg::T1);
    }
    // Badge / message-info computation.
    for _ in 0..15 {
        a.add(reg::T2, reg::T2, reg::T4);
        a.xori(reg::T2, reg::T2, 0x55);
    }
    // Thread-state and reply-cap bookkeeping (stores).
    for i in 0..4 {
        a.sd(reg::T2, reg::T0, 64 + 8 * i);
    }
    // Scheduling-queue manipulation on the longer return path.
    if ret_path {
        for i in 8..12 {
            a.ld(reg::T5, reg::T0, 8 * i);
            a.add(reg::T5, reg::T5, reg::T2);
            a.sd(reg::T5, reg::T0, 96 + 8 * (i - 8));
        }
        a.addi(reg::T6, reg::ZERO, 1);
    }
    a.label(&l("slow"));
}

/// Measure the synthetic baseline logic on the HPI machine, warm.
pub fn baseline_logic_cycles(ret_path: bool) -> u64 {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(reg::S1, 4);
    a.label("loop");
    let start = a.here();
    emit_fastpath_logic(&mut a, DRAM_BASE + 0x10000, ret_path);
    let end = a.here();
    a.addi(reg::S1, reg::S1, -1);
    a.bne(reg::S1, reg::ZERO, "loop");
    a.ebreak();
    let mut m = Machine::new(MachineConfig::arm_hpi_pipelined());
    m.load_program(&a.assemble());
    // Step, recording window cycles; keep the last (warm) lap.
    let mut lap_start = None;
    let mut last = 0;
    for _ in 0..100_000u64 {
        let pc = m.core.cpu.pc;
        if pc == start {
            lap_start = Some(m.core.cycles);
        }
        if pc == end {
            if let Some(s) = lap_start.take() {
                last = m.core.cycles - s;
            }
        }
        match m.step().expect("sim ok") {
            None => {}
            Some(_) => break,
        }
    }
    last
}

/// Measure XPC call/ret on the HPI machine with ARM engine timings.
/// Returns totals including the 58-cycle barrier.
pub fn xpc_cycles() -> (u64, u64) {
    let cfg = CallBenchConfig {
        machine: MachineConfig::arm_hpi_pipelined(),
        engine: XpcEngineConfig {
            engine_cache: false,
            nonblocking_link_stack: true,
            timings: XpcTimings::arm_hpi(),
        },
        context: ContextMode::Partial,
        prefetch: false,
    };
    let mut b = CallBench::new(&cfg);
    let m = b.measure(3);
    (m.xcall, m.xret)
}

/// Regenerate Table 5.
pub fn run() -> Report {
    let base_call = baseline_logic_cycles(false);
    let base_ret = baseline_logic_cycles(true);
    let (xc, xr) = xpc_cycles();
    let barrier = XpcTimings::arm_hpi().space_switch_barrier;
    Report {
        id: "Table 5",
        caption:
            "IPC cost on the ARM HPI model (TLB/TTBR barrier is ~58 cycles, broken out as +58)",
        headers: vec!["Systems".into(), "IPC Call".into(), "IPC Ret".into()],
        rows: vec![
            vec![
                "Baseline (cycles)".into(),
                format!("{base_call} (+{barrier})"),
                format!("{base_ret} (+{barrier})"),
            ],
            vec![
                "XPC (cycles)".into(),
                format!("{} (+{barrier})", xc - barrier),
                format!("{} (+{barrier})", xr - barrier),
            ],
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_in_paper_band() {
        let call = baseline_logic_cycles(false);
        let ret = baseline_logic_cycles(true);
        // Paper: 66 and 79.
        assert!((55..=80).contains(&call), "call logic {call}");
        assert!((68..=95).contains(&ret), "ret logic {ret}");
        assert!(ret > call, "reply path is longer");
    }

    #[test]
    fn xpc_is_7_and_10_plus_barrier() {
        let (xc, xr) = xpc_cycles();
        assert_eq!(xc, 7 + 58, "xcall on HPI");
        assert_eq!(xr, 10 + 58, "xret on HPI");
    }

    #[test]
    fn xpc_improves_logic_by_order_of_magnitude() {
        let call = baseline_logic_cycles(false);
        let (xc, _) = xpc_cycles();
        assert!(call / (xc - 58) >= 8, "66 -> 7 is ~9.4x");
    }
}
