//! **Figure 8** — applications: Sqlite3/YCSB normalized throughput on
//! Zircon (a) and seL4 (b), and HTTP server throughput (c).

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use minidb::run_workload;
use services::aes::AesServer;
use services::filecache::FileCache;
use services::http::{http_throughput_ops, HttpServer};
use simos::{IpcSystem, World};
use ycsb::{Workload, WorkloadSpec};

fn spec(wl: Workload) -> WorkloadSpec {
    WorkloadSpec {
        ops: 400,
        ..WorkloadSpec::paper(wl)
    }
}

fn ops(mech: Box<dyn IpcSystem>, wl: Workload) -> f64 {
    let mut w = World::new(mech);
    run_workload(&mut w, &spec(wl)).ops_per_sec
}

/// Normalized YCSB throughput: (workload, Zircon-XPC/Zircon,
/// seL4-onecopy/seL4-twocopy, seL4-XPC/seL4-twocopy).
pub fn normalized() -> Vec<(&'static str, f64, f64, f64)> {
    Workload::ALL
        .iter()
        .map(|&wl| {
            let z = ops(Box::new(Zircon::new()), wl);
            let zx = ops(Box::new(XpcIpc::zircon_xpc()), wl);
            let s2 = ops(Box::new(Sel4::new(Sel4Transfer::TwoCopy)), wl);
            let s1 = ops(Box::new(Sel4::new(Sel4Transfer::OneCopy)), wl);
            let sx = ops(Box::new(XpcIpc::sel4_xpc()), wl);
            (wl.name(), zx / z, s1 / s2, sx / s2)
        })
        .collect()
}

/// Regenerate Figure 8(a)+(b).
pub fn fig8ab() -> Report {
    let rows = normalized()
        .into_iter()
        .map(|(n, zx, s1, sx)| {
            vec![
                n.to_string(),
                format!("{zx:.2}x"),
                format!("{s1:.2}x"),
                format!("{sx:.2}x"),
            ]
        })
        .collect();
    Report {
        id: "Figure 8(a,b)",
        caption: "Sqlite3 YCSB throughput normalized to the baseline (paper: avg 2.08x Zircon, 1.6x seL4)",
        headers: vec![
            "Workload".into(),
            "Zircon-XPC / Zircon".into(),
            "seL4-onecopy / twocopy".into(),
            "seL4-XPC / twocopy".into(),
        ],
        rows,
    }
}

/// HTTP throughput in ops/s: (label, file size -> ops/s).
pub fn http_curves() -> Vec<(String, Vec<f64>)> {
    let sizes = [512usize, 1024, 2048, 4096];
    let mut out = Vec::new();
    for encrypt in [true, false] {
        for xpc in [false, true] {
            let label = format!(
                "{}Zircon{}",
                if encrypt { "encry-" } else { "" },
                if xpc { "-XPC" } else { "" }
            );
            let vals = sizes
                .iter()
                .map(|&s| {
                    let mech: Box<dyn IpcSystem> = if xpc {
                        Box::new(XpcIpc::zircon_xpc())
                    } else {
                        Box::new(Zircon::new())
                    };
                    let mut w = World::new(mech);
                    let mut cache = FileCache::new();
                    cache.put("/index.html", vec![b'x'; s]);
                    let aes = encrypt.then(|| AesServer::new(b"0123456789abcdef"));
                    let mut srv = HttpServer::new(cache, aes);
                    http_throughput_ops(&mut w, &mut srv, "/index.html", 50)
                })
                .collect();
            out.push((label, vals));
        }
    }
    out
}

/// Regenerate Figure 8(c).
pub fn fig8c() -> Report {
    let curves = http_curves();
    let sizes = [512usize, 1024, 2048, 4096];
    let mut headers = vec!["File size".to_string()];
    headers.extend(curves.iter().map(|(n, _)| n.clone()));
    let rows = sizes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut row = vec![format!("{s}B")];
            row.extend(curves.iter().map(|(_, v)| format!("{:.0}", v[i])));
            row
        })
        .collect();
    Report {
        id: "Figure 8(c)",
        caption: "HTTP server throughput, ops/s (paper: ~10x with encryption, ~12x without)",
        headers,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8ab_average_gains_in_band() {
        let n = normalized();
        let avg_z: f64 = n.iter().map(|r| r.1).sum::<f64>() / n.len() as f64;
        let avg_s: f64 = n.iter().map(|r| r.3).sum::<f64>() / n.len() as f64;
        // Paper: 108% (2.08x) on Zircon, 60% (1.6x) on seL4.
        assert!((1.3..4.0).contains(&avg_z), "Zircon avg {avg_z:.2}");
        assert!((1.2..3.5).contains(&avg_s), "seL4 avg {avg_s:.2}");
    }

    #[test]
    fn a_and_f_gain_most_on_sel4() {
        // Paper: "YCSB-A and YCSB-F gain the most improvement".
        let n = normalized();
        let gain = |name: &str| n.iter().find(|r| r.0 == name).unwrap().3;
        let gc = gain("YCSB-C");
        assert!(gain("YCSB-A") > gc, "A > C");
        assert!(gain("YCSB-F") > gc, "F > C");
    }

    #[test]
    fn http_speedup_bands() {
        let c = http_curves();
        let get = |n: &str| c.iter().find(|(l, _)| l == n).unwrap().1.clone();
        let enc = get("encry-Zircon");
        let enc_x = get("encry-Zircon-XPC");
        let plain = get("Zircon");
        let plain_x = get("Zircon-XPC");
        let enc_speedup = enc_x[2] / enc[2];
        let plain_speedup = plain_x[2] / plain[2];
        // Paper: ~10x with encryption, ~12x without.
        assert!(
            (5.0..20.0).contains(&plain_speedup),
            "plain {plain_speedup:.1}"
        );
        assert!(
            (4.0..16.0).contains(&enc_speedup),
            "encrypted {enc_speedup:.1}"
        );
        assert!(
            plain_speedup > enc_speedup,
            "encryption compute dilutes the IPC win: {plain_speedup:.1} vs {enc_speedup:.1}"
        );
    }
}
