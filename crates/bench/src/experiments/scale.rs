//! **Scale-out** — §5.2 multi-core: the Figure 8(c) HTTP chain driven by
//! a closed-loop load generator over a 4-core [`MultiWorld`], swept over
//! placement policies. Same-core placement serializes everything on one
//! core; spreading the chain buys parallelism but pays the cross-core
//! surcharge on every hop — except under XPC, whose migrating threads
//! cross cores for free. Throughput and the latency percentiles all
//! derive from per-request virtual-time spans and invocation ledgers.

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use simos::{Attribution, IpcSystem, LoadGen, LoadReport, MultiWorld, Placement, Step};

/// Cores in the scale-out world.
pub const CORES: usize = 4;

/// The mechanism roster: baselines and their XPC variants, as
/// constructors so every (mechanism, policy) cell starts cold.
type Mk = fn() -> Box<dyn IpcSystem>;

fn mechanisms() -> Vec<Mk> {
    vec![
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ]
}

fn policies() -> Vec<Placement> {
    vec![
        Placement::SameCore,
        Placement::Pinned(vec![0, 1, 2, 3]),
        Placement::RoundRobin,
        Placement::LeastLoaded,
    ]
}

/// The request mix: encrypted GETs over three file sizes around the
/// paper's web-server working set (Figure 8(c) serves 1K–16K pages).
fn recipes(handover: bool) -> Vec<Vec<Step>> {
    [1024u64, 4096, 16384]
        .iter()
        .map(|&len| {
            chain_steps(
                "/index.html",
                len,
                ChainSpec::default().with_handover(handover),
            )
        })
        .collect()
}

/// Run the full (mechanism × policy) grid. Deterministic: the generator
/// seed is fixed and every cell re-seeds from it, so every call — at any
/// pool worker count — returns bit-identical reports.
pub fn results() -> Vec<LoadReport> {
    let spec = LoadGen::default();
    // Pre-flight serially (the gate panics with figure context), then
    // fan the 16 (mechanism, policy) cells through the pool. Each
    // worker reuses one scratch + arena across the cells it draws, so
    // steady state stays allocation-free per worker.
    let mut cells: Vec<(Mk, Vec<Vec<Step>>, Placement)> = Vec::new();
    for mk in mechanisms() {
        let handover = mk().supports_handover();
        let recipes = recipes(handover);
        super::verify::gate("Scale-out", CHAIN_SERVICES, &recipes);
        for policy in policies() {
            cells.push((mk, recipes.clone(), policy));
        }
    }
    simos::par::map_cells(cells, |_, (mk, recipes, policy), scratch| {
        // The single-socket u500 preset: byte-identical to the
        // pre-topology 4-core world.
        let mut mw = MultiWorld::builder().cores(CORES).build(mk);
        simos::load::run_windowed_with(
            &mut mw,
            &policy,
            CHAIN_SERVICES,
            &recipes,
            &spec,
            1,
            &mut scratch.sweep,
            Attribution::Full(&mut scratch.arena),
        )
        .expect("scale grid cell must be runnable")
    })
}

/// Regenerate the scale-out table.
pub fn run() -> Report {
    let rows = results()
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.policy.to_string(),
                format!("{:.0}", r.throughput_rps),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p95_us),
                format!("{:.1}", r.p99_us),
                format!("{:.0}%", r.cross_core_fraction() * 100.0),
            ]
        })
        .collect();
    Report {
        id: "Scale-out",
        caption: "HTTP chain on 4 cores: throughput/latency by placement (closed loop, 16 clients x 400 reqs)",
        headers: vec![
            "System".into(),
            "Placement".into(),
            "Req/s".into(),
            "p50 us".into(),
            "p95 us".into(),
            "p99 us".into(),
            "x-core".into(),
        ],
        rows,
    }
}

/// The `"scale"` section of `BENCH_figures.json`: one object per
/// (mechanism, policy) cell with the ledger-derived metrics.
pub fn json_section() -> String {
    let cells = results()
        .iter()
        .map(|r| {
            format!(
                "    {{\"system\": \"{}\", \"policy\": \"{}\", \"cores\": {}, \"clients\": {}, \
                 \"requests\": {}, \"throughput_rps\": {:.1}, \"mean_us\": {:.2}, \
                 \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}, \
                 \"cross_core_fraction\": {:.4}}}",
                r.system,
                r.policy,
                r.cores,
                r.clients,
                r.requests,
                r.throughput_rps,
                r.mean_us,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.cross_core_fraction()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{cells}\n  ]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_mechanisms_by_policies() {
        let rows = results();
        assert_eq!(rows.len(), 4 * 4);
        for r in &rows {
            assert_eq!(r.cores, CORES);
            assert_eq!(r.requests, LoadGen::default().requests);
            assert!(r.throughput_rps > 0.0, "{} / {}", r.system, r.policy);
            assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
        }
    }

    #[test]
    fn xpc_scales_out_where_baselines_pay_the_surcharge() {
        // Under XPC the cross-core surcharge is zero, so spreading the
        // chain must not cost IPC cycles; under Zircon every spread hop
        // pays ~10.7k cycles.
        let rows = results();
        let cell = |sys: &str, pol: &str| {
            rows.iter()
                .find(|r| r.system == sys && r.policy == pol)
                .unwrap()
        };
        assert_eq!(cell("seL4-XPC", "round-robin").cross_core_fraction(), 0.0);
        assert!(cell("Zircon", "pinned").cross_core_fraction() > 0.3);
        // Fully spreading the Zircon chain is a *loss*: the surcharge on
        // every hop outweighs the parallelism.
        assert!(
            cell("Zircon", "pinned").throughput_rps < cell("Zircon", "same-core").throughput_rps
        );
        // XPC turns the same spread into a >2x win.
        assert!(
            cell("seL4-XPC", "round-robin").throughput_rps
                > 2.0 * cell("seL4-XPC", "same-core").throughput_rps
        );
    }
}
