//! **Fuse** — fused multi-hop call programs (the AnyCall submit-once
//! shape): the client issues *one* submission and the chain of services
//! drives itself server-side, so the mechanism decides what a hop
//! costs. Two views share the `"fuse"` section of `BENCH_figures.json`:
//!
//! * **grid** — mechanism × chain depth {1..6} × handover on/off, each
//!   cell one fused program on an idle world. The headline metric is
//!   *crossings per request*: XPC serves the whole chain as one
//!   trampoline entry plus warm per-hop `xcall`s — crossings stay at 1
//!   at every depth — while the trap-based baselines re-enter the
//!   kernel per hop and their crossings scale linearly. Cycles and
//!   copied bytes ride along (relay-segment handover moves a 16-byte
//!   descriptor; copy mechanisms move the full payload every hop);
//! * **knee** — the depth-4 handover chain under the open-loop Poisson
//!   generator on u500, ρ swept over each mechanism's own calibrated
//!   capacity. Fusing shrinks per-request work, so the cheaper-crossing
//!   mechanisms keep their knees to the right at the same relative
//!   pressure.
//!
//! Every program is verified before it is priced:
//! [`super::verify::gate_program`] refuses cap-violating, over-deep, or
//! handover-stealing chains outright.

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use simos::serve::{serve_with, ServeScratch};
use simos::{
    ArrivalProcess, ArrivalTrace, Attribution, CallProgram, IpcSystem, LedgerArena, MultiWorld,
    OpenLoopGen, PhaseTotals, Placement, Recipe, ServePolicy, ServeReport, ServeSpec, Step,
    TenantClass, Topology,
};

/// Chain depths the grid sweeps.
pub const DEPTHS: [usize; 6] = [1, 2, 3, 4, 5, 6];

/// Request bytes carried into every hop.
pub const HOP_REQUEST: u64 = 1024;

/// Handler cycles burned at every hop.
pub const HOP_COMPUTE: u64 = 500;

/// Reply bytes from the last hop back to the client.
pub const REPLY_BYTES: u64 = 256;

/// Chain depth of the open-loop knee view.
pub const KNEE_DEPTH: usize = 4;

/// Retain 1-in-N spans; totals stay exact.
const SAMPLE_EVERY: u64 = 32;

type Mk = fn() -> Box<dyn IpcSystem>;

fn mechanisms() -> Vec<Mk> {
    vec![
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ]
}

/// A uniform `depth`-hop chain program: client 0 calls services
/// `1..=depth` in order, [`HOP_REQUEST`] bytes and [`HOP_COMPUTE`]
/// cycles per hop, [`REPLY_BYTES`] back. With `handover` every edge
/// declares relay-segment intent (mechanisms that cannot handover
/// still copy the full payload).
pub fn chain(depth: usize, handover: bool) -> CallProgram {
    let mut r = Recipe::new(0);
    for svc in 1..=depth {
        r = if handover {
            r.handover(svc, HOP_REQUEST)
        } else {
            r.hop(svc, HOP_REQUEST)
        };
        r = r.compute(HOP_COMPUTE);
    }
    r.reply(REPLY_BYTES)
        .build()
        .expect("grid depths sit far below MAX_PROGRAM_HOPS")
}

/// One grid cell: a single fused program priced on an idle
/// `depth + 1`-core world under the identity map.
#[derive(Debug, Clone)]
pub struct FuseCell {
    /// Mechanism name.
    pub system: String,
    /// Chain depth (hops).
    pub depth: usize,
    /// Whether every edge declared handover intent.
    pub handover: bool,
    /// Completion cycles for the whole program (IPC + compute).
    pub cycles: u64,
    /// Crossings the entry mechanism charges the request.
    pub crossings: u64,
    /// Payload bytes physically copied.
    pub copied_bytes: u64,
}

/// The (mechanism × depth × handover) grid. Deterministic: every cell
/// builds a cold world and prices exactly one program.
pub fn grid_results() -> Vec<FuseCell> {
    // Pre-flight each distinct program serially (the gate panics with
    // figure context), then fan the 48 cells through the pool.
    for depth in DEPTHS {
        for handover in [false, true] {
            super::verify::gate_program(
                &format!("Fuse depth={depth} handover={handover}"),
                depth + 1,
                &chain(depth, handover),
            );
        }
    }
    let mut cells: Vec<(Mk, usize, bool)> = Vec::new();
    for mk in mechanisms() {
        for depth in DEPTHS {
            for handover in [false, true] {
                cells.push((mk, depth, handover));
            }
        }
    }
    simos::par::map_cells(cells, |_, (mk, depth, handover), _| {
        let system = mk().name();
        let mut mw = MultiWorld::builder()
            .topology(Topology::single_socket(depth + 1))
            .build(mk);
        let pid = mw.register_program(chain(depth, handover));
        let map: Vec<usize> = (0..=depth).collect();
        let c = mw.exec_fused(0, pid, &map, 0);
        FuseCell {
            system,
            depth,
            handover,
            cycles: c.done,
            crossings: mw.fused_crossings(pid, &map),
            copied_bytes: c.inv.copied_bytes,
        }
    })
}

/// One knee-curve cell: the depth-4 handover chain at offered load
/// `rho_x10`/10 of the mechanism's own calibrated capacity.
#[derive(Debug, Clone)]
pub struct FuseKneeCell {
    /// Offered load in tenths of calibrated capacity.
    pub rho_x10: u64,
    /// Measured saturation period (cycles per fused request at full
    /// throughput) the ρ axis is expressed against.
    pub capacity_period_cycles: u64,
    /// The serve outcome.
    pub report: ServeReport,
}

fn knee_spec() -> ServeSpec {
    ServeSpec {
        tenants: super::serve::TENANTS,
        classes: vec![TenantClass {
            // Generous: the fused knee shows queueing, not shedding.
            queue_cap: 1 << 20,
            slo_p99_us: super::serve::SLO_P99_US,
        }],
        backlog_cap_cycles: 0,
    }
}

fn poisson(mean: u64) -> OpenLoopGen {
    OpenLoopGen {
        process: ArrivalProcess::Poisson,
        mean_interarrival_cycles: mean,
        tenants: super::serve::TENANTS,
        users: 1_000_000,
        seed: super::serve::SEED,
    }
}

fn world(mk: Mk) -> MultiWorld {
    MultiWorld::builder().topology(Topology::u500()).build(mk)
}

/// Register the knee program in `mw` and return the one-step fused
/// recipe roster the serve driver replays.
fn fused_recipes(mw: &mut MultiWorld) -> Vec<Vec<Step>> {
    let pid = mw.register_program(chain(KNEE_DEPTH, true));
    vec![vec![Step::Fused(pid)]]
}

/// Measured saturation period for the fused chain on a mechanism: a
/// back-to-back probe trace served on a cold world, makespan over
/// request count (the fused sibling of
/// [`super::serve::calibrate_capacity_period`], which cannot be reused
/// because the program must be registered in the probed world).
fn calibrate(mk: Mk) -> u64 {
    let probe = poisson(1)
        .trace(super::serve::CAPACITY_PROBE, 1)
        .expect("probe trace spec is valid");
    let mut mw = world(mk);
    let recipes = fused_recipes(&mut mw);
    let r = simos::serve::serve(
        &mut mw,
        &ServePolicy::Static(Placement::RoundRobin),
        KNEE_DEPTH + 1,
        &recipes,
        &probe,
        &knee_spec(),
    )
    .expect("fused calibration probe must serve");
    (r.makespan_cycles / super::serve::CAPACITY_PROBE).max(1)
}

fn run_cell(
    mw: &mut MultiWorld,
    recipes: &[Vec<Step>],
    trace: &ArrivalTrace,
    scratch: &mut ServeScratch,
    arena: &mut LedgerArena,
) -> ServeReport {
    let mut totals = PhaseTotals::new();
    serve_with(
        mw,
        &ServePolicy::Static(Placement::RoundRobin),
        KNEE_DEPTH + 1,
        recipes,
        trace,
        &knee_spec(),
        scratch,
        Attribution::Sampled {
            every: SAMPLE_EVERY,
            totals: &mut totals,
            arena,
        },
    )
    .expect("fused serve cell must be runnable")
}

/// The fused knee: mechanism × offered load on u500, same seed at every
/// ρ. Deterministic at any pool worker count: calibration runs as its
/// own pool phase, then the ρ cells fan out with the period pinned.
pub fn knee_results() -> Vec<FuseKneeCell> {
    super::verify::gate_program("Fuse-knee", KNEE_DEPTH + 1, &chain(KNEE_DEPTH, true));
    let calibrated = simos::par::map_cells(mechanisms(), |_, mk, _| (mk, calibrate(mk)));
    let mut cells: Vec<(Mk, u64, u64)> = Vec::new();
    for (mk, period) in calibrated {
        for rho_x10 in super::serve::RHO_X10 {
            cells.push((mk, period, rho_x10));
        }
    }
    simos::par::map_cells(cells, |_, (mk, period, rho_x10), cs| {
        let mean = (period * 10 / rho_x10).max(1);
        let trace = poisson(mean)
            .trace(super::serve::REQUESTS, 1)
            .expect("fused knee trace spec is valid");
        let mut mw = world(mk);
        let recipes = fused_recipes(&mut mw);
        let report = run_cell(&mut mw, &recipes, &trace, &mut cs.serve, &mut cs.arena);
        FuseKneeCell {
            rho_x10,
            capacity_period_cycles: period,
            report,
        }
    })
}

/// Regenerate the fuse table (the grid, with the knee appended).
pub fn run() -> Report {
    let mut rows: Vec<Vec<String>> = grid_results()
        .iter()
        .map(|c| {
            vec![
                c.system.clone(),
                c.depth.to_string(),
                if c.handover { "yes" } else { "no" }.to_string(),
                c.cycles.to_string(),
                c.crossings.to_string(),
                c.copied_bytes.to_string(),
            ]
        })
        .collect();
    for c in knee_results() {
        let r = &c.report;
        rows.push(vec![
            format!("{} rho={}.{}", r.system, c.rho_x10 / 10, c.rho_x10 % 10),
            KNEE_DEPTH.to_string(),
            "yes".to_string(),
            format!("p99us={:.1}", r.p99_us),
            format!("goodput/s={:.0}", r.goodput_rps),
            format!("shed={}", r.shed()),
        ]);
    }
    Report {
        id: "Fuse",
        caption: "Fused call programs: crossings-per-request stay at 1 under XPC at every depth while trap baselines scale linearly; depth-4 open-loop knee appended",
        headers: vec![
            "System".into(),
            "Depth".into(),
            "Handover".into(),
            "Cycles".into(),
            "Crossings".into(),
            "Copied B".into(),
        ],
        rows,
    }
}

/// The `"fuse"` section of `BENCH_figures.json`: grid + knee.
pub fn json_section() -> String {
    let grid = grid_results()
        .iter()
        .map(|c| {
            format!(
                "      {{\"system\": \"{}\", \"depth\": {}, \"handover\": {}, \"cycles\": {}, \
                 \"crossings\": {}, \"copied_bytes\": {}}}",
                c.system, c.depth, c.handover, c.cycles, c.crossings, c.copied_bytes
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let knee = knee_results()
        .iter()
        .map(|c| {
            let r = &c.report;
            format!(
                "      {{\"system\": \"{}\", \"rho_x10\": {}, \"capacity_period_cycles\": {}, \
                 \"offered\": {}, \"admitted\": {}, \"shed\": {}, \"goodput_rps\": {:.1}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                r.system,
                c.rho_x10,
                c.capacity_period_cycles,
                r.offered,
                r.admitted,
                r.shed(),
                r.goodput_rps,
                r.p50_us,
                r.p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n    \"grid\": [\n{grid}\n    ],\n    \"knee\": [\n{knee}\n    ]\n  }}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(cells: &'a [FuseCell], sys: &str, depth: usize, handover: bool) -> &'a FuseCell {
        cells
            .iter()
            .find(|c| c.system == sys && c.depth == depth && c.handover == handover)
            .unwrap()
    }

    #[test]
    fn xpc_crossings_stay_at_one_while_baselines_scale() {
        let cells = grid_results();
        assert_eq!(cells.len(), 4 * DEPTHS.len() * 2);
        for depth in DEPTHS {
            for handover in [false, true] {
                let d = u64::try_from(depth).unwrap();
                assert_eq!(cell(&cells, "Zircon-XPC", depth, handover).crossings, 1);
                assert_eq!(cell(&cells, "seL4-XPC", depth, handover).crossings, 1);
                assert_eq!(cell(&cells, "Zircon", depth, handover).crossings, d);
                assert_eq!(cell(&cells, "seL4-onecopy", depth, handover).crossings, d);
            }
        }
    }

    #[test]
    fn cycles_grow_with_depth_and_fusing_beats_the_baselines() {
        let cells = grid_results();
        for c in &cells {
            assert!(c.cycles > 0, "{} depth {}", c.system, c.depth);
        }
        for handover in [false, true] {
            for sys in ["Zircon", "Zircon-XPC", "seL4-onecopy", "seL4-XPC"] {
                for w in DEPTHS.windows(2) {
                    assert!(
                        cell(&cells, sys, w[1], handover).cycles
                            > cell(&cells, sys, w[0], handover).cycles,
                        "{sys}: cycles not monotone in depth"
                    );
                }
            }
            // At depth 6 the fused chain's warm continuation hops beat
            // the per-hop kernel entries of the trap baselines.
            assert!(
                cell(&cells, "seL4-XPC", 6, handover).cycles
                    < cell(&cells, "seL4-onecopy", 6, handover).cycles
            );
            assert!(
                cell(&cells, "Zircon-XPC", 6, handover).cycles
                    < cell(&cells, "Zircon", 6, handover).cycles
            );
        }
    }

    #[test]
    fn handover_moves_descriptors_and_relay_copies_nothing() {
        let cells = grid_results();
        for depth in DEPTHS {
            let d = u64::try_from(depth).unwrap();
            // Relay-segment mechanisms never copy payload bytes.
            for sys in ["Zircon-XPC", "seL4-XPC"] {
                for handover in [false, true] {
                    assert_eq!(cell(&cells, sys, depth, handover).copied_bytes, 0);
                }
            }
            // Copy mechanisms move the full payload every hop plus the
            // reply, with or without declared handover intent (Zircon
            // is two-copy: user -> kernel -> user doubles every byte).
            let full = d * HOP_REQUEST + REPLY_BYTES;
            for handover in [false, true] {
                assert_eq!(
                    cell(&cells, "Zircon", depth, handover).copied_bytes,
                    2 * full
                );
                assert_eq!(
                    cell(&cells, "seL4-onecopy", depth, handover).copied_bytes,
                    full
                );
            }
        }
    }

    #[test]
    fn fused_knee_conserves_offered_arrivals() {
        let cells = knee_results();
        assert_eq!(cells.len(), 4 * super::super::serve::RHO_X10.len());
        for c in &cells {
            assert_eq!(c.report.offered, super::super::serve::REQUESTS);
            assert_eq!(
                c.report.admitted + c.report.shed(),
                c.report.offered,
                "{} rho {}",
                c.report.system,
                c.rho_x10
            );
            // Generous caps: the fused knee never sheds.
            assert_eq!(c.report.shed(), 0);
        }
        // Same seed at every rho: the tail is monotone per mechanism.
        for chunk in cells.chunks(super::super::serve::RHO_X10.len()) {
            for w in chunk.windows(2) {
                assert!(
                    w[1].report.p99_us >= w[0].report.p99_us,
                    "{}: fused knee wobbled",
                    w[0].report.system
                );
            }
        }
    }

    #[test]
    fn json_section_is_shaped() {
        let s = json_section();
        assert!(s.contains("\"grid\""));
        assert!(s.contains("\"knee\""));
        assert!(s.contains("\"crossings\": 1"));
        assert!(s.contains("\"rho_x10\": 10"));
    }
}
