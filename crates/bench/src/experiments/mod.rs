//! One module per paper table/figure; each produces a [`Report`] that the
//! `figures` binary prints and tests assert on.

pub mod ablations;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fuse;
pub mod harden;
pub mod numa;
pub mod pipeline;
pub mod scale;
pub mod serve;
pub mod simspeed;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod verify;

/// A regenerated table or figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. "Table 1" / "Figure 6".
    pub id: &'static str,
    /// What it shows.
    pub caption: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.caption);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A named experiment runner.
pub type Experiment = (&'static str, fn() -> Report);

/// Every experiment, in paper order, as (key, runner).
///
/// Debug builds assert the keys are unique — a duplicate would make
/// `figures <key>` silently run only the first entry.
pub fn all() -> Vec<Experiment> {
    let registry = vec![
        ("fig1a", fig1::fig1a as fn() -> Report),
        ("fig1b", fig1::fig1b),
        ("table1", table1::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("table3", table3::run),
        ("fig7ab", fig7::fig7ab),
        ("fig7c", fig7::fig7c),
        ("fig8ab", fig8::fig8ab),
        ("fig8c", fig8::fig8c),
        ("fig9a", fig9::fig9a),
        ("fig9b", fig9::fig9b),
        ("table4", table4::run),
        ("table5", table5::run),
        ("table6", table6::run),
        ("table7", table7::run),
        ("ablations", ablations::run),
        ("scale", scale::run),
        ("pipeline", pipeline::run),
        ("numa", numa::run),
        ("verify", verify::run),
        ("serve", serve::run),
        ("fuse", fuse::run),
        ("harden", harden::run),
    ];
    debug_assert!(
        {
            let mut keys: Vec<&str> = registry.iter().map(|(k, _)| *k).collect();
            keys.sort_unstable();
            keys.windows(2).all(|w| w[0] != w[1])
        },
        "experiments::all() registers a duplicate key"
    );
    registry
}

/// The registry key closest to `unknown` (edit distance ≤ 2), for the
/// `figures` binary's "did you mean" hint. Ties break to the
/// lexicographically smallest key, so the hint is deterministic.
pub fn suggest(unknown: &str) -> Option<&'static str> {
    all()
        .iter()
        .map(|&(k, _)| (edit_distance(unknown, k), k))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, k)| (d, k))
        .map(|(_, k)| k)
}

/// Plain Levenshtein distance (two-row DP) — the keys are short, so the
/// quadratic cost is irrelevant.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let r = Report {
            id: "Table X",
            caption: "test",
            headers: vec!["a".into(), "bbbb".into()],
            rows: vec![vec!["100".into(), "2".into()]],
        };
        let s = r.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("100"));
    }

    #[test]
    fn registry_has_all_24_experiments() {
        assert_eq!(all().len(), 24);
    }

    #[test]
    fn registry_keys_are_unique() {
        // The release-build complement of the debug_assert in all().
        let mut keys: Vec<&str> = all().iter().map(|(k, _)| *k).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate experiment key registered");
    }

    #[test]
    fn suggest_finds_near_misses_and_rejects_gibberish() {
        assert_eq!(suggest("scal"), Some("scale"));
        assert_eq!(suggest("serv"), Some("serve"));
        assert_eq!(suggest("tabel3"), Some("table3"));
        assert_eq!(suggest("scale"), Some("scale"));
        assert_eq!(suggest("qzxwv"), None);
        assert_eq!(suggest(""), None, "nothing is within distance 2 of ''");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", "ab"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
