//! One module per paper table/figure; each produces a [`Report`] that the
//! `figures` binary prints and tests assert on.

pub mod ablations;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod numa;
pub mod pipeline;
pub mod scale;
pub mod serve;
pub mod simspeed;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod verify;

/// A regenerated table or figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. "Table 1" / "Figure 6".
    pub id: &'static str,
    /// What it shows.
    pub caption: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.caption);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A named experiment runner.
pub type Experiment = (&'static str, fn() -> Report);

/// Every experiment, in paper order, as (key, runner).
pub fn all() -> Vec<Experiment> {
    vec![
        ("fig1a", fig1::fig1a as fn() -> Report),
        ("fig1b", fig1::fig1b),
        ("table1", table1::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("table3", table3::run),
        ("fig7ab", fig7::fig7ab),
        ("fig7c", fig7::fig7c),
        ("fig8ab", fig8::fig8ab),
        ("fig8c", fig8::fig8c),
        ("fig9a", fig9::fig9a),
        ("fig9b", fig9::fig9b),
        ("table4", table4::run),
        ("table5", table5::run),
        ("table6", table6::run),
        ("table7", table7::run),
        ("ablations", ablations::run),
        ("scale", scale::run),
        ("pipeline", pipeline::run),
        ("numa", numa::run),
        ("verify", verify::run),
        ("serve", serve::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let r = Report {
            id: "Table X",
            caption: "test",
            headers: vec!["a".into(), "bbbb".into()],
            rows: vec![vec!["100".into(), "2".into()]],
        };
        let s = r.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("100"));
    }

    #[test]
    fn registry_has_all_22_experiments() {
        assert_eq!(all().len(), 22);
    }
}
