//! **Pipeline** — the windowed asynchronous invocation pipeline with
//! call batching: each client keeps up to W requests outstanding
//! (`simos::load::run_windowed`), and each request submits bursts of
//! calls priced by `IpcSystem::invoke_batch`. XPC amortizes its whole
//! entry path across a burst (trampoline once, repeat `xcall`s hit the
//! engine's one-entry x-entry cache), trap-based kernels still trap and
//! switch per call — so the per-call gap *widens* with batch size, and
//! the `Phase::Queue` attribution shows where time goes as the window
//! opens. The `window = 1, batch = 1` corner is bit-identical to the
//! closed-loop generator (pinned by a test below).

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use simos::{Attribution, CostModel, IpcSystem, LoadGen, LoadReport, MultiWorld, Placement, Step};

/// Cores in the pipeline world (client core + service core).
pub const CORES: usize = 2;

/// The window axis: requests each client keeps outstanding.
pub const WINDOWS: [usize; 3] = [1, 4, 16];

/// The batch axis: calls per burst submission.
pub const BATCHES: [u64; 3] = [1, 8, 64];

/// Payload bytes per call (the paper's small-message regime).
const BYTES_EACH: u64 = 64;

/// Service-side handling cycles per call.
const HANDLE_CYCLES_PER_CALL: u64 = 150;

type Mk = fn() -> Box<dyn IpcSystem>;

fn mechanisms() -> Vec<Mk> {
    vec![
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ]
}

/// The generator spec every cell runs under (fixed seed: the whole grid
/// is deterministic).
pub fn spec() -> LoadGen {
    LoadGen {
        clients: 8,
        requests: 240,
        seed: 0x59c5_bdad,
        think_cycles: 2_000,
    }
}

/// One pipelined request: a burst of `batch` calls into the service,
/// per-call handling there, and a batched reply burst back.
pub fn recipe(batch: u64) -> Vec<Step> {
    vec![
        Step::Batch {
            from: 0,
            to: 1,
            calls: batch,
            bytes_each: BYTES_EACH,
        },
        Step::Compute {
            at: 1,
            cycles: HANDLE_CYCLES_PER_CALL * batch,
        },
        Step::Batch {
            from: 1,
            to: 0,
            calls: batch,
            bytes_each: BYTES_EACH,
        },
    ]
}

/// Run the full (mechanism × window × batch) grid; each cell is
/// `(batch, report)` (the window is in the report).
pub fn results() -> Vec<(u64, LoadReport)> {
    let spec = spec();
    let all_bursts: Vec<Vec<Step>> = BATCHES.iter().map(|&b| recipe(b)).collect();
    super::verify::gate("Pipeline", 2, &all_bursts);
    // 36 (mechanism, window, batch) cells through the pool; per-worker
    // scratch keeps each worker's steady state allocation-free.
    let mut cells: Vec<(Mk, usize, u64)> = Vec::new();
    for mk in mechanisms() {
        for &window in &WINDOWS {
            for &batch in &BATCHES {
                cells.push((mk, window, batch));
            }
        }
    }
    simos::par::map_cells(cells, |_, (mk, window, batch), scratch| {
        let mut mw = MultiWorld::builder().cores(CORES).build(mk);
        let r = simos::load::run_windowed_with(
            &mut mw,
            &Placement::RoundRobin,
            2,
            &[recipe(batch)],
            &spec,
            window,
            &mut scratch.sweep,
            Attribution::Full(&mut scratch.arena),
        )
        .expect("pipeline grid cell must be runnable");
        (batch, r)
    })
}

/// Completed IPC calls per second of virtual time.
pub fn calls_per_sec(r: &LoadReport) -> f64 {
    if r.makespan_cycles == 0 {
        return 0.0;
    }
    r.ipc_calls as f64 * CostModel::u500().clock_hz as f64 / r.makespan_cycles as f64
}

/// Regenerate the pipeline table.
pub fn run() -> Report {
    let rows = results()
        .iter()
        .map(|(batch, r)| {
            vec![
                r.system.clone(),
                r.window.to_string(),
                batch.to_string(),
                format!("{:.0}", calls_per_sec(r)),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                format!("{:.0}%", r.queue_fraction() * 100.0),
                match r.engine_cache {
                    Some(s) => format!("{}", s.cache_hits),
                    None => "-".into(),
                },
            ]
        })
        .collect();
    Report {
        id: "Pipeline",
        caption: "Windowed async pipeline: calls/s and latency by (window, batch), 64B calls on 2 cores (8 clients x 240 reqs)",
        headers: vec![
            "System".into(),
            "Window".into(),
            "Batch".into(),
            "Calls/s".into(),
            "p50 us".into(),
            "p99 us".into(),
            "queue".into(),
            "cache hits".into(),
        ],
        rows,
    }
}

/// The `"pipeline"` section of `BENCH_figures.json`: one object per
/// (mechanism, window, batch) cell, engine-cache counters included.
pub fn json_section() -> String {
    let cells = results()
        .iter()
        .map(|(batch, r)| {
            let engine = match r.engine_cache {
                Some(s) => format!(
                    "{{\"prefetches\": {}, \"cache_hits\": {}}}",
                    s.prefetches, s.cache_hits
                ),
                None => "null".into(),
            };
            format!(
                "    {{\"system\": \"{}\", \"window\": {}, \"batch\": {batch}, \
                 \"requests\": {}, \"ipc_calls\": {}, \"calls_per_sec\": {:.1}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"queue_fraction\": {:.4}, \
                 \"engine_cache\": {engine}}}",
                r.system,
                r.window,
                r.requests,
                r.ipc_calls,
                calls_per_sec(r),
                r.p50_us,
                r.p99_us,
                r.queue_fraction()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{cells}\n  ]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::Phase;

    #[test]
    fn grid_covers_mechanisms_by_windows_by_batches() {
        let cells = results();
        assert_eq!(cells.len(), 4 * WINDOWS.len() * BATCHES.len());
        for (batch, r) in &cells {
            assert_eq!(r.cores, CORES);
            assert_eq!(r.requests, spec().requests);
            assert_eq!(r.ipc_calls, 2 * batch * r.requests);
            assert!(calls_per_sec(r) > 0.0, "{} w={}", r.system, r.window);
        }
    }

    #[test]
    fn closed_loop_corner_is_bit_identical_to_run() {
        // The acceptance pin: window=1, batch=1 must reproduce the
        // pre-windowed closed-loop report exactly, with no Queue spans.
        let mk = || -> Box<dyn IpcSystem> { Box::new(XpcIpc::sel4_xpc()) };
        let mut mw = MultiWorld::builder().cores(CORES).build(mk);
        let closed = simos::load::run(&mut mw, &Placement::RoundRobin, 2, &[recipe(1)], &spec());
        let cell = results()
            .into_iter()
            .find(|(b, r)| *b == 1 && r.window == 1 && r.system == "seL4-XPC")
            .map(|(_, r)| r)
            .expect("grid has the (seL4-XPC, w=1, b=1) cell");
        assert_eq!(cell, closed);
        assert_eq!(cell.ledger.get(Phase::Queue), 0);
        assert!(!cell.ledger.spans().iter().any(|(p, _)| *p == Phase::Queue));
    }

    #[test]
    fn queueing_appears_as_the_window_opens() {
        let cells = results();
        let cell = |sys: &str, w: usize, b: u64| {
            cells
                .iter()
                .find(|(batch, r)| r.system == sys && r.window == w && *batch == b)
                .map(|(_, r)| r)
                .unwrap()
        };
        for sys in ["Zircon", "seL4-XPC"] {
            assert_eq!(cell(sys, 1, 1).queue_fraction(), 0.0, "{sys}");
            assert!(
                cell(sys, 16, 1).ledger.get(Phase::Queue) > 0,
                "{sys}: 8 clients x 16 outstanding must queue on 2 cores"
            );
        }
    }

    #[test]
    fn batching_widens_the_xpc_gap() {
        // Per-call latency advantage of seL4-XPC over seL4 grows with
        // batch size: XPC amortizes its entry path, seL4 only half its
        // IPC logic.
        let cells = results();
        let rate = |sys: &str, b: u64| {
            cells
                .iter()
                .find(|(batch, r)| r.system == sys && r.window == 16 && *batch == b)
                .map(|(_, r)| calls_per_sec(r))
                .unwrap()
        };
        let gap_1 = rate("seL4-XPC", 1) / rate("seL4-onecopy", 1);
        let gap_64 = rate("seL4-XPC", 64) / rate("seL4-onecopy", 64);
        assert!(
            gap_64 > gap_1,
            "batch 64 gap {gap_64:.2}x must exceed batch 1 gap {gap_1:.2}x"
        );
    }

    #[test]
    fn engine_cache_counters_surface_for_xpc_only() {
        let cells = results();
        for (batch, r) in &cells {
            let is_xpc = r.system.contains("XPC");
            assert_eq!(r.engine_cache.is_some(), is_xpc, "{}", r.system);
            if let Some(s) = r.engine_cache {
                // Two call-leg bursts per request; bursts of 1 are not
                // counted (no cache interaction to report).
                let bursts = if *batch > 1 { 2 * r.requests } else { 0 };
                assert_eq!(s.prefetches, bursts, "{} b={batch}", r.system);
                assert_eq!(s.cache_hits, bursts * (batch - 1), "{}", r.system);
            }
        }
    }
}
