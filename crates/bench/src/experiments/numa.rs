//! **NUMA** — mechanism × topology × placement: what the paper's
//! single-socket §5.2 story becomes on a multi-socket machine.
//!
//! Two views share the `"numa"` section of `BENCH_figures.json`:
//!
//! * **hops** — every roster system prices one 4 KiB call to a core on
//!   the *same* socket and one to a core two distance units away on a
//!   [`Topology::dual_socket`] world. Trap-based kernels pay the
//!   distance-scaled IPI + remote-wakeup + cache-transfer surcharge, so
//!   remote strictly exceeds local; XPC's migrating threads keep the
//!   intra-socket crossing free (zero [`Phase::CrossCore`]) and pay only
//!   the relay-segment cache-line distance term plus the remote x-entry
//!   shard fetch cross-socket;
//! * **load** — the Figure 8(c) HTTP chain under windowed load (W = 4)
//!   over (mechanism × topology × placement). On the dual-socket box
//!   round-robin blindly ships half the chains across the interconnect;
//!   the NUMA-aware least-loaded policy only jumps sockets once the
//!   local queue outgrows the distance penalty, and the
//!   [`Phase::Queue`] / [`Phase::CrossCore`] split in the ledger shows
//!   the trade.

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use simos::{
    Attribution, Invocation, InvokeOpts, IpcSystem, LoadGen, LoadReport, MultiWorld, Phase,
    Placement, Step, Topology,
};

/// Payload for the hop comparison (the paper's 4 KiB page regime, where
/// the cache-line distance term is visible even for migrating threads).
pub const HOP_BYTES: u64 = 4096;

/// Requests each windowed client keeps outstanding in the load grid.
pub const WINDOW: usize = 4;

type Mk = fn() -> Box<dyn IpcSystem>;

/// One roster system's local-socket vs remote-socket pricing on the
/// dual-socket topology.
#[derive(Debug, Clone)]
pub struct Hop {
    /// System name.
    pub system: String,
    /// Whether its calls migrate the calling thread (XPC designs).
    pub migrating: bool,
    /// One hop to a core on the same socket (cores 0 → 1).
    pub local: Invocation,
    /// One hop to a core on the remote socket (cores 0 → 4, distance 2).
    pub remote: Invocation,
}

/// Price one local-socket and one remote-socket hop for every system in
/// the full roster, each on a fresh dual-socket world.
pub fn hops() -> Vec<Hop> {
    // One pool cell per roster system; each worker builds its worlds
    // from the factory pointer, so no `Box<dyn IpcSystem>` crosses a
    // thread boundary.
    simos::par::map_cells(kernels::full_roster_factories(), |_, mk, _| {
        let measure = |to: usize| {
            let mut mw = MultiWorld::builder()
                .topology(Topology::dual_socket())
                .build(mk);
            mw.exec_oneway(0, to, HOP_BYTES, &InvokeOpts::call(), 0).1
        };
        Hop {
            system: mk().name(),
            migrating: mk().migrating_threads(),
            local: measure(1),
            remote: measure(4),
        }
    })
}

fn mechanisms() -> Vec<Mk> {
    vec![
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ]
}

fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("u500", Topology::u500()),
        ("dual-socket", Topology::dual_socket()),
    ]
}

fn policies() -> Vec<Placement> {
    vec![Placement::RoundRobin, Placement::LeastLoaded]
}

fn recipes(handover: bool) -> Vec<Vec<Step>> {
    [1024u64, 4096, 16384]
        .iter()
        .map(|&len| {
            chain_steps(
                "/index.html",
                len,
                ChainSpec::default().with_handover(handover),
            )
        })
        .collect()
}

/// Run the (mechanism × topology × placement) windowed-load grid; each
/// cell is `(topology_label, report)`. Deterministic (fixed seed).
pub fn results() -> Vec<(&'static str, LoadReport)> {
    let spec = LoadGen::default();
    // Pre-flight serially, then fan the 16 (mechanism, topology,
    // policy) cells through the pool with per-worker scratch.
    type GridCell = (Mk, Vec<Vec<Step>>, &'static str, Topology, Placement);
    let mut cells: Vec<GridCell> = Vec::new();
    for mk in mechanisms() {
        let handover = mk().supports_handover();
        let recipes = recipes(handover);
        super::verify::gate("NUMA", CHAIN_SERVICES, &recipes);
        for (label, topo) in topologies() {
            for policy in policies() {
                cells.push((mk, recipes.clone(), label, topo.clone(), policy));
            }
        }
    }
    simos::par::map_cells(cells, |_, (mk, recipes, label, topo, policy), scratch| {
        let mut mw = MultiWorld::builder().topology(topo).build(mk);
        let r = simos::load::run_windowed_with(
            &mut mw,
            &policy,
            CHAIN_SERVICES,
            &recipes,
            &spec,
            WINDOW,
            &mut scratch.sweep,
            Attribution::Full(&mut scratch.arena),
        )
        .expect("NUMA grid cell must be runnable");
        (label, r)
    })
}

/// Regenerate the NUMA table (the load grid; the hop comparison lives in
/// the JSON section).
pub fn run() -> Report {
    let rows = results()
        .iter()
        .map(|(topo, r)| {
            vec![
                r.system.clone(),
                topo.to_string(),
                r.policy.to_string(),
                r.cores.to_string(),
                format!("{:.0}", r.throughput_rps),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                format!("{:.0}%", r.cross_core_fraction() * 100.0),
                format!("{:.0}%", r.queue_fraction() * 100.0),
                match r.engine_cache {
                    Some(s) => s.shard_misses.to_string(),
                    None => "-".into(),
                },
            ]
        })
        .collect();
    Report {
        id: "NUMA",
        caption: "HTTP chain under W=4 windowed load: topology x placement (16 clients x 400 reqs)",
        headers: vec![
            "System".into(),
            "Topology".into(),
            "Placement".into(),
            "Cores".into(),
            "Req/s".into(),
            "p50 us".into(),
            "p99 us".into(),
            "x-core".into(),
            "queue".into(),
            "shard miss".into(),
        ],
        rows,
    }
}

/// The `"numa"` section of `BENCH_figures.json`: the per-system hop
/// comparison plus the windowed-load grid.
pub fn json_section() -> String {
    let hop_cells = hops()
        .iter()
        .map(|h| {
            format!(
                "      {{\"system\": \"{}\", \"migrating\": {}, \"payload_bytes\": {HOP_BYTES}, \
                 \"local_cycles\": {}, \"remote_cycles\": {}, \
                 \"local_cross_core\": {}, \"remote_cross_core\": {}, \
                 \"remote_shard_miss\": {}}}",
                h.system,
                h.migrating,
                h.local.total,
                h.remote.total,
                h.local.ledger.get(Phase::CrossCore),
                h.remote.ledger.get(Phase::CrossCore),
                h.remote.ledger.get(Phase::ShardMiss),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let load_cells = results()
        .iter()
        .map(|(topo, r)| {
            let shard_misses = match r.engine_cache {
                Some(s) => s.shard_misses.to_string(),
                None => "null".into(),
            };
            format!(
                "      {{\"system\": \"{}\", \"topology\": \"{topo}\", \"policy\": \"{}\", \
                 \"cores\": {}, \"window\": {}, \"throughput_rps\": {:.1}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"cross_core_fraction\": {:.4}, \
                 \"queue_fraction\": {:.4}, \"shard_misses\": {shard_misses}}}",
                r.system,
                r.policy,
                r.cores,
                r.window,
                r.throughput_rps,
                r.p50_us,
                r.p99_us,
                r.cross_core_fraction(),
                r.queue_fraction(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n    \"hops\": [\n{hop_cells}\n    ],\n    \"load\": [\n{load_cells}\n    ]\n  }}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_mechanisms_by_topologies_by_policies() {
        let cells = results();
        assert_eq!(cells.len(), 4 * 2 * 2);
        for (topo, r) in &cells {
            let expect_cores = if *topo == "u500" { 4 } else { 8 };
            assert_eq!(r.cores, expect_cores, "{} on {topo}", r.system);
            assert_eq!(r.window, WINDOW);
            assert!(r.throughput_rps > 0.0, "{} on {topo}", r.system);
        }
    }

    #[test]
    fn single_socket_cells_never_pay_shard_misses() {
        for (topo, r) in results() {
            if topo == "u500" {
                if let Some(s) = r.engine_cache {
                    assert_eq!(s.shard_misses, 0, "{} on u500", r.system);
                }
            }
        }
    }

    #[test]
    fn dual_socket_round_robin_pays_where_xpc_does_not() {
        let cells = results();
        let cell = |sys: &str, topo: &str, pol: &str| {
            cells
                .iter()
                .find(|(t, r)| *t == topo && r.system == sys && r.policy == pol)
                .map(|(_, r)| r)
                .unwrap()
        };
        // Blind round robin on the dual-socket box: Zircon pays heavy
        // cross-core/interconnect cycles, XPC's stays small (only the
        // relay-segment line-distance term on remote chains).
        let z = cell("Zircon", "dual-socket", "round-robin");
        let x = cell("seL4-XPC", "dual-socket", "round-robin");
        assert!(z.cross_core_fraction() > x.cross_core_fraction());
        // XPC chains crossing sockets do record shard misses.
        assert!(x.engine_cache.unwrap().shard_misses > 0);
        // And on the single socket, XPC keeps the crossing entirely free.
        let local = cell("seL4-XPC", "u500", "round-robin");
        assert_eq!(local.ledger.get(Phase::CrossCore), 0);
    }

    #[test]
    fn json_section_is_shaped() {
        let s = json_section();
        assert!(s.contains("\"hops\""));
        assert!(s.contains("\"load\""));
        assert!(s.contains("\"remote_shard_miss\""));
    }
}
