//! **Serve** — open-loop trace-driven serving: the tail-vs-load knee
//! curve a closed loop structurally cannot show.
//!
//! Four views share the `"serve"` section of `BENCH_figures.json`:
//!
//! * **knee** — mechanism × topology × offered load. Per (mechanism,
//!   topology) the saturation throughput is measured by serving a
//!   back-to-back probe trace ([`calibrate_capacity_period`]); the
//!   offered-load axis is then ρ ∈ {0.2 … 1.5} of that measured
//!   capacity, so the same ρ means the same *relative* pressure for
//!   every mechanism. Each cell replays a
//!   seeded Poisson [`ArrivalTrace`] (same seed at every ρ — shrinking
//!   the mean interarrival scales every gap of the same unit-exponential
//!   sequence, so per-request waits are weakly increasing in ρ and the
//!   p99-vs-load curve is monotone non-decreasing, asserted in tests).
//!   Below the knee every mechanism's p99 sits near its unloaded
//!   latency; past ρ ≈ 1 the queues never drain and p99 diverges —
//!   the crossing-cost gap between mechanisms becomes a *capacity* gap:
//!   cheaper calls push the knee to the right;
//! * **admission** — one overloaded cell (ρ = 1.5) swept over tenant
//!   queue caps. Shedding is typed and conserved exactly
//!   (`admitted + shed == offered`); tighter caps trade goodput for a
//!   bounded tail, and the shed rate is a first-class output;
//! * **bursty** — Poisson vs the on-off modulated process at the *same*
//!   long-run offered load (ρ = 0.8). Mean rate is not the story: the
//!   bursty trace's in-burst rate exceeds capacity and its p99 pays for
//!   the whole burst;
//! * **autoscale** — the feedback controller on the dual-socket box vs a
//!   static all-cores round-robin baseline, with grow/shrink event
//!   counts. The controller starts at one core and earns the rest from
//!   observed backlog.

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use simos::serve::{serve_with, ServeScratch};
use simos::{
    ArrivalProcess, ArrivalTrace, Attribution, AutoscaleCfg, IpcSystem, LedgerArena, MultiWorld,
    OpenLoopGen, PhaseTotals, Placement, ServePolicy, ServeReport, ServeSpec, Step, TenantClass,
    Topology,
};

/// Offered load grid, in tenths of the calibrated capacity
/// (ρ × 10): from far below the knee to 1.5× past it.
pub const RHO_X10: [u64; 6] = [2, 5, 8, 10, 12, 15];

/// Arrivals per knee / bursty / autoscale cell.
pub const REQUESTS: u64 = 4_000;

/// Tenant queue caps the admission view sweeps at ρ = 1.5.
pub const ADMISSION_CAPS: [usize; 3] = [8, 64, 512];

/// Tenants every serve trace is tagged with.
pub const TENANTS: u32 = 4;

/// Trace seed (shared by every view; the knee holds it fixed across ρ).
pub const SEED: u64 = 0x5e7e;

/// Per-tenant p99 SLO for the knee grid (µs): XPC meets it below the
/// knee and loses it past saturation; the trap-based baselines cannot
/// meet it at any load (their unloaded tail already exceeds it) — the
/// crossing-cost gap restated as an SLO verdict.
pub const SLO_P99_US: f64 = 2_000.0;

/// Retain 1-in-N spans; totals stay exact (same as the closed-loop
/// sampled mode).
const SAMPLE_EVERY: u64 = 32;

type Mk = fn() -> Box<dyn IpcSystem>;

fn mechanisms() -> Vec<Mk> {
    vec![
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ]
}

fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("u500", Topology::u500()),
        ("dual-socket", Topology::dual_socket()),
    ]
}

fn recipes(handover: bool) -> Vec<Vec<Step>> {
    [1024u64, 4096, 16384]
        .iter()
        .map(|&len| {
            chain_steps(
                "/index.html",
                len,
                ChainSpec::default().with_handover(handover),
            )
        })
        .collect()
}

fn world(topo: &Topology, mk: Mk) -> MultiWorld {
    MultiWorld::builder().topology(topo.clone()).build(mk)
}

/// Arrivals in the capacity-calibration probe.
pub const CAPACITY_PROBE: u64 = 512;

/// Measured saturation period — mean cycles per completed request at
/// full throughput — for a (mechanism, topology, recipe mix): a
/// back-to-back probe trace (mean interarrival 1 cycle, same seed and
/// recipe draws as the real traces) is served and its makespan divided
/// by the request count. This is *empirical* capacity: it already
/// includes cross-core hop costs and the head-of-line blocking a
/// multi-core chain suffers under round-robin maps, which cap effective
/// utilization well below `cores / per-request-work`. ρ expressed
/// against it makes ρ = 1.0 the true knife edge.
pub fn calibrate_capacity_period(topo: &Topology, mk: Mk, recipes: &[Vec<Step>]) -> u64 {
    let n_recipes = u32::try_from(recipes.len()).expect("roster fits u32");
    let probe = poisson(1)
        .trace(CAPACITY_PROBE, n_recipes)
        .expect("probe trace spec is valid");
    let mut mw = world(topo, mk);
    let r = simos::serve::serve(
        &mut mw,
        &ServePolicy::Static(Placement::RoundRobin),
        CHAIN_SERVICES,
        recipes,
        &probe,
        &knee_spec(),
    )
    .expect("calibration probe must serve");
    (r.makespan_cycles / CAPACITY_PROBE).max(1)
}

/// Mean interarrival (cycles) putting `rho_x10`/10 of the measured
/// capacity on offer: `period / ρ`.
fn interarrival(capacity_period_cycles: u64, rho_x10: u64) -> u64 {
    (capacity_period_cycles * 10 / rho_x10).max(1)
}

fn knee_spec() -> ServeSpec {
    ServeSpec {
        tenants: TENANTS,
        classes: vec![TenantClass {
            // Generous: the knee view shows queueing, not shedding.
            queue_cap: 1 << 20,
            slo_p99_us: SLO_P99_US,
        }],
        backlog_cap_cycles: 0,
    }
}

fn poisson(mean: u64) -> OpenLoopGen {
    OpenLoopGen {
        process: ArrivalProcess::Poisson,
        mean_interarrival_cycles: mean,
        tenants: TENANTS,
        users: 1_000_000,
        seed: SEED,
    }
}

/// Serve one cell with shared scratch and sampled attribution (exact
/// totals, 1-in-N retained spans).
fn run_cell(
    mw: &mut MultiWorld,
    policy: &ServePolicy,
    recipes: &[Vec<Step>],
    trace: &ArrivalTrace,
    spec: &ServeSpec,
    scratch: &mut ServeScratch,
    arena: &mut LedgerArena,
) -> ServeReport {
    let mut totals = PhaseTotals::new();
    serve_with(
        mw,
        policy,
        CHAIN_SERVICES,
        recipes,
        trace,
        spec,
        scratch,
        Attribution::Sampled {
            every: SAMPLE_EVERY,
            totals: &mut totals,
            arena,
        },
    )
    .expect("serve cell must be runnable")
}

/// One knee-curve cell.
#[derive(Debug, Clone)]
pub struct KneeCell {
    /// Topology label.
    pub topology: &'static str,
    /// Offered load in tenths of calibrated capacity.
    pub rho_x10: u64,
    /// Measured saturation period (cycles per request at full
    /// throughput) the ρ axis is expressed against.
    pub capacity_period_cycles: u64,
    /// The serve outcome.
    pub report: ServeReport,
}

/// The knee grid: mechanism × topology × offered load, same seed at
/// every ρ. Deterministic at any pool worker count: calibration runs as
/// its own pool phase (periods depend only on the (mechanism, topology)
/// pair), then the ρ cells fan out with the period pinned per cell.
pub fn knee_results() -> Vec<KneeCell> {
    let spec = knee_spec();
    // Phase A: per-(mechanism, topology) capacity calibration.
    let mut calib: Vec<(Mk, Vec<Vec<Step>>, &'static str, Topology)> = Vec::new();
    for mk in mechanisms() {
        let handover = mk().supports_handover();
        let recipes = recipes(handover);
        super::verify::gate("Serve", CHAIN_SERVICES, &recipes);
        for (label, topo) in topologies() {
            calib.push((mk, recipes.clone(), label, topo));
        }
    }
    let calibrated = simos::par::map_cells(calib, |_, (mk, recipes, label, topo), _| {
        let period = calibrate_capacity_period(&topo, mk, &recipes);
        (mk, recipes, label, topo, period)
    });
    // Phase B: the 48 (mechanism, topology, ρ) serve cells, each
    // carrying its calibrated period and offered ρ.
    type RhoCell = (Mk, Vec<Vec<Step>>, &'static str, Topology, u64, u64);
    let mut cells: Vec<RhoCell> = Vec::new();
    for (mk, recipes, label, topo, period) in calibrated {
        for rho_x10 in RHO_X10 {
            cells.push((mk, recipes.clone(), label, topo.clone(), period, rho_x10));
        }
    }
    simos::par::map_cells(
        cells,
        |_, (mk, recipes, label, topo, period, rho_x10), cs| {
            let mean = interarrival(period, rho_x10);
            let n_recipes = u32::try_from(recipes.len()).expect("roster fits u32");
            let trace = poisson(mean)
                .trace(REQUESTS, n_recipes)
                .expect("knee trace spec is valid");
            let mut mw = world(&topo, mk);
            let r = run_cell(
                &mut mw,
                &ServePolicy::Static(Placement::RoundRobin),
                &recipes,
                &trace,
                &spec,
                &mut cs.serve,
                &mut cs.arena,
            );
            KneeCell {
                topology: label,
                rho_x10,
                capacity_period_cycles: period,
                report: r,
            }
        },
    )
}

/// One admission-sweep cell: an overloaded world under a given tenant
/// queue cap.
#[derive(Debug, Clone)]
pub struct AdmissionCell {
    /// The tenant queue cap this cell bounds admission with.
    pub queue_cap: usize,
    /// The serve outcome (shed accounting is the point).
    pub report: ServeReport,
}

/// The admission sweep: seL4-XPC on u500 at ρ = 1.5, queue caps from
/// tight to loose. Deterministic.
pub fn admission_results() -> Vec<AdmissionCell> {
    let mk: Mk = || Box::new(XpcIpc::sel4_xpc());
    let recipes = recipes(mk().supports_handover());
    super::verify::gate("Serve-admission", CHAIN_SERVICES, &recipes);
    let topo = Topology::u500();
    let period = calibrate_capacity_period(&topo, mk, &recipes);
    let mean = interarrival(period, 15);
    let n_recipes = u32::try_from(recipes.len()).expect("roster fits u32");
    let trace = poisson(mean)
        .trace(REQUESTS, n_recipes)
        .expect("admission trace spec is valid");
    // The cap cells share one calibrated trace by reference; the pool
    // closure only reads it.
    simos::par::map_cells(ADMISSION_CAPS.to_vec(), |_, queue_cap, cs| {
        let spec = ServeSpec {
            tenants: TENANTS,
            classes: vec![TenantClass {
                queue_cap,
                slo_p99_us: SLO_P99_US,
            }],
            backlog_cap_cycles: 0,
        };
        let mut mw = world(&topo, mk);
        let report = run_cell(
            &mut mw,
            &ServePolicy::Static(Placement::RoundRobin),
            &recipes,
            &trace,
            &spec,
            &mut cs.serve,
            &mut cs.arena,
        );
        AdmissionCell { queue_cap, report }
    })
}

/// One bursty-vs-Poisson cell.
#[derive(Debug, Clone)]
pub struct BurstyCell {
    /// Arrival-process label (`poisson` / `on-off`).
    pub process: &'static str,
    /// The serve outcome.
    pub report: ServeReport,
}

/// Poisson vs on-off at the same long-run offered load (ρ = 0.8) for
/// every mechanism on u500. Deterministic.
pub fn bursty_results() -> Vec<BurstyCell> {
    let topo = Topology::u500();
    let spec = knee_spec();
    // One pool cell per mechanism (each calibrates, then serves its
    // Poisson/on-off pair in order); flattening preserves the serial
    // row order because reduction is index-ordered.
    let mut mechs: Vec<(Mk, Vec<Vec<Step>>)> = Vec::new();
    for mk in mechanisms() {
        let recipes = recipes(mk().supports_handover());
        super::verify::gate("Serve-bursty", CHAIN_SERVICES, &recipes);
        mechs.push((mk, recipes));
    }
    simos::par::map_cells(mechs, |_, (mk, recipes), cs| {
        let period = calibrate_capacity_period(&topo, mk, &recipes);
        let mean = interarrival(period, 8);
        let n_recipes = u32::try_from(recipes.len()).expect("roster fits u32");
        [
            ("poisson", ArrivalProcess::Poisson),
            (
                "on-off",
                ArrivalProcess::OnOff {
                    burst_len: 32,
                    accel_x10: 60,
                },
            ),
        ]
        .into_iter()
        .map(|(label, process)| {
            let trace = OpenLoopGen {
                process,
                ..poisson(mean)
            }
            .trace(REQUESTS, n_recipes)
            .expect("bursty trace spec is valid");
            let mut mw = world(&topo, mk);
            let report = run_cell(
                &mut mw,
                &ServePolicy::Static(Placement::RoundRobin),
                &recipes,
                &trace,
                &spec,
                &mut cs.serve,
                &mut cs.arena,
            );
            BurstyCell {
                process: label,
                report,
            }
        })
        .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One autoscale cell (controller or static baseline).
#[derive(Debug, Clone)]
pub struct AutoscaleCell {
    /// Policy label (`autoscale` / `static:round-robin`).
    pub policy: &'static str,
    /// The serve outcome ([`ServeReport::autoscale`] carries the
    /// controller's event counts).
    pub report: ServeReport,
}

/// The controller on the dual-socket box at ρ = 0.8 of the full 8-core
/// capacity, vs a static all-cores round-robin baseline on the same
/// trace. Deterministic.
pub fn autoscale_results() -> Vec<AutoscaleCell> {
    let mk: Mk = || Box::new(XpcIpc::sel4_xpc());
    let recipes = recipes(mk().supports_handover());
    super::verify::gate("Serve-autoscale", CHAIN_SERVICES, &recipes);
    let topo = Topology::dual_socket();
    let period = calibrate_capacity_period(&topo, mk, &recipes);
    let mean = interarrival(period, 8);
    let n_recipes = u32::try_from(recipes.len()).expect("roster fits u32");
    let trace = poisson(mean)
        .trace(REQUESTS, n_recipes)
        .expect("autoscale trace spec is valid");
    let spec = knee_spec();
    let cfg = AutoscaleCfg {
        min_cores: 1,
        max_cores: topo.n_cores(),
        epoch_arrivals: 64,
        grow_backlog_cycles: 4 * period,
        shrink_backlog_cycles: period / 4,
    };
    let policies = vec![
        ("autoscale", ServePolicy::Autoscale(cfg)),
        (
            "static:round-robin",
            ServePolicy::Static(Placement::RoundRobin),
        ),
    ];
    simos::par::map_cells(policies, |_, (label, policy), cs| {
        let mut mw = world(&topo, mk);
        let report = run_cell(
            &mut mw,
            &policy,
            &recipes,
            &trace,
            &spec,
            &mut cs.serve,
            &mut cs.arena,
        );
        AutoscaleCell {
            policy: label,
            report,
        }
    })
}

fn fmt_rho(rho_x10: u64) -> String {
    format!("{}.{}", rho_x10 / 10, rho_x10 % 10)
}

/// Regenerate the serve table (the knee grid, with the admission sweep
/// appended; bursty and autoscale live in the JSON section).
pub fn run() -> Report {
    let mut rows: Vec<Vec<String>> = knee_results()
        .iter()
        .map(|c| {
            let r = &c.report;
            vec![
                r.system.clone(),
                c.topology.to_string(),
                fmt_rho(c.rho_x10),
                format!("{:.0}", r.offered_rps),
                format!("{:.0}", r.goodput_rps),
                format!("{:.2}%", r.shed_rate() * 100.0),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                format!("{:.0}%", r.queue_fraction() * 100.0),
                r.tenants.iter().filter(|t| t.slo_met).count().to_string(),
            ]
        })
        .collect();
    for c in admission_results() {
        let r = &c.report;
        rows.push(vec![
            format!("{} cap={}", r.system, c.queue_cap),
            "u500".into(),
            fmt_rho(15),
            format!("{:.0}", r.offered_rps),
            format!("{:.0}", r.goodput_rps),
            format!("{:.2}%", r.shed_rate() * 100.0),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p99_us),
            format!("{:.0}%", r.queue_fraction() * 100.0),
            r.tenants.iter().filter(|t| t.slo_met).count().to_string(),
        ]);
    }
    Report {
        id: "Serve",
        caption: "Open-loop Poisson serving: p99 vs offered load (rho of calibrated capacity), 4k arrivals/cell, plus the rho=1.5 admission sweep",
        headers: vec![
            "System".into(),
            "Topology".into(),
            "rho".into(),
            "Offered/s".into(),
            "Goodput/s".into(),
            "Shed".into(),
            "p50 us".into(),
            "p99 us".into(),
            "queue".into(),
            "SLO met".into(),
        ],
        rows,
    }
}

fn knee_json(cells: &[KneeCell]) -> String {
    cells
        .iter()
        .map(|c| {
            let r = &c.report;
            format!(
                "      {{\"system\": \"{}\", \"topology\": \"{}\", \"rho_x10\": {}, \
                 \"capacity_period_cycles\": {}, \"offered\": {}, \"admitted\": {}, \"shed\": {}, \
                 \"offered_rps\": {:.1}, \"goodput_rps\": {:.1}, \"p50_us\": {:.2}, \
                 \"p95_us\": {:.2}, \"p99_us\": {:.2}, \"queue_fraction\": {:.4}, \
                 \"slo_met_tenants\": {}}}",
                r.system,
                c.topology,
                c.rho_x10,
                c.capacity_period_cycles,
                r.offered,
                r.admitted,
                r.shed(),
                r.offered_rps,
                r.goodput_rps,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.queue_fraction(),
                r.tenants.iter().filter(|t| t.slo_met).count(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn report_core_json(r: &ServeReport) -> String {
    format!(
        "\"offered\": {}, \"admitted\": {}, \"shed_queue_full\": {}, \"shed_backlog\": {}, \
         \"shed_rate\": {:.4}, \"goodput_rps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}",
        r.offered,
        r.admitted,
        r.shed_queue_full,
        r.shed_backlog,
        r.shed_rate(),
        r.goodput_rps,
        r.p50_us,
        r.p99_us,
    )
}

/// The `"serve"` section of `BENCH_figures.json`: knee + admission +
/// bursty + autoscale. Fully deterministic (virtual time only — no
/// wall-clock numbers, unlike `simspeed`).
pub fn json_section() -> String {
    let knee = knee_json(&knee_results());
    let admission = admission_results()
        .iter()
        .map(|c| {
            format!(
                "      {{\"system\": \"{}\", \"queue_cap\": {}, {}}}",
                c.report.system,
                c.queue_cap,
                report_core_json(&c.report)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let bursty = bursty_results()
        .iter()
        .map(|c| {
            format!(
                "      {{\"system\": \"{}\", \"process\": \"{}\", {}}}",
                c.report.system,
                c.process,
                report_core_json(&c.report)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let autoscale = autoscale_results()
        .iter()
        .map(|c| {
            let auto = c.report.autoscale.map_or("null".to_string(), |a| {
                format!(
                    "{{\"grow_events\": {}, \"shrink_events\": {}, \"max_active\": {}, \
                     \"final_active\": {}}}",
                    a.grow_events, a.shrink_events, a.max_active, a.final_active
                )
            });
            format!(
                "      {{\"system\": \"{}\", \"policy\": \"{}\", {}, \"controller\": {auto}}}",
                c.report.system,
                c.policy,
                report_core_json(&c.report)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n    \"knee\": [\n{knee}\n    ],\n    \"admission\": [\n{admission}\n    ],\n    \
         \"bursty\": [\n{bursty}\n    ],\n    \"autoscale\": [\n{autoscale}\n    ]\n  }}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_grid_covers_mechanisms_topologies_loads() {
        let cells = knee_results();
        assert_eq!(cells.len(), 4 * 2 * RHO_X10.len());
        for c in &cells {
            assert_eq!(c.report.offered, REQUESTS);
            assert_eq!(
                c.report.admitted + c.report.shed(),
                c.report.offered,
                "{} {} rho {}",
                c.report.system,
                c.topology,
                c.rho_x10
            );
            // Generous caps: the knee view never sheds.
            assert_eq!(c.report.shed(), 0);
            assert_eq!(c.report.tenants.len(), TENANTS as usize);
        }
    }

    #[test]
    fn knee_p99_is_monotone_non_decreasing_in_offered_load() {
        // Same seed at every rho: shrinking the mean interarrival
        // scales every gap of the same unit-exponential sequence, so
        // waits are weakly increasing in rho (Lindley), and the knee
        // curve cannot wobble.
        let cells = knee_results();
        for chunk in cells.chunks(RHO_X10.len()) {
            for w in chunk.windows(2) {
                assert!(
                    w[1].report.p99_us >= w[0].report.p99_us,
                    "{} {}: p99 fell from {} (rho {}) to {} (rho {})",
                    w[0].report.system,
                    w[0].topology,
                    w[0].report.p99_us,
                    w[0].rho_x10,
                    w[1].report.p99_us,
                    w[1].rho_x10
                );
            }
            // And the knee is real: past saturation the tail has
            // diverged far beyond the light-load tail.
            let light = &chunk[0].report;
            let heavy = &chunk[chunk.len() - 1].report;
            assert!(
                heavy.p99_us > 3.0 * light.p99_us,
                "{} {}: no knee (light {} heavy {})",
                light.system,
                chunk[0].topology,
                light.p99_us,
                heavy.p99_us
            );
        }
    }

    #[test]
    fn cheaper_crossings_push_the_knee_right() {
        // At the saturation point (rho = 1.0 of each mechanism's own
        // capacity) every mechanism queues; but XPC's absolute service
        // time is smaller, so at equal rho its absolute p99 stays below
        // its trap-based baseline on the same topology.
        let cells = knee_results();
        let p99 = |sys: &str, topo: &str, rho: u64| {
            cells
                .iter()
                .find(|c| c.report.system == sys && c.topology == topo && c.rho_x10 == rho)
                .map(|c| c.report.p99_us)
                .unwrap()
        };
        assert!(p99("seL4-XPC", "u500", 10) < p99("seL4-onecopy", "u500", 10));
        assert!(p99("Zircon-XPC", "u500", 10) < p99("Zircon", "u500", 10));
    }

    #[test]
    fn admission_sweep_conserves_and_sheds_monotonically() {
        let cells = admission_results();
        assert_eq!(cells.len(), ADMISSION_CAPS.len());
        for c in &cells {
            assert_eq!(c.report.admitted + c.report.shed(), c.report.offered);
            for t in &c.report.tenants {
                assert_eq!(t.admitted + t.shed(), t.offered, "tenant {}", t.tenant);
            }
        }
        // rho = 1.5 with a tight cap must shed; looser caps shed less.
        assert!(cells[0].report.shed() > 0);
        for w in cells.windows(2) {
            assert!(w[0].report.shed() >= w[1].report.shed());
        }
    }

    #[test]
    fn bursts_cost_tail_at_equal_mean_rate() {
        let cells = bursty_results();
        assert_eq!(cells.len(), 4 * 2);
        for pair in cells.chunks(2) {
            let (poisson, onoff) = (&pair[0], &pair[1]);
            assert_eq!(poisson.process, "poisson");
            assert_eq!(onoff.process, "on-off");
            assert_eq!(poisson.report.system, onoff.report.system);
            assert!(
                onoff.report.p99_us > poisson.report.p99_us,
                "{}: on-off p99 {} vs poisson {}",
                poisson.report.system,
                onoff.report.p99_us,
                poisson.report.p99_us
            );
        }
    }

    #[test]
    fn autoscale_controller_earns_its_cores() {
        let cells = autoscale_results();
        assert_eq!(cells.len(), 2);
        let auto = cells[0]
            .report
            .autoscale
            .expect("controller cell reports events");
        assert!(auto.grow_events > 0, "rho 0.8 on one core must grow");
        assert!(auto.max_active > 1);
        assert!(cells[1].report.autoscale.is_none());
        for c in &cells {
            assert_eq!(c.report.admitted + c.report.shed(), c.report.offered);
        }
    }

    #[test]
    fn json_section_is_shaped() {
        let s = json_section();
        for key in ["\"knee\"", "\"admission\"", "\"bursty\"", "\"autoscale\""] {
            assert!(s.contains(key), "missing {key}");
        }
        assert!(s.contains("\"rho_x10\": 10"));
        assert!(s.contains("\"shed_rate\""));
        assert!(s.contains("\"grow_events\""));
    }
}
