//! **Verify** — the static pre-flight story: every figure's recipes are
//! proved free of the five XPC exceptions before they run, and the
//! crafted misconfigurations are each refuted with the exact `Cause`
//! the engine would trap with.
//!
//! Three row groups share the `"verify"` section of
//! `BENCH_figures.json`:
//!
//! * **crafted** — one minimal misconfiguration per exception class
//!   (out-of-bounds entry, ungranted xcall, self-recursive service,
//!   empty-slot swapseg, widening seg-mask) plus the three
//!   temporal-lifecycle classes (revoked-cap call, post-handover mask
//!   widening, cross-tenant skip return) and a clean control; the
//!   verifier's verdict must agree with the expected trap class by
//!   class (the differential tests additionally replay each on a real
//!   `XpcKernel` and assert the engine faults identically);
//! * **preflight** — the recipes the scale / pipeline / NUMA grids
//!   actually run, re-verified here; all must prove clean (the grids
//!   themselves call [`gate`] and panic rather than price an
//!   unverifiable recipe);
//! * **ledger** — the lint pass over the full 12-system roster: every
//!   invocation shape the experiments use must decompose exactly into
//!   its phase ledger.

use super::{pipeline, Report};
use services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use simos::{CallProgram, Step};
use xpc_verify::{crafted, lint, preflight, preflight_program, verify};

/// Refuse to run a figure whose recipes the verifier cannot prove
/// clean: panics with every finding. Called by the scale / pipeline /
/// NUMA grids before pricing anything.
pub fn gate(figure: &str, n_services: usize, recipes: &[Vec<Step>]) {
    let named: Vec<(String, Vec<Step>)> = recipes
        .iter()
        .enumerate()
        .map(|(i, r)| (format!("{figure} recipe {i}"), r.clone()))
        .collect();
    if let Err(findings) = preflight(n_services, &named) {
        let list = findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        panic!("{figure}: refusing to run an unverifiable recipe: {list}");
    }
}

/// The fused sibling of [`gate`]: refuse to run a figure whose call
/// program the verifier cannot prove clean — per-hop grant caps, the
/// exact fused depth bound, single-owner handover. Called by the fuse
/// grid before pricing anything.
pub fn gate_program(figure: &str, n_services: usize, program: &CallProgram) {
    if let Err(findings) = preflight_program(n_services, figure, program) {
        let list = findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        panic!("{figure}: refusing to run an unverifiable program: {list}");
    }
}

/// One row of the verify table / JSON section.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row group: `crafted`, `preflight`, or `ledger`.
    pub group: &'static str,
    /// What was checked.
    pub subject: String,
    /// Expected outcome key (a trap key or `clean`).
    pub expected: String,
    /// The verifier's verdict key (first finding, or `clean`).
    pub verdict: String,
    /// Findings raised.
    pub findings: usize,
    /// Whether verdict matches expectation.
    pub ok: bool,
}

/// A pre-flight set: `(subject, n_services, named recipes)`.
type RecipeSet = (String, usize, Vec<(String, Vec<Step>)>);

/// The figure recipe sets the pre-flight group re-verifies.
fn figure_recipe_sets() -> Vec<RecipeSet> {
    let mut sets = Vec::new();
    for handover in [false, true] {
        let named = [1024u64, 4096, 16384]
            .iter()
            .map(|&len| {
                (
                    format!("chain {len}B"),
                    chain_steps(
                        "/index.html",
                        len,
                        ChainSpec::default().with_handover(handover),
                    ),
                )
            })
            .collect();
        sets.push((
            format!("scale/numa chains handover={handover}"),
            CHAIN_SERVICES,
            named,
        ));
    }
    let bursts = pipeline::BATCHES
        .iter()
        .map(|&b| (format!("burst batch={b}"), pipeline::recipe(b)))
        .collect();
    sets.push(("pipeline bursts".to_string(), 2, bursts));
    sets
}

/// Every verify row, in group order. Fully static and deterministic:
/// each row group fans through the pool independently (rows depend only
/// on their own plan/recipe set/system) and the groups concatenate in
/// the fixed crafted → preflight → ledger order.
pub fn results() -> Vec<Row> {
    let mut rows = simos::par::map_cells(crafted::all_crafted(), |_, c, _| {
        let findings = verify(&c.plan, &c.recipes);
        let expected = c.expected.map_or("clean".to_string(), |cause| {
            xpc_verify::Verdict::Trap(cause).key().to_string()
        });
        let verdict = findings
            .first()
            .map_or("clean".to_string(), |f| f.verdict.key().to_string());
        let ok = match c.expected {
            None => findings.is_empty(),
            Some(cause) => {
                !findings.is_empty() && findings.iter().all(|f| f.cause() == Some(cause))
            }
        };
        Row {
            group: "crafted",
            subject: c.label.to_string(),
            expected,
            verdict,
            findings: findings.len(),
            ok,
        }
    });
    rows.extend(simos::par::map_cells(
        figure_recipe_sets(),
        |_, (subject, n_services, named), _| {
            let findings = preflight(n_services, &named).err().unwrap_or_default();
            Row {
                group: "preflight",
                subject,
                expected: "clean".to_string(),
                verdict: findings
                    .first()
                    .map_or("clean".to_string(), |f| f.verdict.key().to_string()),
                findings: findings.len(),
                ok: findings.is_empty(),
            }
        },
    ));
    rows.extend(simos::par::map_cells(
        kernels::full_roster_factories(),
        |_, factory, _| {
            let mut sys = factory();
            let findings = lint::lint_system(sys.as_mut());
            Row {
                group: "ledger",
                subject: sys.name(),
                expected: "clean".to_string(),
                verdict: findings
                    .first()
                    .map_or("clean".to_string(), |f| f.verdict.key().to_string()),
                findings: findings.len(),
                ok: findings.is_empty(),
            }
        },
    ));
    rows
}

/// Regenerate the verify table.
pub fn run() -> Report {
    let rows = results()
        .iter()
        .map(|r| {
            vec![
                r.group.to_string(),
                r.subject.clone(),
                r.expected.clone(),
                r.verdict.clone(),
                r.findings.to_string(),
                if r.ok { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    Report {
        id: "Verify",
        caption:
            "Static pre-flight: crafted plans refuted with the predicted Cause, figure recipes and roster ledgers proved clean",
        headers: vec![
            "Group".into(),
            "Subject".into(),
            "Expected".into(),
            "Verdict".into(),
            "Findings".into(),
            "OK".into(),
        ],
        rows,
    }
}

/// The `"verify"` section of `BENCH_figures.json`.
pub fn json_section() -> String {
    let cells = results()
        .iter()
        .map(|r| {
            format!(
                "    {{\"group\": \"{}\", \"subject\": \"{}\", \"expected\": \"{}\", \
                 \"verdict\": \"{}\", \"findings\": {}, \"ok\": {}}}",
                r.group, r.subject, r.expected, r.verdict, r.findings, r.ok
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{cells}\n  ]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_ok() {
        for r in results() {
            assert!(r.ok, "{}: {} got {}", r.group, r.subject, r.verdict);
        }
    }

    #[test]
    fn rows_cover_all_three_groups() {
        let rows = results();
        // 9 crafted (5 spatial exception classes + 3 temporal-lifecycle
        // classes + clean control), 3 recipe sets, 12 roster systems.
        assert_eq!(rows.iter().filter(|r| r.group == "crafted").count(), 9);
        assert_eq!(rows.iter().filter(|r| r.group == "preflight").count(), 3);
        assert_eq!(rows.iter().filter(|r| r.group == "ledger").count(), 12);
    }

    #[test]
    fn crafted_rows_name_all_five_exception_keys() {
        let rows = results();
        for key in [
            "invalid-x-entry",
            "invalid-xcall-cap",
            "invalid-linkage",
            "swapseg-error",
            "invalid-seg-mask",
        ] {
            assert!(
                rows.iter()
                    .any(|r| r.group == "crafted" && r.verdict == key),
                "no crafted row refutes {key}"
            );
        }
    }

    #[test]
    fn gate_accepts_the_figure_recipes() {
        for (subject, n, named) in figure_recipe_sets() {
            let raw: Vec<_> = named.into_iter().map(|(_, r)| r).collect();
            gate(&subject, n, &raw); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "refusing to run")]
    fn gate_refuses_an_unverifiable_recipe() {
        let rogue = vec![vec![Step::Oneway {
            from: 0,
            to: 9,
            bytes: 8,
        }]];
        gate("test-figure", 2, &rogue);
    }

    #[test]
    fn json_section_is_shaped() {
        let s = json_section();
        assert!(s.contains("\"group\": \"crafted\""));
        assert!(s.contains("\"verdict\": \"invalid-linkage\""));
        assert!(s.contains("\"ok\": true"));
        assert!(!s.contains("\"ok\": false"));
    }
}
