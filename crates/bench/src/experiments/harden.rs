//! **Harden** — the security-tax curve: what each temporal-safety
//! mitigation costs, per mechanism, across the message-size axis.
//!
//! The `xpc-verify` temporal passes (revocation epochs, zero-on-
//! handover, tenant flow tags) each have a runtime twin the kernels
//! price through [`simos::Hardening`]. This grid sweeps mechanism ×
//! mitigation set × message size and reports the *tax*: the cycles a
//! hardened one-way invocation pays over the unhardened one. XPC-engine
//! mechanisms pay hardware rates (an epoch compare rides the cap walk,
//! a flow tag rides the linkage record); trap-based baselines pay the
//! software-equivalent table lookups in the kernel IPC path — so the
//! curve shows the *relative* security tax shrinking when the check is
//! architectural. Zero-on-handover is the only per-byte mitigation, so
//! its tax grows with the size axis while the other two stay flat.
//!
//! With every mitigation off the grid's cycle column is byte-identical
//! to the unhardened sweeps (the `none` rows reprice the same
//! invocations the other figures already snapshot).

use super::Report;
use crate::sweep::SIZES;
use kernels::{InvokeOpts, Phase, Sel4, Sel4Transfer, XpcIpc, Zircon};
use simos::{Hardening, IpcSystem};

/// The mitigation sets the grid sweeps, in column order.
pub const SETS: [(&str, Hardening); 5] = [
    ("none", Hardening::NONE),
    (
        "epochs",
        Hardening {
            revocation_epochs: true,
            zero_on_handover: false,
            flow_tags: false,
        },
    ),
    (
        "scrub",
        Hardening {
            revocation_epochs: false,
            zero_on_handover: true,
            flow_tags: false,
        },
    ),
    (
        "flow",
        Hardening {
            revocation_epochs: false,
            zero_on_handover: false,
            flow_tags: true,
        },
    ),
    ("all", Hardening::ALL),
];

type Mk = fn() -> Box<dyn IpcSystem>;

fn mechanisms() -> Vec<Mk> {
    vec![
        || Box::new(Zircon::new()),
        || Box::new(XpcIpc::zircon_xpc()),
        || Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        || Box::new(XpcIpc::sel4_xpc()),
    ]
}

/// One grid cell: a mechanism pricing one hardened one-way invocation.
#[derive(Debug, Clone)]
pub struct HardenCell {
    /// Mechanism name.
    pub system: String,
    /// Mitigation-set key (`none`, `epochs`, `scrub`, `flow`, `all`).
    pub set: &'static str,
    /// Message size (bytes).
    pub msg_len: usize,
    /// Total cycles of the hardened invocation.
    pub cycles: u64,
    /// Security tax: cycles over the `none` set at the same size.
    pub tax_cycles: u64,
    /// Cycles attributed to the zero-on-handover scrub phase.
    pub scrub_cycles: u64,
}

/// The (mechanism × mitigation set × size) grid. One pool cell per
/// mechanism: the sets share the mechanism's unhardened baseline, so a
/// worker prices all 25 points and taxes them locally.
pub fn results() -> Vec<Vec<HardenCell>> {
    simos::par::map_cells(mechanisms(), |_, mk, _| {
        let mut s = mk();
        let system = s.name();
        let base: Vec<u64> = SIZES
            .iter()
            .map(|&b| s.oneway(b, &InvokeOpts::call()).total)
            .collect();
        let mut cells = Vec::new();
        for (set, h) in SETS {
            for (i, &b) in SIZES.iter().enumerate() {
                let inv = s.oneway(b, &InvokeOpts::call().hardened(h));
                cells.push(HardenCell {
                    system: system.clone(),
                    set,
                    msg_len: b,
                    cycles: inv.total,
                    tax_cycles: inv.total - base[i],
                    scrub_cycles: inv.ledger.get(Phase::Scrub),
                });
            }
        }
        cells
    })
}

/// Regenerate the harden table.
pub fn run() -> Report {
    let rows = results()
        .iter()
        .flatten()
        .map(|c| {
            vec![
                c.system.clone(),
                c.set.to_string(),
                format!("{}B", c.msg_len),
                c.cycles.to_string(),
                c.tax_cycles.to_string(),
                c.scrub_cycles.to_string(),
            ]
        })
        .collect();
    Report {
        id: "Harden",
        caption: "Security tax of the temporal mitigations: hardened one-way cycles over the unhardened baseline, per mechanism and message size",
        headers: vec![
            "System".into(),
            "Mitigations".into(),
            "Size".into(),
            "Cycles".into(),
            "Tax".into(),
            "Scrub".into(),
        ],
        rows,
    }
}

/// The `"harden"` section of `BENCH_figures.json`.
pub fn json_section() -> String {
    let cells = results()
        .iter()
        .flatten()
        .map(|c| {
            format!(
                "    {{\"system\": \"{}\", \"set\": \"{}\", \"msg_len\": {}, \
                 \"cycles\": {}, \"tax_cycles\": {}, \"scrub_cycles\": {}}}",
                c.system, c.set, c.msg_len, c.cycles, c.tax_cycles, c.scrub_cycles
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{cells}\n  ]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(cells: &'a [Vec<HardenCell>], sys: &str, set: &str, b: usize) -> &'a HardenCell {
        cells
            .iter()
            .flatten()
            .find(|c| c.system == sys && c.set == set && c.msg_len == b)
            .unwrap()
    }

    #[test]
    fn grid_covers_mechanisms_sets_and_sizes() {
        let cells = results();
        assert_eq!(cells.len(), 4);
        for per_sys in &cells {
            assert_eq!(per_sys.len(), SETS.len() * SIZES.len());
        }
    }

    #[test]
    fn none_set_pays_zero_tax_everywhere() {
        let cells = results();
        for c in cells.iter().flatten().filter(|c| c.set == "none") {
            assert_eq!(c.tax_cycles, 0, "{} at {}B", c.system, c.msg_len);
            assert_eq!(c.scrub_cycles, 0, "{} at {}B", c.system, c.msg_len);
        }
    }

    #[test]
    fn every_mitigation_costs_something_and_all_dominates() {
        let cells = results();
        for sys in ["Zircon", "Zircon-XPC", "seL4-onecopy", "seL4-XPC"] {
            for &b in &SIZES {
                let none = cell(&cells, sys, "none", b).cycles;
                let all = cell(&cells, sys, "all", b).cycles;
                for set in ["epochs", "scrub", "flow"] {
                    let c = cell(&cells, sys, set, b);
                    // Scrub is per-byte: legitimately free on an empty
                    // message; the flat checks always cost.
                    if set != "scrub" || b > 0 {
                        assert!(c.tax_cycles > 0, "{sys} {set} {b}B free");
                    }
                    assert!(c.cycles >= none && c.cycles <= all, "{sys} {set} {b}B");
                }
            }
        }
    }

    #[test]
    fn scrub_tax_grows_with_message_size_and_others_stay_flat() {
        let cells = results();
        for sys in ["Zircon", "Zircon-XPC", "seL4-onecopy", "seL4-XPC"] {
            for w in SIZES.windows(2) {
                assert!(
                    cell(&cells, sys, "scrub", w[1]).tax_cycles
                        > cell(&cells, sys, "scrub", w[0]).tax_cycles,
                    "{sys}: scrub tax not per-byte"
                );
                for set in ["epochs", "flow"] {
                    assert_eq!(
                        cell(&cells, sys, set, w[0]).tax_cycles,
                        cell(&cells, sys, set, w[1]).tax_cycles,
                        "{sys}: {set} tax should be size-independent"
                    );
                }
            }
        }
    }

    #[test]
    fn hardware_checks_tax_less_than_their_software_equivalents() {
        let cells = results();
        for (base, xpc) in [("Zircon", "Zircon-XPC"), ("seL4-onecopy", "seL4-XPC")] {
            for set in ["epochs", "flow"] {
                assert!(
                    cell(&cells, xpc, set, 0).tax_cycles < cell(&cells, base, set, 0).tax_cycles,
                    "{set}: architectural check not cheaper than {base}'s software path"
                );
            }
        }
    }

    #[test]
    fn json_section_is_shaped() {
        let s = json_section();
        assert!(s.contains("\"set\": \"none\""));
        assert!(s.contains("\"set\": \"all\""));
        assert!(s.contains("\"tax_cycles\": 0"));
        assert!(s.contains("\"scrub_cycles\""));
    }
}
