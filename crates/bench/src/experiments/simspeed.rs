//! **Simspeed** — wall-clock throughput of the simulator itself
//! (requests priced per second of *real* time), contrasting three
//! attribution hot paths over the same deterministic workload:
//!
//! * `pre-refactor` — a faithful copy of the allocating driver the arena
//!   refactor replaced: linear min-scan issue order, a fresh core map
//!   and a fresh [`CycleLedger`] per request, per-step `Invocation`
//!   allocations through `MultiWorld::exec`;
//! * `full` — [`run_windowed_with`](simos::load::run_windowed_with)
//!   under [`Attribution::Full`]: span-exact attribution staged through
//!   a reset-and-reuse [`LedgerArena`];
//! * `sampled` — [`Attribution::Sampled`] at 1-in-[`SAMPLED_EVERY`]:
//!   flat [`PhaseTotals`] per request, span ledgers retained in a
//!   pre-reserved arena.
//!
//! Modeled cycles are bit-identical across the three (pinned by tests
//! below); only wall-clock speed differs. A fourth measurement times the
//! **parallel sweep**: a grid of independent seeded cells fanned through
//! [`simos::par`] at one worker (the pinned serial oracle) and at
//! [`PAR_THREADS`] workers, asserting the reports byte-identical and the
//! per-worker arenas steady while recording the wall-clock speedup.
//! Because the numbers are real-time measurements this experiment is
//! deliberately **not** in the deterministic registry
//! (`experiments::all()` / golden.txt); it ships as the `"simspeed"`
//! section of `BENCH_figures.json` (suppressed by `figures
//! --no-simspeed`) and the `simspeed` binary, whose gates CI runs.

use kernels::XpcIpc;
use simos::{
    Attribution, CycleLedger, IpcSystem, LedgerArena, LoadGen, LoadReport, MultiWorld, Phase,
    PhaseTotals, Placement, Step, SweepScratch,
};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Requests per timed mode (the 10^6-request sweep).
pub const REQUESTS: u64 = 1_000_000;

/// Sampling stride of the sampled mode (1-in-64 requests keep spans).
pub const SAMPLED_EVERY: u64 = 64;

/// Requests used to warm the full-mode arena and scratch to steady
/// state before capacities are captured.
const WARMUP: u64 = 2_000;

/// Closed-loop clients. Large enough that the pre-refactor driver's
/// O(clients) issue scan costs what it did in the big sweeps, while the
/// heap paths stay O(log clients).
const CLIENTS: usize = 2048;

/// Cores in the world (client core + service core).
const CORES: usize = 2;

/// Service-id space (service 0 is the client).
const SERVICES: usize = 2;

const SEED: u64 = 0x51f3_5eed;

/// One simspeed measurement.
#[derive(Debug, Clone)]
pub struct SimspeedReport {
    /// Requests priced per timed mode.
    pub requests: u64,
    /// Allocating pre-refactor driver, requests per wall-clock second.
    pub pre_refactor_full_rps: f64,
    /// Arena-backed full attribution, requests per wall-clock second.
    pub full_rps: f64,
    /// Sampled attribution, requests per wall-clock second.
    pub sampled_rps: f64,
    /// The sampling stride used.
    pub sampled_every: u64,
    /// Sampled throughput over the pre-refactor baseline.
    pub speedup: f64,
    /// Full-mode arena slabs did not grow after warmup.
    pub full_arena_steady: bool,
    /// Sampled-mode arena slabs never outgrew their pre-reservation.
    pub sampled_arena_steady: bool,
}

fn mk() -> Box<dyn IpcSystem> {
    Box::new(XpcIpc::sel4_xpc())
}

fn world() -> MultiWorld {
    MultiWorld::builder().cores(CORES).build(mk)
}

/// The per-request work: a small call in, service-side handling, a
/// round trip back — a few spans per request, so attribution overhead
/// (not modeled work) dominates the wall clock.
fn recipe() -> Vec<Step> {
    vec![
        Step::Oneway {
            from: 0,
            to: 1,
            bytes: 64,
        },
        Step::Compute { at: 1, cycles: 300 },
        Step::Roundtrip {
            from: 1,
            to: 0,
            request: 16,
            response: 256,
        },
    ]
}

fn spec(requests: u64) -> LoadGen {
    LoadGen {
        clients: CLIENTS,
        requests,
        seed: SEED,
        think_cycles: 0,
    }
}

/// The pre-refactor closed-loop driver, kept verbatim as the recorded
/// baseline: O(clients) linear min-scan for the next issuer, a fresh
/// `Vec<CoreId>` core map and a fresh merged [`CycleLedger`] per
/// request, per-step `Invocation` ledger allocations inside
/// [`simos::load::run_request`], and the latency sample collected and
/// sorted at the end exactly as the old `run_windowed` tail did.
/// Returns the merged ledger and the sorted latencies.
fn pre_refactor_run(mw: &mut MultiWorld, requests: u64) -> (CycleLedger, Vec<u64>) {
    let policy = Placement::RoundRobin;
    let steps = recipe();
    let mut ready = vec![0u64; CLIENTS];
    let mut ledger = CycleLedger::new();
    let mut latencies = Vec::with_capacity(requests as usize);
    for r in 0..requests {
        let mut c = 0;
        for i in 1..ready.len() {
            if ready[i] < ready[c] {
                c = i;
            }
        }
        let t0 = ready[c];
        let map = policy
            .assign(r, SERVICES, mw)
            .expect("placement rejected the core map");
        let (done, req_ledger) = simos::load::run_request(mw, &map, &steps, t0);
        ledger.merge(&req_ledger);
        latencies.push(done - t0);
        ready[c] = done;
    }
    latencies.sort_unstable();
    (ledger, latencies)
}

/// Run the three timed modes over `requests` requests each.
pub fn measure(requests: u64) -> SimspeedReport {
    let recipes = [recipe()];
    let rps = |elapsed: f64| requests as f64 / elapsed.max(f64::EPSILON);

    // Pre-refactor baseline (the recorded number the acceptance speedup
    // is measured against).
    let mut mw = world();
    let t = Instant::now();
    pre_refactor_run(&mut mw, requests);
    let pre_refactor_full_rps = rps(t.elapsed().as_secs_f64());

    // Arena-backed full attribution: warm the scratch + arena on a
    // short run, capture slab capacities, then require the timed run
    // not to move them (reset-and-reuse steady state).
    let mut scratch = SweepScratch::new();
    let mut arena = LedgerArena::new();
    simos::load::run_windowed_with(
        &mut world(),
        &Placement::RoundRobin,
        SERVICES,
        &recipes,
        &spec(WARMUP.min(requests)),
        1,
        &mut scratch,
        Attribution::Full(&mut arena),
    )
    .expect("simspeed warmup run must be runnable");
    let warm = (arena.ledger_capacity(), arena.span_capacity());
    let mut mw = world();
    let t = Instant::now();
    simos::load::run_windowed_with(
        &mut mw,
        &Placement::RoundRobin,
        SERVICES,
        &recipes,
        &spec(requests),
        1,
        &mut scratch,
        Attribution::Full(&mut arena),
    )
    .expect("simspeed full run must be runnable");
    let full_rps = rps(t.elapsed().as_secs_f64());
    let full_arena_steady = (arena.ledger_capacity(), arena.span_capacity()) == warm;

    // Sampled attribution: totals for every request, spans for
    // 1-in-SAMPLED_EVERY, retained in an arena pre-reserved for exactly
    // the sample it will keep.
    let kept = requests.div_ceil(SAMPLED_EVERY) as usize;
    let mut totals = PhaseTotals::new();
    let mut arena = LedgerArena::with_capacity(kept, kept * Phase::COUNT);
    let reserved = (arena.ledger_capacity(), arena.span_capacity());
    let mut mw = world();
    let t = Instant::now();
    simos::load::run_windowed_with(
        &mut mw,
        &Placement::RoundRobin,
        SERVICES,
        &recipes,
        &spec(requests),
        1,
        &mut scratch,
        Attribution::Sampled {
            every: SAMPLED_EVERY,
            totals: &mut totals,
            arena: &mut arena,
        },
    )
    .expect("simspeed sampled run must be runnable");
    let sampled_rps = rps(t.elapsed().as_secs_f64());
    let sampled_arena_steady = (arena.ledger_capacity(), arena.span_capacity()) == reserved;

    SimspeedReport {
        requests,
        pre_refactor_full_rps,
        full_rps,
        sampled_rps,
        sampled_every: SAMPLED_EVERY,
        speedup: sampled_rps / pre_refactor_full_rps.max(f64::EPSILON),
        full_arena_steady,
        sampled_arena_steady,
    }
}

/// Cells in the parallel-sweep measurement: a grid of independent
/// windowed-load cells, one [`ycsb::stream_seed`]-derived seed each.
pub const PAR_CELLS: usize = 16;

/// Requests per parallel-sweep cell.
pub const PAR_CELL_REQUESTS: u64 = 25_000;

/// Workers the parallel pass fans the grid over (the speedup gate's
/// denominator — enforced in the `simspeed` binary only when the
/// machine actually has this many hardware threads).
pub const PAR_THREADS: usize = 4;

/// Closed-loop clients per parallel-sweep cell (smaller than the serial
/// modes' [`CLIENTS`]: the grid times pool dispatch + per-worker arena
/// reuse, not the issue heap).
const PAR_CLIENTS: usize = 256;

/// One parallel-sweep measurement: the same cell grid timed at one
/// worker (the pinned serial oracle) and at [`PAR_THREADS`] workers.
#[derive(Debug, Clone)]
pub struct ParReport {
    /// Workers the parallel pass used.
    pub threads: usize,
    /// Hardware threads the machine reports (the speedup gate applies
    /// only when this covers [`PAR_THREADS`]).
    pub hw_threads: usize,
    /// Grid cells.
    pub cells: usize,
    /// Requests per cell.
    pub requests_per_cell: u64,
    /// Grid requests per wall-clock second at one worker.
    pub serial_grid_rps: f64,
    /// Grid requests per wall-clock second at [`PAR_THREADS`] workers.
    pub par_grid_rps: f64,
    /// `par_grid_rps / serial_grid_rps`.
    pub par_speedup: f64,
    /// Parallel reports byte-identical to the serial oracle's.
    pub identical: bool,
    /// No worker's arena slabs grew after that worker's first cell
    /// (each worker may grow exactly once, from empty, on its first
    /// draw; every later cell must reuse the slabs).
    pub par_arena_steady: bool,
}

/// Two recipe variants for the parallel grid, so each cell's derived
/// seed stream visibly drives the recipe draws (the generator's seed
/// only picks recipes — with a single recipe every seed would price the
/// identical schedule and the distinct-streams assertion would be
/// vacuous).
fn par_recipes() -> Vec<Vec<Step>> {
    vec![
        recipe(),
        vec![
            Step::Oneway {
                from: 0,
                to: 1,
                bytes: 1024,
            },
            Step::Compute { at: 1, cycles: 600 },
            Step::Roundtrip {
                from: 1,
                to: 0,
                request: 16,
                response: 4096,
            },
        ],
    ]
}

/// Time one pass of a `cells`-cell grid at `workers` workers. Returns
/// the wall-clock rate, the per-cell reports (index order), and the
/// per-worker arena steady-state verdict.
fn par_grid_pass(
    workers: usize,
    cells: usize,
    requests_per_cell: u64,
) -> (f64, Vec<LoadReport>, bool) {
    let recipes = par_recipes();
    let seeds: Vec<u64> = (0..cells as u64)
        .map(|i| ycsb::stream_seed(SEED, i))
        .collect();
    let t = Instant::now();
    let out = simos::par::map_cells_on(workers, seeds, |_, seed, cs| {
        let before = (cs.arena.ledger_capacity(), cs.arena.span_capacity());
        let mut mw = world();
        let r = simos::load::run_windowed_with(
            &mut mw,
            &Placement::RoundRobin,
            SERVICES,
            &recipes,
            &LoadGen {
                clients: PAR_CLIENTS,
                requests: requests_per_cell,
                seed,
                think_cycles: 0,
            },
            1,
            &mut cs.sweep,
            Attribution::Full(&mut cs.arena),
        )
        .expect("parallel sweep cell must be runnable");
        let grew = (cs.arena.ledger_capacity(), cs.arena.span_capacity()) != before;
        (r, grew)
    });
    let elapsed = t.elapsed().as_secs_f64();
    let total = cells as u64 * requests_per_cell;
    let grown = out.iter().filter(|(_, grew)| *grew).count();
    let reports = out.into_iter().map(|(r, _)| r).collect();
    // Every cell prices the same request count over the same recipe, so
    // a worker's slabs reach steady state on its first cell; at most
    // `workers` first cells exist.
    (
        total as f64 / elapsed.max(f64::EPSILON),
        reports,
        grown <= workers,
    )
}

/// Run the parallel-sweep measurement: serial oracle pass, then the
/// [`PAR_THREADS`]-worker pass over the identical grid.
pub fn measure_par() -> ParReport {
    let (serial_grid_rps, serial_reports, _) = par_grid_pass(1, PAR_CELLS, PAR_CELL_REQUESTS);
    let (par_grid_rps, par_reports, par_arena_steady) =
        par_grid_pass(PAR_THREADS, PAR_CELLS, PAR_CELL_REQUESTS);
    ParReport {
        threads: PAR_THREADS,
        hw_threads: std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
        cells: PAR_CELLS,
        requests_per_cell: PAR_CELL_REQUESTS,
        serial_grid_rps,
        par_grid_rps,
        par_speedup: par_grid_rps / serial_grid_rps.max(f64::EPSILON),
        identical: par_reports == serial_reports,
        par_arena_steady,
    }
}

/// The `"simspeed"` section of `BENCH_figures.json`: the three serial
/// attribution modes plus the parallel-sweep rows.
pub fn json_section(r: &SimspeedReport, p: &ParReport) -> String {
    format!(
        "{{\"requests\": {}, \"pre_refactor_full_rps\": {:.0}, \
         \"full_rps\": {:.0}, \"sampled_rps\": {:.0}, \
         \"sampled_every\": {}, \"speedup_sampled_vs_pre_refactor\": {:.2}, \
         \"full_arena_steady\": {}, \"sampled_arena_steady\": {}, \
         \"par_threads\": {}, \"hw_threads\": {}, \"par_cells\": {}, \
         \"par_requests_per_cell\": {}, \"serial_grid_rps\": {:.0}, \
         \"par_grid_rps\": {:.0}, \"par_speedup\": {:.2}, \
         \"par_identical\": {}, \"par_arena_steady\": {}}}",
        r.requests,
        r.pre_refactor_full_rps,
        r.full_rps,
        r.sampled_rps,
        r.sampled_every,
        r.speedup,
        r.full_arena_steady,
        r.sampled_arena_steady,
        p.threads,
        p.hw_threads,
        p.cells,
        p.requests_per_cell,
        p.serial_grid_rps,
        p.par_grid_rps,
        p.par_speedup,
        p.identical,
        p.par_arena_steady
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_paths_price_identical_cycles() {
        // The bit-identity pin: the pre-refactor driver, the arena full
        // path, and the sampled totals all attribute exactly the same
        // cycles for the same workload.
        let n = 2_000;
        let recipes = [recipe()];
        let mut mw = world();
        let (legacy, _) = pre_refactor_run(&mut mw, n);
        let mut scratch = SweepScratch::new();
        let mut arena = LedgerArena::new();
        let full = simos::load::run_windowed_with(
            &mut world(),
            &Placement::RoundRobin,
            SERVICES,
            &recipes,
            &spec(n),
            1,
            &mut scratch,
            Attribution::Full(&mut arena),
        )
        .expect("full-mode run must be runnable");
        assert_eq!(
            full.ledger, legacy,
            "full mode == pre-refactor, span for span"
        );
        let mut totals = PhaseTotals::new();
        let mut kept = LedgerArena::new();
        simos::load::run_windowed_with(
            &mut world(),
            &Placement::RoundRobin,
            SERVICES,
            &recipes,
            &spec(n),
            1,
            &mut scratch,
            Attribution::Sampled {
                every: SAMPLED_EVERY,
                totals: &mut totals,
                arena: &mut kept,
            },
        )
        .expect("sampled run must be runnable");
        for p in Phase::ALL {
            assert_eq!(totals.get(p), legacy.get(p), "{p:?}");
        }
        assert_eq!(kept.len() as u64, n.div_ceil(SAMPLED_EVERY));
    }

    #[test]
    fn measure_reports_positive_rates_and_steady_arenas() {
        // Debug-build smoke: rates are positive and both arenas hold
        // steady state (the >= 5x speedup gate runs in release, in the
        // `simspeed` binary CI invokes).
        let r = measure(4_000);
        assert!(r.pre_refactor_full_rps > 0.0);
        assert!(r.full_rps > 0.0);
        assert!(r.sampled_rps > 0.0);
        assert!(
            r.full_arena_steady,
            "full-mode arena slabs grew after warmup"
        );
        assert!(
            r.sampled_arena_steady,
            "sampled arena outgrew its reservation"
        );
        let (serial_grid_rps, _, _) = par_grid_pass(1, 4, 500);
        let p = ParReport {
            threads: PAR_THREADS,
            hw_threads: 1,
            cells: 4,
            requests_per_cell: 500,
            serial_grid_rps,
            par_grid_rps: serial_grid_rps,
            par_speedup: 1.0,
            identical: true,
            par_arena_steady: true,
        };
        let s = json_section(&r, &p);
        assert!(s.contains("\"sampled_every\": 64"));
        assert!(s.contains("\"requests\": 4000"));
        assert!(s.contains("\"par_threads\": 4"));
        assert!(s.contains("\"par_identical\": true"));
    }

    #[test]
    fn parallel_grid_is_byte_identical_to_the_serial_oracle() {
        // The determinism pin for the parallel-sweep measurement: the
        // same seeded grid at 1, 2, and 4 workers yields equal reports,
        // and every worker's arena holds steady after its first cell.
        let (_, oracle, steady1) = par_grid_pass(1, 6, 400);
        assert!(steady1, "serial pass: arena grew after the first cell");
        for workers in [2, 4] {
            let (_, got, steady) = par_grid_pass(workers, 6, 400);
            assert_eq!(got, oracle, "workers = {workers}");
            assert!(steady, "workers = {workers}: a worker's arena kept growing");
        }
        // Distinct streams really drive distinct cells.
        assert!(oracle.windows(2).all(|w| w[0] != w[1]));
    }
}
