//! **Table 3** — cycles of the XPC hardware instructions, measured by
//! stepping the emulator through warm `xcall`/`xret`/`swapseg`.

use super::Report;
use crate::harness::{measure_swapseg, CallBench, CallBenchConfig};

/// Measured (xcall, xret, swapseg) on the paper-default configuration.
pub fn measure() -> (u64, u64, u64) {
    let mut b = CallBench::new(&CallBenchConfig::paper_default());
    let m = b.measure(3);
    let swap = measure_swapseg(&CallBenchConfig::paper_default());
    (m.xcall, m.xret, swap)
}

/// Regenerate Table 3.
pub fn run() -> Report {
    let (xcall, xret, swapseg) = measure();
    Report {
        id: "Table 3",
        caption: "Cycles of hardware instructions in XPC (emulator-measured, warm)",
        headers: vec!["Instruction".into(), "Cycles".into(), "Paper".into()],
        rows: vec![
            vec!["xcall".into(), xcall.to_string(), "18".into()],
            vec!["xret".into(), xret.to_string(), "23".into()],
            vec!["swapseg".into(), swapseg.to_string(), "11".into()],
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_with_paper() {
        assert_eq!(measure(), (18, 23, 11));
    }
}
