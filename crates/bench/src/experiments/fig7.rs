//! **Figure 7** — OS services: file-system read/write throughput (a, b)
//! and TCP throughput (c) across the five systems.

use super::Report;
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use services::fs::{FsClient, Xv6Fs};
use services::net::tcp_throughput_mb_s;
use simos::{IpcSystem, World};

/// Buffer sizes of Figure 7(a)/(b) in bytes.
pub const FS_BUFS: [u64; 4] = [2048, 4096, 8192, 16384];

/// Buffer sizes of Figure 7(c) in bytes.
pub const TCP_BUFS: [u64; 6] = [128, 256, 512, 1024, 2048, 4096];

fn systems() -> Vec<Box<dyn IpcSystem>> {
    vec![
        Box::new(Zircon::new()),
        Box::new(XpcIpc::zircon_xpc()),
        Box::new(Sel4::new(Sel4Transfer::OneCopy)),
        Box::new(Sel4::new(Sel4Transfer::TwoCopy)),
        Box::new(XpcIpc::sel4_xpc()),
    ]
}

/// FS throughput in MB/s for one system and buffer size.
pub fn fs_throughput(mech: Box<dyn IpcSystem>, buf: u64, write: bool) -> f64 {
    let mut w = World::new(mech);
    let mut fs = Xv6Fs::mkfs(&mut w, 1 << 14);
    let ino = fs.create(&mut w, "bench");
    let data = vec![0xa5u8; buf as usize];
    // Pre-populate so reads hit allocated blocks.
    fs.write(&mut w, ino, 0, &vec![1u8; (buf * 4) as usize]);
    let start = w.cycles;
    let mut moved = 0u64;
    for i in 0..16u64 {
        let off = (i % 4) * buf;
        if write {
            FsClient::write(&mut fs, &mut w, ino, off, &data);
        } else {
            let got = FsClient::read(&mut fs, &mut w, ino, off, buf);
            assert_eq!(got.len() as u64, buf);
        }
        moved += buf;
    }
    w.cost.throughput_mb_s(moved, w.cycles - start)
}

/// All Figure 7(a)/(b) curves: (system, buf -> MB/s).
pub fn fs_curves(write: bool) -> Vec<(String, Vec<f64>)> {
    systems()
        .into_iter()
        .map(|m| {
            let name = m.name();
            // Rebuild the mechanism per size (boxed mechanisms are stateless).
            let vals = FS_BUFS
                .iter()
                .map(|&b| {
                    let mech = systems()
                        .into_iter()
                        .find(|x| x.name() == name)
                        .expect("system");
                    fs_throughput(mech, b, write)
                })
                .collect();
            (name, vals)
        })
        .collect()
}

fn fs_report(id: &'static str, caption: &'static str, write: bool) -> Report {
    let curves = fs_curves(write);
    let mut headers = vec!["Buffer".to_string()];
    headers.extend(curves.iter().map(|(n, _)| n.clone()));
    let rows = FS_BUFS
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut row = vec![format!("{}KB", b / 1024)];
            row.extend(curves.iter().map(|(_, v)| format!("{:.1}", v[i])));
            row
        })
        .collect();
    Report {
        id,
        caption,
        headers,
        rows,
    }
}

/// Regenerate Figure 7(a)+(b) as one report pair.
pub fn fig7ab() -> Report {
    let mut r = fs_report(
        "Figure 7(a,b)",
        "FS read/write throughput (MB/s); read rows first, then write rows",
        false,
    );
    let w = fs_report("", "", true);
    r.rows.push(vec!["-- write --".into()]);
    r.rows.extend(w.rows);
    r
}

/// TCP curves for Figure 7(c): (system, buf -> MB/s).
pub fn tcp_curves() -> Vec<(String, Vec<f64>)> {
    let mk: Vec<Box<dyn IpcSystem>> = vec![Box::new(Zircon::new()), Box::new(XpcIpc::zircon_xpc())];
    mk.into_iter()
        .map(|m| {
            let name = m.name();
            let vals = TCP_BUFS
                .iter()
                .map(|&b| {
                    let mech: Box<dyn IpcSystem> = if name == "Zircon" {
                        Box::new(Zircon::new())
                    } else {
                        Box::new(XpcIpc::zircon_xpc())
                    };
                    let mut w = World::new(mech);
                    tcp_throughput_mb_s(&mut w, b as usize, 1 << 20)
                })
                .collect();
            (name, vals)
        })
        .collect()
}

/// Regenerate Figure 7(c).
pub fn fig7c() -> Report {
    let curves = tcp_curves();
    let mut headers = vec!["Buffer".to_string()];
    headers.extend(curves.iter().map(|(n, _)| n.clone()));
    headers.push("speedup".into());
    let rows = TCP_BUFS
        .iter()
        .enumerate()
        .map(|(i, b)| {
            vec![
                format!("{b}B"),
                format!("{:.2}", curves[0].1[i]),
                format!("{:.2}", curves[1].1[i]),
                format!("{:.1}x", curves[1].1[i] / curves[0].1[i]),
            ]
        })
        .collect();
    Report {
        id: "Figure 7(c)",
        caption: "TCP throughput vs buffer size (paper: ~6x average, up to 8x at small buffers)",
        headers,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve<'a>(curves: &'a [(String, Vec<f64>)], name: &str) -> &'a [f64] {
        &curves.iter().find(|(n, _)| n == name).unwrap().1
    }

    #[test]
    fn fig7a_read_speedups_in_band() {
        // Paper: XPC read speedups avg 7.8x vs Zircon, 3.8x vs seL4.
        let c = fs_curves(false);
        let zircon = curve(&c, "Zircon");
        let sel4 = curve(&c, "seL4-twocopy");
        let xpc = curve(&c, "seL4-XPC");
        let vs_zircon: f64 =
            xpc.iter().zip(zircon).map(|(x, z)| x / z).sum::<f64>() / xpc.len() as f64;
        let vs_sel4: f64 = xpc.iter().zip(sel4).map(|(x, s)| x / s).sum::<f64>() / xpc.len() as f64;
        assert!((3.0..15.0).contains(&vs_zircon), "vs Zircon {vs_zircon:.1}");
        assert!((1.5..8.0).contains(&vs_sel4), "vs seL4 {vs_sel4:.1}");
    }

    #[test]
    fn fig7b_write_gains_exceed_read_gains_vs_zircon() {
        // Paper: 7.8x read vs 13.2x write against Zircon — journaling
        // multiplies IPCs, so writes benefit more.
        let rd = fs_curves(false);
        let wr = fs_curves(true);
        let gain = |c: &[(String, Vec<f64>)]| {
            let z = curve(c, "Zircon");
            let x = curve(c, "Zircon-XPC");
            x.iter().zip(z).map(|(a, b)| a / b).sum::<f64>() / x.len() as f64
        };
        assert!(
            gain(&wr) > gain(&rd),
            "write gain {:.1} should exceed read gain {:.1}",
            gain(&wr),
            gain(&rd)
        );
    }

    #[test]
    fn fig7c_speedup_shrinks_with_buffer() {
        let c = tcp_curves();
        let z = curve(&c, "Zircon");
        let x = curve(&c, "Zircon-XPC");
        let first = x[0] / z[0];
        let last = x.last().unwrap() / z.last().unwrap();
        assert!(
            first > last,
            "batching helps Zircon: {first:.1} -> {last:.1}"
        );
        assert!(
            (3.0..12.0).contains(&first),
            "small-buffer speedup {first:.1}"
        );
    }

    #[test]
    fn onecopy_beats_twocopy() {
        let c = fs_curves(false);
        let one = curve(&c, "seL4-onecopy");
        let two = curve(&c, "seL4-twocopy");
        for (a, b) in one.iter().zip(two) {
            assert!(a > b);
        }
    }
}
