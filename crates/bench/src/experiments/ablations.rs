//! **Ablations** — the design-choice sweeps DESIGN.md calls out, beyond
//! the paper's own figures: message-transport family (Figure 10),
//! xcall-cap representation (§6.2), caller-context convention, and the
//! relay page table (§6.2) versus the contiguous relay segment, the last
//! one measured on the emulator.

use super::Report;
use crate::harness::{CallBench, CallBenchConfig};
use kernels::XpcIpc;
use rv64::{reg, Assembler};
use simos::cost::CostModel;
use simos::ipc::{EngineCacheStats, IpcSystem};
use simos::ledger::InvokeOpts;
use simos::transport::Transport;
use xpc::kernel::{syscall, KernelEvent, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc::trampoline::ContextMode;
use xpc_engine::cap::{BitmapCaps, CapStore, RadixCaps};

/// Transport family: cycles to move 1 MiB over a 4-hop chain.
pub fn transport_rows() -> Vec<(String, u64, bool, bool)> {
    let cost = CostModel::u500();
    Transport::ALL
        .iter()
        .map(|t| {
            (
                t.name().to_string(),
                t.transfer_cycles(&cost, 1 << 20, 4),
                t.tocttou_safe(),
                t.supports_handover(),
            )
        })
        .collect()
}

/// Capability stores: probe cost (words) and footprint for a sparse
/// grant set over a 2^20 ID space.
pub fn cap_rows() -> Vec<(String, u64, usize)> {
    let mut bitmap = BitmapCaps::new(1 << 20);
    let mut radix = RadixCaps::new();
    for id in (0..1u64 << 20).step_by(4099) {
        bitmap.grant(id);
        radix.grant(id);
    }
    vec![
        (
            "bitmap".into(),
            bitmap.probe(4099).words_touched,
            bitmap.footprint_bytes(),
        ),
        (
            "radix".into(),
            radix.probe(4099).words_touched,
            radix.footprint_bytes(),
        ),
    ]
}

/// Caller context convention: measured wrapped-call cycles.
pub fn context_rows() -> Vec<(String, u64)> {
    [ContextMode::Full, ContextMode::Partial]
        .into_iter()
        .map(|mode| {
            let mut cfg = CallBenchConfig::paper_default();
            cfg.context = mode;
            let mut b = CallBench::new(&cfg);
            (format!("{mode:?}"), b.measure(3).roundtrip)
        })
        .collect()
}

/// Relay segment vs relay page table: guest loop summing 512 bytes
/// through each window, measured on the emulator.
pub fn relay_pt_rows() -> Vec<(String, u64)> {
    fn run_sum(paged: bool) -> u64 {
        let mut k = XpcKernel::boot(XpcKernelConfig::default());
        let pa = k.create_process().expect("process");
        let client = k.create_thread(pa).expect("thread");
        let seg = if paged {
            k.alloc_relay_pt_seg(client, 1).expect("paged seg")
        } else {
            k.alloc_relay_seg(client, 4096).expect("seg")
        };
        k.install_seg(client, seg).expect("install");
        let seg_va = k.segs.seg_reg(seg).va_base;
        let mut c = Assembler::new(USER_CODE_VA);
        c.li(reg::T1, seg_va as i64);
        c.li(reg::T2, 512);
        c.li(reg::A0, 0);
        c.label("sum");
        c.lbu(reg::T3, reg::T1, 0);
        c.add(reg::A0, reg::A0, reg::T3);
        c.addi(reg::T1, reg::T1, 1);
        c.addi(reg::T2, reg::T2, -1);
        c.bne(reg::T2, reg::ZERO, "sum");
        c.li(reg::A7, syscall::EXIT as i64);
        c.ecall();
        let va = k.load_code(pa, &c.assemble()).expect("code");
        k.enter_thread(client, va, &[]).expect("enter");
        let before = k.machine.core.cycles;
        let ev = k.run(1_000_000).expect("run");
        assert_eq!(ev, KernelEvent::ThreadExit(0));
        k.machine.core.cycles - before
    }
    vec![
        ("relay-seg (contiguous)".into(), run_sum(false)),
        ("relay page table (§6.2)".into(), run_sum(true)),
    ]
}

/// Engine-cache efficacy under batching: per-call cycles and cache
/// counters for 64 B bursts through the cost-model `XpcIpc` (first call
/// fetches the x-entry, repeats pay the cached `xcall`).
pub fn engine_batch_rows() -> Vec<(u64, f64, EngineCacheStats)> {
    [1u64, 8, 64]
        .into_iter()
        .map(|n| {
            let mut x = XpcIpc::sel4_xpc();
            let inv = x.invoke_batch(n, 64, &InvokeOpts::call());
            (n, inv.total as f64 / n as f64, x.stats)
        })
        .collect()
}

/// Regenerate the ablation report.
pub fn run() -> Report {
    let mut rows: Vec<Vec<String>> = Vec::new();
    rows.push(vec!["-- transports: 1MiB over 4 hops --".into()]);
    for (name, cycles, safe, handover) in transport_rows() {
        rows.push(vec![
            name,
            format!("{cycles} cycles"),
            format!("tocttou-safe: {safe}"),
            format!("handover: {handover}"),
        ]);
    }
    rows.push(vec!["-- xcall-cap stores (sparse 2^20 IDs) --".into()]);
    for (name, words, bytes) in cap_rows() {
        rows.push(vec![
            name,
            format!("{words} words/probe"),
            format!("{bytes} B footprint"),
        ]);
    }
    rows.push(vec!["-- caller context convention --".into()]);
    for (name, cycles) in context_rows() {
        rows.push(vec![name, format!("{cycles} cycles/call")]);
    }
    rows.push(vec!["-- 512B guest read through the window --".into()]);
    for (name, cycles) in relay_pt_rows() {
        rows.push(vec![name, format!("{cycles} cycles")]);
    }
    rows.push(vec!["-- engine cache under batching (64B bursts) --".into()]);
    for (n, per_call, stats) in engine_batch_rows() {
        rows.push(vec![
            format!("batch {n}"),
            format!("{per_call:.1} cycles/call"),
            format!("prefetches: {}", stats.prefetches),
            format!("cache hits: {}", stats.cache_hits),
        ]);
    }
    Report {
        id: "Ablations",
        caption:
            "Design-choice sweeps (transport family, cap stores, context modes, relay page table)",
        headers: vec!["Variant".into(), "Cost".into(), "".into(), "".into()],
        rows,
    }
}

/// The `"ablations"` section of `BENCH_figures.json`: engine-cache
/// efficacy under batching, surfaced as counters rather than inferred
/// from totals.
pub fn json_section() -> String {
    let cells = engine_batch_rows()
        .iter()
        .map(|(n, per_call, stats)| {
            format!(
                "    {{\"batch\": {n}, \"per_call_cycles\": {per_call:.1}, \
                 \"prefetches\": {}, \"cache_hits\": {}}}",
                stats.prefetches, stats.cache_hits
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\"engine_cache_batching\": [\n{cells}\n  ]}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_cache_rows_amortize_toward_the_cached_xcall() {
        let rows = engine_batch_rows();
        // Per-call cost strictly drops with batch size...
        assert!(rows[1].1 < rows[0].1);
        assert!(rows[2].1 < rows[1].1);
        // ...toward the repeat cost (cached xcall 6 + TLB refill 40 = 46)
        // and the counters show why: one prefetch per burst, every
        // repeat a hit.
        assert!(rows[2].1 >= 46.0);
        assert_eq!(rows[0].2, EngineCacheStats::default());
        assert_eq!(rows[2].2.prefetches, 1);
        assert_eq!(rows[2].2.cache_hits, 63);
    }

    #[test]
    fn relay_pt_costs_more_but_same_order() {
        let rows = relay_pt_rows();
        let contiguous = rows[0].1;
        let paged = rows[1].1;
        assert!(paged > contiguous);
        assert!(paged < 4 * contiguous);
    }

    #[test]
    fn bitmap_probes_fewer_words_radix_uses_less_memory() {
        let rows = cap_rows();
        let (bw, bb) = (rows[0].1, rows[0].2);
        let (rw, rb) = (rows[1].1, rows[1].2);
        assert!(bw < rw, "bitmap probe is cheaper");
        assert!(rb < bb, "radix footprint is smaller when sparse");
    }

    #[test]
    fn full_context_costs_more_than_partial() {
        let rows = context_rows();
        assert!(rows[0].1 > rows[1].1);
    }
}
