//! **Table 1** — one-way IPC latency breakdown of seL4 (0 B and 4 KB).

use super::Report;
use kernels::{Sel4, Sel4Transfer};

/// Phase breakdown rows for 0 B and 4 KB messages.
pub fn phases() -> Vec<(&'static str, u64, u64)> {
    let s = Sel4::new(Sel4Transfer::OneCopy);
    let p0 = s.table1_phases(0);
    let p4k = s.table1_phases(4096);
    p0.iter()
        .zip(p4k.iter())
        .map(|(&(n, a), &(_, b))| (n, a, b))
        .collect()
}

/// Regenerate Table 1.
pub fn run() -> Report {
    let mut rows: Vec<Vec<String>> = phases()
        .into_iter()
        .map(|(n, a, b)| vec![n.to_string(), a.to_string(), b.to_string()])
        .collect();
    let (sum0, sum4k) = totals();
    rows.push(vec!["Sum".into(), sum0.to_string(), sum4k.to_string()]);
    Report {
        id: "Table 1",
        caption: "One-way IPC latency of seL4 (fast path), cycles",
        headers: vec![
            "Phases (cycles)".into(),
            "seL4(0B) fast path".into(),
            "seL4(4KB) fast path".into(),
        ],
        rows,
    }
}

/// Column totals (paper: 664 and 4804).
pub fn totals() -> (u64, u64) {
    let sum = |bytes| {
        Sel4::new(Sel4Transfer::OneCopy)
            .table1_phases(bytes)
            .iter()
            .map(|(_, c)| c)
            .sum()
    };
    (sum(0), sum(4096))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_0b_is_664() {
        assert_eq!(totals().0, 664, "paper Table 1 total");
    }

    #[test]
    fn sum_4k_close_to_4804() {
        let (_, t) = totals();
        // Paper: 4804. Our model omits the small phase inflation the
        // paper observed under 4K buffers (their phases grew a few
        // cycles); we land within 3%.
        let err = (t as f64 - 4804.0).abs() / 4804.0;
        assert!(err < 0.05, "4KB total {t} vs paper 4804");
    }

    #[test]
    fn report_has_five_phases_plus_sum() {
        assert_eq!(run().rows.len(), 6);
    }
}
