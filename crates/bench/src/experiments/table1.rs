//! **Table 1** — one-way IPC latency breakdown of seL4 (0 B and 4 KB).
//!
//! The table is literally the printed ledger of `Sel4::oneway(0|4096)`:
//! each row is a [`kernels::Phase`] span in first-charge order, so the
//! numbers here and the numbers every other figure attributes to seL4
//! come from the same place.

use super::Report;
use crate::sweep::ledger_table;
use kernels::{Invocation, InvokeOpts, IpcSystem, Sel4, Sel4Transfer};

/// The two invocations whose ledgers are the table's columns.
pub fn invocations() -> (Invocation, Invocation) {
    let mut s = Sel4::new(Sel4Transfer::OneCopy);
    (
        s.oneway(0, &InvokeOpts::call()),
        s.oneway(4096, &InvokeOpts::call()),
    )
}

/// Phase breakdown rows for 0 B and 4 KB messages.
pub fn phases() -> Vec<(&'static str, u64, u64)> {
    let (i0, i4k) = invocations();
    i0.ledger
        .spans()
        .iter()
        .zip(i4k.ledger.spans())
        .map(|(&(p, a), &(q, b))| {
            assert_eq!(p, q, "fast path charges the same phases at any size");
            (p.label(), a, b)
        })
        .collect()
}

/// Regenerate Table 1.
pub fn run() -> Report {
    let (i0, i4k) = invocations();
    ledger_table(
        "Table 1",
        "One-way IPC latency of seL4 (fast path), cycles",
        &[
            ("seL4(0B) fast path".into(), i0),
            ("seL4(4KB) fast path".into(), i4k),
        ],
    )
}

/// Column totals (paper: 664 and 4804).
pub fn totals() -> (u64, u64) {
    let (i0, i4k) = invocations();
    (i0.total, i4k.total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_0b_is_664() {
        assert_eq!(totals().0, 664, "paper Table 1 total");
    }

    #[test]
    fn sum_4k_close_to_4804() {
        let (_, t) = totals();
        // Paper: 4804. Our model omits the small phase inflation the
        // paper observed under 4K buffers (their phases grew a few
        // cycles); we land within 3%.
        let err = (t as f64 - 4804.0).abs() / 4804.0;
        assert!(err < 0.05, "4KB total {t} vs paper 4804");
    }

    #[test]
    fn report_has_five_phases_plus_sum() {
        assert_eq!(run().rows.len(), 6);
    }

    #[test]
    fn rows_are_the_ledger_spans() {
        let (i0, _) = invocations();
        let names: Vec<&str> = phases().iter().map(|&(n, _, _)| n).collect();
        let spans: Vec<&str> = i0.ledger.spans().iter().map(|&(p, _)| p.label()).collect();
        assert_eq!(names, spans);
    }
}
