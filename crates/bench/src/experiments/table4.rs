//! **Table 4** — the GEM5 ARM HPI simulator configuration, as realized by
//! this reproduction's machine model.

use super::Report;
use rv64::MachineConfig;

/// Regenerate Table 4.
pub fn run() -> Report {
    let c = MachineConfig::arm_hpi();
    Report {
        id: "Table 4",
        caption: "Simulator configuration (ARM HPI model, paper Table 4)",
        headers: vec!["Parameter".into(), "Value".into(), "Paper".into()],
        rows: vec![
            vec![
                "Core model".into(),
                "in-order, 1 IPC issue".into(),
                "8 in-order cores @2.0GHz".into(),
            ],
            vec![
                "I/D TLB".into(),
                format!("{} entries", c.tlb_entries),
                "256 entries".into(),
            ],
            vec![
                "L1 I-cache".into(),
                format!(
                    "{}KB, {}B line, {}-way",
                    c.icache.capacity() / 1024,
                    c.icache.line_bytes,
                    c.icache.ways
                ),
                "32KB, 64B line, 2-way".into(),
            ],
            vec![
                "L1 D-cache".into(),
                format!(
                    "{}KB, {}B line, {}-way",
                    c.dcache.capacity() / 1024,
                    c.dcache.line_bytes,
                    c.dcache.ways
                ),
                "32KB, 64B line, 4-way".into(),
            ],
            vec![
                "L1 hit latency".into(),
                format!("{} extra cycles", c.dcache.hit_extra),
                "3 cycles data/tag/response".into(),
            ],
            vec![
                "Miss/L2 latency".into(),
                format!("{} cycles", c.dcache.miss_penalty),
                "13 cycles data/tag".into(),
            ],
            vec![
                "TTBR write barrier".into(),
                format!("{} cycles", c.satp_write_cycles),
                "58 cycles (Hikey-960)".into(),
            ],
        ],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn reflects_paper_parameters() {
        let r = super::run();
        let text = r.render();
        assert!(text.contains("256 entries"));
        assert!(text.contains("58 cycles"));
    }
}
