//! **Table 6** — FPGA hardware resource costs. We cannot synthesize RTL,
//! so the report shows the published Vivado numbers next to this
//! reproduction's first-order structural estimate (see
//! `xpc_engine::hwcost`).

use super::Report;
use xpc_engine::hwcost::{estimated_engine_cost, published_table6};

/// Regenerate Table 6.
pub fn run() -> Report {
    let mut rows: Vec<Vec<String>> = published_table6()
        .into_iter()
        .map(|r| {
            vec![
                r.resource.to_string(),
                r.freedom.to_string(),
                r.xpc.to_string(),
                format!("{:.2}%", r.cost_percent()),
            ]
        })
        .collect();
    let e = estimated_engine_cost();
    rows.push(vec![
        "(modelled engine delta)".into(),
        "-".into(),
        format!("+{} LUT, +{} FF, +{} DSP", e.lut, e.ff, e.dsp),
        "structural estimate".into(),
    ]);
    Report {
        id: "Table 6",
        caption:
            "Hardware resource costs in FPGA (published Vivado report + our structural estimate)",
        headers: vec![
            "Resource".into(),
            "Freedom".into(),
            "XPC".into(),
            "Cost".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn lut_cost_row_shows_1_99() {
        let r = super::run();
        assert!(r.render().contains("1.99%"));
    }
}
