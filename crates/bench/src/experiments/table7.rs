//! **Table 7** — systems with IPC optimizations, made *executable*: the
//! qualitative columns come from the mechanism implementations and the
//! quantitative column is each design's measured one-way cost at 4 KiB.

use super::Report;
use kernels::table7;

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Regenerate Table 7.
pub fn run() -> Report {
    let rows = table7()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                mark(!r.traps).to_string(),
                mark(!r.schedules).to_string(),
                mark(r.tocttou_safe).to_string(),
                mark(r.handover).to_string(),
                r.copies.to_string(),
                r.cycles_4k.to_string(),
            ]
        })
        .collect();
    Report {
        id: "Table 7",
        caption: "IPC designs compared, executable (copies column: N = chain hops)",
        headers: vec![
            "System".into(),
            "w/o trap".into(),
            "w/o sched".into(),
            "w/o TOCTTOU".into(),
            "Handover".into(),
            "Copies".into(),
            "4KB one-way (cycles)".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn xpc_row_is_all_yes() {
        let r = super::run();
        let xpc = r
            .rows
            .iter()
            .find(|row| row[0] == "seL4-XPC")
            .expect("xpc row");
        assert_eq!(&xpc[1..5], &["yes", "yes", "yes", "yes"]);
    }
}
