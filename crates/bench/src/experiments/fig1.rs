//! **Figure 1** — the motivation measurements: (a) fraction of CPU time
//! Sqlite3/YCSB spends in IPC on seL4; (b) CDF of IPC time by message
//! length for YCSB-E.

use super::Report;
use kernels::{Sel4, Sel4Transfer};
use minidb::run_workload;
use simos::World;
use ycsb::{Workload, WorkloadSpec};

fn spec(wl: Workload) -> WorkloadSpec {
    WorkloadSpec {
        ops: 500,
        ..WorkloadSpec::paper(wl)
    }
}

/// IPC fraction per workload (Figure 1a).
pub fn ipc_fractions() -> Vec<(&'static str, f64)> {
    Workload::ALL
        .iter()
        .map(|&wl| {
            let mut w = World::new(Box::new(Sel4::new(Sel4Transfer::TwoCopy)));
            let r = run_workload(&mut w, &spec(wl));
            (wl.name(), r.ipc_fraction)
        })
        .collect()
}

/// Regenerate Figure 1(a).
pub fn fig1a() -> Report {
    let rows = ipc_fractions()
        .into_iter()
        .map(|(n, f)| vec![n.to_string(), format!("{:.1}%", f * 100.0)])
        .collect();
    Report {
        id: "Figure 1(a)",
        caption: "CPU time spent in IPC, Sqlite3 + YCSB on seL4 (paper: 18-39%)",
        headers: vec!["Workload".into(), "IPC time".into()],
        rows,
    }
}

/// The Figure 1(b) CDF and transfer fraction for YCSB-E.
pub fn ycsb_e_cdf() -> (Vec<(u64, f64)>, f64) {
    let mut w = World::new(Box::new(Sel4::new(Sel4Transfer::TwoCopy)));
    let r = run_workload(&mut w, &spec(Workload::E));
    let bounds = [4, 16, 64, 256, 1024, 4096, 8192, 1 << 20];
    (w.stats.cdf_by_size(&bounds), r.transfer_fraction)
}

/// Regenerate Figure 1(b).
pub fn fig1b() -> Report {
    let (cdf, transfer) = ycsb_e_cdf();
    let mut rows: Vec<Vec<String>> = cdf
        .into_iter()
        .map(|(b, f)| vec![format!("<= {b}B"), format!("{:.3}", f)])
        .collect();
    rows.push(vec![
        "data-transfer share of IPC time".into(),
        format!("{:.1}% (paper: 58.7%)", transfer * 100.0),
    ]);
    Report {
        id: "Figure 1(b)",
        caption: "CDF of IPC time by message length, YCSB-E on seL4",
        headers: vec!["Message length".into(), "CDF of IPC time".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_in_paper_band() {
        // Paper: 18% to 39% across the six mixes. Our substrate differs
        // (in particular YCSB-C is almost fully served by the row cache,
        // so its IPC share is lower than the paper's ~18%), but every
        // mix with writes must show a substantial IPC share and nothing
        // may be implausibly IPC-bound.
        let fr = ipc_fractions();
        for (name, f) in &fr {
            assert!(*f < 0.65, "{name}: IPC fraction {f:.2} implausibly high");
        }
        let a = fr.iter().find(|(n, _)| *n == "YCSB-A").unwrap().1;
        let e = fr.iter().find(|(n, _)| *n == "YCSB-E").unwrap().1;
        assert!(a > 0.15, "YCSB-A IPC share {a:.2} too low");
        assert!(e > 0.10, "YCSB-E IPC share {e:.2} too low");
    }

    #[test]
    fn transfer_dominates_ipc_on_e() {
        // Paper: 58.7% of IPC time on YCSB-E is data transfer (45.6-66.4%
        // across workloads).
        let (_, transfer) = ycsb_e_cdf();
        assert!(
            (0.35..0.80).contains(&transfer),
            "transfer fraction {transfer:.2}"
        );
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let (cdf, _) = ycsb_e_cdf();
        for pair in cdf.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
