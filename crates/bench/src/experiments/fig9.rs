//! **Figure 9** — Android Binder: window-manager/surface-compositor
//! transaction latency via the transaction buffer (a) and ashmem (b).

use super::Report;
use kernels::{binder_latency_us, BinderSystem};

/// Figure 9(a) argument sizes.
pub const BUF_SIZES: [u64; 5] = [1024, 2048, 4096, 8192, 16384];

/// Figure 9(b) argument sizes.
pub const ASHMEM_SIZES: [u64; 8] = [
    4096,
    16384,
    65536,
    262144,
    1 << 20,
    4 << 20,
    16 << 20,
    32 << 20,
];

/// Regenerate Figure 9(a).
pub fn fig9a() -> Report {
    let rows = BUF_SIZES
        .iter()
        .map(|&s| {
            let b = binder_latency_us(BinderSystem::Binder, false, s);
            let x = binder_latency_us(BinderSystem::BinderXpc, false, s);
            vec![
                format!("{s}B"),
                format!("{b:.1}us"),
                format!("{x:.1}us"),
                format!("{:.1}x", b / x),
            ]
        })
        .collect();
    Report {
        id: "Figure 9(a)",
        caption: "Binder transaction latency via buffer (paper: 378us->8.2us at 2KB, 46.2x)",
        headers: vec![
            "Size".into(),
            "Binder".into(),
            "Binder-XPC".into(),
            "Speedup".into(),
        ],
        rows,
    }
}

/// Regenerate Figure 9(b).
pub fn fig9b() -> Report {
    let rows = ASHMEM_SIZES
        .iter()
        .map(|&s| {
            let b = binder_latency_us(BinderSystem::Binder, true, s);
            let bx = binder_latency_us(BinderSystem::BinderXpc, true, s);
            let ax = binder_latency_us(BinderSystem::AshmemXpc, true, s);
            vec![
                format!("{}KB", s / 1024),
                format!("{:.2}ms", b / 1000.0),
                format!("{:.2}ms", bx / 1000.0),
                format!("{:.2}ms", ax / 1000.0),
            ]
        })
        .collect();
    Report {
        id: "Figure 9(b)",
        caption: "Binder latency via ashmem (paper: 54.2x at 4KB down to 2.8x at 32MB)",
        headers: vec![
            "Size".into(),
            "Binder".into(),
            "Binder-XPC".into(),
            "Ashmem-XPC".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_speedup_shrinks_with_size() {
        let s2k = binder_latency_us(BinderSystem::Binder, false, 2048)
            / binder_latency_us(BinderSystem::BinderXpc, false, 2048);
        let s16k = binder_latency_us(BinderSystem::Binder, false, 16384)
            / binder_latency_us(BinderSystem::BinderXpc, false, 16384);
        assert!(s2k > s16k);
        assert!((25.0..60.0).contains(&s2k), "2KB {s2k:.1}x (paper 46.2x)");
    }

    #[test]
    fn ashmem_speedup_shrinks_toward_2_8x() {
        let small = binder_latency_us(BinderSystem::Binder, true, 4096)
            / binder_latency_us(BinderSystem::BinderXpc, true, 4096);
        let large = binder_latency_us(BinderSystem::Binder, true, 32 << 20)
            / binder_latency_us(BinderSystem::BinderXpc, true, 32 << 20);
        assert!(small > 10.0, "4KB {small:.1}x (paper 54.2x)");
        assert!((2.0..4.5).contains(&large), "32MB {large:.1}x (paper 2.8x)");
    }
}
