//! Emulator measurement harness: sets up a cross-process call scenario
//! and measures cycles at instruction granularity by stepping the
//! machine.

use rv64::{reg, Assembler, MachineConfig};
use simos::{CycleLedger, Invocation, InvokeOpts, IpcSystem, Phase};
use xpc::kernel::{ThreadId, XEntryId, XpcKernel, XpcKernelConfig};
use xpc::layout::USER_CODE_VA;
use xpc::trampoline::{save_area_bytes, save_regs, ContextMode};
use xpc_engine::{XpcAsm, XpcEngineConfig};

/// Configuration of a [`CallBench`] (the Figure 5 axes).
#[derive(Debug, Clone)]
pub struct CallBenchConfig {
    /// Machine timing model (tagged vs untagged TLB lives here).
    pub machine: MachineConfig,
    /// Engine feature set (non-blocking link stack, engine cache).
    pub engine: XpcEngineConfig,
    /// Caller context convention.
    pub context: ContextMode,
    /// Prefetch the x-entry into the engine cache before each call.
    pub prefetch: bool,
}

impl CallBenchConfig {
    /// Figure 5 "Full-Cxt": full context, blocking stack, untagged TLB.
    pub fn full_ctx() -> Self {
        CallBenchConfig {
            machine: MachineConfig::rocket_u500(),
            engine: XpcEngineConfig::minimal(),
            context: ContextMode::Full,
            prefetch: false,
        }
    }

    /// Figure 5 "Partial-Cxt".
    pub fn partial_ctx() -> Self {
        CallBenchConfig {
            context: ContextMode::Partial,
            ..Self::full_ctx()
        }
    }

    /// Figure 5 "+Tagged-TLB".
    pub fn tagged_tlb() -> Self {
        CallBenchConfig {
            machine: MachineConfig::rocket_u500_tagged(),
            ..Self::partial_ctx()
        }
    }

    /// Figure 5 "+Nonblock Link Stack".
    pub fn nonblock() -> Self {
        let mut c = Self::tagged_tlb();
        c.engine.nonblocking_link_stack = true;
        c
    }

    /// Figure 5 "+Engine Cache".
    pub fn engine_cache() -> Self {
        let mut c = Self::nonblock();
        c.engine.engine_cache = true;
        c.prefetch = true;
        c
    }

    /// The five Figure 5 configurations in bar order.
    pub fn fig5_ladder() -> Vec<(&'static str, CallBenchConfig)> {
        vec![
            ("Full-Cxt", Self::full_ctx()),
            ("Partial-Cxt", Self::partial_ctx()),
            ("+Tagged-TLB", Self::tagged_tlb()),
            ("+Nonblock LinkStack", Self::nonblock()),
            ("+Engine Cache", Self::engine_cache()),
        ]
    }

    /// Table 3 / evaluation default: full context, non-blocking stack.
    pub fn paper_default() -> Self {
        CallBenchConfig {
            machine: MachineConfig::rocket_u500(),
            engine: XpcEngineConfig::paper_default(),
            context: ContextMode::Full,
            prefetch: false,
        }
    }
}

/// Cycle measurements of one IPC call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallMeasurement {
    /// Whole wrapped call: save + xcall + callee + xret + restore.
    pub roundtrip: u64,
    /// The `xcall` instruction alone.
    pub xcall: u64,
    /// The `xret` instruction alone.
    pub xret: u64,
}

/// A client/server pair on the emulator with measurement labels.
pub struct CallBench {
    /// The kernel + machine under test.
    pub k: XpcKernel,
    /// The registered (raw, trampoline-free) x-entry.
    pub entry: XEntryId,
    client: ThreadId,
    client_va: u64,
    wrapper_start: u64,
    xcall_pc: u64,
    ret_pc: u64,
    wrapper_end: u64,
}

impl CallBench {
    /// Build the scenario: two processes, a raw `xret`-only callee, and a
    /// looping wrapped caller.
    pub fn new(cfg: &CallBenchConfig) -> Self {
        let mut k = XpcKernel::boot(XpcKernelConfig {
            machine: cfg.machine.clone(),
            engine: cfg.engine,
        });
        let pa = k.create_process().expect("client process");
        let pb = k.create_process().expect("server process");
        let server = k.create_thread(pb).expect("server thread");
        let client = k.create_thread(pa).expect("client thread");

        // Raw callee: nop + xret. The nop absorbs the post-switch fetch
        // walk so the xret measurement isolates the instruction itself
        // (the walk is part of the TLB component, measured separately).
        // No trampoline — the caller wrapper is the one Figure 5 measures.
        let mut s = Assembler::new(USER_CODE_VA);
        s.nop();
        s.xret();
        let callee_va = k.load_code(pb, &s.assemble()).expect("callee code");
        let entry = k
            .register_raw_entry(server, server, callee_va)
            .expect("entry");
        k.grant_xcall(server, client, entry).expect("grant");

        // Save area in the client.
        let (save_va, _) = k.alloc_data(pa, 1).expect("save area");
        assert!(save_area_bytes(cfg.context) <= 4096);

        // Client: an endless loop of wrapped calls (the host steps the
        // machine and decides when to stop; criterion may demand millions
        // of laps from one fixture).
        let mut a = Assembler::new(USER_CODE_VA);
        a.label("loop");
        if cfg.prefetch {
            a.li(reg::T6, -(entry.0 as i64));
            a.xcall(reg::T6);
        }
        let wrapper_start = a.here();
        // Emit the wrapper piecewise so inner PCs are exact.
        let regs = save_regs(cfg.context);
        a.li(reg::T5, save_va as i64);
        for (i, r) in regs.iter().enumerate() {
            a.sd(*r, reg::T5, (8 * i) as i64);
        }
        a.li(reg::T6, entry.0 as i64);
        let xcall_pc = a.here();
        a.xcall(reg::T6);
        let ret_pc = a.here();
        a.li(reg::T5, save_va as i64);
        for (i, r) in regs.iter().enumerate() {
            a.ld(*r, reg::T5, (8 * i) as i64);
        }
        let wrapper_end = a.here();
        a.j("loop");
        let client_va = k.load_code(pa, &a.assemble()).expect("client code");

        let mut bench = CallBench {
            k,
            entry,
            client,
            client_va,
            wrapper_start,
            xcall_pc,
            ret_pc,
            wrapper_end,
        };
        bench.start();
        bench
    }

    fn start(&mut self) {
        self.k
            .enter_thread(self.client, self.client_va, &[])
            .expect("enter client");
    }

    /// Step until the PC reaches `target`; panics on exit/trap (the bench
    /// scenario has none).
    fn step_to(&mut self, target: u64) {
        for _ in 0..1_000_000u64 {
            if self.k.machine.core.cpu.pc == target {
                return;
            }
            let r = self.k.machine.step().expect("no sim error in bench");
            assert!(r.is_none(), "unexpected exit during bench");
        }
        panic!("step_to({target:#x}) did not converge");
    }

    /// Cycles consumed by the single instruction at `pc` (the machine must
    /// be steered there first).
    fn measure_at(&mut self, pc: u64) -> u64 {
        self.step_to(pc);
        let before = self.k.machine.core.cycles;
        self.k.machine.step().expect("step ok");
        self.k.machine.core.cycles - before
    }

    /// Run `warmup` full iterations, then measure one call precisely.
    pub fn measure(&mut self, warmup: u32) -> CallMeasurement {
        for _ in 0..warmup {
            self.step_to(self.wrapper_end);
            // Move past wrapper_end so the next step_to sees a fresh lap.
            self.k.machine.step().expect("step ok");
        }
        self.step_to(self.wrapper_start);
        let lap_start = self.k.machine.core.cycles;
        let xcall = self.measure_at(self.xcall_pc);
        // We are now at the callee; its xret brings us back to ret_pc.
        // Step over the callee's nop (absorbs the post-switch fetch walk).
        self.k.machine.step().expect("step ok");
        let xret = {
            let before = self.k.machine.core.cycles;
            self.k.machine.step().expect("step ok");
            assert_eq!(self.k.machine.core.cpu.pc, self.ret_pc, "xret returned");
            self.k.machine.core.cycles - before
        };
        self.step_to(self.wrapper_end);
        CallMeasurement {
            roundtrip: self.k.machine.core.cycles - lap_start,
            xcall,
            xret,
        }
    }
}

/// [`IpcSystem`] adapter over the emulator harness: every `oneway` runs
/// one real measured wrapped call and attributes its cycles to ledger
/// phases — [`Phase::Trampoline`] (the save/restore wrapper around the
/// call), [`Phase::Xcall`] and [`Phase::Xret`]. The relay-seg makes the
/// cost size-independent, so `msg_len` only sets `copied_bytes` (zero —
/// nothing is copied).
pub struct EmulatedXpc {
    label: &'static str,
    bench: CallBench,
}

impl EmulatedXpc {
    /// Boot the scenario for one [`CallBenchConfig`] (e.g. a Figure 5
    /// ablation rung) and warm it.
    pub fn new(label: &'static str, cfg: &CallBenchConfig) -> Self {
        EmulatedXpc {
            label,
            bench: CallBench::new(cfg),
        }
    }
}

impl IpcSystem for EmulatedXpc {
    fn name(&self) -> String {
        format!("emulated/{}", self.label)
    }

    fn oneway(&mut self, _msg_len: usize, _opts: &InvokeOpts) -> Invocation {
        let m = self.bench.measure(2);
        let ledger = CycleLedger::new()
            .with(Phase::Trampoline, m.roundtrip - m.xcall - m.xret)
            .with(Phase::Xcall, m.xcall)
            .with(Phase::Xret, m.xret);
        Invocation::from_ledger(ledger, 0)
    }

    fn supports_handover(&self) -> bool {
        true
    }
}

/// Measure `swapseg` on a warm machine (Table 3's third row).
pub fn measure_swapseg(cfg: &CallBenchConfig) -> u64 {
    let mut k = XpcKernel::boot(XpcKernelConfig {
        machine: cfg.machine.clone(),
        engine: cfg.engine,
    });
    let pa = k.create_process().expect("process");
    let t = k.create_thread(pa).expect("thread");
    let seg_a = k.alloc_relay_seg(t, 4096).expect("seg a");
    let seg_b = k.alloc_relay_seg(t, 4096).expect("seg b");
    k.stash_seg(pa, 0, seg_b).expect("stash");
    k.install_seg(t, seg_a).expect("install");

    let mut a = Assembler::new(USER_CODE_VA);
    a.li(reg::S1, 100);
    a.li(reg::A0, 0);
    a.label("loop");
    let swap_off = a.here() - USER_CODE_VA;
    a.swapseg(reg::A0);
    a.addi(reg::S1, reg::S1, -1);
    a.bne(reg::S1, reg::ZERO, "loop");
    a.ebreak();
    let va = k.load_code(pa, &a.assemble()).expect("code");
    let swap_pc = va + swap_off;
    k.enter_thread(t, va, &[]).expect("enter");

    // Warm two iterations, then measure the third swapseg.
    let mut seen = 0;
    for _ in 0..100_000u64 {
        if k.machine.core.cpu.pc == swap_pc {
            seen += 1;
            if seen == 3 {
                break;
            }
        }
        let r = k.machine.step().expect("sim ok");
        assert!(r.is_none());
    }
    let before = k.machine.core.cycles;
    k.machine.step().expect("sim ok");
    k.machine.core.cycles - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_instruction_costs_on_default_config() {
        let mut b = CallBench::new(&CallBenchConfig::paper_default());
        let m = b.measure(3);
        assert_eq!(m.xcall, 18, "Table 3: xcall");
        assert_eq!(m.xret, 23, "Table 3: xret");
        let swap = measure_swapseg(&CallBenchConfig::paper_default());
        assert_eq!(swap, 11, "Table 3: swapseg");
    }

    #[test]
    fn fig5_ladder_is_monotonic() {
        let mut last = u64::MAX;
        for (name, cfg) in CallBenchConfig::fig5_ladder() {
            let mut b = CallBench::new(&cfg);
            let m = b.measure(3);
            assert!(
                m.roundtrip <= last,
                "{name} ({}) must not be slower than the previous bar ({last})",
                m.roundtrip
            );
            last = m.roundtrip;
        }
    }

    #[test]
    fn engine_cache_reduces_xcall_to_6() {
        let mut b = CallBench::new(&CallBenchConfig::engine_cache());
        let m = b.measure(3);
        assert_eq!(m.xcall, 6, "Figure 5: cached xcall = 6 cycles");
    }

    #[test]
    fn tagged_tlb_removes_walk_cycles() {
        let mut untagged = CallBench::new(&CallBenchConfig::partial_ctx());
        let mut tagged = CallBench::new(&CallBenchConfig::tagged_tlb());
        let u = untagged.measure(3).roundtrip;
        let t = tagged.measure(3).roundtrip;
        assert!(
            (20..=80).contains(&(u - t)),
            "TLB component ≈40 cycles, got {} ({} vs {})",
            u - t,
            u,
            t
        );
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn trace_one_lap() {
        let cfg = CallBenchConfig::paper_default();
        let mut b = CallBench::new(&cfg);
        for _ in 0..3 {
            b.step_to(b.wrapper_end);
            b.k.machine.step().unwrap();
        }
        b.step_to(b.wrapper_start);
        for _ in 0..60 {
            let pc = b.k.machine.core.cpu.pc;
            let before = b.k.machine.core.cycles;
            let dm0 = b.k.machine.core.dcache.misses;
            let im0 = b.k.machine.core.icache.misses;
            let tm0 = b.k.machine.core.mmu.tlb.misses;
            b.k.machine.step().unwrap();
            let d = b.k.machine.core.cycles - before;
            let dm = b.k.machine.core.dcache.misses - dm0;
            let im = b.k.machine.core.icache.misses - im0;
            let tm = b.k.machine.core.mmu.tlb.misses - tm0;
            let lm = b.k.machine.core.dcache.last_miss_pa;
            eprintln!(
                "pc={pc:#x} cost={d} dmiss={dm} imiss={im} tlbmiss={tm} lastmiss={lm:#x} set={}",
                (lm / 64) % 64
            );
            if pc == b.wrapper_end {
                break;
            }
        }
    }
}
