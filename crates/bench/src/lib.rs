//! Benchmark harness regenerating **every table and figure** of the XPC
//! (ISCA'19) evaluation.
//!
//! Two measurement paths, matching the paper's methodology:
//!
//! * micro-benchmarks (Tables 1/3/5, Figure 5/6 small sizes) run real
//!   guest code on the [`rv64`] emulator with the XPC engine installed —
//!   the [`harness`] module steps the machine instruction by instruction
//!   and reads the cycle counter around exactly the code under test;
//! * application workloads (Figures 1/7/8/9) run the real service stack
//!   (`services`, `minidb`, `ycsb`) against the calibrated kernel models
//!   (`kernels`) — the paper's own numbers for those figures come from
//!   full system runs whose IPC pattern these models replicate.
//!
//! `cargo run -p xpc-bench --bin figures -- all` prints every table and
//! figure; `EXPERIMENTS.md` records paper-vs-measured.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod sweep;

pub use harness::{CallBench, CallBenchConfig, EmulatedXpc};
