//! CI gate: run the static verifier over every figure recipe set, the
//! crafted misconfigurations, and the full roster's ledgers.
//!
//! ```text
//! cargo run -p xpc-bench --bin verify
//! ```
//!
//! Exits non-zero if any figure recipe or roster ledger yields a
//! finding, or if a crafted misconfiguration is *not* refuted with the
//! exact `Cause` the engine would trap with.

use xpc_bench::experiments::verify;

fn main() {
    let rows = verify::results();
    let mut bad = 0usize;
    for r in &rows {
        let status = if r.ok { "ok " } else { "FAIL" };
        println!(
            "{status} [{:9}] {:40} expected {:18} got {:18} ({} findings)",
            r.group, r.subject, r.expected, r.verdict, r.findings
        );
        if !r.ok {
            bad += 1;
        }
    }
    println!(
        "\n{} checks: {} ok, {bad} failed",
        rows.len(),
        rows.len() - bad
    );
    if bad > 0 {
        std::process::exit(1);
    }
}
