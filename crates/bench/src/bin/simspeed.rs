//! Simulator-throughput gate: time the three attribution hot paths over
//! a million requests each, plus the parallel-sweep grid, and enforce
//! the refactors' performance and memory contracts.
//!
//! ```text
//! cargo run --release -p xpc-bench --bin simspeed
//! ```
//!
//! Exits non-zero unless (a) both serial arenas hold steady state —
//! zero slab growth after warmup / pre-reservation — and (b)
//! sampled-mode throughput is at least 5x the recorded pre-refactor
//! full-attribution baseline, and (c) the parallel sweep reproduces the
//! serial oracle byte-for-byte with per-worker arenas steady. The ≥2x
//! parallel speedup floor is enforced only when the machine actually
//! has the gate's worker count in hardware threads — on a smaller box
//! the speedup is recorded but a shortfall is reported, not failed
//! (there is nothing to parallelize onto).

use xpc_bench::experiments::simspeed;

/// The acceptance floor: sampled mode vs the pre-refactor driver.
const MIN_SPEEDUP: f64 = 5.0;

/// The acceptance floor: parallel grid vs the serial oracle, applicable
/// when `hw_threads >= par_threads`.
const MIN_PAR_SPEEDUP: f64 = 2.0;

fn main() {
    let r = simspeed::measure(simspeed::REQUESTS);
    let p = simspeed::measure_par();
    println!(
        "simspeed over {} requests (sampling 1-in-{}):",
        r.requests, r.sampled_every
    );
    println!(
        "  pre-refactor full attribution: {:>12.0} req/s",
        r.pre_refactor_full_rps
    );
    println!(
        "  arena full attribution:        {:>12.0} req/s",
        r.full_rps
    );
    println!(
        "  sampled attribution:           {:>12.0} req/s",
        r.sampled_rps
    );
    println!("  sampled / pre-refactor:        {:>12.2}x", r.speedup);
    println!(
        "parallel sweep, {} cells x {} requests ({} hw threads):",
        p.cells, p.requests_per_cell, p.hw_threads
    );
    println!(
        "  serial grid (1 worker):        {:>12.0} req/s",
        p.serial_grid_rps
    );
    println!(
        "  parallel grid ({} workers):     {:>12.0} req/s",
        p.threads, p.par_grid_rps
    );
    println!("  parallel / serial:             {:>12.2}x", p.par_speedup);
    println!("{}", simspeed::json_section(&r, &p));

    let mut failed = false;
    if !r.full_arena_steady {
        eprintln!("FAIL: full-mode arena slabs grew after warmup (not steady state)");
        failed = true;
    }
    if !r.sampled_arena_steady {
        eprintln!("FAIL: sampled-mode arena outgrew its pre-reservation");
        failed = true;
    }
    if r.speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: sampled throughput is {:.2}x the pre-refactor baseline (need >= {MIN_SPEEDUP}x)",
            r.speedup
        );
        failed = true;
    }
    if !p.identical {
        eprintln!("FAIL: parallel grid reports differ from the serial oracle");
        failed = true;
    }
    if !p.par_arena_steady {
        eprintln!("FAIL: a pool worker's arena kept growing past its first cell");
        failed = true;
    }
    if p.par_speedup < MIN_PAR_SPEEDUP {
        if p.hw_threads >= p.threads {
            eprintln!(
                "FAIL: parallel grid is {:.2}x serial at {} workers (need >= {MIN_PAR_SPEEDUP}x)",
                p.par_speedup, p.threads
            );
            failed = true;
        } else {
            eprintln!(
                "note: parallel speedup {:.2}x below {MIN_PAR_SPEEDUP}x floor, but only {} hw \
                 thread(s) for {} workers — floor not enforced",
                p.par_speedup, p.hw_threads, p.threads
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: arenas steady, sampled >= {MIN_SPEEDUP}x pre-refactor, parallel grid byte-identical"
    );
}
