//! Simulator-throughput gate: time the three attribution hot paths over
//! a million requests each and enforce the refactor's performance and
//! memory contracts.
//!
//! ```text
//! cargo run --release -p xpc-bench --bin simspeed
//! ```
//!
//! Exits non-zero unless (a) both arenas hold steady state — zero slab
//! growth after warmup / pre-reservation — and (b) sampled-mode
//! throughput is at least 5x the recorded pre-refactor full-attribution
//! baseline, both measured in this run.

use xpc_bench::experiments::simspeed;

/// The acceptance floor: sampled mode vs the pre-refactor driver.
const MIN_SPEEDUP: f64 = 5.0;

fn main() {
    let r = simspeed::measure(simspeed::REQUESTS);
    println!(
        "simspeed over {} requests (sampling 1-in-{}):",
        r.requests, r.sampled_every
    );
    println!(
        "  pre-refactor full attribution: {:>12.0} req/s",
        r.pre_refactor_full_rps
    );
    println!(
        "  arena full attribution:        {:>12.0} req/s",
        r.full_rps
    );
    println!(
        "  sampled attribution:           {:>12.0} req/s",
        r.sampled_rps
    );
    println!("  sampled / pre-refactor:        {:>12.2}x", r.speedup);
    println!("{}", simspeed::json_section(&r));

    let mut failed = false;
    if !r.full_arena_steady {
        eprintln!("FAIL: full-mode arena slabs grew after warmup (not steady state)");
        failed = true;
    }
    if !r.sampled_arena_steady {
        eprintln!("FAIL: sampled-mode arena outgrew its pre-reservation");
        failed = true;
    }
    if r.speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: sampled throughput is {:.2}x the pre-refactor baseline (need >= {MIN_SPEEDUP}x)",
            r.speedup
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: arenas steady, sampled >= {MIN_SPEEDUP}x pre-refactor");
}
