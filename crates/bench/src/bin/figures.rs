//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p xpc-bench --bin figures -- all
//! cargo run -p xpc-bench --bin figures -- table3 fig6
//! cargo run -p xpc-bench --bin figures -- --json
//! ```
//!
//! `--json` additionally sweeps the full kernel-model roster and dumps
//! per-system, per-size, per-phase cycle attributions (plus the Figure 5
//! ablation ledgers) to `BENCH_figures.json`.

use xpc_bench::experiments;
use xpc_bench::sweep;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");

    let registry = experiments::all();
    let keys: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        registry.iter().map(|(k, _)| *k).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for key in keys {
        match registry.iter().find(|(k, _)| *k == key) {
            Some((_, run)) => {
                println!("{}", run().render());
            }
            None => {
                eprintln!(
                    "unknown experiment '{key}'; available: {}",
                    registry
                        .iter()
                        .map(|(k, _)| *k)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(1);
            }
        }
    }

    if json {
        let rows = sweep::roster_sweep();
        let fig5: Vec<(String, kernels::Invocation)> = experiments::fig5::invocations()
            .into_iter()
            .map(|(name, inv)| (name.to_string(), inv))
            .collect();
        let scale = experiments::scale::json_section();
        let pipeline = experiments::pipeline::json_section();
        let ablations = experiments::ablations::json_section();
        let numa = experiments::numa::json_section();
        let verify = experiments::verify::json_section();
        let serve = experiments::serve::json_section();
        // Wall-clock simulator throughput; lives only in the JSON dump
        // (never in golden.txt — the numbers are real-time, not modeled).
        let simspeed = experiments::simspeed::json_section(&experiments::simspeed::measure(
            experiments::simspeed::REQUESTS,
        ));
        let doc = sweep::json_dump(
            &rows,
            &[("fig5", fig5)],
            &[
                ("scale", scale),
                ("pipeline", pipeline),
                ("ablations", ablations),
                ("numa", numa),
                ("verify", verify),
                ("serve", serve),
                ("simspeed", simspeed),
            ],
        );
        let path = "BENCH_figures.json";
        std::fs::write(path, &doc).expect("write BENCH_figures.json");
        eprintln!(
            "wrote {path}: {} systems x {} sizes, phase-attributed",
            rows.len(),
            sweep::SIZES.len()
        );
    }
}
