//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p xpc-bench --bin figures -- all
//! cargo run -p xpc-bench --bin figures -- table3 fig6
//! cargo run -p xpc-bench --bin figures -- --json
//! cargo run -p xpc-bench --bin figures -- --threads 4 --json --no-simspeed all
//! ```
//!
//! `--json` additionally sweeps the full kernel-model roster and dumps
//! per-system, per-size, per-phase cycle attributions (plus the Figure 5
//! ablation ledgers) to `BENCH_figures.json`. `--no-simspeed` drops the
//! wall-clock `simspeed` section so that dump is byte-reproducible.
//! `--threads N` pins the sweep pool's worker count (overriding
//! `XPC_BENCH_THREADS` and the machine's parallelism); the rendered
//! output is byte-identical at any setting.

use xpc_bench::experiments;
use xpc_bench::sweep;

fn fail(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2);
}

fn parse_threads(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => fail(&format!("--threads wants a positive integer, got '{v}'")),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let no_simspeed = args.iter().any(|a| a == "--no-simspeed");
    args.retain(|a| a != "--no-simspeed");

    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--threads=") {
            simos::par::set_threads(Some(parse_threads(v)));
            args.remove(i);
        } else if args[i] == "--threads" {
            match args.get(i + 1) {
                Some(v) => simos::par::set_threads(Some(parse_threads(v))),
                None => fail("--threads wants a value"),
            }
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }

    let registry = experiments::all();
    let keys: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        registry.iter().map(|(k, _)| *k).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for key in keys {
        match registry.iter().find(|(k, _)| *k == key) {
            Some((_, run)) => {
                println!("{}", run().render());
            }
            None => {
                let hint = experiments::suggest(key)
                    .map(|s| format!(" (did you mean '{s}'?)"))
                    .unwrap_or_default();
                eprintln!(
                    "unknown experiment '{key}'{hint}; available: {}",
                    registry
                        .iter()
                        .map(|(k, _)| *k)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(1);
            }
        }
    }

    if json {
        let rows = sweep::roster_sweep();
        let fig5: Vec<(String, kernels::Invocation)> = experiments::fig5::invocations()
            .into_iter()
            .map(|(name, inv)| (name.to_string(), inv))
            .collect();
        let mut raw = vec![
            ("scale", experiments::scale::json_section()),
            ("pipeline", experiments::pipeline::json_section()),
            ("ablations", experiments::ablations::json_section()),
            ("numa", experiments::numa::json_section()),
            ("verify", experiments::verify::json_section()),
            ("serve", experiments::serve::json_section()),
            ("fuse", experiments::fuse::json_section()),
            ("harden", experiments::harden::json_section()),
        ];
        if !no_simspeed {
            // Wall-clock simulator throughput; lives only in the JSON
            // dump (never in golden.txt — the numbers are real-time,
            // not modeled) and is suppressed by --no-simspeed when the
            // dump itself must be byte-reproducible.
            let serial = experiments::simspeed::measure(experiments::simspeed::REQUESTS);
            let par = experiments::simspeed::measure_par();
            raw.push((
                "simspeed",
                experiments::simspeed::json_section(&serial, &par),
            ));
        }
        let doc = sweep::json_dump(&rows, &[("fig5", fig5)], &raw);
        let path = "BENCH_figures.json";
        if let Err(e) = std::fs::write(path, &doc) {
            fail(&format!("failed to write {path}: {e}"));
        }
        eprintln!(
            "wrote {path}: {} systems x {} sizes, phase-attributed{}",
            rows.len(),
            sweep::SIZES.len(),
            if no_simspeed {
                ", simspeed skipped"
            } else {
                ""
            }
        );
    }
}
