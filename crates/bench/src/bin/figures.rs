//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p xpc-bench --bin figures -- all
//! cargo run -p xpc-bench --bin figures -- table3 fig6
//! ```

use xpc_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::all();
    let keys: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        registry.iter().map(|(k, _)| *k).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for key in keys {
        match registry.iter().find(|(k, _)| *k == key) {
            Some((_, run)) => {
                println!("{}", run().render());
            }
            None => {
                eprintln!(
                    "unknown experiment '{key}'; available: {}",
                    registry
                        .iter()
                        .map(|(k, _)| *k)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(1);
            }
        }
    }
}
