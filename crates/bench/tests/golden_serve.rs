//! Snapshot test: the committed `figures/golden_serve.json` must match
//! the `"serve"` JSON section produced in-process today. The section is
//! fully deterministic (virtual time only — unlike `simspeed`, whose
//! wall-clock numbers stay out of any snapshot), so any drift is a real
//! model change, not noise.
//!
//! To refresh after an intentional change, write the output of
//! `experiments::serve::json_section()` back to the file (see ci.sh's
//! serve gate, or regenerate `BENCH_figures.json` and copy the section).

use xpc_bench::experiments;

#[test]
fn serve_section_matches_the_committed_golden() {
    let golden = include_str!("../../../figures/golden_serve.json");
    let fresh = experiments::serve::json_section();
    if golden != fresh {
        for (i, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
            assert_eq!(g, f, "figures/golden_serve.json diverges at line {}", i + 1);
        }
        assert_eq!(
            golden.lines().count(),
            fresh.lines().count(),
            "figures/golden_serve.json has a different number of lines"
        );
        panic!("serve golden mismatch not attributable to a single line");
    }
}

#[test]
fn serve_section_conserves_arrivals_in_the_committed_snapshot() {
    // Belt and braces on the committed artifact itself: every knee cell
    // in the snapshot must satisfy admitted + shed == offered.
    let golden = include_str!("../../../figures/golden_serve.json");
    let mut cells = 0;
    for line in golden.lines() {
        let grab = |key: &str| -> Option<u64> {
            let at = line.find(key)?;
            let rest = &line[at + key.len()..];
            let digits: String = rest
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        };
        if let (Some(offered), Some(admitted), Some(shed)) = (
            grab("\"offered\":"),
            grab("\"admitted\":"),
            grab("\"shed\":"),
        ) {
            assert_eq!(admitted + shed, offered, "snapshot line: {line}");
            cells += 1;
        }
    }
    assert!(
        cells >= 48,
        "expected a full knee grid, found {cells} cells"
    );
}
