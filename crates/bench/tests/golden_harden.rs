//! Snapshot test: the committed `figures/golden_harden.json` must match
//! the `"harden"` JSON section produced in-process today. The section
//! is analytic (hardened one-way invocations priced by the cost model —
//! no wall clock anywhere), so any drift is a real pricing change, not
//! noise.
//!
//! To refresh after an intentional change, write the output of
//! `experiments::harden::json_section()` back to the file (see ci.sh's
//! harden gate, or regenerate `BENCH_figures.json` and copy the
//! section).

use xpc_bench::experiments;

#[test]
fn harden_section_matches_the_committed_golden() {
    let golden = include_str!("../../../figures/golden_harden.json");
    let fresh = experiments::harden::json_section();
    if golden != fresh {
        for (i, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
            assert_eq!(
                g,
                f,
                "figures/golden_harden.json diverges at line {}",
                i + 1
            );
        }
        assert_eq!(
            golden.lines().count(),
            fresh.lines().count(),
            "figures/golden_harden.json has a different number of lines"
        );
        panic!("harden golden mismatch not attributable to a single line");
    }
}

#[test]
fn harden_snapshot_none_rows_pay_zero_tax() {
    // Belt and braces on the committed artifact itself: the unhardened
    // rows must price exactly like the pre-hardening model (tax 0), and
    // every mitigation set must appear for every mechanism.
    let golden = include_str!("../../../figures/golden_harden.json");
    let mut none_rows = 0;
    for line in golden.lines() {
        if line.contains("\"set\": \"none\"") {
            assert!(
                line.contains("\"tax_cycles\": 0") && line.contains("\"scrub_cycles\": 0"),
                "unhardened row pays a tax: {line}"
            );
            none_rows += 1;
        }
    }
    assert_eq!(none_rows, 4 * 5, "4 mechanisms x 5 sizes of none rows");
    for set in ["epochs", "scrub", "flow", "all"] {
        for sys in ["Zircon", "Zircon-XPC", "seL4-onecopy", "seL4-XPC"] {
            assert!(
                golden
                    .lines()
                    .any(|l| l.contains(&format!("\"system\": \"{sys}\""))
                        && l.contains(&format!("\"set\": \"{set}\""))),
                "snapshot is missing {sys} x {set}"
            );
        }
    }
}
