//! Differential tests for the sweep pool: every pool-driven experiment
//! must render — table and JSON section alike — byte-identically for
//! worker counts 1, 2, and 8. The single-worker run takes the plain
//! serial code path (`simos::par::map_cells_on` loops in-order on the
//! calling thread), so it is the oracle the parallel runs are diffed
//! against, the same pinning pattern as the load driver's linear-scan
//! oracle tests.
//!
//! `with_threads` pins the worker count via a *thread-local* override,
//! so these tests cannot race each other under the parallel test
//! harness.

use simos::par::with_threads;
use xpc_bench::{experiments, sweep};

/// The parallel worker counts diffed against the 1-worker oracle: one
/// below the typical cell count and one above several grids' axes (8
/// exceeds e.g. the admission sweep's 3 cells, exercising the
/// workers-capped-to-cells path).
const WORKER_COUNTS: [usize; 2] = [2, 8];

fn assert_worker_count_invariant(label: &str, produce: impl Fn() -> String) {
    let oracle = with_threads(1, &produce);
    assert!(!oracle.is_empty(), "{label}: empty oracle output");
    for workers in WORKER_COUNTS {
        let got = with_threads(workers, &produce);
        assert_eq!(got, oracle, "{label} diverges at {workers} workers");
    }
}

#[test]
fn scale_grid_is_worker_count_invariant() {
    assert_worker_count_invariant("scale", || {
        format!(
            "{}\n{}",
            experiments::scale::run().render(),
            experiments::scale::json_section()
        )
    });
}

#[test]
fn pipeline_grid_is_worker_count_invariant() {
    assert_worker_count_invariant("pipeline", || {
        format!(
            "{}\n{}",
            experiments::pipeline::run().render(),
            experiments::pipeline::json_section()
        )
    });
}

#[test]
fn numa_grid_is_worker_count_invariant() {
    // json_section covers both the hop cells and the load grid; render
    // covers the table path.
    assert_worker_count_invariant("numa", || {
        format!(
            "{}\n{}",
            experiments::numa::run().render(),
            experiments::numa::json_section()
        )
    });
}

#[test]
fn serve_grids_are_worker_count_invariant() {
    // json_section runs all four serve views (knee, admission, bursty,
    // autoscale) including their calibration phases; render re-runs the
    // knee + admission views through the table path.
    assert_worker_count_invariant("serve json", experiments::serve::json_section);
    assert_worker_count_invariant("serve render", || experiments::serve::run().render());
}

#[test]
fn verify_rows_are_worker_count_invariant() {
    assert_worker_count_invariant("verify", || {
        format!(
            "{}\n{}",
            experiments::verify::run().render(),
            experiments::verify::json_section()
        )
    });
}

#[test]
fn roster_sweep_is_worker_count_invariant() {
    assert_worker_count_invariant("roster sweep", || {
        sweep::json_dump(&sweep::roster_sweep(), &[], &[])
    });
}
