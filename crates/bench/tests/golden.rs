//! Snapshot test: the committed `figures/golden.txt` must match what the
//! `figures` renderer produces in-process today, so any figure regression
//! fails `cargo test` instead of silently rotting the checked-in output.
//!
//! To refresh after an intentional model change:
//!
//! ```text
//! cargo run --release -p xpc-bench --bin figures -- all > figures/golden.txt
//! ```

use xpc_bench::experiments;

fn render_all() -> String {
    experiments::all()
        .into_iter()
        .map(|(_, run)| format!("{}\n", run().render()))
        .collect()
}

#[test]
fn figures_match_the_committed_golden() {
    let golden = include_str!("../../../figures/golden.txt");
    let fresh = render_all();
    if golden != fresh {
        // Report the first diverging line, not a 300-line dump.
        for (i, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
            assert_eq!(g, f, "figures/golden.txt diverges at line {}", i + 1);
        }
        assert_eq!(
            golden.lines().count(),
            fresh.lines().count(),
            "figures/golden.txt has a different number of lines"
        );
        panic!("golden mismatch not attributable to a single line");
    }
}
