//! The scale-out experiment end to end: determinism of the seeded load
//! generator, the §5.2 scale-out story in the numbers, and the JSON
//! section's shape.

use xpc_bench::experiments::scale;

#[test]
fn same_seed_reproduces_the_whole_grid() {
    // Everything — virtual clocks, placement, percentiles — is seeded
    // and deterministic, so two full grid runs are bit-identical.
    assert_eq!(scale::results(), scale::results());
}

#[test]
fn xpc_round_robin_beats_its_same_core_placement() {
    let rows = scale::results();
    let cell = |sys: &str, pol: &str| {
        rows.iter()
            .find(|r| r.system == sys && r.policy == pol)
            .unwrap_or_else(|| panic!("missing cell {sys}/{pol}"))
            .throughput_rps
    };
    assert!(cell("seL4-XPC", "round-robin") > cell("seL4-XPC", "same-core"));
    assert!(cell("Zircon-XPC", "round-robin") > cell("Zircon-XPC", "same-core"));
}

#[test]
fn json_section_has_the_grid_and_the_metrics() {
    let s = scale::json_section();
    assert!(s.trim_start().starts_with('['));
    assert!(s.trim_end().ends_with(']'));
    assert_eq!(
        s.matches("\"system\"").count(),
        16,
        "4 mechanisms x 4 policies"
    );
    for key in [
        "\"policy\"",
        "\"cores\": 4",
        "\"throughput_rps\"",
        "\"p50_us\"",
        "\"p95_us\"",
        "\"p99_us\"",
        "\"cross_core_fraction\"",
    ] {
        assert!(s.contains(key), "missing {key} in {s}");
    }
    for policy in ["same-core", "pinned", "round-robin", "least-loaded"] {
        assert!(s.contains(policy), "missing policy {policy}");
    }
    assert_eq!(s.matches('{').count(), s.matches('}').count());
}
