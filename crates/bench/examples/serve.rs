//! Quickstart for the open-loop serving layer: generate a seeded
//! Poisson trace, replay it against one mechanism at three offered
//! loads, and watch the tail walk off past the knee.
//!
//! ```text
//! cargo run -p xpc-bench --example serve
//! ```

use kernels::XpcIpc;
use services::http::{chain_steps, ChainSpec, CHAIN_SERVICES};
use simos::{
    ArrivalProcess, MultiWorld, OpenLoopGen, Placement, ServePolicy, ServeSpec, TenantClass,
    Topology,
};

fn main() {
    let mk = || Box::new(XpcIpc::sel4_xpc()) as Box<dyn simos::IpcSystem>;
    let recipes: Vec<_> = [1024u64, 4096, 16384]
        .iter()
        .map(|&len| chain_steps("/index.html", len, ChainSpec::default().with_handover(true)))
        .collect();

    // Measure this (mechanism, topology, recipe mix)'s saturation
    // period, then express offered load as a fraction of it.
    let topo = Topology::u500();
    let period = xpc_bench::experiments::serve::calibrate_capacity_period(&topo, mk, &recipes);
    println!("calibrated capacity: one request per {period} cycles at saturation\n");

    let spec = ServeSpec {
        tenants: 2,
        classes: vec![TenantClass {
            queue_cap: 1 << 20,
            slo_p99_us: 500.0,
        }],
        backlog_cap_cycles: 0,
    };
    println!("rho    offered/s   goodput/s   p50 us      p99 us      queue%");
    for rho_x10 in [5u64, 10, 15] {
        let gen = OpenLoopGen {
            process: ArrivalProcess::Poisson,
            mean_interarrival_cycles: (period * 10 / rho_x10).max(1),
            tenants: 2,
            users: 1_000_000,
            seed: 7,
        };
        let trace = gen.trace(4_000, 3).expect("valid trace spec");
        let mut mw = MultiWorld::builder().topology(topo.clone()).build(mk);
        let r = simos::serve::serve(
            &mut mw,
            &ServePolicy::Static(Placement::RoundRobin),
            CHAIN_SERVICES,
            &recipes,
            &trace,
            &spec,
        )
        .expect("serve");
        println!(
            "{}.{}    {:<11.0} {:<11.0} {:<11.1} {:<11.1} {:.0}%",
            rho_x10 / 10,
            rho_x10 % 10,
            r.offered_rps,
            r.goodput_rps,
            r.p50_us,
            r.p99_us,
            r.queue_fraction() * 100.0,
        );
    }
    println!("\nThe p50 barely moves until rho reaches 1.0; past it the queues never");
    println!("drain and both percentiles grow without bound — the knee a closed-loop");
    println!("generator (which self-throttles at capacity) can never produce.");
}
