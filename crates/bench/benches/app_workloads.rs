//! Criterion benches for Figures 1/7/8/9: the application workloads on
//! the service stack, per IPC system.
//!
//! Gated behind the off-by-default `criterion` feature: enabling it
//! requires adding the external `criterion` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).

#[cfg(feature = "criterion")]
mod bench {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use kernels::{binder_latency_us, BinderSystem, IpcSystem, Sel4, Sel4Transfer, XpcIpc, Zircon};
    use minidb::run_workload;
    use services::net::tcp_throughput_mb_s;
    use simos::World;
    use std::hint::black_box;
    use xpc_bench::experiments::fig7::fs_throughput;
    use ycsb::{Workload, WorkloadSpec};

    fn mech(name: &str) -> Box<dyn IpcSystem> {
        match name {
            "zircon" => Box::new(Zircon::new()),
            "sel4" => Box::new(Sel4::new(Sel4Transfer::TwoCopy)),
            "xpc" => Box::new(XpcIpc::sel4_xpc()),
            _ => unreachable!(),
        }
    }

    fn bench_ycsb(c: &mut Criterion) {
        let mut g = c.benchmark_group("fig8_ycsb");
        g.sample_size(10);
        for sys in ["zircon", "sel4", "xpc"] {
            g.bench_with_input(BenchmarkId::new("ycsb_a", sys), &sys, |b, s| {
                b.iter(|| {
                    let mut w = World::new(mech(s));
                    let spec = WorkloadSpec {
                        ops: 100,
                        ..WorkloadSpec::paper(Workload::A)
                    };
                    black_box(run_workload(&mut w, &spec).ops_per_sec)
                })
            });
        }
        g.finish();
    }

    fn bench_fs(c: &mut Criterion) {
        let mut g = c.benchmark_group("fig7_fs");
        g.sample_size(10);
        for sys in ["zircon", "xpc"] {
            for write in [false, true] {
                let id = format!("{}_{}", sys, if write { "write" } else { "read" });
                g.bench_function(BenchmarkId::new("fs_16k", id), |b| {
                    b.iter(|| black_box(fs_throughput(mech(sys), 16384, write)))
                });
            }
        }
        g.finish();
    }

    fn bench_tcp(c: &mut Criterion) {
        let mut g = c.benchmark_group("fig7c_tcp");
        g.sample_size(10);
        for sys in ["zircon", "xpc"] {
            g.bench_with_input(BenchmarkId::new("tcp_1mb", sys), &sys, |b, s| {
                b.iter(|| {
                    let mut w = World::new(mech(s));
                    black_box(tcp_throughput_mb_s(&mut w, 1024, 1 << 20))
                })
            });
        }
        g.finish();
    }

    fn bench_binder(c: &mut Criterion) {
        c.bench_function("fig9_binder_latency_model", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for size in [2048u64, 16384, 1 << 20, 32 << 20] {
                    acc += binder_latency_us(black_box(BinderSystem::Binder), true, size);
                    acc += binder_latency_us(black_box(BinderSystem::BinderXpc), true, size);
                }
                black_box(acc)
            })
        });
    }

    criterion_group!(benches, bench_ycsb, bench_fs, bench_tcp, bench_binder);
}

#[cfg(feature = "criterion")]
fn main() {
    bench::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench disabled: rebuild with --features criterion (needs the criterion crate)");
}
