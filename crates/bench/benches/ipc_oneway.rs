//! Criterion benches for Figure 6 / Table 1: one-way IPC cost-model
//! evaluation across mechanisms and message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use simos::IpcMechanism;
use std::hint::black_box;

fn bench_oneway(c: &mut Criterion) {
    let systems: Vec<(&str, Box<dyn IpcMechanism>)> = vec![
        ("sel4-onecopy", Box::new(Sel4::new(Sel4Transfer::OneCopy))),
        ("sel4-twocopy", Box::new(Sel4::new(Sel4Transfer::TwoCopy))),
        ("zircon", Box::new(Zircon::new())),
        ("sel4-xpc", Box::new(XpcIpc::sel4_xpc())),
    ];
    let mut g = c.benchmark_group("fig6_oneway_model");
    for (name, mech) in &systems {
        g.bench_with_input(BenchmarkId::new(*name, "sweep"), mech, |b, m| {
            b.iter(|| {
                let mut acc = 0u64;
                for size in [0u64, 64, 1024, 4096, 32768] {
                    acc += m.oneway(black_box(size)).cycles;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_table1_phases(c: &mut Criterion) {
    c.bench_function("table1_phase_breakdown", |b| {
        let s = Sel4::new(Sel4Transfer::OneCopy);
        b.iter(|| {
            black_box(s.table1_phases(black_box(4096)));
        })
    });
}

criterion_group!(benches, bench_oneway, bench_table1_phases);
criterion_main!(benches);
