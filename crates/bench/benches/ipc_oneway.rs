//! Criterion benches for Figure 6 / Table 1: one-way IPC cost-model
//! evaluation across systems and message sizes.
//!
//! Gated behind the off-by-default `criterion` feature: enabling it
//! requires adding the external `criterion` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).

#[cfg(feature = "criterion")]
mod bench {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use kernels::{InvokeOpts, IpcSystem, Sel4, Sel4Transfer, XpcIpc, Zircon};
    use std::hint::black_box;

    fn bench_oneway(c: &mut Criterion) {
        let mut systems: Vec<(&str, Box<dyn IpcSystem>)> = vec![
            ("sel4-onecopy", Box::new(Sel4::new(Sel4Transfer::OneCopy))),
            ("sel4-twocopy", Box::new(Sel4::new(Sel4Transfer::TwoCopy))),
            ("zircon", Box::new(Zircon::new())),
            ("sel4-xpc", Box::new(XpcIpc::sel4_xpc())),
        ];
        let mut g = c.benchmark_group("fig6_oneway_model");
        for (name, sys) in &mut systems {
            g.bench_function(BenchmarkId::new(*name, "sweep"), |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for size in [0usize, 64, 1024, 4096, 32768] {
                        acc += sys.oneway(black_box(size), &InvokeOpts::call()).total;
                    }
                    black_box(acc)
                })
            });
        }
        g.finish();
    }

    fn bench_table1_phases(c: &mut Criterion) {
        c.bench_function("table1_phase_breakdown", |b| {
            let mut s = Sel4::new(Sel4Transfer::OneCopy);
            b.iter(|| {
                let inv = s.oneway(black_box(4096), &InvokeOpts::call());
                black_box(inv.ledger.spans().len());
            })
        });
    }

    criterion_group!(benches, bench_oneway, bench_table1_phases);
}

#[cfg(feature = "criterion")]
fn main() {
    bench::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench disabled: rebuild with --features criterion (needs the criterion crate)");
}
