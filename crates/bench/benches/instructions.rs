//! Criterion benches for Table 3 / Figure 5: emulated XPC instruction
//! costs (the benchmark re-runs the whole emulator measurement, so this
//! also times the simulator's own hot path).
//!
//! Gated behind the off-by-default `criterion` feature: enabling it
//! requires adding the external `criterion` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).

#[cfg(feature = "criterion")]
mod bench {
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;
    use xpc_bench::{CallBench, CallBenchConfig};

    fn bench_table3(c: &mut Criterion) {
        let mut g = c.benchmark_group("table3_instructions");
        g.sample_size(20);
        g.bench_function("measure_xcall_xret", |b| {
            b.iter(|| {
                let mut cb = CallBench::new(&CallBenchConfig::paper_default());
                let m = cb.measure(2);
                assert_eq!((m.xcall, m.xret), (18, 23));
                black_box(m)
            })
        });
        g.finish();
    }

    fn bench_fig5_configs(c: &mut Criterion) {
        let mut g = c.benchmark_group("fig5_breakdown");
        g.sample_size(10);
        for (name, cfg) in CallBenchConfig::fig5_ladder() {
            g.bench_function(name, |b| {
                b.iter(|| {
                    let mut cb = CallBench::new(&cfg);
                    black_box(cb.measure(2).roundtrip)
                })
            });
        }
        g.finish();
    }

    fn bench_emulated_ipc_rate(c: &mut Criterion) {
        // How many emulated cross-process calls per second of host time the
        // simulator sustains (steady-state, one long-lived machine).
        let mut g = c.benchmark_group("emulator");
        g.sample_size(20);
        g.bench_function("one_emulated_ipc_roundtrip", |b| {
            let mut cb = CallBench::new(&CallBenchConfig::paper_default());
            b.iter(|| black_box(cb.measure(0).roundtrip))
        });
        g.finish();
    }

    criterion_group!(
        benches,
        bench_table3,
        bench_fig5_configs,
        bench_emulated_ipc_rate
    );
}

#[cfg(feature = "criterion")]
fn main() {
    bench::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench disabled: rebuild with --features criterion (needs the criterion crate)");
}
