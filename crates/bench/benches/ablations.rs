//! Ablation benches for the design choices DESIGN.md calls out:
//! transport mechanisms (Figure 10 / Table 7), xcall-cap representation
//! (§6.2), and the caller context convention.
//!
//! Gated behind the off-by-default `criterion` feature: enabling it
//! requires adding the external `criterion` crate back to this package's
//! dev-dependencies (kept out of the graph by the offline build policy).

#[cfg(feature = "criterion")]
mod bench {
    use criterion::{criterion_group, BenchmarkId, Criterion};
    use simos::cost::CostModel;
    use simos::transport::Transport;
    use std::hint::black_box;
    use xpc_engine::cap::{BitmapCaps, CapStore, RadixCaps};

    fn bench_transports(c: &mut Criterion) {
        // Cycle cost of moving 1 MiB across a 4-hop chain under each of the
        // Figure 10 mechanisms: regenerates the Table 7 "copy time" column.
        let cost = CostModel::u500();
        let mut g = c.benchmark_group("transport_ablation");
        for t in Transport::ALL {
            g.bench_with_input(BenchmarkId::new("1mb_4hops", t.name()), &t, |b, t| {
                b.iter(|| black_box(t.transfer_cycles(&cost, 1 << 20, 4)))
            });
        }
        g.finish();
    }

    fn bench_cap_scalability(c: &mut Criterion) {
        // §6.2: bitmap vs radix-tree probe cost and footprint.
        let mut g = c.benchmark_group("cap_scalability");
        let mut bitmap = BitmapCaps::new(1 << 20);
        let mut radix = RadixCaps::new();
        for id in (0..1u64 << 20).step_by(1013) {
            bitmap.grant(id);
            radix.grant(id);
        }
        g.bench_function("bitmap_probe", |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for id in (0..1u64 << 20).step_by(4099) {
                    hits += bitmap.probe(black_box(id)).allowed as u64;
                }
                black_box(hits)
            })
        });
        g.bench_function("radix_probe", |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for id in (0..1u64 << 20).step_by(4099) {
                    hits += radix.probe(black_box(id)).allowed as u64;
                }
                black_box(hits)
            })
        });
        g.finish();
    }

    criterion_group!(benches, bench_transports, bench_cap_scalability);
}

#[cfg(feature = "criterion")]
fn main() {
    bench::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("bench disabled: rebuild with --features criterion (needs the criterion crate)");
}
