//! Cross-system YCSB sanity: the Figure 8(a)/(b) shape must hold — XPC
//! beats the baselines, most on write-heavy mixes, least on YCSB-C.

use kernels::{Sel4, Sel4Transfer, XpcIpc, Zircon};
use minidb::run_workload;
use simos::World;
use ycsb::{Workload, WorkloadSpec};

fn ops_per_sec(mech: Box<dyn simos::IpcSystem>, wl: Workload) -> f64 {
    let mut world = World::new(mech);
    let spec = WorkloadSpec {
        ops: 300,
        ..WorkloadSpec::paper(wl)
    };
    run_workload(&mut world, &spec).ops_per_sec
}

#[test]
fn xpc_beats_zircon_on_every_workload() {
    for wl in Workload::ALL {
        let z = ops_per_sec(Box::new(Zircon::new()), wl);
        let x = ops_per_sec(Box::new(XpcIpc::zircon_xpc()), wl);
        assert!(
            x > z,
            "{}: Zircon-XPC ({x:.0}) must beat Zircon ({z:.0})",
            wl.name()
        );
    }
}

#[test]
fn xpc_beats_sel4_twocopy_on_write_heavy_mixes() {
    for wl in [Workload::A, Workload::F] {
        let s = ops_per_sec(Box::new(Sel4::new(Sel4Transfer::TwoCopy)), wl);
        let x = ops_per_sec(Box::new(XpcIpc::sel4_xpc()), wl);
        assert!(
            x > 1.2 * s,
            "{}: seL4-XPC ({x:.0}) must clearly beat seL4 ({s:.0})",
            wl.name()
        );
    }
}

#[test]
fn ycsb_c_gains_least() {
    // §5.4: "YCSB-C has minimal improvement since it is a read-only
    // workload and Sqlite3 has an in-memory cache".
    let gain = |wl| {
        let s = ops_per_sec(Box::new(Sel4::new(Sel4Transfer::TwoCopy)), wl);
        let x = ops_per_sec(Box::new(XpcIpc::sel4_xpc()), wl);
        x / s
    };
    let ga = gain(Workload::A);
    let gc = gain(Workload::C);
    let gf = gain(Workload::F);
    assert!(gc < ga, "C ({gc:.2}x) gains less than A ({ga:.2}x)");
    assert!(gc < gf, "C ({gc:.2}x) gains less than F ({gf:.2}x)");
}

#[test]
fn ipc_fraction_is_significant_on_sel4() {
    // Figure 1(a): 18–39% of CPU time in IPC across the YCSB mixes on
    // stock seL4. In our model the read-only YCSB-C is almost fully
    // served from the row cache, so its share falls below the paper's
    // band; every mix that writes must land inside it.
    for wl in Workload::ALL {
        let mut world = World::new(Box::new(Sel4::new(Sel4Transfer::TwoCopy)));
        let spec = WorkloadSpec {
            ops: 300,
            ..WorkloadSpec::paper(wl)
        };
        let r = run_workload(&mut world, &spec);
        let band = if wl == Workload::C {
            0.01..0.75
        } else {
            0.08..0.75
        };
        assert!(
            band.contains(&r.ipc_fraction),
            "{}: IPC fraction {:.2} out of plausible band",
            wl.name(),
            r.ipc_fraction
        );
    }
}
