//! The YCSB-on-minidb driver: loads the table, replays an operation
//! stream, and reports throughput plus the IPC accounting Figures 1 and
//! 8 are built from.

use crate::db::MiniDb;
use simos::World;
use ycsb::rng::Rng;
use ycsb::{Op, WorkloadSpec};

/// Result of one YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbResult {
    /// Workload name.
    pub workload: &'static str,
    /// IPC mechanism name.
    pub system: String,
    /// Operations executed.
    pub ops: u64,
    /// Cycles for the run phase (excludes loading).
    pub cycles: u64,
    /// Fraction of run-phase cycles spent in IPC (Figure 1a).
    pub ipc_fraction: f64,
    /// Fraction of IPC cycles spent on data transfer (§2.1's 58.7%).
    pub transfer_fraction: f64,
    /// `(message_bytes, ipc_cycles)` events for the Figure 1b CDF.
    pub events: Vec<(u64, u64)>,
    /// Throughput in operations per second at the model clock.
    pub ops_per_sec: f64,
    /// Per-operation latency percentiles in cycles (p50, p95, p99) —
    /// YCSB's standard latency report.
    pub latency_p50: u64,
    /// 95th percentile latency.
    pub latency_p95: u64,
    /// 99th percentile latency.
    pub latency_p99: u64,
}

/// Load the table and run `spec` against a fresh database in `world`.
/// Loading happens before measurement starts.
pub fn run_workload(world: &mut World, spec: &WorkloadSpec) -> YcsbResult {
    let mut db = MiniDb::create(world, 1 << 15);
    let mut rng = Rng::seed_from_u64(spec.seed ^ 0x10ad);
    for n in 0..spec.records {
        let row = spec.row_bytes(&mut rng);
        db.insert(world, &spec.key(n), &row);
    }
    // Reset accounting after the load phase.
    world.stats = simos::WorldStats::default();
    let start = world.cycles;

    let ops = spec.generate();
    let mut latencies = Vec::with_capacity(ops.len());
    for op in &ops {
        let op_start = world.cycles;
        match op {
            Op::Read(k) => {
                let _ = db.read(world, k);
            }
            Op::Update(k, f) => {
                let _ = db.update(world, k, f);
            }
            Op::Insert(k, row) => db.insert(world, k, row),
            Op::Scan(k, n) => {
                let _ = db.scan(world, k, *n);
            }
            Op::ReadModifyWrite(k, f) => {
                let _ = db.read_modify_write(world, k, f);
            }
        }
        latencies.push(world.cycles - op_start);
    }
    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() - 1) * p / 100]
        }
    };

    let cycles = world.cycles - start;
    let secs = cycles as f64 / world.cost.clock_hz as f64;
    YcsbResult {
        workload: spec.workload.name(),
        system: world.ipc_name(),
        ops: ops.len() as u64,
        cycles,
        ipc_fraction: world.stats.ipc_fraction(),
        transfer_fraction: world.stats.transfer_fraction_of_ipc(),
        events: world.stats.events.clone(),
        ops_per_sec: ops.len() as f64 / secs,
        latency_p50: pct(50),
        latency_p95: pct(95),
        latency_p99: pct(99),
    }
}
